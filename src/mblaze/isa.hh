/**
 * @file
 * The imperative layer's instruction set: a MicroBlaze-like 32-bit
 * in-order RISC.
 *
 * The paper's imperative realm "can be any embedded CPU, but for our
 * purposes is a Xilinx MicroBlaze" (Sec. 4.1) with a 3-stage
 * pipeline at 100 MHz (Table 1). This module defines a compact RISC
 * in that mould: 32 general registers (r0 hardwired to zero), three-
 * operand ALU ops with register or 16-bit-immediate second operands,
 * word load/store, compare-and-branch, jump-and-link, port I/O, and
 * halt. The timing model matches a classic 3-stage pipeline: one
 * cycle per instruction, a two-cycle taken-branch penalty, 3-cycle
 * multiply, and 34-cycle divide (MicroBlaze's serial divider).
 */

#ifndef ZARF_MBLAZE_ISA_HH
#define ZARF_MBLAZE_ISA_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/types.hh"

namespace zarf::mblaze
{

/** Number of general-purpose registers; r0 reads as zero. */
constexpr unsigned kNumRegs = 32;

/** Operation codes. */
enum class Opc : uint8_t
{
    // ALU, register-register.
    Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr, Sra,
    Slt,  ///< rd = (ra < rb) signed
    // ALU, register-immediate (16-bit sign-extended).
    Addi, Muli, Andi, Ori, Xori, Shli, Shri, Srai, Slti,
    // Full-width immediate load (2 cycles, like IMM-prefixed ops).
    Movi,
    // Memory (word addressed by byte address / 4? -> word index).
    Lw,   ///< rd = mem[ra + imm]
    Sw,   ///< mem[ra + imm] = rd
    // Control flow. Branch targets are instruction indices after
    // label resolution.
    Beq, Bne, Blt, Ble, Bgt, Bge, ///< compare ra, rb
    J,    ///< unconditional jump
    Jal,  ///< rd = return index; jump
    Jr,   ///< jump to register
    // Port I/O (talks to the system's IoBus).
    In,   ///< rd = port[imm]
    Out,  ///< port[imm] = ra
    Halt,
    Nop,
};

/** One decoded instruction. */
struct Instr
{
    Opc opc = Opc::Nop;
    uint8_t rd = 0;
    uint8_t ra = 0;
    uint8_t rb = 0;
    int32_t imm = 0; ///< Immediate / resolved branch target.
};

/** A program: decoded instructions plus symbol metadata. */
struct MbProgram
{
    std::vector<Instr> code;
    /** Label name -> instruction index (for tests/tools). */
    std::vector<std::pair<std::string, size_t>> labels;

    /** Look up a label; -1 if absent. */
    int
    labelAt(const std::string &name) const
    {
        for (const auto &[n, i] : labels) {
            if (n == name)
                return static_cast<int>(i);
        }
        return -1;
    }
};

/** Assembly result. */
struct MbAsmResult
{
    bool ok;
    MbProgram program;
    std::string error;
};

/**
 * Assemble text into a program.
 *
 * Syntax, one instruction per line ('#' comments):
 *
 *   label:
 *     movi  r1, 1000
 *     addi  r2, r1, -1
 *     mul   r3, r1, r2
 *     lw    r4, r5, 8        # r4 = mem[r5 + 8]
 *     sw    r4, r5, 8        # mem[r5 + 8] = r4
 *     beq   r1, r0, label
 *     jal   r15, subroutine
 *     jr    r15
 *     in    r6, 0
 *     out   r6, 2
 *     halt
 */
MbAsmResult assembleMb(const std::string &text);

/** Assemble or die (tests, examples). */
MbProgram assembleMbOrDie(const std::string &text);

/** Render a program as assembly text (for inspection). */
std::string disassembleMb(const MbProgram &program);

} // namespace zarf::mblaze

#endif // ZARF_MBLAZE_ISA_HH
