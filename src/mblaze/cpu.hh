/**
 * @file
 * Cycle-level model of the imperative core (3-stage in-order RISC).
 *
 * Timing: one cycle per instruction; taken branches, jumps, and
 * calls pay a two-cycle pipeline flush; multiply takes 3 cycles,
 * divide 34 (a serial divider, as on MicroBlaze); movi takes 2
 * (IMM-prefix style). Loads and stores hit single-cycle on-chip
 * BRAM. The core runs at 100 MHz next to the λ-layer's 50 MHz
 * (paper, Table 1).
 */

#ifndef ZARF_MBLAZE_CPU_HH
#define ZARF_MBLAZE_CPU_HH

#include <array>
#include <vector>

#include "mblaze/isa.hh"
#include "sem/io.hh"
#include "support/types.hh"

namespace zarf::obs
{
class Recorder;
enum class EventKind : uint8_t;
} // namespace zarf::obs

namespace zarf::mblaze
{

/** CPU timing parameters. */
struct MbTiming
{
    Cycles base = 1;
    Cycles takenBranchPenalty = 2;
    Cycles mulExtra = 2;  ///< mul = 3 total
    Cycles divExtra = 33; ///< div = 34 total
    Cycles moviExtra = 1; ///< movi = 2 total
    Cycles ioExtra = 1;
};

/** CPU run state. */
enum class MbStatus
{
    Running,
    Halted,
    Fault, ///< Bad memory access or pc out of range.
};

/**
 * Structured record of a fault. A bare MbStatus::Fault is useless to
 * the system layer's recovery logic; this carries the cause, the
 * faulting pc, and (for memory faults) the offending data address so
 * it can be reported over the diagnostic channel.
 */
struct MbFaultInfo
{
    enum class Cause
    {
        None = 0,
        PcOutOfRange = 1,
        LoadOutOfRange = 2,
        StoreOutOfRange = 3,
    };

    Cause cause = Cause::None;
    size_t pc = 0;     ///< pc of the faulting instruction.
    int64_t addr = 0;  ///< Faulting data address (load/store only).
};

/**
 * The complete mutable state of an MbCpu (system snapshot/fork,
 * docs/PERF.md "Campaign-scale execution"). The program, bus
 * binding, timing, and trace attachment are construction-time
 * configuration and are not part of the captured state.
 */
struct MbState
{
    std::array<SWord, kNumRegs> regs{};
    std::vector<SWord> dmem;
    size_t pc = 0;
    MbStatus st = MbStatus::Running;
    MbFaultInfo fault{};
    Cycles total = 0;
    uint64_t retired = 0;
};

/** The imperative core. */
class MbCpu
{
  public:
    /**
     * The CPU owns a copy of the program, so callers may pass
     * temporaries safely.
     *
     * @param program decoded program (pc 0 is the entry)
     * @param bus the I/O bus `in`/`out` talk to
     * @param memWords data memory size in words
     */
    MbCpu(MbProgram program, IoBus &bus,
          size_t memWords = 1u << 16, MbTiming timing = {});

    /** Run until halt/fault or `budget` more cycles pass. */
    MbStatus advance(Cycles budget);

    /** Run to completion (bounded); returns final status. */
    MbStatus run(Cycles maxCycles = 1'000'000'000ull);

    Cycles cycles() const { return total; }
    uint64_t instructionsRetired() const { return retired; }
    MbStatus status() const { return st; }
    /** Cause/pc/address of the fault; Cause::None while healthy. */
    const MbFaultInfo &faultInfo() const { return fault; }
    /** Data memory size in words. */
    size_t memWords() const { return dmem.size(); }

    /** Register read (tests). */
    SWord reg(unsigned i) const { return regs[i]; }
    /** Register write (test setup). */
    void setReg(unsigned i, SWord v);
    /** Data-memory access (tests). */
    SWord mem(size_t wordIndex) const;
    void setMem(size_t wordIndex, SWord v);

    /**
     * Attach an event recorder (null detaches). Event timestamps are
     * tsBias + cycles()/tsDiv: the system layer passes the
     * mblaze-to-λ clock ratio and its epoch so both layers stamp one
     * shared timeline (docs/OBSERVABILITY.md).
     */
    void setTrace(obs::Recorder *r, Cycles tsDiv = 1,
                  Cycles tsBias = 0);

    /** Capture the complete mutable state into `out`. */
    void
    save(MbState &out) const
    {
        out.regs = regs;
        out.dmem = dmem;
        out.pc = pc;
        out.st = st;
        out.fault = fault;
        out.total = total;
        out.retired = retired;
    }

    /** Adopt a state captured by save(). The receiver must run the
     *  same program over the same memory size for the result to be
     *  meaningful; data memory is sized by the snapshot. */
    void
    restore(const MbState &s)
    {
        regs = s.regs;
        dmem = s.dmem;
        pc = s.pc;
        st = s.st;
        fault = s.fault;
        total = s.total;
        retired = s.retired;
    }

  private:
    void step();
    void emitMb(obs::EventKind k, int64_t a, int64_t b) const;

    MbProgram prog;
    IoBus &bus;
    MbTiming timing;

    std::array<SWord, kNumRegs> regs{};
    std::vector<SWord> dmem;
    size_t pc = 0;
    MbStatus st = MbStatus::Running;
    MbFaultInfo fault{};
    Cycles total = 0;
    uint64_t retired = 0;

    // Observability (setTrace).
    obs::Recorder *trace = nullptr;
    Cycles tsDiv = 1;
    Cycles tsBias = 0;
    bool traceOn = false;
};

} // namespace zarf::mblaze

#endif // ZARF_MBLAZE_CPU_HH
