#include "mblaze/encoding.hh"

#include <map>

#include "support/logging.hh"

namespace zarf::mblaze
{

namespace
{

constexpr Word kOpImm = 63; ///< The IMM prefix pseudo-opcode.

bool
isBranchy(Opc o)
{
    switch (o) {
      case Opc::Beq:
      case Opc::Bne:
      case Opc::Blt:
      case Opc::Ble:
      case Opc::Bgt:
      case Opc::Bge:
      case Opc::J:
      case Opc::Jal:
        return true;
      default:
        return false;
    }
}

bool
fitsImm16(int32_t v)
{
    return v >= -32768 && v <= 32767;
}

/** rb (bits [15:11]) and the 16-bit immediate share the low half;
 *  register forms carry imm 0, immediate forms carry rb 0, so the
 *  overlap is harmless and each decoder side reads what it uses. */
Word
pack(Opc op, unsigned rd, unsigned ra, unsigned rb, int32_t imm)
{
    return (Word(op) << 26) | (Word(rd & 31) << 21) |
           (Word(ra & 31) << 16) | (Word(rb & 31) << 11) |
           (Word(imm) & 0xffffu);
}

} // namespace

std::vector<Word>
encodeMb(const MbProgram &program)
{
    // Pass 1: the word offset at which each instruction starts (a
    // movi with a large constant is two words: IMM prefix + movi).
    std::vector<Word> wordAt(program.code.size() + 1, 0);
    Word off = 0;
    for (size_t i = 0; i < program.code.size(); ++i) {
        wordAt[i] = off;
        const Instr &ins = program.code[i];
        off += (ins.opc == Opc::Movi && !fitsImm16(ins.imm)) ? 2 : 1;
    }
    wordAt[program.code.size()] = off;

    // Pass 2: emit, with branch targets as word offsets.
    std::vector<Word> out;
    out.push_back(kMbMagic);
    for (size_t i = 0; i < program.code.size(); ++i) {
        Instr ins = program.code[i];
        if (isBranchy(ins.opc)) {
            size_t target = size_t(ins.imm);
            if (target >= wordAt.size())
                fatal("branch target %zu out of range", target);
            ins.imm = int32_t(wordAt[target]);
        }
        if (ins.opc == Opc::Movi && !fitsImm16(ins.imm)) {
            out.push_back((kOpImm << 26) |
                          ((Word(ins.imm) >> 16) & 0xffffu));
            out.push_back(pack(Opc::Movi, ins.rd, 0, 0,
                               ins.imm & 0xffff));
            continue;
        }
        out.push_back(pack(ins.opc, ins.rd, ins.ra, ins.rb,
                           ins.imm));
    }
    return out;
}

MbDecodeResult
decodeMb(const std::vector<Word> &image)
{
    auto err = [](std::string why) {
        return MbDecodeResult{ false, {}, std::move(why) };
    };
    if (image.empty() || image[0] != kMbMagic)
        return err("bad magic word");

    MbProgram prog;
    std::map<Word, size_t> instrAtWord;
    std::vector<size_t> branchIdx;

    bool havePrefix = false;
    Word upper = 0;
    Word start = 0; // word offset where the current instr started

    for (size_t w = 1; w < image.size(); ++w) {
        Word off = Word(w - 1);
        Word word = image[w];
        Word opBits = word >> 26;

        if (opBits == kOpImm) {
            if (havePrefix)
                return err("two consecutive IMM prefixes");
            havePrefix = true;
            upper = word & 0xffffu;
            start = off;
            continue;
        }
        if (opBits > Word(Opc::Nop))
            return err(strprintf("bad opcode %u at word %zu",
                                 opBits, w));

        Instr ins;
        ins.opc = Opc(opBits);
        ins.rd = uint8_t((word >> 21) & 31);
        ins.ra = uint8_t((word >> 16) & 31);
        ins.rb = uint8_t((word >> 11) & 31);
        ins.imm = int32_t(int16_t(word & 0xffffu));
        if (havePrefix) {
            if (ins.opc != Opc::Movi)
                return err("IMM prefix before a non-movi word");
            ins.imm = int32_t((upper << 16) |
                              (Word(ins.imm) & 0xffffu));
            havePrefix = false;
        } else {
            start = off;
        }
        instrAtWord[start] = prog.code.size();
        if (isBranchy(ins.opc))
            branchIdx.push_back(prog.code.size());
        prog.code.push_back(ins);
    }
    if (havePrefix)
        return err("trailing IMM prefix");

    Word totalWords = Word(image.size() - 1);
    for (size_t idx : branchIdx) {
        Word target = Word(prog.code[idx].imm) & 0xffffu;
        auto it = instrAtWord.find(target);
        if (it != instrAtWord.end()) {
            prog.code[idx].imm = int32_t(it->second);
        } else if (target == totalWords) {
            // Branching one past the end: fault-on-arrival.
            prog.code[idx].imm = int32_t(prog.code.size());
        } else {
            return err(strprintf(
                "branch to word %u lands inside a fused constant "
                "or outside the image", target));
        }
    }
    return MbDecodeResult{ true, std::move(prog), "" };
}

} // namespace zarf::mblaze
