#include "mblaze/cpu.hh"

#include "obs/trace.hh"

namespace zarf::mblaze
{

MbCpu::MbCpu(MbProgram program, IoBus &bus, size_t memWords,
             MbTiming timing)
    : prog(std::move(program)), bus(bus), timing(timing),
      dmem(memWords, 0)
{
    if (prog.code.empty())
        st = MbStatus::Halted;
}

MbStatus
MbCpu::advance(Cycles budget)
{
    Cycles target = total + budget;
    while (st == MbStatus::Running && total < target)
        step();
    return st;
}

MbStatus
MbCpu::run(Cycles maxCycles)
{
    return advance(maxCycles);
}

void
MbCpu::setReg(unsigned i, SWord v)
{
    if (i != 0 && i < kNumRegs)
        regs[i] = v;
}

SWord
MbCpu::mem(size_t wordIndex) const
{
    return wordIndex < dmem.size() ? dmem[wordIndex] : 0;
}

void
MbCpu::setMem(size_t wordIndex, SWord v)
{
    if (wordIndex < dmem.size())
        dmem[wordIndex] = v;
}

void
MbCpu::setTrace(obs::Recorder *r, Cycles div, Cycles bias)
{
    trace = r;
    tsDiv = div ? div : 1;
    tsBias = bias;
    traceOn = trace && trace->wants(obs::Cat::Mblaze);
}

void
MbCpu::emitMb(obs::EventKind k, int64_t a, int64_t b) const
{
    trace->emit(k, tsBias + total / tsDiv, a, b);
}

void
MbCpu::step()
{
    if (pc >= prog.code.size()) {
        st = MbStatus::Fault;
        fault = { MbFaultInfo::Cause::PcOutOfRange, pc, 0 };
        if (traceOn)
            emitMb(obs::EventKind::MbTrap,
                   static_cast<int64_t>(fault.cause),
                   static_cast<int64_t>(pc));
        return;
    }
    const Instr &ins = prog.code[pc];
    Cycles cost = timing.base;
    size_t next = pc + 1;
    ++retired;

    auto wr = [&](SWord v) {
        if (ins.rd != 0)
            regs[ins.rd] = v;
    };
    SWord a = regs[ins.ra];
    SWord b = regs[ins.rb];

    switch (ins.opc) {
      case Opc::Add: wr(a + b); break;
      case Opc::Sub: wr(a - b); break;
      case Opc::Mul:
        wr(SWord(int64_t(a) * int64_t(b)));
        cost += timing.mulExtra;
        break;
      case Opc::Div:
        wr(b == 0 ? 0 : a / b);
        cost += timing.divExtra;
        break;
      case Opc::Rem:
        wr(b == 0 ? 0 : a % b);
        cost += timing.divExtra;
        break;
      case Opc::And: wr(a & b); break;
      case Opc::Or: wr(a | b); break;
      case Opc::Xor: wr(a ^ b); break;
      case Opc::Shl: wr(SWord(Word(a) << (Word(b) & 31))); break;
      case Opc::Shr: wr(SWord(Word(a) >> (Word(b) & 31))); break;
      case Opc::Sra: wr(a >> (Word(b) & 31)); break;
      case Opc::Slt: wr(a < b ? 1 : 0); break;

      case Opc::Addi: wr(a + ins.imm); break;
      case Opc::Muli:
        wr(SWord(int64_t(a) * ins.imm));
        cost += timing.mulExtra;
        break;
      case Opc::Andi: wr(a & ins.imm); break;
      case Opc::Ori: wr(a | ins.imm); break;
      case Opc::Xori: wr(a ^ ins.imm); break;
      case Opc::Shli: wr(SWord(Word(a) << (Word(ins.imm) & 31))); break;
      case Opc::Shri: wr(SWord(Word(a) >> (Word(ins.imm) & 31))); break;
      case Opc::Srai: wr(a >> (Word(ins.imm) & 31)); break;
      case Opc::Slti: wr(a < ins.imm ? 1 : 0); break;

      case Opc::Movi:
        wr(ins.imm);
        cost += timing.moviExtra;
        break;

      case Opc::Lw: {
        int64_t addr = int64_t(a) + ins.imm;
        if (addr < 0 || size_t(addr) >= dmem.size()) {
            st = MbStatus::Fault;
            fault = { MbFaultInfo::Cause::LoadOutOfRange, pc, addr };
            if (traceOn)
                emitMb(obs::EventKind::MbTrap,
                       static_cast<int64_t>(fault.cause),
                       static_cast<int64_t>(pc));
            return;
        }
        wr(dmem[size_t(addr)]);
        break;
      }
      case Opc::Sw: {
        int64_t addr = int64_t(a) + ins.imm;
        if (addr < 0 || size_t(addr) >= dmem.size()) {
            st = MbStatus::Fault;
            fault = { MbFaultInfo::Cause::StoreOutOfRange, pc, addr };
            if (traceOn)
                emitMb(obs::EventKind::MbTrap,
                       static_cast<int64_t>(fault.cause),
                       static_cast<int64_t>(pc));
            return;
        }
        dmem[size_t(addr)] = regs[ins.rd];
        break;
      }

      case Opc::Beq:
      case Opc::Bne:
      case Opc::Blt:
      case Opc::Ble:
      case Opc::Bgt:
      case Opc::Bge: {
        // Branches compare rd (first operand) with ra (second).
        SWord x = regs[ins.rd];
        SWord y = regs[ins.ra];
        bool taken = false;
        switch (ins.opc) {
          case Opc::Beq: taken = x == y; break;
          case Opc::Bne: taken = x != y; break;
          case Opc::Blt: taken = x < y; break;
          case Opc::Ble: taken = x <= y; break;
          case Opc::Bgt: taken = x > y; break;
          case Opc::Bge: taken = x >= y; break;
          default: break;
        }
        if (taken) {
            next = size_t(ins.imm);
            cost += timing.takenBranchPenalty;
            if (traceOn)
                emitMb(obs::EventKind::MbBranch,
                       static_cast<int64_t>(pc),
                       static_cast<int64_t>(next));
        }
        break;
      }
      case Opc::J:
        next = size_t(ins.imm);
        cost += timing.takenBranchPenalty;
        break;
      case Opc::Jal:
        wr(SWord(pc + 1));
        next = size_t(ins.imm);
        cost += timing.takenBranchPenalty;
        break;
      case Opc::Jr:
        next = size_t(regs[ins.rd]);
        cost += timing.takenBranchPenalty;
        break;

      case Opc::In: {
        SWord v = bus.getInt(ins.imm);
        wr(v);
        cost += timing.ioExtra;
        if (traceOn)
            emitMb(obs::EventKind::MbIn,
                   static_cast<int64_t>(ins.imm),
                   static_cast<int64_t>(v));
        break;
      }
      case Opc::Out:
        bus.putInt(ins.imm, regs[ins.rd]);
        cost += timing.ioExtra;
        if (traceOn)
            emitMb(obs::EventKind::MbOut,
                   static_cast<int64_t>(ins.imm),
                   static_cast<int64_t>(regs[ins.rd]));
        break;

      case Opc::Halt:
        st = MbStatus::Halted;
        total += cost;
        if (traceOn)
            emitMb(obs::EventKind::MbHalt,
                   static_cast<int64_t>(pc), 0);
        return;
      case Opc::Nop:
        break;
    }

    total += cost;
    pc = next;
}

} // namespace zarf::mblaze
