#include "mblaze/isa.hh"

#include <cctype>
#include <unordered_map>

#include "support/logging.hh"
#include "support/text.hh"

namespace zarf::mblaze
{

namespace
{

struct OpSpec
{
    Opc opc;
    /** Operand shape: R=register, I=immediate, L=label. */
    const char *shape;
};

const std::unordered_map<std::string, OpSpec> &
opTable()
{
    static const std::unordered_map<std::string, OpSpec> t = {
        { "add", { Opc::Add, "RRR" } },
        { "sub", { Opc::Sub, "RRR" } },
        { "mul", { Opc::Mul, "RRR" } },
        { "div", { Opc::Div, "RRR" } },
        { "rem", { Opc::Rem, "RRR" } },
        { "and", { Opc::And, "RRR" } },
        { "or", { Opc::Or, "RRR" } },
        { "xor", { Opc::Xor, "RRR" } },
        { "shl", { Opc::Shl, "RRR" } },
        { "shr", { Opc::Shr, "RRR" } },
        { "sra", { Opc::Sra, "RRR" } },
        { "slt", { Opc::Slt, "RRR" } },
        { "addi", { Opc::Addi, "RRI" } },
        { "muli", { Opc::Muli, "RRI" } },
        { "andi", { Opc::Andi, "RRI" } },
        { "ori", { Opc::Ori, "RRI" } },
        { "xori", { Opc::Xori, "RRI" } },
        { "shli", { Opc::Shli, "RRI" } },
        { "shri", { Opc::Shri, "RRI" } },
        { "srai", { Opc::Srai, "RRI" } },
        { "slti", { Opc::Slti, "RRI" } },
        { "movi", { Opc::Movi, "RI" } },
        { "lw", { Opc::Lw, "RRI" } },
        { "sw", { Opc::Sw, "RRI" } },
        { "beq", { Opc::Beq, "RRL" } },
        { "bne", { Opc::Bne, "RRL" } },
        { "blt", { Opc::Blt, "RRL" } },
        { "ble", { Opc::Ble, "RRL" } },
        { "bgt", { Opc::Bgt, "RRL" } },
        { "bge", { Opc::Bge, "RRL" } },
        { "j", { Opc::J, "L" } },
        { "jal", { Opc::Jal, "RL" } },
        { "jr", { Opc::Jr, "R" } },
        { "in", { Opc::In, "RI" } },
        { "out", { Opc::Out, "RI" } },
        { "halt", { Opc::Halt, "" } },
        { "nop", { Opc::Nop, "" } },
    };
    return t;
}

const char *
opName(Opc opc)
{
    for (const auto &[name, spec] : opTable()) {
        if (spec.opc == opc)
            return name.c_str();
    }
    return "?";
}

bool
parseReg(const std::string &tok, uint8_t &out)
{
    if (tok.size() < 2 || tok[0] != 'r')
        return false;
    if (!isInteger(tok.substr(1)))
        return false;
    long v = std::stol(tok.substr(1));
    if (v < 0 || v >= long(kNumRegs))
        return false;
    out = static_cast<uint8_t>(v);
    return true;
}

} // namespace

MbAsmResult
assembleMb(const std::string &text)
{
    MbProgram prog;
    std::unordered_map<std::string, size_t> labelIdx;
    struct Fixup { size_t instr; std::string label; int line; };
    std::vector<Fixup> fixups;

    auto err = [](int line, const std::string &why) {
        return MbAsmResult{ false, {},
                            strprintf("line %d: %s", line,
                                      why.c_str()) };
    };

    int lineNo = 0;
    for (std::string &raw : split(text, '\n')) {
        ++lineNo;
        std::string line = raw;
        size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;

        // Labels, possibly followed by an instruction.
        size_t colon = line.find(':');
        if (colon != std::string::npos) {
            std::string name = trim(line.substr(0, colon));
            if (name.empty())
                return err(lineNo, "empty label");
            if (labelIdx.count(name))
                return err(lineNo, "duplicate label " + name);
            labelIdx[name] = prog.code.size();
            prog.labels.push_back({ name, prog.code.size() });
            line = trim(line.substr(colon + 1));
            if (line.empty())
                continue;
        }

        // Mnemonic and comma/space-separated operands.
        size_t sp = line.find_first_of(" \t");
        std::string mnem =
            sp == std::string::npos ? line : line.substr(0, sp);
        std::string rest =
            sp == std::string::npos ? "" : trim(line.substr(sp));
        auto it = opTable().find(mnem);
        if (it == opTable().end())
            return err(lineNo, "unknown mnemonic " + mnem);
        const OpSpec &spec = it->second;

        std::vector<std::string> ops;
        if (!rest.empty()) {
            for (std::string &part : split(rest, ',')) {
                std::string p = trim(part);
                if (p.empty())
                    return err(lineNo, "empty operand");
                ops.push_back(p);
            }
        }
        std::string shape = spec.shape;
        if (ops.size() != shape.size()) {
            return err(lineNo,
                       strprintf("%s expects %zu operands, got %zu",
                                 mnem.c_str(), shape.size(),
                                 ops.size()));
        }

        Instr ins;
        ins.opc = spec.opc;
        unsigned regsSeen = 0;
        for (size_t i = 0; i < ops.size(); ++i) {
            switch (shape[i]) {
              case 'R': {
                uint8_t r;
                if (!parseReg(ops[i], r))
                    return err(lineNo, "bad register " + ops[i]);
                if (regsSeen == 0)
                    ins.rd = r;
                else if (regsSeen == 1)
                    ins.ra = r;
                else
                    ins.rb = r;
                ++regsSeen;
                break;
              }
              case 'I': {
                if (!isInteger(ops[i]))
                    return err(lineNo, "bad immediate " + ops[i]);
                ins.imm = static_cast<int32_t>(std::stol(ops[i]));
                break;
              }
              case 'L': {
                fixups.push_back({ prog.code.size(), ops[i],
                                   lineNo });
                break;
              }
            }
        }
        // sw stores rd; shape RRI puts base in ra: fine as encoded.
        prog.code.push_back(ins);
    }

    for (const Fixup &f : fixups) {
        auto it = labelIdx.find(f.label);
        if (it == labelIdx.end())
            return err(f.line, "undefined label " + f.label);
        prog.code[f.instr].imm = static_cast<int32_t>(it->second);
    }
    return MbAsmResult{ true, std::move(prog), "" };
}

MbProgram
assembleMbOrDie(const std::string &text)
{
    MbAsmResult r = assembleMb(text);
    if (!r.ok)
        fatal("mblaze assembly error: %s", r.error.c_str());
    return std::move(r.program);
}

std::string
disassembleMb(const MbProgram &program)
{
    std::string out;
    for (size_t i = 0; i < program.code.size(); ++i) {
        for (const auto &[name, idx] : program.labels) {
            if (idx == i)
                out += name + ":\n";
        }
        const Instr &ins = program.code[i];
        out += strprintf("  %-5s rd=r%u ra=r%u rb=r%u imm=%d\n",
                         opName(ins.opc), ins.rd, ins.ra, ins.rb,
                         ins.imm);
    }
    return out;
}

} // namespace zarf::mblaze
