/**
 * @file
 * Binary encoding for the imperative layer's ISA.
 *
 * 32-bit words: [31:26] opcode, [25:21] rd, [20:16] ra, [15:11] rb,
 * [15:0] signed immediate (immediate forms). Full-width constants
 * use MicroBlaze's idiom: an IMM prefix word carries the upper 16
 * bits and fuses with the following instruction (which is why `movi`
 * costs two cycles in the timing model).
 *
 * Because a fused constant occupies two words, branch/jump targets
 * are encoded as *word* offsets and translated back to instruction
 * indices on decode; the decoder rejects targets that land on a
 * fused prefix's second half or outside the image.
 */

#ifndef ZARF_MBLAZE_ENCODING_HH
#define ZARF_MBLAZE_ENCODING_HH

#include <string>
#include <vector>

#include "mblaze/isa.hh"

namespace zarf::mblaze
{

/** Magic word leading every mblaze image ("MBZ:"). */
constexpr Word kMbMagic = 0x4d425a3a;

/** Encode a program to a binary image (magic + words). */
std::vector<Word> encodeMb(const MbProgram &program);

/** Decoding outcome. */
struct MbDecodeResult
{
    bool ok;
    MbProgram program;
    std::string error;
};

/** Decode an image; labels are not recoverable (none are stored). */
MbDecodeResult decodeMb(const std::vector<Word> &image);

} // namespace zarf::mblaze

#endif // ZARF_MBLAZE_ENCODING_HH
