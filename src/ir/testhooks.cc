#include "ir/testhooks.hh"

namespace zarf::ir::testhooks
{

bool irBrokenAllocCharge = false;
bool irBrokenCaseFieldOrder = false;

} // namespace zarf::ir::testhooks
