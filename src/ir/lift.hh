/**
 * @file
 * The sound lifter: decoded Zarf programs → analysis IR.
 *
 * Soundness contract: for every image the machine loader accepts,
 * lifting succeeds and the lifted module's reference evaluation
 * (ir/eval.hh) agrees with the machine bit-for-bit — outcome, value,
 * I/O trace, and λ-cycle count. For every image the loader rejects,
 * lifting rejects with the same gate (header, predecode, or decode)
 * — a rejected image is never lifted into well-formed IR. The
 * contract is enforced continuously by the differential oracle's
 * compareIr evaluator (fuzz/oracle.hh) and by tests/test_ir_lift.cc.
 *
 * The lifter is total on decoded ASTs: liftProgram never fails,
 * because every structural hazard the decoder admits (wide callee
 * ids, out-of-range slot indices) is representable — wide ids lift
 * to CalleeClass::Unknown and fault at evaluation time exactly as
 * the machine faults, rather than being rejected ahead of it.
 */

#ifndef ZARF_IR_LIFT_HH
#define ZARF_IR_LIFT_HH

#include <string>
#include <vector>

#include "ir/ir.hh"
#include "isa/ast.hh"
#include "isa/binary.hh"

namespace zarf
{
class LoadedImage;
} // namespace zarf

namespace zarf::ir
{

/** Outcome of lifting. */
struct LiftResult
{
    bool ok = false;
    std::string error; ///< Gate + diagnostic when !ok ("header: …",
                       ///< "predecode: …", "decode: …").
    Module module;     ///< Valid when ok.

    /** Pointers to the entry body's immediate operand sites in the
     *  canonical order (isa/sites.hh), parallel to
     *  module.entryImmValues. Filled only by the mutable-Program
     *  overload; consumers (sym's site collection) write solver
     *  models back through them. */
    std::vector<Operand *> entrySitePtrs;
};

/** Lift a decoded AST. Never fails. `imageWords` seeds the module's
 *  load-cycle ledger when the AST has binary provenance. */
LiftResult liftProgram(const Program &program, size_t imageWords = 0);

/** Same, and additionally collect writable pointers to the entry
 *  body's immediate operand sites (entrySitePtrs). The program must
 *  outlive any use of the pointers. */
LiftResult liftProgram(Program &program, size_t imageWords = 0);

/** Lift a load artifact. Rejects exactly when the machine loader
 *  would refuse to run it (bad header, predecode failure, decode
 *  failure). */
LiftResult liftLoaded(const LoadedImage &li);

/** Convenience: build the load artifact and lift it. */
LiftResult liftImage(const Image &image);

} // namespace zarf::ir

#endif // ZARF_IR_LIFT_HH
