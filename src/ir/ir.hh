/**
 * @file
 * The machine-independent analysis IR (docs/IR.md).
 *
 * Every analysis in this repo ultimately reasons about the same
 * object: a decoded Zarf program. Until now each one re-derived the
 * semantics from the AST or the binary by hand. The IR is the shared
 * semantic artifact instead: a flat, let-normalized op table over
 * 31-bit words with resolved callees, explicit static effect
 * annotations, and per-op static cycle annotations drawn from the
 * machine's TimingModel — the representation the lifter (ir/lift.hh)
 * produces and the reference evaluator (ir/eval.hh), the symbolic
 * engine's site walk, and future JIT/WCET consumers read.
 *
 * Design points:
 *   - SSA-ish let normalization is inherited from the ISA itself:
 *     every intermediate value is bound exactly once by a let, and
 *     ops reference values only through (source, index) operands.
 *     The lifter therefore preserves the instruction structure
 *     one-to-one instead of inventing a new binding discipline —
 *     soundness is a per-op local argument, checked globally by the
 *     differential oracle (fuzz/oracle.hh, the compareIr evaluator).
 *   - Control flow is explicit and forward-only: `next`, pattern
 *     bodies, and `elseBody` are op-table indices; there are no
 *     backward edges within a function (loops go through calls).
 *   - Callees are classified at lift time against the identifier
 *     table (primitive / constructor / user function / unknown), so
 *     consumers never re-derive the id-space split. Unknown is a
 *     real class: the decoder deliberately accepts wide callee ids
 *     and the machine faults at runtime, so the IR must carry the
 *     same latent fault rather than reject the program.
 *   - Effects are static *may* annotations (allocation, forcing,
 *     call, I/O, error construction, timing) — an op without a bit
 *     never performs that effect; an op with it may or may not,
 *     depending on dynamic values and laziness.
 */

#ifndef ZARF_IR_IR_HH
#define ZARF_IR_IR_HH

#include <cstdint>
#include <vector>

#include "isa/ast.hh"
#include "support/types.hh"

namespace zarf::ir
{

/** Kind of one IR op — exactly the ISA's three instructions. */
enum class OpKind : uint8_t
{
    Let,    ///< Apply a callee to arguments; bind the next local.
    Case,   ///< Force a value and pattern-match it.
    Result, ///< Yield a value to the forcing continuation.
};

/** What a resolved callee identifier names. */
enum class CalleeClass : uint8_t
{
    Unknown, ///< Dynamic (closure slot) or an id outside every
             ///< table — the machine faults when it is applied.
    Prim,    ///< A non-constructor hardware function (ALU, I/O, GC).
    Cons,    ///< A constructor (user-declared or the Error prim).
    Func,    ///< A user-declared function.
};

/** A lift-time-resolved callee. */
struct CalleeRef
{
    CalleeKind kind = CalleeKind::Func; ///< Func id vs. closure slot.
    CalleeClass cls = CalleeClass::Unknown;
    Word id = 0;    ///< Global id (Func) or slot index (Local/Arg).
    Word arity = 0; ///< Declared arity when cls is not Unknown.
};

/** Static may-effect bits of one op. */
enum : uint32_t
{
    kEffAlloc = 1u << 0, ///< May allocate (app/cons/error object).
    kEffForce = 1u << 1, ///< May force a thunk (case scrutinee).
    kEffCall = 1u << 2,  ///< May transfer control into a callee.
    kEffIo = 1u << 3,    ///< May reach a getint/putint transaction.
    kEffError = 1u << 4, ///< May construct a runtime Error value.
};

/** One pattern of a case op. */
struct Pattern
{
    bool isCons = false; ///< Constructor pattern vs. integer literal.
    SWord lit = 0;       ///< Literal value (isCons == false).
    Word consId = 0;     ///< Constructor identifier (isCons == true).
    Word fields = 0;     ///< Declared field count of that constructor
                         ///< (0 when the id names nothing; matching
                         ///< pushes the matched object's own count).
    uint32_t body = 0;   ///< Op index of the branch body.
};

/** Sentinel op index: "no op" (constructor decls have no body). */
constexpr uint32_t kNoOp = ~uint32_t(0);

/** One IR op. Fields are valid per kind as annotated. */
struct Op
{
    OpKind kind = OpKind::Result;

    // Let.
    CalleeRef callee;
    uint32_t argsBegin = 0; ///< Index into Module::operands.
    uint32_t nargs = 0;
    uint32_t next = kNoOp;  ///< Op executed after the binding.

    // Case (scrutinee) and Result (yielded value).
    Operand operand{ Src::Imm, 0 };

    // Case.
    uint32_t patBegin = 0; ///< Index into Module::patterns.
    uint32_t patCount = 0;
    uint32_t elseBody = kNoOp;

    // Annotations (every kind).
    uint32_t effects = 0;     ///< kEff* may-effect mask.
    Cycles staticCycles = 0;  ///< TimingModel base cost of the op
                              ///< head (letBase + nargs·letPerArg,
                              ///< caseBase, resultBase). Dynamic
                              ///< costs (alloc, forcing, branch
                              ///< heads) are charged by the
                              ///< evaluator as they occur.
};

/** One lifted declaration. */
struct Func
{
    bool isCons = false;
    Word arity = 0;
    Word numLocals = 0;
    uint32_t body = kNoOp; ///< Entry op index; kNoOp for constructors.
};

/** Identifier metadata, indexed by global function id. Mirrors
 *  LoadedImage::IdInfo: primitives first, then user declarations. */
struct IdEntry
{
    Word arity = 0;
    bool isCons = false;
    bool exists = false;
};

/** A lifted module: one whole program in IR form. */
struct Module
{
    std::vector<Func> funcs; ///< In declaration (identifier) order.
    bool hasEntry = false;
    Word entry = 0;          ///< Declaration index of the entry
                             ///< function (valid when hasEntry).
    size_t imageWords = 0;   ///< Source image size, for the load-
                             ///< cycle ledger (0 when lifted from an
                             ///< AST with no binary provenance).

    std::vector<Op> ops;
    std::vector<Operand> operands; ///< All let argument lists.
    std::vector<Pattern> patterns; ///< All case pattern lists; each
                                   ///< case's block is contiguous.
    std::vector<IdEntry> ids;      ///< Size kFirstUserFuncId + nfuncs.

    /** Immediate-operand values of the entry function's body in the
     *  canonical site order (isa/sites.hh) — the lift-time view of
     *  the sites the symbolic engine treats as program inputs. */
    std::vector<SWord> entryImmValues;

    /** Global id of declaration index i. */
    static Word idOf(size_t i) { return kFirstUserFuncId + Word(i); }
};

} // namespace zarf::ir

#endif // ZARF_IR_IR_HH
