/**
 * @file
 * The reference IR evaluator with a λ-cycle cost ledger.
 *
 * Evaluates a lifted module (ir/lift.hh) by lazy graph reduction
 * over a host-side node heap, charging cycles at exactly the control
 * points the machine's TimingModel charges them — load stream, boot
 * allocation, per-instruction bases, per-argument fetches,
 * allocations, WHNF checks, thunk entries, branch heads, field
 * pushes, primitive setup/operands/ops, update/return traffic, and
 * the deep-force export of the final value. On every image the
 * machine accepts, a correct lift evaluates to the machine's exact
 * outcome, value, I/O trace, and Machine::cycles() figure; the
 * differential oracle (fuzz/oracle.hh, compareIr) enforces this.
 *
 * Deliberate differences from the machine, and why they are sound:
 *   - The node heap is host-allocated and unbounded, so the
 *     evaluator never runs out of memory and never collects; the
 *     machine's cycle ledger excludes GC time by design (it is
 *     accounted separately, outside Machine::cycles()), so the
 *     ledgers still agree exactly. Oracle cases where the machine
 *     OOMs are skipped before IR comparison.
 *   - InvokeGc is therefore an identity with no collection — the
 *     machine charges its collection to the separate GC ledger, so
 *     this too is cycle-exact.
 *   - Export is fuel-bounded (exportFuel / hardStopCycles) instead
 *     of memory-bounded: on the machine a divergent deep force dies
 *     of heap exhaustion, which an unbounded host heap would turn
 *     into a hang. A correct evaluation never reaches either bound.
 */

#ifndef ZARF_IR_EVAL_HH
#define ZARF_IR_EVAL_HH

#include <string>

#include "ir/ir.hh"
#include "machine/timing.hh"
#include "sem/io.hh"
#include "sem/value.hh"

namespace zarf::ir
{

/** Evaluation limits and cost model. */
struct EvalConfig
{
    TimingModel timing{};
    /** Execution budget in λ-cycles after load, exactly like
     *  Machine::advance — a run not Done within it is OutOfFuel. */
    Cycles maxCycles = 1'000'000;
    /** Step bound on the deep-force export phase (which the machine
     *  bounds by heap memory instead). */
    Cycles exportFuel = 1'000'000'000;
    /** When nonzero: fail as OutOfFuel the moment the cycle ledger
     *  exceeds this absolute total. The oracle sets it to the
     *  machine's final cycle count — a correct evaluation ends at
     *  exactly that total and never trips it. */
    Cycles hardStopCycles = 0;
};

/** Outcome of one evaluation. */
struct Outcome
{
    enum class Status
    {
        Done,      ///< Reduced to a value (exported in `value`).
        Stuck,     ///< Semantically undefined state.
        OutOfFuel, ///< maxCycles / exportFuel / hardStop exhausted.
    };

    Status status = Status::Stuck;
    ValuePtr value; ///< Deeply forced result (Done only).
    std::string diagnostic;
    Cycles cycles = 0; ///< Final ledger: load + execution + export.
};

/** Name of an Outcome::Status, for diagnostics. */
const char *outcomeStatusName(Outcome::Status st);

/** Evaluate a module's entry function to completion. */
Outcome evalModule(const Module &m, IoBus &bus,
                   const EvalConfig &config = {});

} // namespace zarf::ir

#endif // ZARF_IR_EVAL_HH
