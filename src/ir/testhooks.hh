/**
 * @file
 * Deliberate-defect hooks for the IR lifting/evaluation pipeline.
 *
 * The compareIr differential evaluator (fuzz/oracle.hh) is itself
 * test infrastructure, so it needs its own mutation-kill evidence:
 * proof that a real lifting or transfer-rule bug would surface as an
 * oracle divergence rather than slipping through. These flags seed
 * such bugs on demand, mirroring machine/testhooks.hh and
 * sym/testhooks.hh. All default to false; production code never sets
 * them. Tests that do must restore them (RAII guard) — they are
 * process-global.
 */

#ifndef ZARF_IR_TESTHOOKS_HH
#define ZARF_IR_TESTHOOKS_HH

namespace zarf::ir::testhooks
{

/** Drop the per-word payload charge from every IR allocation
 *  (app/cons/error objects charge only the header). A pure
 *  cost-ledger defect: values, I/O, and outcomes stay correct while
 *  the λ-cycle ledger under-counts on every program — including the
 *  boot-time entry application — so a bounded oracle campaign with
 *  compareIr must flag it on the first executed case. */
extern bool irBrokenAllocCharge;

/** Push constructor-pattern fields in reverse order on a case match.
 *  A semantic transfer-rule defect: any program that matches a
 *  constructor of two or more fields and then reads them binds the
 *  wrong values, diverging from the machine in value or outcome. */
extern bool irBrokenCaseFieldOrder;

} // namespace zarf::ir::testhooks

#endif // ZARF_IR_TESTHOOKS_HH
