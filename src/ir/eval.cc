/**
 * @file
 * Reference evaluation of lifted modules.
 *
 * This is a host-heap mirror of the machine's control FSM
 * (machine/machine_impl.hh): the same modes (evaluate / execute /
 * deliver), the same frame discipline (update, case, primitive
 * argument, leftover application), and — the load-bearing property —
 * the same cycle charge at every state visit, in the same order,
 * including the partial charges a mid-step fault leaves behind. Any
 * edit here that changes a charge point must be validated against
 * the machine via the compareIr oracle sweep (`ctest -L ir`).
 */

#include "ir/eval.hh"

#include <utility>

#include "ir/testhooks.hh"
#include "isa/prims.hh"

namespace zarf::ir
{
namespace
{

// Value words: bit 32 tags a node reference (low bits: node index);
// an untagged word carries the 32-bit pattern of a machine integer.
constexpr uint64_t kRefBit = 1ull << 32;

inline uint64_t mkInt(SWord v) { return uint64_t(uint32_t(v)); }
inline uint64_t mkRef(size_t i) { return kRefBit | uint64_t(uint32_t(i)); }
inline bool isRef(uint64_t w) { return (w & kRefBit) != 0; }
inline SWord intOf(uint64_t w) { return SWord(uint32_t(w)); }
inline size_t idxOf(uint64_t w) { return size_t(uint32_t(w)); }

/** Heap node kinds — the machine's object kinds minus forwarding
 *  (no GC here). */
enum class NodeKind : uint8_t
{
    App,       ///< fn + applied args; WHNF iff args < arity(fn).
    AppV,      ///< Deferred application: payload[0] is the callee
               ///< value, the rest are arguments. Always a thunk.
    Cons,      ///< Saturated constructor; fields in payload.
    Ind,       ///< Indirection to payload[0].
    Blackhole, ///< A thunk under evaluation.
};

struct Node
{
    NodeKind kind;
    Word fn = 0;
    std::vector<uint64_t> payload;
};

enum class FrameKind : uint8_t { Update, Case, PrimArgs, Apply };

/** One continuation frame. Field use per kind:
 *  Update   — target;
 *  Case     — funcId/pc/args/locals (the suspended activation);
 *  PrimArgs — prim/args (operands)/nextArg/collected;
 *  Apply    — args (the leftover arguments). */
struct Frame
{
    FrameKind kind;
    size_t target = 0;
    Word funcId = 0;
    uint32_t pc = 0;
    std::vector<uint64_t> args;
    std::vector<uint64_t> locals;
    Word prim = 0;
    uint32_t nextArg = 0;
    std::vector<SWord> collected;
};

enum class Mode : uint8_t { EvalVal, Exec, Deliver };
enum class St : uint8_t { Running, Done, Stuck, Fuel };

class Evaluator
{
  public:
    Evaluator(const Module &mod, IoBus &bus, const EvalConfig &cfg)
        : m(mod), bus(bus), cfg(cfg), t(cfg.timing)
    {
        // The modelled load stream: one cycle per image word.
        total = Cycles(m.imageWords) * t.loadWord;
        if (!m.hasEntry) {
            fail("module has no entry function");
            return;
        }
        // Boot: apply the entry function to zero arguments.
        vreg = allocApp(Module::idOf(m.entry), {});
        mode = Mode::EvalVal;
    }

    Outcome
    run()
    {
        advance(cfg.maxCycles);
        Outcome out;
        out.cycles = total;
        if (st == St::Running) {
            out.status = Outcome::Status::OutOfFuel;
            out.diagnostic = "cycle budget exhausted";
            return out;
        }
        if (st != St::Done) {
            out.status = st == St::Fuel ? Outcome::Status::OutOfFuel
                                        : Outcome::Status::Stuck;
            out.diagnostic = diag;
            return out;
        }
        // Deep-force and export the final value. Charged normally —
        // the machine's cycles() includes its export forcing too.
        st = St::Running;
        ValuePtr v = exportValue(vreg, 0);
        out.cycles = total;
        if (!v) {
            out.status = st == St::Fuel ? Outcome::Status::OutOfFuel
                                        : Outcome::Status::Stuck;
            out.diagnostic = diag;
            return out;
        }
        out.status = Outcome::Status::Done;
        out.value = std::move(v);
        return out;
    }

  private:
    // ---- Infrastructure --------------------------------------------

    void charge(Cycles c) { total += c; }

    void
    fail(std::string why)
    {
        st = St::Stuck;
        diag = std::move(why);
    }

    uint64_t
    chase(uint64_t w) const
    {
        while (isRef(w)) {
            const Node &n = heap[idxOf(w)];
            if (n.kind != NodeKind::Ind)
                break;
            w = n.payload[0];
        }
        return w;
    }

    Word
    arityOf(Word fn) const
    {
        return fn < m.ids.size() && m.ids[fn].exists ? m.ids[fn].arity
                                                     : 0;
    }

    bool
    isConsId(Word fn) const
    {
        return fn < m.ids.size() && m.ids[fn].exists && m.ids[fn].isCons;
    }

    bool
    isWhnf(const Node &n) const
    {
        if (n.kind == NodeKind::Cons)
            return true;
        if (n.kind == NodeKind::App)
            return n.payload.size() < arityOf(n.fn);
        return false;
    }

    // ---- Allocation (header + per-word charges; empty payloads
    // ---- still occupy — and charge — one padding word) -------------

    uint64_t
    allocNode(NodeKind k, Word fn, std::vector<uint64_t> payload)
    {
        size_t len = payload.empty() ? 1 : payload.size();
        charge(t.allocHeader);
        if (!testhooks::irBrokenAllocCharge)
            charge(Cycles(len) * t.letPerArg);
        heap.push_back(Node{ k, fn, std::move(payload) });
        return mkRef(heap.size() - 1);
    }

    uint64_t
    allocApp(Word fn, std::vector<uint64_t> args)
    {
        return allocNode(NodeKind::App, fn, std::move(args));
    }

    uint64_t
    allocCons(Word fn, std::vector<uint64_t> fields)
    {
        return allocNode(NodeKind::Cons, fn, std::move(fields));
    }

    uint64_t
    allocAppV(uint64_t callee, const std::vector<uint64_t> &args)
    {
        std::vector<uint64_t> p;
        p.reserve(1 + args.size());
        p.push_back(callee);
        p.insert(p.end(), args.begin(), args.end());
        return allocNode(NodeKind::AppV, 0, std::move(p));
    }

    uint64_t
    allocError(SWord code)
    {
        return allocCons(static_cast<Word>(Prim::Error), { mkInt(code) });
    }

    // ---- The step loop ---------------------------------------------

    void
    advance(Cycles budget)
    {
        Cycles target = total + budget;
        while (st == St::Running && total < target)
            stepOnce();
    }

    void
    stepOnce()
    {
        switch (mode) {
          case Mode::EvalVal:
            stepEval();
            break;
          case Mode::Exec:
            stepExec();
            break;
          case Mode::Deliver:
            if (conts.empty()) {
                // The zero-charge final step, like the machine's.
                st = St::Done;
                return;
            }
            stepDeliver();
            break;
        }
    }

    // ---- EvalVal: force the value register to WHNF -----------------

    void
    stepEval()
    {
        uint64_t v = chase(vreg);
        if (!isRef(v)) {
            vreg = v;
            mode = Mode::Deliver;
            return;
        }
        charge(t.whnfCheck);
        size_t at = idxOf(v);
        if (heap[at].kind == NodeKind::Blackhole) {
            fail("re-entered a thunk under evaluation");
            return;
        }
        if (isWhnf(heap[at])) {
            vreg = v;
            mode = Mode::Deliver;
            return;
        }

        // A thunk: collapse stacked update frames onto it, push a
        // fresh one, and enter.
        while (!conts.empty() &&
               conts.back().kind == FrameKind::Update) {
            Node &tgt = heap[conts.back().target];
            tgt.kind = NodeKind::Ind;
            tgt.fn = 0;
            tgt.payload.assign(1, v);
            conts.pop_back();
            charge(t.collapseUpdate);
        }
        Frame up;
        up.kind = FrameKind::Update;
        up.target = at;
        conts.push_back(std::move(up));
        charge(t.enterThunk);

        Node &n = heap[at];
        if (n.kind == NodeKind::AppV) {
            uint64_t callee = n.payload[0];
            Frame ap;
            ap.kind = FrameKind::Apply;
            ap.args.assign(n.payload.begin() + 1, n.payload.end());
            n.kind = NodeKind::Blackhole;
            n.payload.clear();
            conts.push_back(std::move(ap));
            vreg = callee;
            return; // stay EvalVal
        }

        // A saturated (or over-applied) application.
        std::vector<uint64_t> args = std::move(n.payload);
        Word fn = n.fn;
        n.kind = NodeKind::Blackhole;
        n.payload.clear();

        if (isConsId(fn)) {
            vreg = allocError(kErrArity);
            return;
        }
        Word arity = arityOf(fn);
        if (args.size() > arity) {
            Frame ap;
            ap.kind = FrameKind::Apply;
            ap.args.assign(args.begin() + ptrdiff_t(arity), args.end());
            conts.push_back(std::move(ap));
            args.resize(arity);
            charge(t.applyExtra);
        }
        if (isPrimId(fn)) {
            beginPrim(fn, std::move(args));
            return;
        }
        size_t fi = fn - kFirstUserFuncId;
        if (fi >= m.funcs.size() || m.funcs[fi].body == kNoOp) {
            fail("entered an unknown function identifier");
            return;
        }
        charge(t.callSetup);
        act.funcId = fn;
        act.args = std::move(args);
        act.locals.clear();
        act.pc = m.funcs[fi].body;
        mode = Mode::Exec;
    }

    void
    beginPrim(Word fn, std::vector<uint64_t> args)
    {
        charge(t.primSetup);
        if (args.empty()) {
            fail("zero-arity primitive application");
            return;
        }
        Frame pf;
        pf.kind = FrameKind::PrimArgs;
        pf.prim = fn;
        pf.args = std::move(args);
        conts.push_back(std::move(pf));
        vreg = conts.back().args[0];
        mode = Mode::EvalVal;
    }

    // ---- Exec: run instruction ops ---------------------------------

    void
    stepExec()
    {
        if (act.pc >= m.ops.size()) {
            fail("program counter ran off the image");
            return;
        }
        const Op &op = m.ops[act.pc];
        switch (op.kind) {
          case OpKind::Let:
            execLet(op);
            break;
          case OpKind::Case:
            execCase(op);
            break;
          case OpKind::Result:
            execResult(op);
            break;
        }
    }

    bool
    resolve(const Operand &o, uint64_t &out)
    {
        switch (o.src) {
          case Src::Imm:
            out = mkInt(o.val);
            return true;
          case Src::Local:
            if (size_t(Word(o.val)) >= act.locals.size()) {
                fail("local operand index out of range");
                return false;
            }
            out = act.locals[size_t(Word(o.val))];
            return true;
          case Src::Arg:
            if (size_t(Word(o.val)) >= act.args.size()) {
                fail("argument operand index out of range");
                return false;
            }
            out = act.args[size_t(Word(o.val))];
            return true;
        }
        fail("bad operand source");
        return false;
    }

    void
    execLet(const Op &op)
    {
        charge(t.letBase);
        // Per-argument fetch charges land before each resolve, so a
        // mid-list fault leaves the machine's exact partial charge.
        letScratch.clear();
        for (uint32_t i = 0; i < op.nargs; ++i) {
            charge(t.letPerArg);
            uint64_t v;
            if (!resolve(m.operands[op.argsBegin + i], v))
                return;
            letScratch.push_back(v);
        }

        uint64_t bound = 0;
        if (op.callee.kind == CalleeKind::Func) {
            if (op.callee.cls == CalleeClass::Unknown) {
                fail("let names an unknown function identifier");
                return;
            }
            if (op.callee.cls == CalleeClass::Cons) {
                if (letScratch.size() == op.callee.arity)
                    bound = allocCons(op.callee.id, letScratch);
                else if (letScratch.size() > op.callee.arity)
                    bound = allocError(kErrArity);
                else
                    bound = allocApp(op.callee.id, letScratch);
            } else {
                // Primitives and user functions build an application
                // object either way; over-application is resolved at
                // force time.
                bound = allocApp(op.callee.id, letScratch);
            }
        } else {
            const std::vector<uint64_t> &slots =
                op.callee.kind == CalleeKind::Local ? act.locals
                                                    : act.args;
            if (op.callee.id >= slots.size()) {
                fail("callee slot index out of range");
                return;
            }
            uint64_t calleeVal = slots[op.callee.id];
            if (letScratch.empty()) {
                charge(t.collapseUpdate); // the alias-binding state
                bound = calleeVal;
            } else if (!bindApply(calleeVal, bound)) {
                return;
            }
        }
        act.locals.push_back(bound);
        act.pc = op.next;
    }

    /** Apply a closure-slot callee to letScratch. */
    bool
    bindApply(uint64_t calleeWord, uint64_t &bound)
    {
        uint64_t v = chase(calleeWord);
        if (!isRef(v)) {
            bound = allocError(kErrBadApply);
            return true;
        }
        const Node &n = heap[idxOf(v)];
        if (n.kind == NodeKind::Cons) {
            if (n.fn == static_cast<Word>(Prim::Error))
                bound = v; // errors flow through application
            else
                bound = allocError(kErrArity);
            return true;
        }
        if (n.kind == NodeKind::App &&
            n.payload.size() < arityOf(n.fn)) {
            // Copy-and-extend a partial application.
            size_t have = n.payload.size();
            charge(Cycles(have) * t.copyPartialPerWord);
            Word fn = n.fn;
            std::vector<uint64_t> args = n.payload;
            args.insert(args.end(), letScratch.begin(),
                        letScratch.end());
            bound = finishApply(fn, std::move(args));
            return true;
        }
        // An unevaluated callee (thunk) — defer: build an AppV over
        // the *original* word so sharing and update order match.
        bound = allocAppV(calleeWord, letScratch);
        return true;
    }

    uint64_t
    finishApply(Word fn, std::vector<uint64_t> args)
    {
        if (isConsId(fn)) {
            Word arity = arityOf(fn);
            if (args.size() == arity)
                return allocCons(fn, std::move(args));
            if (args.size() > arity)
                return allocError(kErrArity);
        }
        return allocApp(fn, std::move(args));
    }

    void
    execCase(const Op &op)
    {
        charge(t.caseBase);
        uint64_t scrut;
        if (!resolve(op.operand, scrut))
            return;
        Frame cf;
        cf.kind = FrameKind::Case;
        cf.funcId = act.funcId;
        cf.pc = act.pc;
        cf.args = std::move(act.args);
        cf.locals = std::move(act.locals);
        conts.push_back(std::move(cf));
        vreg = scrut;
        mode = Mode::EvalVal;
    }

    void
    execResult(const Op &op)
    {
        charge(t.resultBase);
        uint64_t v;
        if (!resolve(op.operand, v))
            return;
        vreg = v;
        mode = Mode::EvalVal;
    }

    // ---- Deliver: consume a WHNF value -----------------------------

    void
    stepDeliver()
    {
        Frame &f = conts.back();
        switch (f.kind) {
          case FrameKind::Update: {
            Node &tgt = heap[f.target];
            tgt.kind = NodeKind::Ind;
            tgt.fn = 0;
            tgt.payload.assign(1, vreg);
            conts.pop_back();
            charge(t.update);
            break; // stay Deliver
          }
          case FrameKind::Case:
            act.funcId = f.funcId;
            act.pc = f.pc;
            act.args = std::move(f.args);
            act.locals = std::move(f.locals);
            conts.pop_back();
            charge(t.returnToCase);
            resumeCase();
            break;
          case FrameKind::PrimArgs:
            resumePrim();
            break;
          case FrameKind::Apply:
            resumeApply();
            break;
        }
    }

    void
    resumeCase()
    {
        const Op &op = m.ops[act.pc];
        uint64_t v = chase(vreg);
        for (uint32_t i = 0; i < op.patCount; ++i) {
            const Pattern &p = m.patterns[op.patBegin + i];
            charge(t.branchHead); // one cycle per visited head
            if (p.isCons) {
                if (!isRef(v))
                    continue;
                const Node &n = heap[idxOf(v)];
                if (n.kind != NodeKind::Cons || n.fn != p.consId)
                    continue;
                size_t nf = n.payload.size();
                for (size_t k = 0; k < nf; ++k) {
                    size_t src = testhooks::irBrokenCaseFieldOrder
                                     ? nf - 1 - k
                                     : k;
                    act.locals.push_back(n.payload[src]);
                    charge(t.fieldPush);
                }
                act.pc = p.body;
                mode = Mode::Exec;
                return;
            }
            if (!isRef(v) && intOf(v) == p.lit) {
                act.pc = p.body;
                mode = Mode::Exec;
                return;
            }
        }
        act.pc = op.elseBody; // the else branch costs no extra head
        mode = Mode::Exec;
    }

    void
    resumePrim()
    {
        Frame &f = conts.back();
        charge(t.primPerArg); // fetch + integer check, every operand
        uint64_t v = chase(vreg);
        if (isRef(v)) {
            // A non-integer operand: errors pass through, anything
            // else becomes the primitive's domain error.
            const Node &n = heap[idxOf(v)];
            bool isErr = n.kind == NodeKind::Cons &&
                         n.fn == static_cast<Word>(Prim::Error);
            Word prim = f.prim;
            conts.pop_back();
            if (isErr)
                vreg = v;
            else
                vreg = allocError(
                    prim == static_cast<Word>(Prim::GetInt) ||
                            prim == static_cast<Word>(Prim::PutInt)
                        ? kErrIoNotInt
                        : kErrBadApply);
            mode = Mode::Deliver;
            return;
        }
        f.collected.push_back(intOf(v));
        ++f.nextArg;
        if (f.nextArg < f.args.size()) {
            vreg = f.args[f.nextArg];
            mode = Mode::EvalVal;
            return;
        }

        // All operands collected: run the primitive.
        Word prim = f.prim;
        std::vector<SWord> collected = std::move(f.collected);
        conts.pop_back();
        switch (static_cast<Prim>(prim)) {
          case Prim::GetInt:
            charge(t.ioOp);
            vreg = mkInt(wrapInt31(bus.getInt(collected[0])));
            break;
          case Prim::PutInt:
            charge(t.ioOp);
            bus.putInt(collected[0], collected[1]);
            vreg = mkInt(collected[1]);
            break;
          case Prim::InvokeGc:
            // The machine collects here on its separate GC ledger;
            // cycles() is untouched either way, so so is `total`.
            vreg = mkInt(collected[0]);
            break;
          default: {
            charge(t.aluOp);
            PrimResult r = evalAlu(static_cast<Prim>(prim), collected);
            vreg = r.ok ? mkInt(r.value) : allocError(r.errCode);
            break;
          }
        }
        mode = Mode::Deliver;
    }

    void
    resumeApply()
    {
        std::vector<uint64_t> extra = std::move(conts.back().args);
        conts.pop_back();
        charge(t.applyExtra);
        uint64_t v = chase(vreg);
        if (!isRef(v)) {
            // Errors are already WHNF: deliver without re-checking.
            vreg = allocError(kErrBadApply);
            mode = Mode::Deliver;
            return;
        }
        const Node &n = heap[idxOf(v)];
        if (n.kind == NodeKind::Cons) {
            if (n.fn == static_cast<Word>(Prim::Error))
                vreg = v;
            else
                vreg = allocError(kErrArity);
            mode = Mode::Deliver;
            return;
        }
        if (n.kind == NodeKind::App &&
            n.payload.size() < arityOf(n.fn)) {
            size_t have = n.payload.size();
            charge(Cycles(have) * t.copyPartialPerWord);
            Word fn = n.fn;
            std::vector<uint64_t> args = n.payload;
            args.insert(args.end(), extra.begin(), extra.end());
            vreg = finishApply(fn, std::move(args));
            mode = Mode::EvalVal;
            return;
        }
        // Delivered values are WHNF; anything else is unreachable.
        fail("apply resumed on an unevaluated value");
    }

    // ---- Export: deep-force the final value for the host -----------

    ValuePtr
    exportValue(uint64_t w, int depth)
    {
        if (depth > 512) {
            fail("deep-force recursion limit exceeded");
            return nullptr;
        }
        if (!forceForExport(w))
            return nullptr;
        uint64_t v = chase(vreg);
        if (!isRef(v))
            return Value::makeInt(intOf(v));
        // Copy the node out: the recursion below reallocates heap.
        Word fn = heap[idxOf(v)].fn;
        bool cons = heap[idxOf(v)].kind == NodeKind::Cons;
        std::vector<uint64_t> payload = heap[idxOf(v)].payload;
        std::vector<ValuePtr> items;
        items.reserve(payload.size());
        for (uint64_t item : payload) {
            ValuePtr iv = exportValue(item, depth + 1);
            if (!iv)
                return nullptr;
            items.push_back(std::move(iv));
        }
        return cons ? Value::makeCons(fn, std::move(items))
                    : Value::makeClosure(fn, std::move(items));
    }

    /** Force one value to WHNF with the normal (charged) step loop.
     *  Bounded by exportFuel/hardStopCycles where the machine is
     *  bounded by its heap instead. */
    bool
    forceForExport(uint64_t w)
    {
        vreg = w;
        mode = Mode::EvalVal;
        size_t base = conts.size();
        while (true) {
            if (st != St::Running)
                return false;
            if (mode == Mode::Deliver && conts.size() == base)
                return true;
            if (exportSteps >= cfg.exportFuel ||
                (cfg.hardStopCycles && total > cfg.hardStopCycles)) {
                st = St::Fuel;
                diag = "export fuel exhausted";
                return false;
            }
            ++exportSteps;
            stepOnce();
        }
    }

    // ---- State -----------------------------------------------------

    struct Activation
    {
        Word funcId = 0;
        uint32_t pc = 0;
        std::vector<uint64_t> args;
        std::vector<uint64_t> locals;
    };

    const Module &m;
    IoBus &bus;
    const EvalConfig &cfg;
    const TimingModel &t;

    std::vector<Node> heap;
    std::vector<Frame> conts;
    Activation act;
    uint64_t vreg = 0;
    Mode mode = Mode::EvalVal;
    St st = St::Running;
    std::string diag;
    Cycles total = 0;
    Cycles exportSteps = 0;
    std::vector<uint64_t> letScratch;
};

} // namespace

const char *
outcomeStatusName(Outcome::Status st)
{
    switch (st) {
      case Outcome::Status::Done:
        return "Done";
      case Outcome::Status::Stuck:
        return "Stuck";
      case Outcome::Status::OutOfFuel:
        return "OutOfFuel";
    }
    return "?";
}

Outcome
evalModule(const Module &m, IoBus &bus, const EvalConfig &config)
{
    Evaluator ev(m, bus, config);
    return ev.run();
}

} // namespace zarf::ir
