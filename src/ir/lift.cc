#include "ir/lift.hh"

#include "isa/prims.hh"
#include "isa/sites.hh"
#include "machine/loaded_image.hh"

namespace zarf::ir
{
namespace
{

/** Classify a global function identifier against the id table. */
void
classify(CalleeRef &c, const Module &m)
{
    if (c.id < m.ids.size() && m.ids[c.id].exists) {
        const IdEntry &e = m.ids[c.id];
        c.cls = e.isCons ? CalleeClass::Cons
                         : (isPrimId(c.id) ? CalleeClass::Prim
                                           : CalleeClass::Func);
        c.arity = e.arity;
    } else {
        // The decoder accepts wide ids on purpose; the fault is
        // dynamic (machine: "let names an unknown function
        // identifier"), so the IR carries it rather than rejecting.
        c.cls = CalleeClass::Unknown;
        c.arity = 0;
    }
}

uint32_t
effectsOfLet(const CalleeRef &c, uint32_t nargs)
{
    uint32_t eff = 0;
    if (c.kind != CalleeKind::Func) {
        // Closure-slot callee: a zero-argument let is a pure alias
        // binding; with arguments it copies/extends an application
        // object and may fault (bad apply, constructor over-apply).
        if (nargs > 0)
            eff |= kEffAlloc | kEffCall | kEffError;
        return eff;
    }
    eff |= kEffAlloc; // every Func-callee let materializes an object
    switch (c.cls) {
      case CalleeClass::Unknown:
        eff |= kEffError;
        break;
      case CalleeClass::Cons:
        if (nargs > c.arity)
            eff |= kEffError;
        break;
      case CalleeClass::Prim:
        eff |= kEffCall | kEffError;
        if (c.id == static_cast<Word>(Prim::GetInt) ||
            c.id == static_cast<Word>(Prim::PutInt))
            eff |= kEffIo;
        break;
      case CalleeClass::Func:
        eff |= kEffCall;
        break;
    }
    return eff;
}

/** Recursive linearizer; returns the op index of `e`. */
uint32_t
liftExpr(const Expr &e, Module &m, const TimingModel &t)
{
    uint32_t at = uint32_t(m.ops.size());
    m.ops.emplace_back();

    if (e.isLet()) {
        const Let &l = e.asLet();
        Op op;
        op.kind = OpKind::Let;
        op.callee.kind = l.callee.kind;
        op.callee.id = l.callee.id;
        if (l.callee.kind == CalleeKind::Func)
            classify(op.callee, m);
        op.argsBegin = uint32_t(m.operands.size());
        op.nargs = uint32_t(l.args.size());
        for (const Operand &a : l.args)
            m.operands.push_back(a);
        op.effects = effectsOfLet(op.callee, op.nargs);
        op.staticCycles = t.letBase + op.nargs * t.letPerArg;
        m.ops[at] = op;
        m.ops[at].next = liftExpr(*l.body, m, t);
        return at;
    }

    if (e.isCase()) {
        const Case &c = e.asCase();
        Op op;
        op.kind = OpKind::Case;
        op.operand = c.scrut;
        op.patBegin = uint32_t(m.patterns.size());
        op.patCount = uint32_t(c.branches.size());
        op.effects = kEffForce | kEffCall | kEffIo | kEffError;
        op.staticCycles = t.caseBase;
        m.ops[at] = op;
        // Reserve the whole contiguous pattern block before lifting
        // any branch body — nested cases append their own blocks.
        for (const CaseBranch &br : c.branches) {
            Pattern p;
            p.isCons = br.isCons;
            p.lit = br.lit;
            p.consId = br.consId;
            if (br.isCons && br.consId < m.ids.size() &&
                m.ids[br.consId].exists)
                p.fields = m.ids[br.consId].arity;
            m.patterns.push_back(p);
        }
        for (uint32_t i = 0; i < op.patCount; ++i) {
            uint32_t body = liftExpr(*c.branches[i].body, m, t);
            m.patterns[op.patBegin + i].body = body;
        }
        m.ops[at].elseBody = liftExpr(*c.elseBody, m, t);
        return at;
    }

    Op op;
    op.kind = OpKind::Result;
    op.operand = e.asResult().value;
    op.staticCycles = t.resultBase;
    m.ops[at] = op;
    return at;
}

} // namespace

LiftResult
liftProgram(const Program &program, size_t imageWords)
{
    LiftResult r;
    r.ok = true;
    Module &m = r.module;
    m.imageWords = imageWords;

    // Identifier table: primitives, then user declarations — the
    // same split LoadedImage::IdInfo resolves for the machine.
    m.ids.assign(kFirstUserFuncId + program.decls.size(), IdEntry{});
    for (const PrimInfo &p : primTable()) {
        IdEntry &e = m.ids[static_cast<Word>(p.id)];
        e.arity = p.arity;
        e.isCons = p.isConstructor;
        e.exists = true;
    }
    for (size_t i = 0; i < program.decls.size(); ++i) {
        IdEntry &e = m.ids[kFirstUserFuncId + i];
        e.arity = program.decls[i].arity;
        e.isCons = program.decls[i].isCons;
        e.exists = true;
    }

    TimingModel t{}; // static annotations use the default model
    m.funcs.reserve(program.decls.size());
    for (const Decl &d : program.decls) {
        Func f;
        f.isCons = d.isCons;
        f.arity = d.arity;
        f.numLocals = d.numLocals;
        if (!d.isCons && d.body)
            f.body = liftExpr(*d.body, m, t);
        m.funcs.push_back(f);
    }

    int entry = program.entryIndex();
    if (entry >= 0) {
        m.hasEntry = true;
        m.entry = Word(entry);
        const Decl &ed = program.decls[size_t(entry)];
        if (ed.body) {
            forEachOperandSite(*ed.body, [&](const Operand &op) {
                if (op.src == Src::Imm)
                    m.entryImmValues.push_back(op.val);
            });
        }
    }
    return r;
}

LiftResult
liftProgram(Program &program, size_t imageWords)
{
    LiftResult r =
        liftProgram(static_cast<const Program &>(program), imageWords);
    int entry = program.entryIndex();
    if (entry >= 0 && program.decls[size_t(entry)].body) {
        forEachOperandSite(*program.decls[size_t(entry)].body,
                           [&](Operand &op) {
                               if (op.src == Src::Imm)
                                   r.entrySitePtrs.push_back(&op);
                           });
    }
    return r;
}

LiftResult
liftLoaded(const LoadedImage &li)
{
    LiftResult r;
    if (!li.headerOk) {
        r.error = "header: " + li.headerError;
        return r;
    }
    if (!li.hasPredecode) {
        r.error = "predecode: artifact built without predecode";
        return r;
    }
    if (!li.pre.ok) {
        r.error = "predecode: " + li.pre.error;
        return r;
    }
    DecodeResult d = decodeProgram(li.image);
    if (!d.ok) {
        r.error = "decode: " + d.error;
        return r;
    }
    r = liftProgram(static_cast<const Program &>(d.program),
                    li.image.size());
    if (!r.module.hasEntry || r.module.entry != li.entry) {
        // Unreachable when headerOk (the loader requires a zero-arg
        // entry and computes it the same way); kept as a hard gate
        // so a future drift fails loudly instead of mislifting.
        r.ok = false;
        r.error = "lift: entry disagrees with the load artifact";
    }
    return r;
}

LiftResult
liftImage(const Image &image)
{
    return liftLoaded(*LoadedImage::load(image, true));
}

} // namespace zarf::ir
