/**
 * @file
 * Synthetic electrocardiogram generation.
 *
 * The paper's prototype consumes raw ECG sampled at 200 Hz (Sec. 4.2,
 * Fig. 5). We have no patient data, so this module synthesizes
 * morphologically realistic signals: each beat is a sum of five
 * Gaussian waves (P, Q, R, S, T) positioned relative to the R peak —
 * the same modelling approach as the well-known ECGSYN generator —
 * plus optional Gaussian noise and baseline wander. Beat spacing
 * follows a programmable heart rate, so normal sinus rhythm and
 * ventricular tachycardia episodes can be scripted precisely, with
 * ground-truth R-peak annotations kept for evaluating the detector.
 *
 * Heart models close the loop with the ICD: a ScriptedHeart follows
 * a fixed rate schedule; a ResponsiveHeart enters VT and reverts to
 * sinus rhythm once it has received a full anti-tachycardia pacing
 * burst, which lets end-to-end tests observe a successful therapy.
 */

#ifndef ZARF_ECG_SYNTH_HH
#define ZARF_ECG_SYNTH_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "support/random.hh"
#include "support/types.hh"

namespace zarf::ecg
{

/** Samples per second (the paper's rate). */
constexpr int kSampleHz = 200;
/** Milliseconds per sample. */
constexpr int kSampleMs = 1000 / kSampleHz;

/** One wave of the PQRST complex (times relative to the R peak). */
struct Wave
{
    double ampl;     ///< Peak amplitude in ADC counts.
    double centerMs; ///< Center offset from the R peak.
    double widthMs;  ///< Gaussian sigma.
};

/** Morphology and noise parameters. */
struct EcgParams
{
    std::vector<Wave> waves = {
        { 25.0, -180.0, 25.0 },  // P
        { -30.0, -25.0, 6.0 },   // Q
        { 150.0, 0.0, 8.0 },     // R
        { -45.0, 30.0, 7.0 },    // S
        { 40.0, 220.0, 40.0 },   // T
    };
    double noiseSigma = 2.0;
    double baselineAmpl = 4.0;   ///< Respiration wander amplitude.
    double baselineHz = 0.25;
    /** During VT the complex widens and loses P/T structure; this
     *  morphs wave shape as rate rises past 150 bpm. */
    bool vtMorphology = true;
};

/** Streaming ECG synthesizer with ground-truth annotations. */
class EcgSynth
{
  public:
    explicit EcgSynth(uint64_t seed = 1, EcgParams params = {});

    /** Set the instantaneous heart rate for subsequent beats. */
    void setBpm(double bpm);
    double bpm() const { return bpmNow; }

    /** Produce the next 5 ms sample. */
    SWord nextSample();

    /** Index of the next sample nextSample() will return. */
    uint64_t sampleIndex() const { return n; }

    /** Ground-truth R-peak sample indices generated so far. */
    const std::vector<uint64_t> &rPeaks() const { return annotations; }

  private:
    void scheduleBeats(double untilMs);

    EcgParams params;
    Rng rng;
    double bpmNow = 75.0;
    uint64_t n = 0;
    std::deque<double> beatTimesMs; ///< Scheduled R-peak times.
    std::vector<uint64_t> annotations;
    double lastScheduledMs = 0.0;
};

/** Abstract heart presented to the two-layer system. */
class Heart
{
  public:
    virtual ~Heart() = default;
    /** The next 200 Hz sample. */
    virtual SWord nextSample() = 0;
    /** The ICD delivered an output (0 none, 1 pulse, 2 first pulse
     *  of a therapy burst). */
    virtual void onShock(SWord) {}
    /** Ground truth for evaluation. */
    virtual const std::vector<uint64_t> &rPeaks() const = 0;
    /** Deep-copy the heart mid-stream: the clone produces the exact
     *  sample sequence the original would have from here on (system
     *  snapshot/fork, docs/PERF.md). Null when the concrete heart
     *  does not support cloning. */
    virtual std::unique_ptr<Heart> clone() const { return nullptr; }
};

/** A heart following a fixed (seconds, bpm) schedule. */
class ScriptedHeart : public Heart
{
  public:
    struct Segment
    {
        double seconds;
        double bpm;
    };

    ScriptedHeart(std::vector<Segment> schedule, uint64_t seed = 1,
                  EcgParams params = {});

    SWord nextSample() override;
    const std::vector<uint64_t> &rPeaks() const override;

    std::unique_ptr<Heart>
    clone() const override
    {
        return std::make_unique<ScriptedHeart>(*this);
    }

    /** True once the schedule has been exhausted (rate holds). */
    bool scheduleDone() const { return seg >= schedule.size(); }

  private:
    std::vector<Segment> schedule;
    size_t seg = 0;
    double msIntoSeg = 0.0;
    EcgSynth synth;
};

/**
 * A heart that spontaneously enters VT and converts back to sinus
 * rhythm after receiving a complete pacing burst.
 */
class ResponsiveHeart : public Heart
{
  public:
    /**
     * @param onsetSeconds when VT begins
     * @param sinusBpm baseline rate
     * @param vtBpm tachycardia rate
     * @param pulsesToConvert pacing pulses needed to convert
     */
    ResponsiveHeart(double onsetSeconds, double sinusBpm = 75,
                    double vtBpm = 190, int pulsesToConvert = 8,
                    uint64_t seed = 1, EcgParams params = {});

    SWord nextSample() override;
    void onShock(SWord v) override;
    const std::vector<uint64_t> &rPeaks() const override;

    std::unique_ptr<Heart>
    clone() const override
    {
        return std::make_unique<ResponsiveHeart>(*this);
    }

    bool inVt() const { return vtActive; }
    int pulsesReceived() const { return pulses; }
    /** Sample index at which conversion happened (0 if never). */
    uint64_t convertedAt() const { return convertedSample; }

  private:
    double onsetSeconds;
    double sinusBpm;
    double vtBpm;
    int pulsesToConvert;
    bool vtActive = false;
    bool vtStarted = false;
    int pulses = 0;
    uint64_t convertedSample = 0;
    EcgSynth synth;
};

} // namespace zarf::ecg

#endif // ZARF_ECG_SYNTH_HH
