#include "ecg/synth.hh"

#include <cmath>

namespace zarf::ecg
{

EcgSynth::EcgSynth(uint64_t seed, EcgParams params)
    : params(std::move(params)), rng(seed)
{
    beatTimesMs.push_back(400.0); // first beat
    lastScheduledMs = 400.0;
}

void
EcgSynth::setBpm(double bpm)
{
    if (bpm < 20.0)
        bpm = 20.0;
    if (bpm > 300.0)
        bpm = 300.0;
    bpmNow = bpm;
}

void
EcgSynth::scheduleBeats(double untilMs)
{
    while (lastScheduledMs < untilMs) {
        double rr = 60000.0 / bpmNow;
        // Small physiological variability (~2%).
        rr *= 1.0 + 0.02 * rng.gaussian(1.0);
        if (rr < 200.0)
            rr = 200.0;
        lastScheduledMs += rr;
        beatTimesMs.push_back(lastScheduledMs);
    }
}

SWord
EcgSynth::nextSample()
{
    double tMs = double(n) * kSampleMs;
    // Beats must be scheduled well past t so the P wave of the next
    // beat (which precedes its R peak) contributes.
    scheduleBeats(tMs + 600.0);

    // Record annotations and drop beats too old to matter.
    while (beatTimesMs.size() > 1 && beatTimesMs.front() < tMs - 600.0)
        beatTimesMs.pop_front();

    double y = 0.0;
    for (double beat : beatTimesMs) {
        double dt = tMs - beat;
        if (dt < -600.0)
            break;
        if (dt > 600.0)
            continue;
        // Annotate the beat when we pass its R peak.
        if (dt >= 0.0 && dt < kSampleMs) {
            if (annotations.empty() ||
                annotations.back() != n) {
                annotations.push_back(n);
            }
        }
        // At tachycardia rates the complex widens and P/T merge
        // away; morph amplitude of non-QRS waves down.
        double vtFactor = 1.0;
        if (params.vtMorphology && bpmNow > 150.0) {
            vtFactor = 150.0 / bpmNow;
        }
        for (size_t w = 0; w < params.waves.size(); ++w) {
            const Wave &wv = params.waves[w];
            double a = wv.ampl;
            bool qrs = w >= 1 && w <= 3;
            if (!qrs)
                a *= vtFactor;
            double widen = qrs && vtFactor < 1.0
                               ? 1.0 + (1.0 - vtFactor)
                               : 1.0;
            double d = (dt - wv.centerMs) / (wv.widthMs * widen);
            y += a * std::exp(-0.5 * d * d);
        }
    }

    // Baseline wander + measurement noise.
    y += params.baselineAmpl *
         std::sin(2.0 * M_PI * params.baselineHz * tMs / 1000.0);
    y += rng.gaussian(params.noiseSigma);

    ++n;
    double r = std::lround(y);
    if (r > 4000)
        r = 4000;
    if (r < -4000)
        r = -4000;
    return static_cast<SWord>(r);
}

ScriptedHeart::ScriptedHeart(std::vector<Segment> schedule,
                             uint64_t seed, EcgParams params)
    : schedule(std::move(schedule)), synth(seed, std::move(params))
{
    if (!this->schedule.empty())
        synth.setBpm(this->schedule[0].bpm);
}

SWord
ScriptedHeart::nextSample()
{
    if (seg < schedule.size()) {
        msIntoSeg += kSampleMs;
        if (msIntoSeg >= schedule[seg].seconds * 1000.0) {
            msIntoSeg = 0.0;
            ++seg;
            if (seg < schedule.size())
                synth.setBpm(schedule[seg].bpm);
        }
    }
    return synth.nextSample();
}

const std::vector<uint64_t> &
ScriptedHeart::rPeaks() const
{
    return synth.rPeaks();
}

ResponsiveHeart::ResponsiveHeart(double onsetSeconds, double sinusBpm,
                                 double vtBpm, int pulsesToConvert,
                                 uint64_t seed, EcgParams params)
    : onsetSeconds(onsetSeconds), sinusBpm(sinusBpm), vtBpm(vtBpm),
      pulsesToConvert(pulsesToConvert), synth(seed, std::move(params))
{
    synth.setBpm(sinusBpm);
}

SWord
ResponsiveHeart::nextSample()
{
    double tSec = double(synth.sampleIndex()) * kSampleMs / 1000.0;
    if (!vtStarted && tSec >= onsetSeconds) {
        vtStarted = true;
        vtActive = true;
        synth.setBpm(vtBpm);
    }
    return synth.nextSample();
}

void
ResponsiveHeart::onShock(SWord v)
{
    if (v <= 0)
        return;
    if (!vtActive)
        return;
    ++pulses;
    if (pulses >= pulsesToConvert) {
        vtActive = false;
        convertedSample = synth.sampleIndex();
        synth.setBpm(sinusBpm);
    }
}

const std::vector<uint64_t> &
ResponsiveHeart::rPeaks() const
{
    return synth.rPeaks();
}

} // namespace zarf::ecg
