/**
 * @file
 * Delta-debugging reducer for diverging images.
 *
 * Given an image the oracle flags as a Divergence, shrink it while
 * the divergence persists: drop trailing declarations, stub whole
 * function bodies to `result 0`, collapse cases to their else
 * branches, strip lets, shrink argument lists, and zero immediates —
 * each pass re-running the oracle as the predicate and keeping only
 * shrinks that still diverge. Passes repeat until a fixpoint (no
 * pass shrinks further) or the evaluation budget runs out.
 *
 * The reducer is deterministic: passes are ordered, candidates
 * within a pass are ordered, and the oracle itself is a pure
 * function of the image — so a reproducer reduces to the same
 * minimal image on every host. Undecodable divergers (a decoded
 * corpus should never produce one, but word-level findings exist)
 * fall back to a word-span pass that deletes one declaration span at
 * a time.
 */

#ifndef ZARF_FUZZ_REDUCE_HH
#define ZARF_FUZZ_REDUCE_HH

#include "fuzz/oracle.hh"

namespace zarf::fuzz
{

/** Reducer bounds. */
struct ReduceConfig
{
    OracleConfig oracle{};
    /** Maximum oracle evaluations to spend. */
    size_t maxEvals = 600;
};

/** Reduction outcome. */
struct ReduceResult
{
    /** The smallest diverging image found (== input when the input
     *  no longer diverges under cfg.oracle). */
    Image image;
    /** Oracle evaluations spent. */
    size_t evals = 0;
    /** Did the input actually diverge (reduction meaningful)? */
    bool diverged = false;
    /** The minimal image's divergence description. */
    std::string detail;
};

ReduceResult reduceDivergence(const Image &image,
                              const ReduceConfig &cfg = {});

} // namespace zarf::fuzz

#endif // ZARF_FUZZ_REDUCE_HH
