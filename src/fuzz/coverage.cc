#include "fuzz/coverage.hh"

#include <bit>

#include "support/logging.hh"

namespace zarf::fuzz
{

namespace
{

/** Bit index of a log2 bucket: 0 for zero, 1 + floor(log2 n) else,
 *  clamped to `width` bits. */
unsigned
log2Bucket(uint64_t n, unsigned width)
{
    if (n == 0)
        return 0;
    unsigned b = 1 + unsigned(63 - std::countl_zero(n));
    return b < width ? b : width - 1;
}

/** Index of an exec-class event in the 5×5 pair matrix; -1 for
 *  non-exec kinds. */
int
execClass(obs::EventKind k)
{
    switch (k) {
      case obs::EventKind::ExecLet:
        return 0;
      case obs::EventKind::ExecCase:
        return 1;
      case obs::EventKind::ExecResult:
        return 2;
      case obs::EventKind::EvalEnter:
        return 3;
      case obs::EventKind::PrimOp:
        return 4;
      default:
        return -1;
    }
}

} // namespace

void
CoverageSig::mergeFrom(const CoverageSig &other)
{
    states[0] |= other.states[0];
    states[1] |= other.states[1];
    prims |= other.prims;
    execPairs |= other.execPairs;
    gcBuckets |= other.gcBuckets;
    outcome |= other.outcome;
}

unsigned
CoverageSig::newBits(const CoverageSig &corpus) const
{
    unsigned n = 0;
    n += unsigned(std::popcount(states[0] & ~corpus.states[0]));
    n += unsigned(std::popcount(states[1] & ~corpus.states[1]));
    n += unsigned(std::popcount(prims & ~corpus.prims));
    n += unsigned(std::popcount(execPairs & ~corpus.execPairs));
    n += unsigned(std::popcount(gcBuckets & ~corpus.gcBuckets));
    n += unsigned(std::popcount(outcome & ~corpus.outcome));
    return n;
}

unsigned
CoverageSig::popcount() const
{
    return newBits(CoverageSig{});
}

std::string
CoverageSig::summary() const
{
    unsigned nStates = unsigned(std::popcount(states[0])) +
                       unsigned(std::popcount(states[1]));
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "states=%u prims=%u pairs=%u gc=%u outcome=%u",
                  nStates, unsigned(std::popcount(prims)),
                  unsigned(std::popcount(execPairs)),
                  unsigned(std::popcount(gcBuckets)),
                  unsigned(std::popcount(outcome)));
    return buf;
}

CoverageSig
collectCoverage(const FsmTally &tally, const obs::Recorder &trace,
                const MachineStats &stats, MachineStatus status,
                const ValuePtr &value)
{
    CoverageSig sig;

    static_assert(kTotalStates <= 128,
                  "states bitmap needs more words");
    for (size_t s = 0; s < kTotalStates; ++s) {
        if (tally.visits[s])
            sig.states[s / 64] |= uint64_t(1) << (s % 64);
    }

    int prev = -1;
    trace.forEach([&](const obs::Event &e) {
        int c = execClass(e.kind);
        if (c < 0)
            return;
        if (e.kind == obs::EventKind::PrimOp)
            sig.prims |= uint64_t(1) << (uint64_t(e.a) & 63);
        if (prev >= 0)
            sig.execPairs |= uint32_t(1) << (prev * 5 + c);
        prev = c;
    });

    sig.gcBuckets |= uint32_t(1) << log2Bucket(stats.gcRuns, 16);
    sig.gcBuckets |=
        uint32_t(1) << (16 + log2Bucket(stats.gcMaxPauseCycles, 16));

    sig.outcome |= uint32_t(1) << unsigned(status);
    if (value) {
        sig.outcome |= uint32_t(1) << (8 + unsigned(value->kind()));
        if (value->isError())
            sig.outcome |= uint32_t(1) << 12;
    }
    return sig;
}

} // namespace zarf::fuzz
