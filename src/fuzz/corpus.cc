#include "fuzz/corpus.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/logging.hh"

namespace zarf::fuzz
{

uint64_t
imageHash(const Image &image)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (Word w : image) {
        for (unsigned i = 0; i < 4; ++i) {
            h ^= (w >> (8 * i)) & 0xff;
            h *= 0x100000001b3ull;
        }
    }
    return h;
}

std::string
hashName(uint64_t hash)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

std::string
imageToText(const Image &image)
{
    std::string out;
    out.reserve(image.size() * 11 + 64);
    out += "# zarf image, ";
    out += std::to_string(image.size());
    out += " words, hash ";
    out += hashName(imageHash(image));
    out += "\n";
    char line[16];
    for (Word w : image) {
        std::snprintf(line, sizeof(line), "0x%08x\n", w);
        out += line;
    }
    return out;
}

ParsedImage
imageFromText(const std::string &text)
{
    ParsedImage r;
    std::istringstream in(text);
    std::string line;
    size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        size_t start = line.find_first_not_of(" \t\r");
        if (start == std::string::npos || line[start] == '#')
            continue;
        unsigned long v = 0;
        char extra;
        if (std::sscanf(line.c_str() + start, "%lx %c", &v,
                        &extra) != 1 ||
            line.compare(start, 2, "0x") != 0 || v > 0xfffffffful) {
            r.error = "line " + std::to_string(lineNo) +
                      ": expected one 0x%08x word";
            return r;
        }
        r.image.push_back(Word(v));
    }
    r.ok = true;
    return r;
}

CorpusLoad
loadCorpusDir(const std::string &dir)
{
    namespace fs = std::filesystem;
    CorpusLoad out;
    std::error_code ec;
    std::vector<fs::path> files;
    for (const auto &e : fs::directory_iterator(dir, ec)) {
        if (e.path().extension() == ".zimg")
            files.push_back(e.path());
    }
    if (ec) {
        out.errors.push_back(dir + ": " + ec.message());
        return out;
    }
    std::sort(files.begin(), files.end());
    for (const auto &p : files) {
        std::ifstream in(p);
        if (!in) {
            out.errors.push_back(p.string() + ": unreadable");
            continue;
        }
        std::stringstream buf;
        buf << in.rdbuf();
        ParsedImage parsed = imageFromText(buf.str());
        if (!parsed.ok) {
            out.errors.push_back(p.string() + ": " + parsed.error);
            continue;
        }
        out.entries.push_back({ imageHash(parsed.image), p.string(),
                                std::move(parsed.image) });
    }
    return out;
}

std::string
saveCorpusEntry(const std::string &dir, const Image &image)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        warn("corpus: cannot create %s: %s — entry not saved",
             dir.c_str(), ec.message().c_str());
        return "";
    }
    fs::path p =
        fs::path(dir) / (hashName(imageHash(image)) + ".zimg");
    std::ofstream out(p);
    if (!out) {
        warn("corpus: cannot open %s for writing — entry not saved",
             p.string().c_str());
        return "";
    }
    out << imageToText(image);
    out.flush();
    if (!out) {
        warn("corpus: short write to %s — entry not saved",
             p.string().c_str());
        return "";
    }
    return p.string();
}

} // namespace zarf::fuzz
