#include "fuzz/mutate.hh"

#include <algorithm>

#include "isa/encoding.hh"

namespace zarf::fuzz
{

namespace
{

/** Every node of an expression tree, preorder, mutable. */
void
collectNodes(Expr &e, std::vector<Expr *> &out)
{
    out.push_back(&e);
    if (e.isLet()) {
        collectNodes(*e.asLet().body, out);
    } else if (e.isCase()) {
        Case &c = e.asCase();
        for (auto &br : c.branches)
            collectNodes(*br.body, out);
        collectNodes(*c.elseBody, out);
    }
}

/** Is `id` a constructor-pattern-resolvable identifier in prog? */
bool
consIdResolves(Word id, const Program &prog)
{
    if (isPrimId(id)) {
        auto p = primById(id);
        return p && p->isConstructor;
    }
    return Program::indexOf(id) < prog.decls.size();
}

bool
exprEncodable(const Expr &e, const Program &prog)
{
    auto operandOk = [](const Operand &op) {
        if (op.src == Src::Imm)
            return op.val >= kMinImm && op.val <= kMaxImm;
        return op.val >= 0 && op.val <= SWord(kMaxSlotIndex);
    };
    if (e.isLet()) {
        const Let &l = e.asLet();
        if (l.args.size() > kMaxArgs || l.callee.id > kMaxSlotIndex)
            return false;
        for (const auto &a : l.args) {
            if (!operandOk(a))
                return false;
        }
        return exprEncodable(*l.body, prog);
    }
    if (e.isCase()) {
        const Case &c = e.asCase();
        if (!operandOk(c.scrut))
            return false;
        for (const auto &br : c.branches) {
            if (exprWordCount(*br.body) > kMaxSkip)
                return false;
            if (br.isCons) {
                if (br.consId > kMaxSlotIndex ||
                    !consIdResolves(br.consId, prog))
                    return false;
            } else if (br.lit < kMinPatLit || br.lit > kMaxPatLit) {
                return false;
            }
            if (!exprEncodable(*br.body, prog))
                return false;
        }
        return exprEncodable(*c.elseBody, prog);
    }
    return operandOk(e.asResult().value);
}

/** The pure same-arity ALU swap pools. */
const Prim kAlu2[] = { Prim::Add, Prim::Sub, Prim::Mul, Prim::Min,
                       Prim::Max, Prim::Eq,  Prim::Ne,  Prim::Lt,
                       Prim::Le,  Prim::Gt,  Prim::Ge,  Prim::BAnd,
                       Prim::BOr, Prim::BXor, Prim::Shl, Prim::Shr,
                       Prim::Sru, Prim::Div, Prim::Mod };
const Prim kAlu1[] = { Prim::Neg, Prim::Abs, Prim::BNot };

bool
inPool(Word id, const Prim *pool, size_t n)
{
    for (size_t i = 0; i < n; ++i) {
        if (id == static_cast<Word>(pool[i]))
            return true;
    }
    return false;
}

/** One random tree mutation; true when anything changed. */
bool
mutateOnce(Program &prog, Rng &rng)
{
    // Function declarations only.
    std::vector<size_t> fns;
    for (size_t i = 0; i < prog.decls.size(); ++i) {
        if (prog.decls[i].body)
            fns.push_back(i);
    }
    if (fns.empty())
        return false;
    size_t di = fns[rng.below(fns.size())];
    Decl &decl = prog.decls[di];

    std::vector<Expr *> nodes;
    collectNodes(*decl.body, nodes);
    Expr &node = *nodes[rng.below(nodes.size())];

    switch (rng.below(10)) {
      case 9: { // Perturb a slot index. The mutant stays decodable
                // (slot ranges are not an encoding property) but may
                // reference a slot no path, or only *other* paths,
                // ever bind — the class of defect only a
                // cross-evaluator oracle can adjudicate, since every
                // engine must agree on where execution gets stuck.
        Operand *op = nullptr;
        if (node.isLet()) {
            Let &l = node.asLet();
            if (!l.args.empty())
                op = &l.args[rng.below(l.args.size())];
        } else if (node.isCase()) {
            op = &node.asCase().scrut;
        } else {
            op = &node.asResult().value;
        }
        if (!op || op->src == Src::Imm)
            return false;
        SWord delta = SWord(1 + rng.below(3));
        op->val = rng.chance(0.7)
                      ? op->val + delta
                      : std::max<SWord>(0, op->val - delta);
        return true;
      }
      case 0: { // Perturb an immediate operand.
        Operand *op = nullptr;
        if (node.isLet()) {
            Let &l = node.asLet();
            if (!l.args.empty())
                op = &l.args[rng.below(l.args.size())];
        } else if (node.isCase()) {
            op = &node.asCase().scrut;
        } else {
            op = &node.asResult().value;
        }
        if (!op || op->src != Src::Imm)
            return false;
        op->val = SWord(
            std::clamp<int64_t>(int64_t(op->val) + rng.range(-8, 8),
                                kMinImm, kMaxImm));
        return true;
      }
      case 1: { // Swap a pure ALU primitive for a same-arity one.
        if (!node.isLet())
            return false;
        Let &l = node.asLet();
        if (l.callee.kind != CalleeKind::Func)
            return false;
        if (inPool(l.callee.id, kAlu2, std::size(kAlu2))) {
            l.callee.id = static_cast<Word>(
                kAlu2[rng.below(std::size(kAlu2))]);
            return true;
        }
        if (inPool(l.callee.id, kAlu1, std::size(kAlu1))) {
            l.callee.id = static_cast<Word>(
                kAlu1[rng.below(std::size(kAlu1))]);
            return true;
        }
        return false;
      }
      case 2: { // Grow an argument list (partial → fuller apply).
        if (!node.isLet())
            return false;
        node.asLet().args.push_back(opImm(rng.range(-20, 20)));
        return true;
      }
      case 3: { // Shrink an argument list.
        if (!node.isLet() || node.asLet().args.empty())
            return false;
        node.asLet().args.pop_back();
        return true;
      }
      case 4: { // Wrap the node in a fresh let binding. Existing
                // local references below shift by one slot — still
                // scope-valid (one more local is bound on the path),
                // but semantically a different program, which is the
                // point.
        Expr wrapped(Let{
            calleeFunc(static_cast<Word>(
                kAlu2[rng.below(std::size(kAlu2))])),
            { opImm(rng.range(-20, 20)), opImm(rng.range(-20, 20)) },
            nullptr });
        Expr old = std::move(node);
        wrapped.asLet().body = std::make_unique<Expr>(std::move(old));
        node = std::move(wrapped);
        return true;
      }
      case 5: { // Drop a case branch (falls through to later
                // patterns or else).
        if (!node.isCase())
            return false;
        Case &c = node.asCase();
        if (c.branches.empty())
            return false;
        c.branches.erase(c.branches.begin() +
                         ptrdiff_t(rng.below(c.branches.size())));
        return true;
      }
      case 6: { // Duplicate a case branch (the clone is dead — the
                // first copy shadows it — but widens the skip web).
        if (!node.isCase())
            return false;
        Case &c = node.asCase();
        if (c.branches.empty())
            return false;
        const CaseBranch &src = c.branches[rng.below(
            c.branches.size())];
        CaseBranch dup{ src.isCons, src.lit, src.consId,
                        cloneExpr(*src.body) };
        c.branches.push_back(std::move(dup));
        return true;
      }
      case 7: { // Retarget a user-function callee to a strictly
                // smaller declaration index, preserving the acyclic
                // call graph (and so termination).
        if (!node.isLet())
            return false;
        Let &l = node.asLet();
        if (l.callee.kind != CalleeKind::Func ||
            isPrimId(l.callee.id))
            return false;
        size_t idx = Program::indexOf(l.callee.id);
        if (idx == 0 || idx >= prog.decls.size())
            return false;
        l.callee.id = Program::idOf(rng.below(idx));
        return true;
      }
      default: { // Stub the subtree with a literal result.
        node = Expr(Result{ opImm(rng.range(-20, 20)) });
        return true;
      }
    }
}

/** Byte spans of one declaration in a structurally parsed image. */
struct DeclSpan
{
    size_t infoPos;
    size_t lenPos;
    size_t bodyBegin;
    size_t bodyEnd;
};

/** Walk the header structure; empty when the image is too broken to
 *  span (mutations then fall back to blind flips). */
std::vector<DeclSpan>
declSpans(const Image &img)
{
    std::vector<DeclSpan> spans;
    if (img.size() < 2 || img[0] != kMagic)
        return spans;
    size_t pos = 2;
    for (Word i = 0; i < img[1]; ++i) {
        if (pos + 2 > img.size())
            break;
        size_t len = img[pos + 1];
        if (pos + 2 + len > img.size())
            break;
        spans.push_back({ pos, pos + 1, pos + 2, pos + 2 + len });
        pos += 2 + len;
    }
    return spans;
}

/** One random raw-word mutation. */
void
mutateWordOnce(Image &img, Rng &rng)
{
    std::vector<DeclSpan> spans = declSpans(img);

    auto randomBodyWord = [&](auto pred) -> size_t {
        // Collect matching body-word positions; SIZE_MAX if none.
        std::vector<size_t> hits;
        for (const auto &s : spans) {
            for (size_t p = s.bodyBegin; p < s.bodyEnd; ++p) {
                if (pred(img[p]))
                    hits.push_back(p);
            }
        }
        if (hits.empty())
            return size_t(-1);
        return hits[rng.below(hits.size())];
    };

    switch (rng.below(7)) {
      case 0: { // Corrupt a pattern skip field.
        size_t p = randomBodyWord([](Word w) {
            return opOf(w) == Op::PatLit || opOf(w) == Op::PatCons;
        });
        if (p == size_t(-1))
            break;
        Word skip = (img[p] >> 16) & 0xfff;
        Word delta = Word(1 + rng.below(4));
        skip = rng.chance(0.5) ? skip + delta
                               : (skip >= delta ? skip - delta : 0);
        img[p] = (img[p] & ~(0xfffu << 16)) | ((skip & 0xfff) << 16);
        return;
      }
      case 1: { // Set the reserved operand-source bits ([27:26]=3).
        size_t p = randomBodyWord([](Word w) {
            Op o = opOf(w);
            return o == Op::Arg || o == Op::Case || o == Op::Result;
        });
        if (p == size_t(-1))
            break;
        img[p] |= 0x3u << 26;
        return;
      }
      case 2: { // Lengthen a let's declared argument count past its
                // actual argument words (truncated-arg-list shape).
        size_t p = randomBodyWord(
            [](Word w) { return opOf(w) == Op::Let; });
        if (p == size_t(-1))
            break;
        Word nargs = (img[p] >> 16) & 0x3ff;
        nargs = (nargs + 1 + Word(rng.below(3))) & 0x3ff;
        img[p] = (img[p] & ~(0x3ffu << 16)) | (nargs << 16);
        return;
      }
      case 3: { // Push a slot index out of any plausible frame.
        size_t p = randomBodyWord([](Word w) {
            return opOf(w) == Op::Arg &&
                   ((w >> 26) & 0x3) != Word(Src::Imm);
        });
        if (p == size_t(-1))
            break;
        Word payload = (img[p] & 0x03ffffffu) + 200;
        img[p] = (img[p] & ~0x03ffffffu) | (payload & 0x03ffffffu);
        return;
      }
      case 4: { // Perturb the declaration count.
        if (img.size() < 2)
            break;
        img[1] += rng.chance(0.5) ? 1 : Word(-1);
        return;
      }
      case 5: { // Clobber one word entirely.
        if (img.empty())
            break;
        img[rng.below(img.size())] = Word(rng.next());
        return;
      }
      default:
        break;
    }
    // Fallback (and case 6): flip one random bit anywhere.
    if (!img.empty()) {
        size_t p = rng.below(img.size());
        img[p] ^= Word(1) << rng.below(32);
    }
}

} // namespace

bool
canEncode(const Program &program)
{
    if (program.decls.empty())
        return false;
    for (const auto &d : program.decls) {
        if (d.arity > kMaxArity || d.numLocals > kMaxLocals)
            return false;
        if (!d.isCons && !d.body)
            return false;
        if (d.body && !exprEncodable(*d.body, program))
            return false;
    }
    return true;
}

std::optional<Image>
mutateAst(const Image &base, Rng &rng, const MutateConfig &cfg)
{
    DecodeResult dec = decodeProgram(base);
    if (!dec.ok)
        return std::nullopt;
    Program prog = std::move(dec.program);

    unsigned n = 1 + unsigned(rng.below(cfg.maxAstMutations));
    bool changed = false;
    for (unsigned i = 0; i < n; ++i)
        changed |= mutateOnce(prog, rng);
    if (!changed || !canEncode(prog))
        return std::nullopt;

    // Mutations change binding structure; the info words must agree
    // with the bodies again (canEncode has already proven every
    // constructor-pattern id resolves, which computeNumLocals needs).
    for (auto &d : prog.decls) {
        if (d.body)
            d.numLocals = computeNumLocals(*d.body, prog);
    }
    if (!canEncode(prog)) // numLocals may now exceed its field
        return std::nullopt;
    return encodeProgram(prog);
}

Image
mutateImage(const Image &base, Rng &rng, const MutateConfig &cfg)
{
    Image img = base;
    unsigned n = 1 + unsigned(rng.below(cfg.maxImageMutations));
    for (unsigned i = 0; i < n; ++i)
        mutateWordOnce(img, rng);
    return img;
}

std::optional<Image>
spliceImages(const Image &base, const Image &donor, Rng &rng)
{
    DecodeResult a = decodeProgram(base);
    DecodeResult b = decodeProgram(donor);
    if (!a.ok || !b.ok || b.program.decls.empty())
        return std::nullopt;
    Program prog = std::move(a.program);
    const Decl &d =
        b.program.decls[rng.below(b.program.decls.size())];
    Decl copy{ d.isCons, d.name + "_x", d.arity, d.numLocals,
               d.body ? cloneExpr(*d.body) : nullptr };
    prog.decls.push_back(std::move(copy));
    if (!canEncode(prog))
        return std::nullopt;
    for (auto &decl : prog.decls) {
        if (decl.body)
            decl.numLocals = computeNumLocals(*decl.body, prog);
    }
    if (!canEncode(prog))
        return std::nullopt;
    return encodeProgram(prog);
}

} // namespace zarf::fuzz
