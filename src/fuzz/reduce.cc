#include "fuzz/reduce.hh"

#include "fuzz/mutate.hh"
#include "isa/encoding.hh"

namespace zarf::fuzz
{

namespace
{

struct Ctx
{
    const ReduceConfig &cfg;
    size_t evals = 0;
    std::string detail;

    bool
    budget() const
    {
        return evals < cfg.maxEvals;
    }

    bool
    diverges(const Image &img)
    {
        if (!budget())
            return false;
        ++evals;
        OracleResult o = runOracle(img, cfg.oracle);
        if (o.verdict != Verdict::Divergence)
            return false;
        detail = o.detail;
        return true;
    }
};

/** Re-derive info words and encode; nullopt if unencodable. */
std::optional<Image>
encodeIfPossible(Program &p)
{
    if (!canEncode(p)) // also proves pattern ids resolve, which
        return std::nullopt; // computeNumLocals requires
    for (auto &d : p.decls) {
        if (d.body)
            d.numLocals = computeNumLocals(*d.body, p);
    }
    if (!canEncode(p))
        return std::nullopt;
    return encodeProgram(p);
}

/** Adopt `cand` into `cur` when it encodes and still diverges. */
bool
tryAdopt(Program &cur, Program &&cand, Ctx &c)
{
    std::optional<Image> img = encodeIfPossible(cand);
    if (!img || !c.diverges(*img))
        return false;
    cur = std::move(cand);
    return true;
}

void
collectNodes(Expr &e, std::vector<Expr *> &out)
{
    out.push_back(&e);
    if (e.isLet()) {
        collectNodes(*e.asLet().body, out);
    } else if (e.isCase()) {
        Case &c = e.asCase();
        for (auto &br : c.branches)
            collectNodes(*br.body, out);
        collectNodes(*c.elseBody, out);
    }
}

/** The node at preorder position `idx` of declaration `di`. */
Expr *
nodeAt(Program &p, size_t di, size_t idx)
{
    std::vector<Expr *> nodes;
    collectNodes(*p.decls[di].body, nodes);
    return idx < nodes.size() ? nodes[idx] : nullptr;
}

bool
passDropTrailingDecls(Program &cur, Ctx &c)
{
    bool any = false;
    while (cur.decls.size() > 1 && c.budget()) {
        Program cand = cur.clone();
        cand.decls.pop_back();
        if (!tryAdopt(cur, std::move(cand), c))
            break;
        any = true;
    }
    return any;
}

bool
passStubBodies(Program &cur, Ctx &c)
{
    bool any = false;
    for (size_t di = 0; di < cur.decls.size() && c.budget(); ++di) {
        if (!cur.decls[di].body ||
            (cur.decls[di].body->isResult() &&
             cur.decls[di].body->asResult().value == opImm(0)))
            continue;
        Program cand = cur.clone();
        cand.decls[di].body =
            std::make_unique<Expr>(Result{ opImm(0) });
        any |= tryAdopt(cur, std::move(cand), c);
    }
    return any;
}

/** One node-granular shrinking pass: for each (decl, node) try the
 *  applicable structural shrink, restarting the scan of a
 *  declaration whenever a shrink lands (node numbering shifts). */
bool
passShrinkNodes(Program &cur, Ctx &c)
{
    bool any = false;
    for (size_t di = 0; di < cur.decls.size(); ++di) {
        if (!cur.decls[di].body)
            continue;
        size_t idx = 0;
        while (c.budget()) {
            std::vector<Expr *> nodes;
            collectNodes(*cur.decls[di].body, nodes);
            if (idx >= nodes.size())
                break;
            Expr &node = *nodes[idx];
            bool adopted = false;

            if (node.isCase()) {
                // Collapse to the else branch.
                Program cand = cur.clone();
                Expr *n = nodeAt(cand, di, idx);
                *n = std::move(*cloneExpr(*node.asCase().elseBody));
                adopted = tryAdopt(cur, std::move(cand), c);
                // Or drop branches one at a time.
                for (size_t b = 0;
                     !adopted &&
                     b < node.asCase().branches.size() &&
                     c.budget();
                     ++b) {
                    Program cand2 = cur.clone();
                    Case &cc = nodeAt(cand2, di, idx)->asCase();
                    cc.branches.erase(cc.branches.begin() +
                                      ptrdiff_t(b));
                    adopted = tryAdopt(cur, std::move(cand2), c);
                }
            } else if (node.isLet()) {
                // Strip the let, keeping its body.
                Program cand = cur.clone();
                Expr *n = nodeAt(cand, di, idx);
                *n = std::move(*cloneExpr(*node.asLet().body));
                adopted = tryAdopt(cur, std::move(cand), c);
                // Or shrink its argument list.
                if (!adopted && !node.asLet().args.empty() &&
                    c.budget()) {
                    Program cand2 = cur.clone();
                    nodeAt(cand2, di, idx)->asLet().args.pop_back();
                    adopted = tryAdopt(cur, std::move(cand2), c);
                }
            }

            if (adopted)
                any = true;
            else
                ++idx; // This node is minimal; move on.
        }
    }
    return any;
}

bool
passZeroImmediates(Program &cur, Ctx &c)
{
    // Zeroing an immediate never changes the tree shape, so node
    // indices stay stable across adoptions — but pointers into `cur`
    // do not (tryAdopt replaces the whole program). Every access
    // therefore goes through nodeAt against the current tree.
    bool any = false;
    auto zeroOne = [&](size_t di, size_t idx, int arg) {
        Program cand = cur.clone();
        Expr &e = *nodeAt(cand, di, idx);
        Operand *op = nullptr;
        if (e.isResult() && arg < 0)
            op = &e.asResult().value;
        else if (e.isCase() && arg < 0)
            op = &e.asCase().scrut;
        else if (e.isLet() && arg >= 0 &&
                 size_t(arg) < e.asLet().args.size())
            op = &e.asLet().args[size_t(arg)];
        if (!op || op->src != Src::Imm || op->val == 0)
            return false;
        op->val = 0;
        return tryAdopt(cur, std::move(cand), c);
    };
    for (size_t di = 0; di < cur.decls.size(); ++di) {
        if (!cur.decls[di].body)
            continue;
        for (size_t idx = 0;; ++idx) {
            if (!c.budget())
                return any;
            Expr *node = nodeAt(cur, di, idx);
            if (!node)
                break;
            if (node->isLet()) {
                size_t nargs = node->asLet().args.size();
                for (size_t a = 0; a < nargs && c.budget(); ++a)
                    any |= zeroOne(di, idx, int(a));
            } else {
                any |= zeroOne(di, idx, -1);
            }
        }
    }
    return any;
}

/** Word-span fallback for undecodable divergers: delete whole
 *  declaration spans (fixing the count word) while the divergence
 *  persists. */
Image
reduceWordLevel(const Image &start, Ctx &c)
{
    Image cur = start;
    bool improved = true;
    while (improved && c.budget()) {
        improved = false;
        if (cur.size() < 2 || cur[0] != kMagic)
            break;
        // Spans, re-derived each round.
        std::vector<std::pair<size_t, size_t>> spans;
        size_t pos = 2;
        for (Word i = 0; i < cur[1] && pos + 2 <= cur.size(); ++i) {
            size_t len = cur[pos + 1];
            if (pos + 2 + len > cur.size())
                break;
            spans.push_back({ pos, pos + 2 + len });
            pos = pos + 2 + len;
        }
        for (size_t s = spans.size(); s-- > 1 && c.budget();) {
            Image cand = cur;
            cand.erase(cand.begin() + ptrdiff_t(spans[s].first),
                       cand.begin() + ptrdiff_t(spans[s].second));
            cand[1] -= 1;
            if (c.diverges(cand)) {
                cur = std::move(cand);
                improved = true;
                break;
            }
        }
    }
    return cur;
}

} // namespace

ReduceResult
reduceDivergence(const Image &image, const ReduceConfig &cfg)
{
    Ctx c{ cfg };
    ReduceResult out;
    out.image = image;

    if (!c.diverges(image)) {
        out.evals = c.evals;
        return out;
    }
    out.diverged = true;

    DecodeResult dec = decodeProgram(image);
    if (!dec.ok) {
        out.image = reduceWordLevel(image, c);
        out.evals = c.evals;
        out.detail = c.detail;
        return out;
    }

    Program cur = std::move(dec.program);
    bool improved = true;
    while (improved && c.budget()) {
        improved = false;
        improved |= passDropTrailingDecls(cur, c);
        improved |= passStubBodies(cur, c);
        improved |= passShrinkNodes(cur, c);
        improved |= passZeroImmediates(cur, c);
    }

    if (std::optional<Image> img = encodeIfPossible(cur))
        out.image = *img;
    out.evals = c.evals;
    out.detail = c.detail;
    return out;
}

} // namespace zarf::fuzz
