/**
 * @file
 * Simulator-native coverage signatures for the conformance fuzzer.
 *
 * Host-compiler coverage (gcov, SanitizerCoverage) measures the
 * *simulator's* branches, which saturate after a handful of inputs.
 * What the fuzzer needs is coverage of the *modelled machine*: which
 * control-FSM states the λ-machine visited, which primitives fired,
 * which consecutive instruction-class transitions occurred, whether
 * the collector ran and how hard, and how the program ended. All of
 * those are already observable deterministically — the FSM tally
 * (MachineConfig::fsmTally) and the structured event trace
 * (obs::Recorder) exist precisely so execution is inspectable without
 * perturbing modelled cycles — so a signature is a cheap pure
 * function of one oracle run and is bit-stable across hosts, thread
 * counts, and repetitions.
 */

#ifndef ZARF_FUZZ_COVERAGE_HH
#define ZARF_FUZZ_COVERAGE_HH

#include <array>
#include <cstdint>
#include <string>

#include "machine/machine.hh"
#include "machine/stats.hh"
#include "obs/trace.hh"

namespace zarf::fuzz
{

/**
 * One run's coverage signature. Every field is a small bitset;
 * corpus-level coverage is the union of retained signatures, and an
 * input is interesting exactly when it contributes at least one new
 * bit (newBits > 0).
 */
struct CoverageSig
{
    /** Visited control-FSM states (one bit per MState, 66 states). */
    std::array<uint64_t, 2> states{};

    /** Primitive identifiers executed (PrimOp events, id mod 64). */
    uint64_t prims = 0;

    /** Consecutive dynamic instruction-class pairs: 5×5 bits over
     *  {let, case, result, eval-enter, prim}. Order sensitivity is
     *  what distinguishes e.g. force-then-apply from apply-then-force
     *  schedules that visit identical state sets. */
    uint32_t execPairs = 0;

    /** Collector pressure: log2 buckets of gcRuns (bits 0..15) and of
     *  the longest single pause in cycles (bits 16..31). */
    uint32_t gcBuckets = 0;

    /** Terminal observation: MachineStatus (bits 0..7) and the kind
     *  of the final value when Done (bits 8..11), plus bit 12 when
     *  the value is the reserved Error constructor. */
    uint32_t outcome = 0;

    /** Union another signature into this one. */
    void mergeFrom(const CoverageSig &other);

    /** Bits set here that `corpus` does not have. */
    unsigned newBits(const CoverageSig &corpus) const;

    /** Total bits set. */
    unsigned popcount() const;

    /** Compact human-readable rendering for logs. */
    std::string summary() const;
};

/**
 * Build the signature of one machine run.
 *
 * @param tally the machine's FSM tally (fsmTally enabled)
 * @param trace the MachineExec|MachineGc event recording of the run
 * @param stats the machine's final statistics
 * @param status the terminal status
 * @param value the exported result value (null unless Done)
 */
CoverageSig collectCoverage(const FsmTally &tally,
                            const obs::Recorder &trace,
                            const MachineStats &stats,
                            MachineStatus status,
                            const ValuePtr &value);

} // namespace zarf::fuzz

#endif // ZARF_FUZZ_COVERAGE_HH
