#include "fuzz/oracle.hh"

#include <cinttypes>
#include <cstdio>

#include "ir/eval.hh"
#include "ir/lift.hh"
#include "isa/validate.hh"
#include "sem/bigstep.hh"
#include "sem/smallstep.hh"
#include "verify/budget.hh"

namespace zarf::fuzz
{

namespace
{

std::string
fmt(const char *what, uint64_t a, uint64_t b)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s: %" PRIu64 " vs %" PRIu64,
                  what, a, b);
    return buf;
}

bool
valuesEqual(const ValuePtr &a, const ValuePtr &b)
{
    if (bool(a) != bool(b))
        return false;
    return !a || Value::equal(*a, *b);
}

std::string
valueStr(const ValuePtr &v)
{
    return v ? v->toString() : "<none>";
}

bool
exprUsesIo(const Expr &e)
{
    if (e.isLet()) {
        const Let &l = e.asLet();
        if (l.callee.kind == CalleeKind::Func &&
            (l.callee.id == static_cast<Word>(Prim::GetInt) ||
             l.callee.id == static_cast<Word>(Prim::PutInt)))
            return true;
        return exprUsesIo(*l.body);
    }
    if (e.isCase()) {
        const Case &c = e.asCase();
        for (const auto &br : c.branches) {
            if (exprUsesIo(*br.body))
                return true;
        }
        return exprUsesIo(*c.elseBody);
    }
    return false;
}

} // namespace

const char *
verdictName(Verdict v)
{
    switch (v) {
      case Verdict::Agree:
        return "Agree";
      case Verdict::Rejected:
        return "Rejected";
      case Verdict::Skip:
        return "Skip";
      case Verdict::Divergence:
        return "Divergence";
    }
    return "?";
}

bool
usesIo(const Program &program)
{
    for (const auto &d : program.decls) {
        if (d.body && exprUsesIo(*d.body))
            return true;
    }
    return false;
}

std::string
diffStats(const MachineStats &a, const MachineStats &b)
{
#define ZARF_STAT(field)                                              \
    if (a.field != b.field)                                           \
        return fmt(#field, uint64_t(a.field), uint64_t(b.field));
    ZARF_STAT(let.count)
    ZARF_STAT(let.cycles)
    ZARF_STAT(caseInstr.count)
    ZARF_STAT(caseInstr.cycles)
    ZARF_STAT(result.count)
    ZARF_STAT(result.cycles)
    ZARF_STAT(branchHeads)
    ZARF_STAT(letArgs)
    ZARF_STAT(allocations)
    ZARF_STAT(allocatedWords)
    ZARF_STAT(forces)
    ZARF_STAT(whnfHits)
    ZARF_STAT(updates)
    ZARF_STAT(errorsCreated)
    ZARF_STAT(loadCycles)
    ZARF_STAT(execCycles)
    ZARF_STAT(gcRuns)
    ZARF_STAT(gcCycles)
    ZARF_STAT(gcObjectsCopied)
    ZARF_STAT(gcWordsCopied)
    ZARF_STAT(gcRefChecks)
    ZARF_STAT(gcMaxLiveWords)
    ZARF_STAT(gcMaxPauseCycles)
#undef ZARF_STAT
    if (a.callsPerFunc != b.callsPerFunc)
        return "callsPerFunc profiles differ";
    return "";
}

OracleResult
runOracle(const Image &image, const OracleConfig &cfg)
{
    OracleResult r;

    // µop-path machine: the instrumented run coverage comes from.
    obs::Recorder uopTrace(
        { 1u << 14, static_cast<uint32_t>(obs::Cat::MachineExec) |
                        static_cast<uint32_t>(obs::Cat::MachineGc) });
    RecordBus uopBus;
    MachineConfig mc;
    mc.semispaceWords = cfg.semispaceWords;
    mc.tier = DispatchTier::Uop;
    mc.trace = &uopTrace;
    mc.fsmTally = true;
    // Every machine below inherits the budget token via the copied
    // config, so a cancel reels in whichever evaluator is running.
    mc.budget = cfg.budget;
    Machine uop(image, uopBus, mc);
    Machine::Outcome uopOut = uop.run(cfg.maxCycles);
    r.uopStatus = uopOut.status;
    r.uopDiagnostic = uopOut.diagnostic;
    r.uopCycles = uop.cycles();
    r.uopValue = uopOut.value;
    r.uopIo = uopBus.ops;
    r.coverage = collectCoverage(uop.fsmTally(), uopTrace,
                                 uop.stats(), uopOut.status,
                                 uopOut.value);

    // Word-walking machine, identically configured but untraced.
    RecordBus refBus;
    MachineConfig rc = mc;
    rc.tier = DispatchTier::WordWalk;
    rc.trace = nullptr;
    Machine ref(image, refBus, rc);
    Machine::Outcome refOut = ref.run(cfg.maxCycles);

    // The threaded and fast-functional tiers run even on images the
    // oracle later classifies Rejected: like the two machines above,
    // the assertion there is "no crash, no UB" under the sanitizer
    // presets. Their comparisons happen after the rejection gates.
    RecordBus thrBus;
    MachineConfig tc = mc;
    tc.tier = DispatchTier::Threaded;
    tc.trace = nullptr;
    Machine thr(image, thrBus, tc);
    Machine::Outcome thrOut{ MachineStatus::Running, nullptr, "" };
    if (cfg.compareThreaded)
        thrOut = thr.run(cfg.maxCycles);

    RecordBus fastBus;
    MachineConfig fc = mc;
    fc.tier = DispatchTier::FastFunctional;
    fc.trace = nullptr;
    fc.fsmTally = false;
    Machine fast(image, fastBus, fc);
    Machine::Outcome fastOut{ MachineStatus::Running, nullptr, "" };
    if (cfg.compareFast)
        fastOut = fast.run(cfg.maxCycles);

    // Budget trip anywhere above => Skip before any comparison: a
    // latched token stops the *other* machines at cycle 0, and a
    // host-time trip lands at a tier-dependent point, so none of the
    // bit-exact claims apply to these runs.
    if (cfg.budget &&
        cfg.budget->tripped() != verify::BudgetTrip::None) {
        r.verdict = Verdict::Skip;
        r.detail = std::string("budget: ") +
                   verify::budgetTripName(cfg.budget->tripped());
        return r;
    }

    DecodeResult dec = decodeProgram(image);
    r.decodeOk = dec.ok;
    if (!dec.ok) {
        // Both machines already took their bounded runs above; the
        // assertion for undecodable images is only "no crash".
        r.verdict = Verdict::Rejected;
        r.detail = "decode: " + dec.error;
        return r;
    }

    if (uopOut.status == MachineStatus::Stuck &&
        uopOut.diagnostic.rfind("predecode:", 0) == 0) {
        // Load-time vs run-time strictness (equivalence map).
        r.verdict = Verdict::Rejected;
        r.detail = uopOut.diagnostic;
        return r;
    }

    // Cycle-accurate tiers vs the µop run: bit-exact on everything
    // observable (status, diagnostic, total cycles, value, the full
    // statistics block, the I/O log).
    auto machineDiffVs = [&](Machine &m, const Machine::Outcome &out,
                             RecordBus &bus) -> std::string {
        if (uopOut.status != out.status)
            return std::string("machine status: ") +
                   machineStatusName(uopOut.status) + " vs " +
                   machineStatusName(out.status);
        if (uopOut.diagnostic != out.diagnostic)
            return "machine diagnostic: \"" + uopOut.diagnostic +
                   "\" vs \"" + out.diagnostic + "\"";
        if (uop.cycles() != m.cycles())
            return fmt("machine cycles", uop.cycles(), m.cycles());
        if (!valuesEqual(uopOut.value, out.value))
            return "machine value: " + valueStr(uopOut.value) +
                   " vs " + valueStr(out.value);
        std::string sd = diffStats(uop.stats(), m.stats());
        if (!sd.empty())
            return "machine stats " + sd;
        if (!(uopBus.ops == bus.ops))
            return "machine io logs differ";
        return "";
    };
    if (std::string d = machineDiffVs(ref, refOut, refBus);
        !d.empty()) {
        r.verdict = Verdict::Divergence;
        r.detail = "uop-vs-ref " + d;
        return r;
    }
    if (cfg.compareThreaded) {
        if (std::string d = machineDiffVs(thr, thrOut, thrBus);
            !d.empty()) {
            r.verdict = Verdict::Divergence;
            r.detail = "uop-vs-threaded " + d;
            return r;
        }
    }

    // Fast-functional tier: outcome equality only — status,
    // diagnostic, value, and the I/O log — and only when both runs
    // terminated. The fast tier has no cycle clock, so the resource
    // bounds (cycle budget, out-of-memory under a different GC
    // cadence) legitimately fire at different points; those runs
    // compare nothing, like the Skip arm of the reference engines.
    if (cfg.compareFast) {
        auto terminal = [](MachineStatus st) {
            return st == MachineStatus::Done ||
                   st == MachineStatus::Stuck;
        };
        if (terminal(uopOut.status) && terminal(fastOut.status)) {
            r.fastCompared = true;
            auto fastDiff = [&]() -> std::string {
                if (uopOut.status != fastOut.status)
                    return std::string("status: ") +
                           machineStatusName(uopOut.status) + " vs " +
                           machineStatusName(fastOut.status);
                if (uopOut.diagnostic != fastOut.diagnostic)
                    return "diagnostic: \"" + uopOut.diagnostic +
                           "\" vs \"" + fastOut.diagnostic + "\"";
                if (!valuesEqual(uopOut.value, fastOut.value))
                    return "value: " + valueStr(uopOut.value) +
                           " vs " + valueStr(fastOut.value);
                if (!(uopBus.ops == fastBus.ops))
                    return "io logs differ";
                return "";
            };
            if (std::string d = fastDiff(); !d.empty()) {
                r.verdict = Verdict::Divergence;
                r.detail = "uop-vs-fast " + d;
                return r;
            }
        }
    }

    // Fault-injection-only statuses must never latch spontaneously.
    if (uopOut.status == MachineStatus::HeapCorrupt ||
        uopOut.status == MachineStatus::MemFault) {
        r.verdict = Verdict::Divergence;
        r.detail = std::string("machine latched ") +
                   machineStatusName(uopOut.status) +
                   " without fault injection: " + uopOut.diagnostic;
        return r;
    }

    // The lazy reference semantics.
    RecordBus semBus;
    SmallStep sem(dec.program, semBus, { cfg.semSteps });
    RunResult semOut = sem.runMain();

    if (uopOut.status == MachineStatus::Running) {
        r.verdict = Verdict::Skip;
        r.detail = "machine cycle budget exhausted";
        return r;
    }
    if (uopOut.status == MachineStatus::OutOfMemory) {
        r.verdict = Verdict::Skip;
        r.detail = "machine out of memory";
        return r;
    }
    if (semOut.status == RunResult::Status::OutOfFuel) {
        r.verdict = Verdict::Skip;
        r.detail = "small-step fuel exhausted";
        return r;
    }

    if (uopOut.status == MachineStatus::Done &&
        semOut.status == RunResult::Status::Done) {
        if (!valuesEqual(uopOut.value, semOut.value)) {
            r.verdict = Verdict::Divergence;
            r.detail = "machine-vs-smallstep value: " +
                       valueStr(uopOut.value) + " vs " +
                       valueStr(semOut.value);
            return r;
        }
        if (!(uopBus.ops == semBus.ops)) {
            r.verdict = Verdict::Divergence;
            r.detail = "machine-vs-smallstep io logs differ";
            return r;
        }
    } else if (uopOut.status == MachineStatus::Stuck &&
               semOut.status == RunResult::Status::Stuck) {
        // Agreement; diagnostic texts are implementation-specific.
    } else {
        r.verdict = Verdict::Divergence;
        r.detail = std::string("machine-vs-smallstep status: ") +
                   machineStatusName(uopOut.status) + " (\"" +
                   uopOut.diagnostic + "\") vs " +
                   (semOut.status == RunResult::Status::Done
                        ? "Done"
                        : "Stuck") +
                   " (\"" + semOut.where + "\")";
        return r;
    }

    // The lifted-IR reference evaluator — the fifth evaluator
    // family. The µop run terminated (Done or Stuck) inside its
    // bounds at this point, so lifting must succeed and the IR
    // evaluation must match it bit-exactly: outcome class, value,
    // I/O log, and the full λ-cycle ledger including load and the
    // deep-force export. The machine's final cycle count doubles as
    // the evaluator's hard stop: a correct lift ends at exactly that
    // total, so the bound never fires except on a lifting bug.
    if (cfg.compareIr) {
        ir::LiftResult lift = ir::liftImage(image);
        if (!lift.ok) {
            r.verdict = Verdict::Divergence;
            r.detail =
                "uop-vs-ir lift rejected a machine-accepted image: " +
                lift.error;
            return r;
        }
        RecordBus irBus;
        ir::EvalConfig ic;
        ic.maxCycles = cfg.maxCycles;
        ic.hardStopCycles = r.uopCycles;
        ir::Outcome irOut = ir::evalModule(lift.module, irBus, ic);
        r.irCompared = true;
        auto irDiff = [&]() -> std::string {
            bool wantDone = uopOut.status == MachineStatus::Done;
            bool isDone = irOut.status == ir::Outcome::Status::Done;
            bool isStuck =
                irOut.status == ir::Outcome::Status::Stuck;
            if (wantDone != isDone || (!wantDone && !isStuck))
                return std::string("status: ") +
                       machineStatusName(uopOut.status) + " vs " +
                       ir::outcomeStatusName(irOut.status) + " (\"" +
                       irOut.diagnostic + "\")";
            if (irOut.cycles != r.uopCycles)
                return fmt("cycles", r.uopCycles, irOut.cycles);
            if (wantDone && !valuesEqual(uopOut.value, irOut.value))
                return "value: " + valueStr(uopOut.value) + " vs " +
                       valueStr(irOut.value);
            if (!(uopBus.ops == irBus.ops))
                return "io logs differ";
            return "";
        };
        if (std::string d = irDiff(); !d.empty()) {
            r.verdict = Verdict::Divergence;
            r.detail = "uop-vs-ir " + d;
            return r;
        }
    }

    // The eager reference, where the equivalence map admits it.
    if (cfg.compareBigStep && validateProgram(dec.program).ok() &&
        !usesIo(dec.program)) {
        NullBus nb;
        BigStepConfig bc;
        bc.maxSteps = cfg.bigSteps;
        BigStep big(dec.program, nb, bc);
        EvalResult bigOut = big.runMain();
        if (bigOut.status == EvalResult::Status::Ok ||
            bigOut.status == EvalResult::Status::Stuck) {
            r.comparedBigStep = true;
            bool bigDone = bigOut.status == EvalResult::Status::Ok;
            bool machDone = uopOut.status == MachineStatus::Done;
            if (bigDone != machDone ||
                (bigDone &&
                 !valuesEqual(uopOut.value, bigOut.value))) {
                r.verdict = Verdict::Divergence;
                r.detail = "machine-vs-bigstep: " +
                           std::string(
                               machineStatusName(uopOut.status)) +
                           " " + valueStr(uopOut.value) + " vs " +
                           (bigDone ? "Ok " : "Stuck ") +
                           valueStr(bigOut.value) + " (\"" +
                           bigOut.where + "\")";
                return r;
            }
        }
        // OutOfFuel/DepthExceeded skip only the eager comparison.
    }

    // Snapshot/restore replay of the µop run.
    if (cfg.snapshotReplay) {
        MachineConfig sc = mc;
        sc.trace = nullptr;
        sc.fsmTally = false;
        RecordBus snapBus;
        Machine src(image, snapBus, sc);
        src.advance(uop.cycles() / 2);
        auto snap = src.snapshot();
        Machine fork(image, snapBus, sc);
        fork.restore(*snap);
        Machine::Outcome forkOut = fork.run(cfg.maxCycles);
        r.snapshotChecked = true;
        auto snapDiff = [&]() -> std::string {
            if (forkOut.status != uopOut.status)
                return std::string("status: ") +
                       machineStatusName(forkOut.status) + " vs " +
                       machineStatusName(uopOut.status);
            if (forkOut.diagnostic != uopOut.diagnostic)
                return "diagnostic differs";
            if (fork.cycles() != uop.cycles())
                return fmt("cycles", fork.cycles(), uop.cycles());
            if (!valuesEqual(forkOut.value, uopOut.value))
                return "value: " + valueStr(forkOut.value) + " vs " +
                       valueStr(uopOut.value);
            std::string sd = diffStats(fork.stats(), uop.stats());
            if (!sd.empty())
                return "stats " + sd;
            if (!(snapBus.ops == uopBus.ops))
                return "io logs differ";
            return "";
        };
        if (std::string d = snapDiff(); !d.empty()) {
            // A budget trip mid-replay is a host abort, not a
            // divergence.
            if (cfg.budget && cfg.budget->tripped() !=
                                  verify::BudgetTrip::None) {
                r.verdict = Verdict::Skip;
                r.detail =
                    std::string("budget: ") +
                    verify::budgetTripName(cfg.budget->tripped());
                return r;
            }
            r.verdict = Verdict::Divergence;
            r.detail = "snapshot replay " + d;
            return r;
        }
    }

    r.verdict = Verdict::Agree;
    return r;
}

} // namespace zarf::fuzz
