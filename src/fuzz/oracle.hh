/**
 * @file
 * The differential conformance oracle: one candidate image, every
 * evaluator, one verdict.
 *
 * A candidate binary image is run through the six Zarf evaluators —
 * the eager big-step reference (sem/bigstep.hh), the lazy small-step
 * reference (sem/smallstep.hh), and the cycle-level machine on every
 * rung of its dispatch-tier ladder: walking raw image words,
 * executing predecoded µop streams, direct-threaded dispatch, and
 * the fast-functional mode (machine/threaded.hh) — plus a
 * snapshot/restore replay of the machine mid-run. The verdict says
 * whether the implementations agree under the documented equivalence
 * map below.
 *
 * Equivalence map (what may legitimately differ, and why):
 *
 *  - Undecodable images (decodeProgram rejects) are `Rejected`: the
 *    reference interpreters need an AST, so only the machines run —
 *    bounded, asserting nothing beyond "no crash, no UB" (the
 *    sanitizer presets give that teeth).
 *  - The µop loader validates structure and operand encodings at
 *    load (machine/predecode.hh); the word-walking path only fails
 *    when execution reaches the bad word. A µop-path Stuck whose
 *    diagnostic begins with "predecode:" is therefore `Rejected`,
 *    not a divergence — it is the documented load-time/run-time
 *    strictness difference, and the other engines' behavior on such
 *    images is not compared.
 *  - On every decode-accepted, predecode-accepted image the three
 *    cycle-accurate machine tiers (word-walk, µop, threaded) must
 *    agree *bit-exactly*: status, diagnostic, value, total cycles,
 *    the complete statistics block, and the I/O log. Anything less
 *    is a `Divergence`.
 *  - The fast-functional tier abandons the cycle model, so it is
 *    held to *outcome* equality with the µop run — status,
 *    diagnostic, value, and the I/O log — and only when both runs
 *    terminated (Done or Stuck). Resource bounds fire at different
 *    points on a tier with no cycle clock, so runs where either
 *    side hit its budget or ran out of memory compare nothing.
 *  - The lazy small-step engine is the semantic reference for every
 *    decoded program: machine Done ⇔ small-step Done with
 *    structurally equal values, machine Stuck ⇔ small-step Stuck
 *    (diagnostic texts are not compared — the engines are
 *    deliberately independent implementations). Resource exhaustion
 *    on either side (machine out-of-memory or cycle budget,
 *    small-step fuel) is `Skip`: the bounds are host artifacts, not
 *    semantics.
 *  - The eager big-step engine is compared only when the program
 *    passes scope validation *and* references no I/O primitive:
 *    eagerness forces bindings a lazy engine never touches, so on
 *    scope-invalid or I/O-bearing programs the engines legitimately
 *    observe different worlds (different I/O order, Stuck on a
 *    lazily-unreachable bad reference). Its fuel/depth limits skip
 *    only the big-step comparison.
 *  - The lifted-IR evaluator (ir/lift.hh + ir/eval.hh, the fifth
 *    evaluator family) runs whenever `compareIr` is set and the µop
 *    run terminated (Done or Stuck) within its bounds. Lifting must
 *    *succeed* on every image the machine accepted — a lift
 *    rejection here is itself a divergence (lift soundness) — and
 *    the evaluation must match the µop run exactly: outcome class,
 *    value, I/O log, and the complete λ-cycle ledger including load
 *    and the deep-force export (Machine::cycles() equality, for
 *    Done and Stuck alike). Diagnostic texts are not compared (the
 *    IR evaluator is an independent implementation, like the
 *    small-step engine). The IR evaluator's heap is host-side and
 *    unbounded, so machine out-of-memory runs were already skipped
 *    before this comparison; GC never touches Machine::cycles(), so
 *    a collector-free evaluator can still match it exactly.
 *  - I/O values are deterministic (RecordBus): getint returns a pure
 *    function of (port, call ordinal), so equal read *sequences*
 *    imply equal read values, and the interleaved write logs of the
 *    lazy engines must match when both complete.
 *  - Snapshot replay: running the image straight through and
 *    running it to roughly half its cycles, snapshotting, restoring
 *    into a fresh machine on the same bus, and finishing must
 *    produce bit-identical outcome, cycles, and statistics.
 */

#ifndef ZARF_FUZZ_ORACLE_HH
#define ZARF_FUZZ_ORACLE_HH

#include <string>

#include "fuzz/coverage.hh"
#include "isa/binary.hh"
#include "machine/machine.hh"
#include "sem/io.hh"

namespace zarf::fuzz
{

/** Outcome class of one oracle evaluation. */
enum class Verdict
{
    Agree,      ///< All comparable evaluators agreed.
    Rejected,   ///< Rejected at decode or µop load; nothing to compare.
    Skip,       ///< A resource bound fired before agreement was decidable.
    Divergence, ///< Two evaluators observably disagreed. The finding.
};

/** Stable name of a verdict. */
const char *verdictName(Verdict v);

/** Oracle sizing. */
struct OracleConfig
{
    /** Machine semispace; small enough that allocation-heavy
     *  candidates exercise the collector. */
    size_t semispaceWords = 1u << 15;
    /** Machine cycle budget per run (Skip when exceeded). */
    Cycles maxCycles = 1'000'000;
    /** Small-step fuel (Skip when exhausted). */
    uint64_t semSteps = 500'000;
    /** Big-step fuel. */
    uint64_t bigSteps = 500'000;
    /** Compare the eager reference where the map allows it. */
    bool compareBigStep = true;
    /** Run and bit-compare the direct-threaded tier. */
    bool compareThreaded = true;
    /** Run and outcome-compare the fast-functional tier. */
    bool compareFast = true;
    /** Run the snapshot/restore replay check. */
    bool snapshotReplay = true;
    /** Lift the image to analysis IR and compare the reference IR
     *  evaluation bit-exactly (outcome/value/IO/cycles) against the
     *  µop run. Default-on everywhere, including the nightly fuzz
     *  rotation; `--no-compare-ir` switches it off in the CLI. */
    bool compareIr = true;
    /** Cooperative cancellation/budget token (verify/budget.hh),
     *  shared by every machine the oracle builds. A trip — observed
     *  by any of them, or latched externally — makes the verdict
     *  `Skip` (host bounds are not semantics, and host-time trips
     *  are not tier-invariant, so nothing is compared). Null =
     *  unlimited. Not owned. */
    verify::Budget *budget = nullptr;
};

/**
 * Deterministic I/O fixture: getint returns a pure mix of the port
 * and the per-bus call ordinal, and both directions are logged, so
 * two engines that issue the same I/O sequence read the same values
 * and produce comparable logs.
 */
class RecordBus : public IoBus
{
  public:
    struct IoOp
    {
        bool isGet;
        SWord port;
        SWord value;

        bool
        operator==(const IoOp &o) const
        {
            return isGet == o.isGet && port == o.port &&
                   value == o.value;
        }
    };

    SWord
    getInt(SWord port) override
    {
        SWord v = scripted(port, ordinal++);
        ops.push_back({ true, port, v });
        return v;
    }

    void
    putInt(SWord port, SWord value) override
    {
        ops.push_back({ false, port, value });
    }

    /** The value read for (port, ordinal) — pure and host-stable. */
    static SWord
    scripted(SWord port, uint64_t ordinal)
    {
        uint64_t z = uint64_t(port) * 0x9e3779b97f4a7c15ull +
                     ordinal * 0xbf58476d1ce4e5b9ull;
        z ^= z >> 29;
        return SWord(z & 0xffff) - 0x8000;
    }

    std::vector<IoOp> ops;

  private:
    uint64_t ordinal = 0;
};

/** One candidate's oracle evaluation. */
struct OracleResult
{
    Verdict verdict = Verdict::Skip;
    /** Human-readable explanation: the divergence description, the
     *  rejection reason, or the bound that fired. */
    std::string detail;
    /** Coverage signature of the µop-path machine run. */
    CoverageSig coverage;

    MachineStatus uopStatus = MachineStatus::Running;
    std::string uopDiagnostic;
    bool decodeOk = false;
    bool comparedBigStep = false;
    /** True when the fast-functional outcome comparison applied
     *  (both the µop and fast runs terminated). */
    bool fastCompared = false;
    bool snapshotChecked = false;
    /** True when the lifted-IR comparison applied (compareIr set and
     *  the µop run terminated within bounds). */
    bool irCompared = false;

    // Observables of the µop-path run, recorded before any verdict
    // gate: external validators (the concolic harness, sym/) compare
    // per-path predictions against the machine without rerunning it.
    /** Total µop-machine cycles (load + execution; GC excluded, as
     *  in Machine::cycles()). */
    Cycles uopCycles = 0;
    /** Final value of the µop run (null unless Done). */
    ValuePtr uopValue;
    /** Complete I/O log of the µop run, in issue order. */
    std::vector<RecordBus::IoOp> uopIo;
};

/** Evaluate one candidate image under the equivalence map. */
OracleResult runOracle(const Image &image,
                       const OracleConfig &cfg = {});

/** Does any let in the program call getint/putint (directly or as a
 *  partial application)? Such programs exclude the eager engine. */
bool usesIo(const Program &program);

/** Bit-exact machine statistics comparison; returns an empty string
 *  on equality, else the first differing field with both values. */
std::string diffStats(const MachineStats &a, const MachineStats &b);

} // namespace zarf::fuzz

#endif // ZARF_FUZZ_ORACLE_HH
