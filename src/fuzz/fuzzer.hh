/**
 * @file
 * The coverage-guided differential conformance fuzzer.
 *
 * One campaign is a fixed number of rounds. Each round derives a
 * batch of candidate images deterministically from (seed, global
 * candidate ordinal) alone — a fresh generated program
 * (fuzz/genprog.hh), an AST-level or image-level mutant of a corpus
 * entry (fuzz/mutate.hh), or a two-entry splice — then fans the
 * batch across the verify worker pool (verify::shardMap) to run the
 * oracle (fuzz/oracle.hh) on every candidate, and finally folds the
 * results back in corpus order: a candidate whose coverage signature
 * contributes at least one new bit joins the corpus; a Divergence is
 * recorded as a finding.
 *
 * Determinism contract: candidate construction happens sequentially
 * before the fan-out and depends only on the seed and the corpus
 * (itself deterministic by induction), shardMap returns results in
 * candidate order regardless of scheduling, and the oracle is a pure
 * function of the image. A campaign with the same config and seed
 * corpus therefore produces the same findings, the same retained
 * corpus, and the same coverage on 1 thread and on 64.
 */

#ifndef ZARF_FUZZ_FUZZER_HH
#define ZARF_FUZZ_FUZZER_HH

#include "fuzz/genprog.hh"
#include "fuzz/mutate.hh"
#include "fuzz/oracle.hh"
#include "verify/budget.hh"
#include "verify/supervise.hh"

namespace zarf::fuzz
{

/** Campaign sizing. */
struct FuzzConfig
{
    uint64_t seed = 1;
    size_t rounds = 4;
    size_t perRound = 64;
    /** Worker threads for the oracle fan-out; 0 = hardware. */
    unsigned threads = 0;
    /** Stop the campaign once this many divergences are recorded. */
    size_t maxDivergences = 1;
    GenConfig gen{};
    MutateConfig mutate{};
    OracleConfig oracle{};
    /** Candidate mix (remainder: freshly generated programs). */
    double astMutateP = 0.35;
    double imageMutateP = 0.20;
    double spliceP = 0.10;

    // ---- Resilience (docs/RESILIENCE.md, "Harness resilience") ----

    /** Per-candidate oracle budget. Inactive by default. When any
     *  limit is set, each oracle evaluation runs supervised
     *  (verify/supervise.hh): transient trips retry with backoff, a
     *  terminal trip skips the candidate. Deterministic limits
     *  (λ-cycles/heap) preserve the campaign's thread-count
     *  determinism; host-time limits trade it for liveness. */
    verify::BudgetSpec oracleBudget{};
    /** Retry discipline for transient (host-time/cancel) trips. */
    verify::RetryPolicy retry{};
    /** Directory for wedging candidate images (empty disables).
     *  Quarantined candidates are stored content-addressed in the
     *  corpus text format with a structured verdict sidecar, and
     *  the campaign continues without them. */
    std::string quarantineDir;
};

/** One recorded divergence. */
struct Finding
{
    Image image;
    uint64_t hash;
    std::string detail;
};

/** Campaign result. */
struct FuzzResult
{
    size_t executed = 0;
    size_t agreed = 0;
    size_t rejected = 0;
    size_t skipped = 0;
    /** Supervised-oracle retries consumed (transient trips). */
    size_t retries = 0;
    /** Candidates quarantined after a terminal budget trip. */
    size_t quarantined = 0;
    std::vector<Finding> findings;
    /** Union coverage of the retained corpus. */
    CoverageSig coverage;
    /** Entries retained for coverage (seed corpus not re-listed). */
    std::vector<Image> retained;

    bool
    clean() const
    {
        return findings.empty();
    }
    std::string summary() const;
};

/**
 * Run one campaign. `seedCorpus` entries are evaluated first (their
 * coverage primes the map; a diverging seed entry is a finding like
 * any other) and serve as mutation bases.
 */
FuzzResult runFuzz(const FuzzConfig &cfg,
                   const std::vector<Image> &seedCorpus = {});

/** Evaluate one image exactly as the campaign would — the
 *  replay-by-hash entry point (docs/TESTING.md). */
OracleResult replayImage(const Image &image, const FuzzConfig &cfg);

} // namespace zarf::fuzz

#endif // ZARF_FUZZ_FUZZER_HH
