/**
 * @file
 * zarf-fuzz — the standalone conformance-fuzzing campaign driver
 * (docs/TESTING.md; the CI nightly job runs it time-boxed).
 *
 *   zarf-fuzz [--seed N] [--rounds N] [--per-round N] [--threads N]
 *             [--corpus DIR] [--out DIR] [--max-seconds S]
 *             [--replay HASH | --replay-file FILE] [--reduce]
 *             [--max-oracle-ms N] [--max-oracle-cycles N]
 *             [--max-oracle-heap BYTES] [--retries N]
 *             [--quarantine DIR] [--journal FILE] [--resume FILE]
 *             [--no-compare-ir]
 *
 * The lifted-IR evaluator (fuzz/oracle.hh, compareIr) is on by
 * default — nightly rotation runs therefore prove lift soundness on
 * every candidate; --no-compare-ir switches it off for A/B timing.
 *
 * With --corpus, entries load as the seed corpus and newly retained
 * coverage entries are written back to --out (default: the corpus
 * dir). On a divergence the raw finding and — with --reduce — its
 * minimized reproducer are written to --out and the exit status is
 * 1. --replay runs exactly one corpus entry (by content hash)
 * through the oracle and prints the verdict, which is how a finding
 * from any host is reproduced locally.
 *
 * Resilience (docs/RESILIENCE.md, "Harness resilience"): the
 * --max-oracle-* flags arm a per-candidate budget — transient
 * (host-time) trips retry up to --retries attempts with capped
 * backoff, terminal trips skip the candidate and (with --quarantine)
 * store it content-addressed with a structured verdict. --journal
 * records each completed seed-iteration (fsynced) so a killed
 * time-boxed run restarted with --resume skips the iterations that
 * already finished; retained coverage lives in the corpus directory,
 * so the restarted campaign picks up where the dead one left off.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "fuzz/corpus.hh"
#include "fuzz/fuzzer.hh"
#include "fuzz/reduce.hh"
#include "verify/journal.hh"

using namespace zarf;
using namespace zarf::fuzz;

namespace
{

uint64_t
parseU64(const char *s)
{
    return std::strtoull(s, nullptr, 0);
}

/** Record 0 of the seed-iteration journal: the campaign shape the
 *  iterations were run under. */
std::string
fuzzFingerprint(const FuzzConfig &cfg)
{
    std::string s = "zarf-fuzz-journal-v1";
    verify::journalPutU64(s, cfg.seed);
    verify::journalPutU64(s, cfg.rounds);
    verify::journalPutU64(s, cfg.perRound);
    return s;
}

/** One completed seed-iteration: seed, candidates executed,
 *  divergences found. */
std::string
encodeIteration(uint64_t seed, uint64_t executed, uint64_t findings)
{
    std::string s;
    verify::journalPutU64(s, seed);
    verify::journalPutU64(s, executed);
    verify::journalPutU64(s, findings);
    return s;
}

bool
decodeIteration(const std::string &rec, uint64_t &seed,
                uint64_t &executed, uint64_t &findings)
{
    if (rec.size() != 3 * 8)
        return false;
    size_t off = 0;
    return verify::journalGetU64(rec, off, seed) &&
           verify::journalGetU64(rec, off, executed) &&
           verify::journalGetU64(rec, off, findings);
}

int
replayOne(const Image &img, const FuzzConfig &cfg)
{
    OracleResult o = replayImage(img, cfg);
    std::printf("hash %s: %s%s%s\n",
                hashName(imageHash(img)).c_str(),
                verdictName(o.verdict), o.detail.empty() ? "" : " — ",
                o.detail.c_str());
    return o.verdict == Verdict::Divergence ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    FuzzConfig cfg;
    cfg.rounds = 8;
    cfg.perRound = 64;
    cfg.maxDivergences = 8;
    std::string corpusDir, outDir, replayHash, replayFile;
    std::string journalPath, resumePath;
    double maxSeconds = 0;
    bool reduce = false;

    for (int i = 1; i < argc; ++i) {
        auto val = [&](const char *) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", argv[i]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--seed"))
            cfg.seed = parseU64(val("seed"));
        else if (!std::strcmp(argv[i], "--rounds"))
            cfg.rounds = size_t(parseU64(val("rounds")));
        else if (!std::strcmp(argv[i], "--per-round"))
            cfg.perRound = size_t(parseU64(val("per-round")));
        else if (!std::strcmp(argv[i], "--threads"))
            cfg.threads = unsigned(parseU64(val("threads")));
        else if (!std::strcmp(argv[i], "--corpus"))
            corpusDir = val("corpus");
        else if (!std::strcmp(argv[i], "--out"))
            outDir = val("out");
        else if (!std::strcmp(argv[i], "--max-seconds"))
            maxSeconds = std::strtod(val("max-seconds"), nullptr);
        else if (!std::strcmp(argv[i], "--replay"))
            replayHash = val("replay");
        else if (!std::strcmp(argv[i], "--replay-file"))
            replayFile = val("replay-file");
        else if (!std::strcmp(argv[i], "--reduce"))
            reduce = true;
        else if (!std::strcmp(argv[i], "--max-oracle-ms"))
            cfg.oracleBudget.maxHostMillis =
                parseU64(val("max-oracle-ms"));
        else if (!std::strcmp(argv[i], "--max-oracle-cycles"))
            cfg.oracleBudget.maxLambdaCycles =
                parseU64(val("max-oracle-cycles"));
        else if (!std::strcmp(argv[i], "--max-oracle-heap"))
            cfg.oracleBudget.maxHeapBytes =
                parseU64(val("max-oracle-heap"));
        else if (!std::strcmp(argv[i], "--retries"))
            cfg.retry.maxAttempts =
                unsigned(parseU64(val("retries"))) + 1;
        else if (!std::strcmp(argv[i], "--quarantine"))
            cfg.quarantineDir = val("quarantine");
        else if (!std::strcmp(argv[i], "--no-compare-ir"))
            cfg.oracle.compareIr = false;
        else if (!std::strcmp(argv[i], "--journal"))
            journalPath = val("journal");
        else if (!std::strcmp(argv[i], "--resume"))
            resumePath = val("resume");
        else {
            std::fprintf(stderr, "unknown option %s\n", argv[i]);
            return 2;
        }
    }
    if (outDir.empty())
        outDir = corpusDir;

    std::vector<Image> seedCorpus;
    if (!corpusDir.empty()) {
        CorpusLoad load = loadCorpusDir(corpusDir);
        for (const auto &err : load.errors)
            std::fprintf(stderr, "corpus: %s\n", err.c_str());
        for (auto &e : load.entries) {
            if (!replayHash.empty() &&
                hashName(e.hash) == replayHash)
                return replayOne(e.image, cfg);
            seedCorpus.push_back(std::move(e.image));
        }
    }
    if (!replayHash.empty()) {
        std::fprintf(stderr, "hash %s not in corpus %s\n",
                     replayHash.c_str(), corpusDir.c_str());
        return 2;
    }
    if (!replayFile.empty()) {
        std::FILE *f = std::fopen(replayFile.c_str(), "rb");
        if (!f) {
            std::fprintf(stderr, "cannot read %s\n",
                         replayFile.c_str());
            return 2;
        }
        std::string text;
        char buf[4096];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            text.append(buf, n);
        std::fclose(f);
        ParsedImage parsed = imageFromText(text);
        if (!parsed.ok) {
            std::fprintf(stderr, "%s: %s\n", replayFile.c_str(),
                         parsed.error.c_str());
            return 2;
        }
        return replayOne(parsed.image, cfg);
    }

    // Campaign: repeat whole runs (advancing the seed) until the
    // time budget is spent, or exactly once without one.
    auto start = std::chrono::steady_clock::now();
    auto elapsed = [&]() {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };

    // Resume: collect the seed-iterations a previous (killed) run
    // already completed; their counters fold into the totals and
    // their seeds are skipped below. Retained coverage entries were
    // written to the corpus dir as they were found, so the reloaded
    // seed corpus carries the dead run's progress.
    std::map<uint64_t, std::pair<uint64_t, uint64_t>> doneSeeds;
    bool resumeUsable = false;
    uint64_t resumeIntactBytes = 0;
    if (!resumePath.empty()) {
        verify::JournalRead jr = verify::readJournal(resumePath);
        if (jr.ok && !jr.records.empty()) {
            if (jr.records[0] == fuzzFingerprint(cfg)) {
                resumeUsable = true;
                resumeIntactBytes = jr.intactBytes;
                for (size_t k = 1; k < jr.records.size(); ++k) {
                    uint64_t s, e, f;
                    if (decodeIteration(jr.records[k], s, e, f))
                        doneSeeds[s] = { e, f };
                }
            } else {
                std::fprintf(stderr,
                             "resume: %s was written by a different "
                             "campaign configuration; ignoring it\n",
                             resumePath.c_str());
            }
        }
    }
    std::optional<verify::JournalWriter> journal;
    if (!journalPath.empty()) {
        if (resumeUsable && journalPath == resumePath) {
            journal.emplace(journalPath,
                            verify::JournalWriter::Mode::Resume,
                            resumeIntactBytes);
        } else {
            journal.emplace(journalPath,
                            verify::JournalWriter::Mode::Truncate);
            journal->append(fuzzFingerprint(cfg));
        }
    }

    size_t executed = 0, findings = 0, retries = 0, quarantined = 0;
    uint64_t seed = cfg.seed;
    for (;;) {
        if (auto it = doneSeeds.find(seed); it != doneSeeds.end()) {
            executed += it->second.first;
            findings += it->second.second;
            std::printf("seed %llu: journaled (%llu executed, %llu "
                        "divergences) — skipped\n",
                        static_cast<unsigned long long>(seed),
                        static_cast<unsigned long long>(
                            it->second.first),
                        static_cast<unsigned long long>(
                            it->second.second));
            if (findings > 0 || maxSeconds <= 0 ||
                elapsed() >= maxSeconds)
                break;
            seed += 0x9e3779b9u;
            continue;
        }
        FuzzConfig round = cfg;
        round.seed = seed;
        FuzzResult res = runFuzz(round, seedCorpus);
        executed += res.executed;
        findings += res.findings.size();
        retries += res.retries;
        quarantined += res.quarantined;
        std::printf("seed %llu: %s\n",
                    static_cast<unsigned long long>(seed),
                    res.summary().c_str());
        if (journal)
            journal->append(encodeIteration(seed, res.executed,
                                            res.findings.size()));

        if (!outDir.empty()) {
            for (const Image &img : res.retained) {
                // Save failures warn and return "" — the in-memory
                // corpus still grows, the campaign never aborts.
                std::string p = saveCorpusEntry(outDir, img);
                if (!p.empty())
                    std::printf("  retained %s\n", p.c_str());
                seedCorpus.push_back(img);
            }
        }
        for (const Finding &f : res.findings) {
            std::printf("  DIVERGENCE %s: %s\n",
                        hashName(f.hash).c_str(), f.detail.c_str());
            if (!outDir.empty()) {
                std::string p = saveCorpusEntry(
                    outDir + "/findings", f.image);
                if (!p.empty())
                    std::printf("  finding written to %s\n",
                                p.c_str());
            }
            if (reduce) {
                ReduceResult rr = reduceDivergence(
                    f.image, { cfg.oracle, 600 });
                std::printf(
                    "  reduced %zu -> %zu words in %zu evals\n",
                    f.image.size(), rr.image.size(), rr.evals);
                if (!outDir.empty() && rr.diverged) {
                    std::string p = saveCorpusEntry(
                        outDir + "/findings", rr.image);
                    if (!p.empty())
                        std::printf("  reproducer written to %s\n",
                                    p.c_str());
                }
            }
        }
        if (findings > 0 || maxSeconds <= 0 ||
            elapsed() >= maxSeconds)
            break;
        seed += 0x9e3779b9u;
    }

    if (retries || quarantined)
        std::printf("total: %zu executed, %zu divergences, "
                    "%zu retries, %zu quarantined\n",
                    executed, findings, retries, quarantined);
    else
        std::printf("total: %zu executed, %zu divergences\n",
                    executed, findings);
    return findings ? 1 : 0;
}
