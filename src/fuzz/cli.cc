/**
 * @file
 * zarf-fuzz — the standalone conformance-fuzzing campaign driver
 * (docs/TESTING.md; the CI nightly job runs it time-boxed).
 *
 *   zarf-fuzz [--seed N] [--rounds N] [--per-round N] [--threads N]
 *             [--corpus DIR] [--out DIR] [--max-seconds S]
 *             [--replay HASH | --replay-file FILE] [--reduce]
 *
 * With --corpus, entries load as the seed corpus and newly retained
 * coverage entries are written back to --out (default: the corpus
 * dir). On a divergence the raw finding and — with --reduce — its
 * minimized reproducer are written to --out and the exit status is
 * 1. --replay runs exactly one corpus entry (by content hash)
 * through the oracle and prints the verdict, which is how a finding
 * from any host is reproduced locally.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "fuzz/corpus.hh"
#include "fuzz/fuzzer.hh"
#include "fuzz/reduce.hh"

using namespace zarf;
using namespace zarf::fuzz;

namespace
{

uint64_t
parseU64(const char *s)
{
    return std::strtoull(s, nullptr, 0);
}

int
replayOne(const Image &img, const FuzzConfig &cfg)
{
    OracleResult o = replayImage(img, cfg);
    std::printf("hash %s: %s%s%s\n",
                hashName(imageHash(img)).c_str(),
                verdictName(o.verdict), o.detail.empty() ? "" : " — ",
                o.detail.c_str());
    return o.verdict == Verdict::Divergence ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    FuzzConfig cfg;
    cfg.rounds = 8;
    cfg.perRound = 64;
    cfg.maxDivergences = 8;
    std::string corpusDir, outDir, replayHash, replayFile;
    double maxSeconds = 0;
    bool reduce = false;

    for (int i = 1; i < argc; ++i) {
        auto val = [&](const char *) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", argv[i]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--seed"))
            cfg.seed = parseU64(val("seed"));
        else if (!std::strcmp(argv[i], "--rounds"))
            cfg.rounds = size_t(parseU64(val("rounds")));
        else if (!std::strcmp(argv[i], "--per-round"))
            cfg.perRound = size_t(parseU64(val("per-round")));
        else if (!std::strcmp(argv[i], "--threads"))
            cfg.threads = unsigned(parseU64(val("threads")));
        else if (!std::strcmp(argv[i], "--corpus"))
            corpusDir = val("corpus");
        else if (!std::strcmp(argv[i], "--out"))
            outDir = val("out");
        else if (!std::strcmp(argv[i], "--max-seconds"))
            maxSeconds = std::strtod(val("max-seconds"), nullptr);
        else if (!std::strcmp(argv[i], "--replay"))
            replayHash = val("replay");
        else if (!std::strcmp(argv[i], "--replay-file"))
            replayFile = val("replay-file");
        else if (!std::strcmp(argv[i], "--reduce"))
            reduce = true;
        else {
            std::fprintf(stderr, "unknown option %s\n", argv[i]);
            return 2;
        }
    }
    if (outDir.empty())
        outDir = corpusDir;

    std::vector<Image> seedCorpus;
    if (!corpusDir.empty()) {
        CorpusLoad load = loadCorpusDir(corpusDir);
        for (const auto &err : load.errors)
            std::fprintf(stderr, "corpus: %s\n", err.c_str());
        for (auto &e : load.entries) {
            if (!replayHash.empty() &&
                hashName(e.hash) == replayHash)
                return replayOne(e.image, cfg);
            seedCorpus.push_back(std::move(e.image));
        }
    }
    if (!replayHash.empty()) {
        std::fprintf(stderr, "hash %s not in corpus %s\n",
                     replayHash.c_str(), corpusDir.c_str());
        return 2;
    }
    if (!replayFile.empty()) {
        std::FILE *f = std::fopen(replayFile.c_str(), "rb");
        if (!f) {
            std::fprintf(stderr, "cannot read %s\n",
                         replayFile.c_str());
            return 2;
        }
        std::string text;
        char buf[4096];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            text.append(buf, n);
        std::fclose(f);
        ParsedImage parsed = imageFromText(text);
        if (!parsed.ok) {
            std::fprintf(stderr, "%s: %s\n", replayFile.c_str(),
                         parsed.error.c_str());
            return 2;
        }
        return replayOne(parsed.image, cfg);
    }

    // Campaign: repeat whole runs (advancing the seed) until the
    // time budget is spent, or exactly once without one.
    auto start = std::chrono::steady_clock::now();
    auto elapsed = [&]() {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };

    size_t executed = 0, findings = 0;
    uint64_t seed = cfg.seed;
    for (;;) {
        FuzzConfig round = cfg;
        round.seed = seed;
        FuzzResult res = runFuzz(round, seedCorpus);
        executed += res.executed;
        findings += res.findings.size();
        std::printf("seed %llu: %s\n",
                    static_cast<unsigned long long>(seed),
                    res.summary().c_str());

        if (!outDir.empty()) {
            for (const Image &img : res.retained) {
                std::string p = saveCorpusEntry(outDir, img);
                std::printf("  retained %s\n", p.c_str());
                seedCorpus.push_back(img);
            }
        }
        for (const Finding &f : res.findings) {
            std::printf("  DIVERGENCE %s: %s\n",
                        hashName(f.hash).c_str(), f.detail.c_str());
            if (!outDir.empty()) {
                std::string p = saveCorpusEntry(
                    outDir + "/findings", f.image);
                std::printf("  finding written to %s\n", p.c_str());
            }
            if (reduce) {
                ReduceResult rr = reduceDivergence(
                    f.image, { cfg.oracle, 600 });
                std::printf(
                    "  reduced %zu -> %zu words in %zu evals\n",
                    f.image.size(), rr.image.size(), rr.evals);
                if (!outDir.empty() && rr.diverged) {
                    std::string p = saveCorpusEntry(
                        outDir + "/findings", rr.image);
                    std::printf("  reproducer written to %s\n",
                                p.c_str());
                }
            }
        }
        if (findings > 0 || maxSeconds <= 0 ||
            elapsed() >= maxSeconds)
            break;
        seed += 0x9e3779b9u;
    }

    std::printf("total: %zu executed, %zu divergences\n", executed,
                findings);
    return findings ? 1 : 0;
}
