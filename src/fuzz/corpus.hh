/**
 * @file
 * On-disk corpus of Zarf binary images (docs/TESTING.md).
 *
 * Entries are content-addressed: the file name is the FNV-1a-64 hash
 * of the image words, rendered as 16 lowercase hex digits plus a
 * `.zimg` extension, so a corpus directory deduplicates itself and
 * any finding can be replayed by hash alone. The format is text —
 * one `0x%08x` word per line, `#` comments allowed — so corpus
 * entries diff readably in review and survive git end-of-line
 * normalization.
 */

#ifndef ZARF_FUZZ_CORPUS_HH
#define ZARF_FUZZ_CORPUS_HH

#include <string>
#include <vector>

#include "isa/binary.hh"

namespace zarf::fuzz
{

/** FNV-1a-64 over the image words (byte order independent). */
uint64_t imageHash(const Image &image);

/** "0123456789abcdef" — the content-address of an image. */
std::string hashName(uint64_t hash);

/** Render an image in the .zimg text format. */
std::string imageToText(const Image &image);

/** Parse the .zimg text format; nullopt on any malformed line. */
struct ParsedImage
{
    bool ok = false;
    Image image;
    std::string error;
};
ParsedImage imageFromText(const std::string &text);

/** One corpus entry as loaded from disk. */
struct CorpusEntry
{
    uint64_t hash;
    std::string path;
    Image image;
};

/**
 * Load every `*.zimg` under `dir`, sorted by file name (i.e. by
 * hash), so corpus iteration order is host-independent. Unreadable
 * or malformed entries are skipped with a note in `errors`.
 */
struct CorpusLoad
{
    std::vector<CorpusEntry> entries;
    std::vector<std::string> errors;
};
CorpusLoad loadCorpusDir(const std::string &dir);

/** Write an image into `dir` under its content-address; returns the
 *  path (the file may already exist — identical by construction).
 *  Best-effort: an uncreatable directory or a failed write warns
 *  and returns "" — a full disk or bad --corpus flag must never
 *  abort a campaign that is otherwise producing results. */
std::string saveCorpusEntry(const std::string &dir,
                            const Image &image);

} // namespace zarf::fuzz

#endif // ZARF_FUZZ_CORPUS_HH
