#include "fuzz/replay.hh"

namespace zarf::fuzz
{

OracleResult
replaySingle(const Image &image, const OracleConfig &cfg)
{
    // The whole contract is that this is runOracle and nothing else:
    // the campaign entry points stay byte-identical to this path
    // (see replay.hh and the regression test).
    return runOracle(image, cfg);
}

} // namespace zarf::fuzz
