/**
 * @file
 * Structure-aware mutation of Zarf binary images.
 *
 * Two distinct mutation layers feed the conformance fuzzer:
 *
 *  - AST-level (`mutateAst`): decode, perturb the expression tree,
 *    re-encode. Mutants stay decodable and mostly scope-valid, so
 *    they exercise the *semantics* of all four evaluators. Every
 *    mutation preserves the generator's termination guarantee (a
 *    callee is only ever retargeted to a strictly smaller
 *    declaration index, keeping the call graph acyclic) and is
 *    checked against the encoder's field limits before re-encoding —
 *    encodeProgram dies on overflow, which would kill the campaign.
 *
 *  - Image-level (`mutateImage`): perturb raw words under the
 *    header/body-span structure (corrupt pattern skip fields, set
 *    the reserved operand-source bits, lengthen a let's declared
 *    argument count past its actual argument words, push slot
 *    indices out of range, flip bits). Mutants are *near*-well-formed:
 *    they exercise the loader's rejection paths and the machines'
 *    runtime error latching, where the oracle only demands "reject
 *    or latch an error, never crash".
 */

#ifndef ZARF_FUZZ_MUTATE_HH
#define ZARF_FUZZ_MUTATE_HH

#include <optional>

#include "isa/binary.hh"
#include "support/random.hh"

namespace zarf::fuzz
{

/** Mutation intensity. */
struct MutateConfig
{
    /** AST mutations applied per mutant (1..max). */
    unsigned maxAstMutations = 3;
    /** Raw-word mutations applied per mutant (1..max). */
    unsigned maxImageMutations = 2;
};

/**
 * Decode `base`, apply 1..maxAstMutations random tree mutations, and
 * re-encode. Returns nullopt when the base does not decode or when
 * the mutant would overflow an encoding field (caller retries with
 * different randomness or falls back to mutateImage).
 */
std::optional<Image> mutateAst(const Image &base, Rng &rng,
                               const MutateConfig &cfg = {});

/**
 * Apply 1..maxImageMutations structure-aware raw-word mutations.
 * Always succeeds (worst case: blind bit flips); the result may be
 * arbitrarily malformed by design.
 */
Image mutateImage(const Image &base, Rng &rng,
                  const MutateConfig &cfg = {});

/**
 * Corpus crossover: append a cloned declaration of `donor` to
 * `base`'s declaration table. Callee and constructor identifiers
 * inside the grafted body re-resolve against the combined table, so
 * the splice explores identifier-space interactions the generator
 * never produces. Returns nullopt when either image does not decode
 * or the splice is unencodable.
 */
std::optional<Image> spliceImages(const Image &base,
                                  const Image &donor, Rng &rng);

/** The encoder's field limits as a predicate (encodeProgram dies on
 *  violation; the mutator must ask first). Also requires every
 *  constructor-pattern identifier to resolve, which computeNumLocals
 *  needs to terminate. */
bool canEncode(const Program &program);

} // namespace zarf::fuzz

#endif // ZARF_FUZZ_MUTATE_HH
