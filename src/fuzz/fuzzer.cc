#include "fuzz/fuzzer.hh"

#include <cstdio>

#include "fuzz/corpus.hh"
#include "support/logging.hh"
#include "verify/parallel.hh"
#include "verify/quarantine.hh"

namespace zarf::fuzz
{

namespace
{

/** Deterministically derive one candidate image from the corpus so
 *  far and the candidate's own seed. */
Image
makeCandidate(uint64_t seed, const FuzzConfig &cfg,
              const std::vector<Image> &corpus)
{
    Rng rng(seed);
    double r = rng.real();
    if (!corpus.empty()) {
        if (r < cfg.astMutateP) {
            const Image &base = corpus[rng.below(corpus.size())];
            if (auto m = mutateAst(base, rng, cfg.mutate))
                return *m;
            // Unencodable mutant: degrade to an image-level mutant
            // of the same base (still seed-deterministic).
            return mutateImage(base, rng, cfg.mutate);
        }
        if (r < cfg.astMutateP + cfg.imageMutateP) {
            return mutateImage(corpus[rng.below(corpus.size())], rng,
                               cfg.mutate);
        }
        if (r < cfg.astMutateP + cfg.imageMutateP + cfg.spliceP) {
            const Image &a = corpus[rng.below(corpus.size())];
            const Image &b = corpus[rng.below(corpus.size())];
            if (auto s = spliceImages(a, b, rng))
                return *s;
            return mutateImage(a, rng, cfg.mutate);
        }
    }
    ProgramGenerator gen(rng.next(), cfg.gen);
    return encodeProgram(gen.generate().build());
}

/** One candidate's supervised oracle evaluation. */
struct SupervisedOracle
{
    OracleResult o;
    unsigned attempts = 1;
    bool quarantined = false;
};

/**
 * Run the oracle, supervised when FuzzConfig::oracleBudget is armed:
 * each attempt gets a fresh Budget (host deadline watched by the
 * Supervisor), transient trips retry with backoff, and a terminal
 * trip quarantines the candidate image — the campaign then proceeds
 * without it, counting it as Skip.
 */
SupervisedOracle
runOracleSupervised(const Image &img, const FuzzConfig &cfg)
{
    SupervisedOracle s;
    if (!cfg.oracleBudget.any()) {
        s.o = runOracle(img, cfg.oracle);
        return s;
    }
    verify::SupervisedRun sr = verify::superviseTask(
        cfg.oracleBudget, cfg.retry,
        [&](verify::Budget &b, unsigned) {
            OracleConfig oc = cfg.oracle;
            oc.budget = &b;
            s.o = runOracle(img, oc);
        });
    s.attempts = sr.attempts;
    if (sr.wedged && !cfg.quarantineDir.empty()) {
        std::string verdict = strprintf(
            "{ \"type\": \"fuzz-candidate\", \"hash\": "
            "\"%016llx\", \"trip\": \"%s\", \"attempts\": %u, "
            "\"detail\": \"%s\" }\n",
            (unsigned long long)imageHash(img),
            verify::budgetTripName(sr.trip), sr.attempts,
            s.o.detail.c_str());
        s.quarantined =
            verify::quarantineStore(cfg.quarantineDir,
                                    imageToText(img), ".zimg",
                                    verdict)
                .ok;
    }
    return s;
}

/** Fold one oracle result into the campaign state. */
void
fold(FuzzResult &out, std::vector<Image> &corpus, Image &&img,
     const OracleResult &o, bool fromSeedCorpus)
{
    ++out.executed;
    switch (o.verdict) {
      case Verdict::Agree:
        ++out.agreed;
        break;
      case Verdict::Rejected:
        ++out.rejected;
        break;
      case Verdict::Skip:
        ++out.skipped;
        break;
      case Verdict::Divergence:
        out.findings.push_back(
            { img, imageHash(img), o.detail });
        break;
    }
    if (o.coverage.newBits(out.coverage) > 0) {
        out.coverage.mergeFrom(o.coverage);
        corpus.push_back(img);
        if (!fromSeedCorpus)
            out.retained.push_back(std::move(img));
    }
}

} // namespace

std::string
FuzzResult::summary() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%zu executed: %zu agree, %zu rejected, %zu "
                  "skipped, %zu divergences; corpus +%zu (%s)",
                  executed, agreed, rejected, skipped,
                  findings.size(), retained.size(),
                  coverage.summary().c_str());
    std::string s = buf;
    if (retries || quarantined) {
        std::snprintf(buf, sizeof(buf),
                      "; %zu retries, %zu quarantined", retries,
                      quarantined);
        s += buf;
    }
    return s;
}

FuzzResult
runFuzz(const FuzzConfig &cfg, const std::vector<Image> &seedCorpus)
{
    FuzzResult out;
    std::vector<Image> corpus;

    // Seed entries first: prime coverage, surface stale findings.
    for (const Image &img : seedCorpus) {
        SupervisedOracle s = runOracleSupervised(img, cfg);
        out.retries += s.attempts > 1 ? s.attempts - 1 : 0;
        out.quarantined += s.quarantined ? 1 : 0;
        Image copy = img;
        fold(out, corpus, std::move(copy), s.o, true);
        if (out.findings.size() >= cfg.maxDivergences)
            return out;
    }

    for (size_t round = 0; round < cfg.rounds; ++round) {
        // Candidates derive from the pre-round corpus, sequentially.
        std::vector<Image> batch;
        batch.reserve(cfg.perRound);
        for (size_t i = 0; i < cfg.perRound; ++i) {
            uint64_t ordinal = round * cfg.perRound + i;
            batch.push_back(makeCandidate(
                verify::shardSeed(cfg.seed, ordinal), cfg, corpus));
        }

        // Oracle fan-out over the shared worker pool; results come
        // back in candidate order whatever the interleaving.
        verify::ParallelConfig pc;
        pc.threads = cfg.threads;
        pc.seedBase = cfg.seed;
        pc.shards = batch.size();
        std::vector<SupervisedOracle> results = verify::shardMap(
            pc, [&](size_t i, uint64_t) {
                return runOracleSupervised(batch[i], cfg);
            });

        for (size_t i = 0; i < batch.size(); ++i) {
            out.retries +=
                results[i].attempts > 1 ? results[i].attempts - 1 : 0;
            out.quarantined += results[i].quarantined ? 1 : 0;
            fold(out, corpus, std::move(batch[i]), results[i].o,
                 false);
            if (out.findings.size() >= cfg.maxDivergences)
                return out;
        }
    }
    return out;
}

OracleResult
replayImage(const Image &image, const FuzzConfig &cfg)
{
    return runOracle(image, cfg.oracle);
}

} // namespace zarf::fuzz
