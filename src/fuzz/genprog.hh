/**
 * @file
 * Random well-formed Zarf program generation — the structured input
 * generator of the conformance fuzzer (docs/TESTING.md), promoted
 * from the test tree so the differential suites, the fuzz campaigns,
 * and the benches all draw candidates from one implementation.
 *
 * Generated programs are pure (no getint/putint) and terminating by
 * construction: the call graph is acyclic because a function may only
 * call functions with a strictly smaller declaration index. Purity
 * matters for the oracle (fuzz/oracle.hh): the eager big-step
 * reference would perform the I/O of bindings a lazy engine never
 * forces, so I/O ordering is only comparable between the lazy
 * engines — keeping generated programs pure lets all four evaluators
 * participate. Every other ISA feature is exercised: constructors of
 * mixed arity, partial application, higher-order calls through locals
 * and args, literal and constructor patterns, else fall-through, and
 * error-producing operations (division by zero, applying integers).
 */

#ifndef ZARF_FUZZ_GENPROG_HH
#define ZARF_FUZZ_GENPROG_HH

#include <string>
#include <vector>

#include "isa/builder.hh"
#include "support/random.hh"

namespace zarf::fuzz
{

struct GenConfig
{
    unsigned numCons = 3;
    unsigned numFuncs = 5;
    unsigned maxArity = 3;
    unsigned maxDepth = 4;
    /** Case expressions carry 1..maxBranches branches plus else. */
    unsigned maxBranches = 3;
    /** Immediates and literal patterns are drawn from [-immRange,
     *  immRange]. */
    int immRange = 20;
    bool allowErrors = true; ///< Permit div/mod (may yield Error).
    /** Restrict to the WCET analyzer's domain: every callee is a
     *  global identifier applied to exactly its arity (no
     *  higher-order calls, no partial or over-application), and no
     *  error-producing operations. */
    bool firstOrder = false;
};

class ProgramGenerator
{
  public:
    explicit ProgramGenerator(uint64_t seed, GenConfig cfg = {})
        : rng(seed), cfg(cfg)
    {}

    /** Generate one complete named program. */
    ProgramBuilder
    generate()
    {
        ProgramBuilder pb;
        consArities.clear();
        funcArities.clear();

        for (unsigned i = 0; i < cfg.numCons; ++i) {
            unsigned a = unsigned(rng.below(cfg.maxArity + 1));
            consArities.push_back(a);
            pb.cons(consName(i), a);
        }
        // Functions are generated in call order: function i may call
        // functions j < i (and itself never), so index 0 is the
        // deepest leaf. main goes first in the builder but is
        // generated last so it can call everything.
        std::vector<std::pair<std::string,
                              std::vector<std::string>>> headers;
        for (unsigned i = 0; i < cfg.numFuncs; ++i) {
            unsigned a = 1 + unsigned(rng.below(cfg.maxArity));
            funcArities.push_back(a);
            std::vector<std::string> params;
            for (unsigned p = 0; p < a; ++p)
                params.push_back(strprintf("p%u", p));
            headers.push_back({ funcName(i), params });
        }
        // main: calls into the generated functions.
        {
            scope.clear();
            callableLimit = cfg.numFuncs;
            NExprPtr body = genExpr(cfg.maxDepth);
            pb.fn("main", {}, body);
        }
        for (unsigned i = 0; i < cfg.numFuncs; ++i) {
            scope = headers[i].second;
            callableLimit = i;
            NExprPtr body = genExpr(cfg.maxDepth);
            pb.fn(headers[i].first, headers[i].second, body);
        }
        return pb;
    }

  private:
    static std::string
    strprintf(const char *fmt, unsigned v)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), fmt, v);
        return buf;
    }

    std::string consName(unsigned i) { return strprintf("C%u", i); }
    std::string funcName(unsigned i) { return strprintf("g%u", i); }

    /** A fresh local name. */
    std::string
    freshVar()
    {
        return strprintf("v%u", varCounter++);
    }

    SWord
    genLit()
    {
        return SWord(rng.range(-cfg.immRange, cfg.immRange));
    }

    /** Pick an argument: an in-scope variable or a small literal. */
    NArg
    genArg()
    {
        if (!scope.empty() && rng.chance(0.6)) {
            return nVar(scope[rng.below(scope.size())]);
        }
        return nImm(genLit());
    }

    /** Pick a callee name and how many args to pass. */
    std::pair<std::string, unsigned>
    genCallee()
    {
        if (cfg.firstOrder)
            return genCalleeFirstOrder();
        double r = rng.real();
        if (r < 0.30 && !consArities.empty()) {
            unsigned i = unsigned(rng.below(consArities.size()));
            // Saturated or partial constructor application.
            unsigned n = unsigned(rng.below(consArities[i] + 1));
            return { consName(i), n };
        }
        if (r < 0.55 && callableLimit > 0) {
            unsigned i = unsigned(rng.below(callableLimit));
            // Under-, exactly-, or over-apply.
            unsigned n = unsigned(rng.below(funcArities[i] + 2));
            return { funcName(i), n };
        }
        if (r < 0.70 && !scope.empty()) {
            // Higher-order: apply a variable.
            return { scope[rng.below(scope.size())],
                     unsigned(rng.below(3)) };
        }
        // A primitive.
        static const char *pure2[] = { "add", "sub", "mul", "min",
                                       "max", "eq", "lt", "band",
                                       "bor", "shl" };
        static const char *err2[] = { "div", "mod" };
        static const char *pure1[] = { "neg", "abs", "bnot" };
        if (rng.chance(0.2)) {
            return { pure1[rng.below(3)], 1 };
        }
        if (cfg.allowErrors && rng.chance(0.15)) {
            return { err2[rng.below(2)], 2 };
        }
        return { pure2[rng.below(10)], 2 };
    }

    std::pair<std::string, unsigned>
    genCalleeFirstOrder()
    {
        double r = rng.real();
        if (r < 0.30 && !consArities.empty()) {
            unsigned i = unsigned(rng.below(consArities.size()));
            return { consName(i), consArities[i] };
        }
        if (r < 0.55 && callableLimit > 0) {
            unsigned i = unsigned(rng.below(callableLimit));
            return { funcName(i), funcArities[i] };
        }
        static const char *pure2[] = { "add", "sub", "mul", "min",
                                       "max", "eq", "lt", "band",
                                       "bor", "shl" };
        static const char *pure1[] = { "neg", "abs", "bnot" };
        if (rng.chance(0.2))
            return { pure1[rng.below(3)], 1 };
        return { pure2[rng.below(10)], 2 };
    }

    NExprPtr
    genExpr(unsigned depth)
    {
        double r = rng.real();
        if (depth == 0 || r < 0.25)
            return nRet(genArg());
        if (r < 0.75) {
            auto [callee, nargs] = genCallee();
            std::vector<NArg> args;
            for (unsigned i = 0; i < nargs; ++i)
                args.push_back(genArg());
            std::string v = freshVar();
            scope.push_back(v);
            NExprPtr body = genExpr(depth - 1);
            scope.pop_back();
            return nLet(v, callee, std::move(args), std::move(body));
        }
        // case
        NArg scrut = genArg();
        std::vector<NBranch> branches;
        unsigned nbr = 1 + unsigned(rng.below(cfg.maxBranches));
        for (unsigned b = 0; b < nbr; ++b) {
            if (rng.chance(0.5) && !consArities.empty()) {
                unsigned ci = unsigned(rng.below(consArities.size()));
                std::vector<std::string> fields;
                size_t base = scope.size();
                for (unsigned f = 0; f < consArities[ci]; ++f) {
                    std::string fv = freshVar();
                    fields.push_back(fv);
                    scope.push_back(fv);
                }
                NExprPtr body = genExpr(depth - 1);
                scope.resize(base);
                branches.push_back(consBranch(consName(ci),
                                              std::move(fields),
                                              std::move(body)));
            } else {
                branches.push_back(litBranch(genLit(),
                                             genExpr(depth - 1)));
            }
        }
        NExprPtr eb = genExpr(depth - 1);
        return nCase(std::move(scrut), std::move(branches),
                     std::move(eb));
    }

    Rng rng;
    GenConfig cfg;
    std::vector<unsigned> consArities;
    std::vector<unsigned> funcArities;
    std::vector<std::string> scope;
    unsigned callableLimit = 0;
    unsigned varCounter = 0;
};

} // namespace zarf::fuzz

#endif // ZARF_FUZZ_GENPROG_HH
