/**
 * @file
 * Stable library entry point for single-image oracle replay.
 *
 * `zarf-fuzz replay <file>` and external validators (the concolic
 * harness in sym/, CI reproducer jobs) all need the same operation:
 * evaluate exactly one image under the full differential oracle,
 * with no campaign machinery around it. This header is that
 * operation's contract; the CLI replay path and replayImage()
 * (fuzz/fuzzer.hh) are thin wrappers over the same call, and
 * tests/test_sym_concolic.cc pins the equivalence.
 */

#ifndef ZARF_FUZZ_REPLAY_HH
#define ZARF_FUZZ_REPLAY_HH

#include "fuzz/oracle.hh"

namespace zarf::fuzz
{

/**
 * Evaluate one image under the differential oracle.
 *
 * Preconditions:
 *  - `image` is any word sequence; it need not decode (undecodable
 *    images yield Verdict::Rejected, never a crash);
 *  - `cfg.budget`, when set, outlives the call.
 *
 * Postconditions:
 *  - the result is a pure function of (image, cfg): no corpus, no
 *    coverage map, no journal, and no other global or hidden state
 *    is read or written;
 *  - two calls with equal arguments (and no external budget latch)
 *    produce identical results — I/O is scripted by RecordBus, so
 *    there is no environment dependence;
 *  - the µop-run observables (uopStatus, uopCycles, uopValue, uopIo)
 *    are populated even when the verdict short-circuits to Rejected
 *    or Skip.
 */
OracleResult replaySingle(const Image &image,
                          const OracleConfig &cfg = {});

} // namespace zarf::fuzz

#endif // ZARF_FUZZ_REPLAY_HH
