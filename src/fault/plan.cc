#include "fault/plan.hh"

#include <algorithm>

#include "support/random.hh"

namespace zarf::fault
{

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::HeapSeu:
        return "heap-seu";
      case FaultKind::HeapSeuDouble:
        return "heap-seu-double";
      case FaultKind::OperandSeu:
        return "operand-seu";
      case FaultKind::SensorDropout:
        return "sensor-dropout";
      case FaultKind::SensorStuck:
        return "sensor-stuck";
      case FaultKind::SensorNoise:
        return "sensor-noise";
      case FaultKind::ChanDrop:
        return "chan-drop";
      case FaultKind::ChanDup:
        return "chan-dup";
      case FaultKind::ChanOverflowBurst:
        return "chan-overflow";
      case FaultKind::MbMemSeu:
        return "mb-mem-seu";
      case FaultKind::LambdaWedge:
        return "lambda-wedge";
    }
    return "?";
}

FaultPlan
singleKindPlan(FaultKind kind, uint64_t seed, FaultWindow window,
               size_t count)
{
    FaultPlan plan;
    plan.seed = seed;
    Rng rng(seed);
    Cycles span = window.end > window.begin
                      ? window.end - window.begin
                      : 1;
    for (size_t i = 0; i < count; ++i) {
        FaultEvent e;
        e.atCycle = window.begin + rng.below(span);
        e.kind = kind;
        switch (kind) {
          case FaultKind::HeapSeu:
            e.a = rng.next();
            e.b = rng.below(32);
            break;
          case FaultKind::HeapSeuDouble: {
            e.a = rng.next();
            uint64_t b1 = rng.below(32);
            // A distinct second bit, so the flip is genuinely
            // two-bit and defeats SECDED correction.
            uint64_t b2 = (b1 + 1 + rng.below(31)) % 32;
            e.b = b1 | (b2 << 8);
            break;
          }
          case FaultKind::OperandSeu:
            e.b = rng.below(32);
            break;
          case FaultKind::SensorDropout:
          case FaultKind::SensorStuck:
            // Long enough that the flatline detector (40 identical
            // samples) is guaranteed to trip.
            e.a = 60 + rng.below(60);
            break;
          case FaultKind::SensorNoise:
            // Burst length >= 4 guarantees three consecutive
            // alternating-sign jumps for the integrity monitor.
            e.a = 80 + rng.below(80);
            e.b = 1600 + rng.below(800);
            break;
          case FaultKind::ChanDrop:
          case FaultKind::ChanDup:
            break;
          case FaultKind::ChanOverflowBurst:
            // More junk words than any sane channelCapacity.
            e.a = 24 + rng.below(24);
            break;
          case FaultKind::MbMemSeu:
            e.a = rng.next();
            e.b = rng.below(32);
            break;
          case FaultKind::LambdaWedge:
            // Longer than the default watchdog timeout (8 ticks =
            // 2M cycles), so the hang is detected, never ridden out.
            e.a = 2'500'000 + rng.below(1'000'000);
            break;
        }
        plan.events.push_back(e);
    }
    std::stable_sort(plan.events.begin(), plan.events.end(),
                     [](const FaultEvent &x, const FaultEvent &y) {
                         return x.atCycle < y.atCycle;
                     });
    return plan;
}

} // namespace zarf::fault
