/**
 * @file
 * Seeded fault-injection campaigns over the two-layer ICD system.
 *
 * A campaign sweeps thousands of independent scenarios. Each
 * scenario derives — from its index and seed alone — a heart rhythm
 * flavor (steady sinus, or a VT episode that draws therapy), a
 * memory-protection model, and a single-kind FaultPlan, then runs
 * the full co-simulation under that plan and classifies the result
 * against a fault-free golden run of the same flavor:
 *
 *  - Masked: no detection fired and the pacing output is
 *    bit-identical to golden (the fault landed in dead state);
 *  - DetectedRecovered: some detector fired (ECC, watchdog, sensor
 *    integrity, FIFO tags, monitor cross-check) and the system kept
 *    meeting its deadlines outside the bounded recovery blackouts;
 *  - MissedDeadline: a 5 ms deadline was missed outside every
 *    recovery-grace window, or the λ-layer died with no fallback;
 *  - SilentCorruption: the pacing output diverged from golden and
 *    *nothing* detected it — the failure mode the architecture's
 *    protections exist to rule out.
 *
 * Campaigns are deterministic: the same (scenarios, seedBase) yields
 * a bit-identical report — including the JSON rendering — on any
 * thread count (verify/parallel.hh's shardMap discipline).
 */

#ifndef ZARF_FAULT_CAMPAIGN_HH
#define ZARF_FAULT_CAMPAIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fault/plan.hh"
#include "machine/machine.hh"
#include "verify/budget.hh"
#include "verify/supervise.hh"

namespace zarf::fault
{

/** Scenario classification (see file comment). */
enum class Outcome : uint8_t
{
    Masked = 0,
    DetectedRecovered,
    MissedDeadline,
    SilentCorruption,
    /** The scenario's verify::Budget tripped terminally (λ-cycle or
     *  heap ceiling, or a host-time/cancel trip that exhausted its
     *  retries) before the run completed. The partial observations
     *  are kept; the verdict is this, not a guess. */
    BudgetExceeded,
};

constexpr size_t kNumOutcomes = 5;

/** Stable display name (JSON keys). */
const char *outcomeName(Outcome o);

/**
 * How scenarios obtain a warm machine (docs/PERF.md,
 * "Campaign-scale execution"). Strategies trade construction work
 * for shared artifacts; none of them may affect the report — the
 * differential suite (tests/test_machine_snapshot.cc) holds all
 * three to byte-identical JSON on every thread count.
 */
enum class LoadStrategy : uint8_t
{
    /** Parse and predecode the image per scenario, rebuild golden
     *  runs per campaign (the original path; kept as the reference
     *  for the differential suite). */
    Cold = 0,
    /** Build one immutable machine::LoadedImage per campaign and
     *  share it across scenarios and goldens; golden shock logs are
     *  cached process-wide by content. */
    Shared,
    /** Shared, plus each scenario forks from a warm system snapshot
     *  the golden run captured at its fault window's start, skipping
     *  re-execution of the fault-free prefix. */
    Fork,
};

/** Campaign sizing. */
struct CampaignConfig
{
    /** Independent scenarios to run. The scenario space cycles with
     *  period 44 (11 fault kinds x 2 rhythm flavors x 2 protection
     *  models), so any multiple of 44 covers every combination
     *  evenly. */
    size_t scenarios = 1012;
    /** Worker threads; 0 = hardware concurrency. Never affects the
     *  report, only wall-clock time. */
    unsigned threads = 0;
    /** Base of the deterministic per-scenario seed derivation. */
    uint64_t seedBase = 1;
    /** Simulated seconds for steady-sinus scenarios. */
    double sinusSeconds = 2.0;
    /** Simulated seconds for VT-episode scenarios. Detection needs
     *  18 of 24 RR intervals under 360 ms — about 6 s of VT after
     *  the 1 s onset — so 9 s covers detection, the ATP burst, and
     *  conversion. */
    double vtSeconds = 9.0;
    /** Warm-machine strategy. Not part of the report's JSON: the
     *  report is a function of (scenarios, seedBase, seconds) only,
     *  whatever strategy produced it. */
    LoadStrategy strategy = LoadStrategy::Fork;
    /** λ-machine dispatch tier for the systems the campaign builds.
     *  Like the strategy, never part of the report: the
     *  cycle-accurate tiers are bit-identical, so the verdicts —
     *  and the JSON — must not depend on this knob (the threaded
     *  tier just sweeps faster). FastFunctional is rejected by the
     *  co-simulation (it has no λ cycle clock to schedule by). */
    DispatchTier lambdaTier = DispatchTier::Uop;

    // ---- Resilience (docs/RESILIENCE.md, "Harness resilience") ----

    /** Per-scenario budget. Inactive by default. λ-cycle and heap
     *  ceilings are deterministic (functions of simulated state):
     *  they trip on the same slice for every tier and thread count,
     *  so the report stays byte-identical. Host-time ceilings are
     *  transient by nature and go through the retry policy. */
    verify::BudgetSpec scenarioBudget{};
    /** Retry discipline for transient (host-time/cancel) trips. */
    verify::RetryPolicy retry{};
    /** Append-only verdict journal (verify/journal.hh); empty
     *  disables journaling. Each completed scenario's verdict is
     *  fsynced before the campaign moves on, so a killed campaign
     *  resumes from here. */
    std::string journalPath;
    /** Journal to resume from (typically == journalPath). Verdicts
     *  found here — under a matching campaign fingerprint — are
     *  adopted verbatim instead of re-run, which is what makes a
     *  resumed report byte-identical to an uninterrupted one. */
    std::string resumePath;
    /** Directory for quarantined scenario descriptors (empty
     *  disables). A scenario whose budget trips terminally is
     *  recorded here (content-addressed, with a structured verdict
     *  sidecar) while the campaign completes without it. */
    std::string quarantineDir;
};

/** One scenario's derivation plus everything observed. */
struct ScenarioResult
{
    size_t index = 0;
    uint64_t seed = 0;
    FaultKind kind = FaultKind::HeapSeu;
    bool vtFlavor = false;        ///< VT episode vs steady sinus.
    bool protectedMemory = true;  ///< heap ECC + operand parity on.

    Outcome outcome = Outcome::Masked;
    bool outputMatchesGolden = true; ///< Shock log bit-identical.
    bool detected = false;           ///< Any detector fired.

    unsigned restarts = 0;
    bool degraded = false;
    bool lambdaDown = false;
    bool monitorFaulted = false;
    bool countMismatch = false;   ///< Monitor/system episode counts
                                  ///< disagreed (cross-check).
    bool resyncRepaired = false;  ///< A resync fixed the mismatch.
    bool missedDeadline = false;  ///< Outside recovery grace.
    uint64_t eccCorrected = 0;
    uint64_t eccUncorrectable = 0;
    uint64_t chanOverflows = 0;
    uint64_t chanFaults = 0;
    uint64_t sensorAlerts = 0;
    int64_t episodes = 0;         ///< Therapy episodes delivered.
    uint64_t shockEvents = 0;

    // Resilience bookkeeping (all zero with the default, unbudgeted
    // CampaignConfig, so pre-resilience reports are unchanged in
    // substance).
    uint8_t budgetTrip = 0;  ///< verify::BudgetTrip code at the stop
                             ///< (0 = ran to completion).
    unsigned attempts = 1;   ///< Supervision attempts consumed.
    bool quarantined = false; ///< Descriptor written to quarantine.
};

/** Full campaign result. */
struct CampaignReport
{
    CampaignConfig config;
    std::vector<ScenarioResult> results; ///< In scenario order.

    /** Scenarios adopted verbatim from the resume journal. NOT part
     *  of the JSON renderings: a resumed report must be
     *  byte-identical to an uninterrupted one. */
    size_t resumedFromJournal = 0;

    size_t count(Outcome o) const;
    /** Silent corruptions among protected-memory scenarios. The
     *  architecture's hard gate: must be zero — every protected
     *  fault class is either masked or detected. */
    size_t protectedSilentCorruptions() const;

    /** Deterministic JSON rendering: fixed key order, integers
     *  only, scenario records in index order. Identical for
     *  identical (scenarios, seedBase) on any thread count. */
    std::string toJson() const;

    /** Aggregate metrics rendering (obs::Metrics::toJson schema):
     *  outcome counts, per-kind outcome histograms, and summed
     *  detector counters. Deterministic on any thread count, like
     *  toJson(). */
    std::string metricsJson() const;
};

/** Run a campaign (builds the kernel image, monitor, fallback, and
 *  golden runs internally). */
CampaignReport runCampaign(const CampaignConfig &cfg);

// ----------------------------------------------------------------
// Journal codec (exposed for tests and external tooling). Records
// are encoded field-by-field as little-endian u64s — no struct
// memcpy, so layout/padding changes can't silently corrupt old
// journals; a size change is caught by the decoder instead.
// ----------------------------------------------------------------

/** Record 0 of every campaign journal: the campaign identity the
 *  verdicts were computed under. A resume whose fingerprint differs
 *  ignores the journal (with a warning) rather than adopting
 *  verdicts from a different campaign. */
std::string campaignFingerprint(const CampaignConfig &cfg);

/** Serialize one scenario verdict for the journal. */
std::string encodeScenarioRecord(const ScenarioResult &r);

/** Decode a journal record; false (and an untouched `out`) on any
 *  size or version mismatch. */
bool decodeScenarioRecord(const std::string &rec, ScenarioResult &out);

} // namespace zarf::fault

#endif // ZARF_FAULT_CAMPAIGN_HH
