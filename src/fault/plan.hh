/**
 * @file
 * Deterministic fault plans for the two-layer system.
 *
 * A FaultPlan is a seed-derived schedule of physical upsets — heap
 * and operand SEUs, ECG front-end failures, inter-layer FIFO faults,
 * imperative-core memory flips, and λ-pipeline wedges — applied by
 * TwoLayerSystem at scheduled λ-clock cycles. Plans are pure data:
 * the same (kind, seed, window) always yields the same events, so
 * fault campaigns are reproducible bit-for-bit across hosts and
 * thread counts (the determinism discipline of verify/parallel.hh).
 *
 * The plan also carries the *protection model*: with heapEcc on
 * (default), single-bit heap SEUs are corrected in place by the
 * SECDED code and double-bit SEUs become uncorrectable MemFaults;
 * with operandParity on, operand-path SEUs are detected rather than
 * silently consumed. Turning either off models an unprotected
 * memory, where the raw bit flip lands in live state.
 */

#ifndef ZARF_FAULT_PLAN_HH
#define ZARF_FAULT_PLAN_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/types.hh"

namespace zarf::fault
{

/** The injectable fault classes. */
enum class FaultKind : uint8_t
{
    HeapSeu = 0,       ///< 1-bit flip of an allocated heap word.
                       ///< a = word selector, b = bit.
    HeapSeuDouble,     ///< 2-bit flip of one heap word (defeats
                       ///< SECDED correction). a = word selector,
                       ///< b = two packed bit positions (b & 0xff,
                       ///< (b >> 8) & 0xff).
    OperandSeu,        ///< 1-bit flip of the in-flight value
                       ///< register. b = bit.
    SensorDropout,     ///< ECG front-end reads 0. a = duration in
                       ///< samples.
    SensorStuck,       ///< ECG front-end repeats the last good
                       ///< sample. a = duration in samples.
    SensorNoise,       ///< Alternating-sign noise burst on the ECG.
                       ///< a = duration in samples, b = amplitude.
    ChanDrop,          ///< The next λ->mb channel word is lost.
    ChanDup,           ///< The next λ->mb channel word is duplicated.
    ChanOverflowBurst, ///< a junk words slam the bounded FIFO.
    MbMemSeu,          ///< 1-bit flip of an imperative-core data
                       ///< memory word (unprotected BRAM). a = word
                       ///< selector, b = bit.
    LambdaWedge,       ///< The λ pipeline stops retiring while its
                       ///< clock keeps counting (PLL/control hang).
                       ///< a = duration in λ cycles.
};

constexpr size_t kNumFaultKinds = 11;

/** Stable display name of a fault kind (used in JSON reports). */
const char *faultKindName(FaultKind k);

/** One scheduled fault. */
struct FaultEvent
{
    Cycles atCycle = 0; ///< λ-clock cycle at (or just after) which
                        ///< the fault strikes.
    FaultKind kind = FaultKind::HeapSeu;
    uint64_t a = 0;     ///< Kind-specific parameter (see FaultKind).
    uint64_t b = 0;     ///< Kind-specific parameter (see FaultKind).
};

/** A full injection schedule plus the protection model. */
struct FaultPlan
{
    /** Events sorted by atCycle (TwoLayerSystem applies them with a
     *  single forward cursor). */
    std::vector<FaultEvent> events;

    /** Auxiliary-randomness seed (noise-burst magnitudes). */
    uint64_t seed = 0;

    /** SECDED on heap words: single-bit SEUs are corrected at the
     *  injection site, double-bit SEUs raise MemFault. Off = flips
     *  land in live heap words. */
    bool heapEcc = true;

    /** Parity on the operand path: operand SEUs raise MemFault.
     *  Off = the flipped word is consumed. */
    bool operandParity = true;

    bool empty() const { return events.empty(); }
};

/** Injection window in λ cycles, [begin, end). */
struct FaultWindow
{
    Cycles begin = 0;
    Cycles end = 0;
};

/**
 * Build a plan of `count` events of one kind at seed-derived cycles
 * inside `window`, with seed-derived kind parameters. Deterministic:
 * identical arguments yield an identical plan.
 */
FaultPlan singleKindPlan(FaultKind kind, uint64_t seed,
                         FaultWindow window, size_t count = 1);

} // namespace zarf::fault

#endif // ZARF_FAULT_PLAN_HH
