#include "fault/campaign.hh"

#include <memory>

#include "ecg/synth.hh"
#include "icd/baseline.hh"
#include "icd/zarf_icd.hh"
#include "obs/metrics.hh"
#include "support/logging.hh"
#include "system/system.hh"
#include "verify/parallel.hh"

namespace zarf::fault
{

namespace
{

/** Fixed heart seeds: every scenario of a flavor shares the clean
 *  rhythm, so one golden run per flavor serves the whole campaign. */
constexpr uint64_t kSinusHeartSeed = 42;
constexpr uint64_t kVtHeartSeed = 5;

/** VT onset for the episode flavor; the sweep window then spans
 *  detection and therapy delivery. */
constexpr double kVtOnsetSeconds = 1.0;

/** Injection windows in λ cycles. Sinus: [0.3 s, 1.5 s) of a 2 s
 *  run; VT: [1.5 s, 7.5 s) of a 9 s run — across VT onset,
 *  detection, and the ATP burst (therapy starts near 7 s), where a
 *  fault can do the most damage. */
constexpr FaultWindow kSinusWindow{ 15'000'000, 75'000'000 };
constexpr FaultWindow kVtWindow{ 75'000'000, 375'000'000 };

std::unique_ptr<ecg::Heart>
makeHeart(bool vtFlavor)
{
    if (vtFlavor)
        return std::make_unique<ecg::ResponsiveHeart>(
            kVtOnsetSeconds, 75.0, 190.0, 8, kVtHeartSeed);
    return std::make_unique<ecg::ScriptedHeart>(
        std::vector<ecg::ScriptedHeart::Segment>{ { 600.0, 75.0 } },
        kSinusHeartSeed);
}

/** The fault-free reference output for one rhythm flavor. */
struct Golden
{
    std::vector<sys::ShockEvent> shocks;
};

Golden
goldenRun(const Image &image, const mblaze::MbProgram &monitor,
          const mblaze::MbProgram &fallback, bool vtFlavor,
          const CampaignConfig &ccfg)
{
    auto heart = makeHeart(vtFlavor);
    sys::SystemConfig scfg;
    scfg.fallbackProgram = fallback;
    sys::TwoLayerSystem system(image, monitor, *heart, scfg);
    double seconds = vtFlavor ? ccfg.vtSeconds : ccfg.sinusSeconds;
    system.runForMs(seconds * 1000.0);
    return Golden{ system.shocks() };
}

ScenarioResult
runScenario(const Image &image, const mblaze::MbProgram &monitor,
            const mblaze::MbProgram &fallback, const Golden &golden,
            size_t index, uint64_t seed, const CampaignConfig &ccfg)
{
    ScenarioResult r;
    r.index = index;
    r.seed = seed;
    // The scenario space cycles through kind, then rhythm flavor,
    // then protection model, with period 44.
    r.kind = FaultKind(index % kNumFaultKinds);
    r.vtFlavor = (index / kNumFaultKinds) % 2 == 1;
    r.protectedMemory = (index / (2 * kNumFaultKinds)) % 2 == 0;

    FaultPlan plan = singleKindPlan(
        r.kind, seed, r.vtFlavor ? kVtWindow : kSinusWindow, 1);
    plan.heapEcc = r.protectedMemory;
    plan.operandParity = r.protectedMemory;

    auto heart = makeHeart(r.vtFlavor);
    sys::SystemConfig scfg;
    scfg.fallbackProgram = fallback;
    scfg.faultPlan = std::move(plan);
    sys::TwoLayerSystem system(image, monitor, *heart, scfg);
    double seconds = r.vtFlavor ? ccfg.vtSeconds : ccfg.sinusSeconds;
    system.runForMs(seconds * 1000.0);

    // Output integrity: bit-diff of the pacing log (timestamps and
    // values) against the fault-free golden run.
    {
        const auto &log = system.shocks();
        r.shockEvents = log.size();
        r.outputMatchesGolden = log.size() == golden.shocks.size();
        if (r.outputMatchesGolden) {
            for (size_t k = 0; k < log.size(); ++k) {
                if (log[k].lambdaCycle !=
                        golden.shocks[k].lambdaCycle ||
                    log[k].value != golden.shocks[k].value) {
                    r.outputMatchesGolden = false;
                    break;
                }
            }
        }
    }

    r.restarts = system.watchdogRestarts();
    r.degraded = system.degraded();
    r.lambdaDown = system.lambdaDown();
    r.missedDeadline = system.missedDeadlineOutsideRecovery();
    r.eccCorrected = system.eccCorrectedFaults();
    r.eccUncorrectable = system.eccUncorrectableFaults();
    r.chanOverflows = system.channelOverflows();
    r.chanFaults = system.channelFaultsDetected();
    r.sensorAlerts = system.sensorAlerts().size();
    r.episodes = system.persistedEpisodes();

    // Cross-check the monitor's episode count against the system's
    // persisted count; a disagreement means an undetected flip got
    // into one of them — detect it here and repair by state replay.
    auto q = system.queryTreatments();
    r.monitorFaulted = system.monitorFault().has_value();
    if (q.has_value() && *q != system.persistedEpisodes()) {
        r.countMismatch = true;
        system.resyncMonitor();
        system.runForMs(5.0);
        auto again = system.queryTreatments();
        r.resyncRepaired = again.has_value() &&
                           *again == system.persistedEpisodes();
    }

    r.detected = r.restarts > 0 || r.eccCorrected > 0 ||
                 r.eccUncorrectable > 0 || r.chanFaults > 0 ||
                 r.chanOverflows > 0 || r.sensorAlerts > 0 ||
                 r.monitorFaulted || r.countMismatch;

    bool missed = r.missedDeadline || r.lambdaDown;
    if (missed)
        r.outcome = Outcome::MissedDeadline;
    else if (!r.outputMatchesGolden && !r.detected)
        r.outcome = Outcome::SilentCorruption;
    else if (r.detected)
        r.outcome = Outcome::DetectedRecovered;
    else
        r.outcome = Outcome::Masked;
    return r;
}

} // namespace

const char *
outcomeName(Outcome o)
{
    switch (o) {
      case Outcome::Masked:
        return "masked";
      case Outcome::DetectedRecovered:
        return "detected-recovered";
      case Outcome::MissedDeadline:
        return "missed-deadline";
      case Outcome::SilentCorruption:
        return "silent-corruption";
    }
    return "?";
}

size_t
CampaignReport::count(Outcome o) const
{
    size_t n = 0;
    for (const ScenarioResult &r : results)
        n += r.outcome == o ? 1 : 0;
    return n;
}

size_t
CampaignReport::protectedSilentCorruptions() const
{
    size_t n = 0;
    for (const ScenarioResult &r : results)
        n += (r.protectedMemory &&
              r.outcome == Outcome::SilentCorruption)
                 ? 1
                 : 0;
    return n;
}

std::string
CampaignReport::toJson() const
{
    std::string s;
    s += "{\n";
    s += strprintf("  \"scenarios\": %llu,\n",
                   (unsigned long long)results.size());
    s += strprintf("  \"seedBase\": %llu,\n",
                   (unsigned long long)config.seedBase);
    s += "  \"outcomes\": {";
    for (size_t o = 0; o < kNumOutcomes; ++o) {
        s += strprintf("%s\"%s\": %llu", o ? ", " : " ",
                       outcomeName(Outcome(o)),
                       (unsigned long long)count(Outcome(o)));
    }
    s += " },\n";
    s += strprintf("  \"protectedSilentCorruptions\": %llu,\n",
                   (unsigned long long)protectedSilentCorruptions());

    // Outcome counts per fault kind, in kind order.
    s += "  \"byKind\": [\n";
    for (size_t k = 0; k < kNumFaultKinds; ++k) {
        size_t per[kNumOutcomes] = {};
        for (const ScenarioResult &r : results)
            if (r.kind == FaultKind(k))
                ++per[size_t(r.outcome)];
        s += strprintf("    { \"kind\": \"%s\"",
                       faultKindName(FaultKind(k)));
        for (size_t o = 0; o < kNumOutcomes; ++o)
            s += strprintf(", \"%s\": %llu",
                           outcomeName(Outcome(o)),
                           (unsigned long long)per[o]);
        s += k + 1 < kNumFaultKinds ? " },\n" : " }\n";
    }
    s += "  ],\n";

    s += "  \"results\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const ScenarioResult &r = results[i];
        s += strprintf(
            "    { \"index\": %llu, \"seed\": %llu, "
            "\"kind\": \"%s\", \"vt\": %d, \"protected\": %d, "
            "\"outcome\": \"%s\", \"outputMatch\": %d, "
            "\"detected\": %d, \"restarts\": %u, \"degraded\": %d, "
            "\"lambdaDown\": %d, \"monitorFault\": %d, "
            "\"countMismatch\": %d, \"resyncRepaired\": %d, "
            "\"missedDeadline\": %d, \"eccCorrected\": %llu, "
            "\"eccUncorrectable\": %llu, \"chanOverflows\": %llu, "
            "\"chanFaults\": %llu, \"sensorAlerts\": %llu, "
            "\"episodes\": %lld, \"shockEvents\": %llu }%s\n",
            (unsigned long long)r.index, (unsigned long long)r.seed,
            faultKindName(r.kind), int(r.vtFlavor),
            int(r.protectedMemory), outcomeName(r.outcome),
            int(r.outputMatchesGolden), int(r.detected), r.restarts,
            int(r.degraded), int(r.lambdaDown), int(r.monitorFaulted),
            int(r.countMismatch), int(r.resyncRepaired),
            int(r.missedDeadline),
            (unsigned long long)r.eccCorrected,
            (unsigned long long)r.eccUncorrectable,
            (unsigned long long)r.chanOverflows,
            (unsigned long long)r.chanFaults,
            (unsigned long long)r.sensorAlerts,
            (long long)r.episodes,
            (unsigned long long)r.shockEvents,
            i + 1 < results.size() ? "," : "");
    }
    s += "  ]\n";
    s += "}\n";
    return s;
}

std::string
CampaignReport::metricsJson() const
{
    obs::Metrics m;
    m.setCounter("campaign.scenarios", results.size());
    m.setCounter("campaign.seed-base", config.seedBase);
    m.setCounter("campaign.protected-silent-corruptions",
                 protectedSilentCorruptions());
    for (size_t o = 0; o < kNumOutcomes; ++o)
        m.setCounter(std::string("campaign.outcome.") +
                         outcomeName(Outcome(o)),
                     count(Outcome(o)));

    uint64_t restarts = 0, degraded = 0, lambdaDown = 0;
    uint64_t monFaults = 0, mismatches = 0, repaired = 0, missed = 0;
    uint64_t ecc = 0, eccU = 0, overflows = 0, chanFaults = 0;
    uint64_t alerts = 0, shocks = 0;
    for (const ScenarioResult &r : results) {
        restarts += r.restarts;
        degraded += r.degraded ? 1 : 0;
        lambdaDown += r.lambdaDown ? 1 : 0;
        monFaults += r.monitorFaulted ? 1 : 0;
        mismatches += r.countMismatch ? 1 : 0;
        repaired += r.resyncRepaired ? 1 : 0;
        missed += r.missedDeadline ? 1 : 0;
        ecc += r.eccCorrected;
        eccU += r.eccUncorrectable;
        overflows += r.chanOverflows;
        chanFaults += r.chanFaults;
        alerts += r.sensorAlerts;
        shocks += r.shockEvents;
    }
    m.setCounter("campaign.watchdog-restarts", restarts);
    m.setCounter("campaign.degraded", degraded);
    m.setCounter("campaign.lambda-down", lambdaDown);
    m.setCounter("campaign.monitor-faults", monFaults);
    m.setCounter("campaign.count-mismatches", mismatches);
    m.setCounter("campaign.resync-repaired", repaired);
    m.setCounter("campaign.missed-deadlines", missed);
    m.setCounter("campaign.ecc-corrected", ecc);
    m.setCounter("campaign.ecc-uncorrectable", eccU);
    m.setCounter("campaign.chan-overflows", overflows);
    m.setCounter("campaign.chan-faults", chanFaults);
    m.setCounter("campaign.sensor-alerts", alerts);
    m.setCounter("campaign.shock-events", shocks);

    // One histogram per outcome, bucketed by fault kind (kind order).
    for (size_t o = 0; o < kNumOutcomes; ++o) {
        std::string hist =
            std::string("campaign.by-kind.") + outcomeName(Outcome(o));
        for (size_t k = 0; k < kNumFaultKinds; ++k) {
            uint64_t n = 0;
            for (const ScenarioResult &r : results)
                if (r.kind == FaultKind(k) &&
                    r.outcome == Outcome(o))
                    ++n;
            m.addBucket(hist, faultKindName(FaultKind(k)), n);
        }
    }
    return m.toJson();
}

CampaignReport
runCampaign(const CampaignConfig &cfg)
{
    const Image image = icd::buildKernelImage();
    const mblaze::MbProgram monitor = icd::monitorProgram();
    const mblaze::MbProgram fallback = icd::baselineIcdProgram();

    const Golden goldenSinus =
        goldenRun(image, monitor, fallback, false, cfg);
    // Scenario indices 11..21 (mod 44) are the VT flavor; skip its
    // golden when a tiny campaign never reaches them.
    const bool anyVt = cfg.scenarios > kNumFaultKinds;
    const Golden goldenVt =
        anyVt ? goldenRun(image, monitor, fallback, true, cfg)
              : Golden{};

    verify::ParallelConfig pcfg;
    pcfg.threads = cfg.threads;
    pcfg.seedBase = cfg.seedBase;
    pcfg.shards = cfg.scenarios;

    CampaignReport report;
    report.config = cfg;
    report.results =
        verify::shardMap(pcfg, [&](size_t i, uint64_t seed) {
            bool vt = (i / kNumFaultKinds) % 2 == 1;
            return runScenario(image, monitor, fallback,
                               vt ? goldenVt : goldenSinus, i, seed,
                               cfg);
        });
    return report;
}

} // namespace zarf::fault
