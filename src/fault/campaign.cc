#include "fault/campaign.hh"

#include <atomic>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "ecg/synth.hh"
#include "icd/baseline.hh"
#include "icd/zarf_icd.hh"
#include "machine/loaded_image.hh"
#include "obs/metrics.hh"
#include "support/logging.hh"
#include "system/system.hh"
#include "verify/journal.hh"
#include "verify/parallel.hh"
#include "verify/quarantine.hh"

namespace zarf::fault
{

namespace
{

/** Fixed heart seeds: every scenario of a flavor shares the clean
 *  rhythm, so one golden run per flavor serves the whole campaign. */
constexpr uint64_t kSinusHeartSeed = 42;
constexpr uint64_t kVtHeartSeed = 5;

/** VT onset for the episode flavor; the sweep window then spans
 *  detection and therapy delivery. */
constexpr double kVtOnsetSeconds = 1.0;

/** Injection windows in λ cycles. Sinus: [0.3 s, 1.5 s) of a 2 s
 *  run; VT: [1.5 s, 7.5 s) of a 9 s run — across VT onset,
 *  detection, and the ATP burst (therapy starts near 7 s), where a
 *  fault can do the most damage. */
constexpr FaultWindow kSinusWindow{ 15'000'000, 75'000'000 };
constexpr FaultWindow kVtWindow{ 75'000'000, 375'000'000 };

std::unique_ptr<ecg::Heart>
makeHeart(bool vtFlavor)
{
    if (vtFlavor)
        return std::make_unique<ecg::ResponsiveHeart>(
            kVtOnsetSeconds, 75.0, 190.0, 8, kVtHeartSeed);
    return std::make_unique<ecg::ScriptedHeart>(
        std::vector<ecg::ScriptedHeart::Segment>{ { 600.0, 75.0 } },
        kSinusHeartSeed);
}

/** The fault-free reference output for one rhythm flavor, plus —
 *  when built for the Shared/Fork strategies — the warm state the
 *  Fork strategy resumes scenarios from. */
struct Golden
{
    std::vector<sys::ShockEvent> shocks;
    /** System state at the first slice boundary at/after the fault
     *  window's begin; null when the run ends before the window
     *  opens, or when the golden was built for the Cold strategy. */
    std::shared_ptr<const sys::SystemSnapshot> warm;
    /** The heart at the same instant; scenarios clone it again so
     *  each fork owns a private, mid-stream heart. */
    std::shared_ptr<const ecg::Heart> warmHeart;
    /** Absolute λ-cycle the run ends at. */
    Cycles finalTarget = 0;
};

/** The λ-cycle target runForMs(seconds · 1000) computes from cycle
 *  0 — the same floating-point expression, so a run split at a
 *  snapshot point and an unsplit run land on the same cycle. */
Cycles
targetFor(double seconds)
{
    return Cycles(seconds * 1000.0 * double(sys::kLambdaHz) /
                  1000.0);
}

/** Fault-free reference, Cold strategy: the original path, kept
 *  verbatim as the differential baseline. */
Golden
goldenRun(const Image &image, const mblaze::MbProgram &monitor,
          const mblaze::MbProgram &fallback, bool vtFlavor,
          const CampaignConfig &ccfg)
{
    auto heart = makeHeart(vtFlavor);
    sys::SystemConfig scfg;
    scfg.fallbackProgram = fallback;
    scfg.lambdaTier = ccfg.lambdaTier;
    sys::TwoLayerSystem system(image, monitor, *heart, scfg);
    double seconds = vtFlavor ? ccfg.vtSeconds : ccfg.sinusSeconds;
    system.runForMs(seconds * 1000.0);
    Golden g;
    g.shocks = system.shocks();
    return g;
}

/** Fault-free reference over the shared LoadedImage, capturing warm
 *  fork state at the fault window's start. Splitting the run at a
 *  slice boundary replays the identical slice sequence, so the
 *  shock log matches goldenRun() bit for bit. */
Golden
goldenRunWarm(std::shared_ptr<const LoadedImage> li,
              const mblaze::MbProgram &monitor,
              const mblaze::MbProgram &fallback, bool vtFlavor,
              double seconds)
{
    auto heart = makeHeart(vtFlavor);
    sys::SystemConfig scfg;
    scfg.fallbackProgram = fallback;
    sys::TwoLayerSystem system(li, monitor, *heart, scfg);
    Golden g;
    g.finalTarget = targetFor(seconds);
    Cycles windowBegin =
        (vtFlavor ? kVtWindow : kSinusWindow).begin;
    if (windowBegin < g.finalTarget) {
        system.runUntil(windowBegin);
        if (std::shared_ptr<const ecg::Heart> h = heart->clone()) {
            g.warm = system.snapshot();
            g.warmHeart = std::move(h);
        }
    }
    system.runUntil(g.finalTarget);
    g.shocks = system.shocks();
    return g;
}

uint64_t
fnv1a(uint64_t h, const void *data, size_t len)
{
    const unsigned char *p =
        static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Content hash of everything a golden run reads. Hashes MbProgram
 *  instructions field-wise (no struct padding). */
uint64_t
goldenKey(const Image &image, const mblaze::MbProgram &monitor,
          const mblaze::MbProgram &fallback, bool vtFlavor,
          double seconds)
{
    uint64_t h = 0xcbf29ce484222325ull;
    h = fnv1a(h, image.data(), image.size() * sizeof(Word));
    auto mixProgram = [&h](const mblaze::MbProgram &p) {
        for (const mblaze::Instr &in : p.code) {
            uint32_t packed[2] = {
                (uint32_t(in.opc) << 24) | (uint32_t(in.rd) << 16) |
                    (uint32_t(in.ra) << 8) | uint32_t(in.rb),
                uint32_t(in.imm),
            };
            h = fnv1a(h, packed, sizeof(packed));
        }
        h = fnv1a(h, "|", 1);
    };
    mixProgram(monitor);
    mixProgram(fallback);
    unsigned char vt = vtFlavor ? 1 : 0;
    h = fnv1a(h, &vt, 1);
    h = fnv1a(h, &seconds, sizeof(seconds));
    return h;
}

/**
 * Process-wide golden cache. Bench sweeps call runCampaign many
 * times with only the seed base varying; goldens are fault-free and
 * so seed-independent, which makes them shareable across runs of
 * the same (image, monitor, fallback, flavor, seconds). The Cold
 * strategy bypasses this entirely. A concurrent miss may compute
 * the golden twice; both computations are deterministic and
 * identical, and the first insert wins.
 */
std::shared_ptr<const Golden>
cachedGolden(std::shared_ptr<const LoadedImage> li,
             const mblaze::MbProgram &monitor,
             const mblaze::MbProgram &fallback, bool vtFlavor,
             double seconds)
{
    static std::mutex mu;
    static std::map<uint64_t, std::shared_ptr<const Golden>> cache;
    uint64_t key =
        goldenKey(li->image, monitor, fallback, vtFlavor, seconds);
    {
        std::lock_guard lk(mu);
        auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
    }
    auto g = std::make_shared<const Golden>(
        goldenRunWarm(std::move(li), monitor, fallback, vtFlavor,
                      seconds));
    std::lock_guard lk(mu);
    return cache.emplace(key, std::move(g)).first->second;
}

ScenarioResult
runScenario(const Image &image,
            const std::shared_ptr<const LoadedImage> &li,
            const mblaze::MbProgram &monitor,
            const mblaze::MbProgram &fallback, const Golden &golden,
            size_t index, uint64_t seed, const CampaignConfig &ccfg,
            verify::Budget *budget)
{
    ScenarioResult r;
    r.index = index;
    r.seed = seed;
    // The scenario space cycles through kind, then rhythm flavor,
    // then protection model, with period 44.
    r.kind = FaultKind(index % kNumFaultKinds);
    r.vtFlavor = (index / kNumFaultKinds) % 2 == 1;
    r.protectedMemory = (index / (2 * kNumFaultKinds)) % 2 == 0;

    FaultPlan plan = singleKindPlan(
        r.kind, seed, r.vtFlavor ? kVtWindow : kSinusWindow, 1);
    plan.heapEcc = r.protectedMemory;
    plan.operandParity = r.protectedMemory;

    sys::SystemConfig scfg;
    scfg.fallbackProgram = fallback;
    scfg.lambdaTier = ccfg.lambdaTier;
    scfg.faultPlan = std::move(plan);
    scfg.budget = budget;
    double seconds = r.vtFlavor ? ccfg.vtSeconds : ccfg.sinusSeconds;

    std::unique_ptr<ecg::Heart> heart;
    std::optional<sys::TwoLayerSystem> holder;
    if (ccfg.strategy == LoadStrategy::Cold || !li) {
        heart = makeHeart(r.vtFlavor);
        holder.emplace(image, monitor, *heart, scfg);
        holder->runForMs(seconds * 1000.0);
    } else if (ccfg.strategy == LoadStrategy::Fork && golden.warm) {
        // Fork: resume from the golden run's warm state at the
        // fault window's start. Sound because every plan event sits
        // at/after the window's begin and the fault RNG is untouched
        // until a fault is active, so the warm state is exactly what
        // a cold run reaches at that slice boundary; restore() keeps
        // this scenario's own fault context since its plan differs
        // from the (empty) golden plan.
        heart = golden.warmHeart->clone();
        holder.emplace(li, monitor, *heart, scfg);
        holder->restore(*golden.warm);
        holder->runUntil(golden.finalTarget);
    } else {
        heart = makeHeart(r.vtFlavor);
        holder.emplace(li, monitor, *heart, scfg);
        holder->runUntil(golden.finalTarget);
    }
    sys::TwoLayerSystem &system = *holder;

    // Output integrity: bit-diff of the pacing log (timestamps and
    // values) against the fault-free golden run.
    {
        const auto &log = system.shocks();
        r.shockEvents = log.size();
        r.outputMatchesGolden = log.size() == golden.shocks.size();
        if (r.outputMatchesGolden) {
            for (size_t k = 0; k < log.size(); ++k) {
                if (log[k].lambdaCycle !=
                        golden.shocks[k].lambdaCycle ||
                    log[k].value != golden.shocks[k].value) {
                    r.outputMatchesGolden = false;
                    break;
                }
            }
        }
    }

    r.restarts = system.watchdogRestarts();
    r.degraded = system.degraded();
    r.lambdaDown = system.lambdaDown();
    r.missedDeadline = system.missedDeadlineOutsideRecovery();
    r.eccCorrected = system.eccCorrectedFaults();
    r.eccUncorrectable = system.eccUncorrectableFaults();
    r.chanOverflows = system.channelOverflows();
    r.chanFaults = system.channelFaultsDetected();
    r.sensorAlerts = system.sensorAlerts().size();
    r.episodes = system.persistedEpisodes();

    // Cross-check the monitor's episode count against the system's
    // persisted count; a disagreement means an undetected flip got
    // into one of them — detect it here and repair by state replay.
    auto q = system.queryTreatments();
    r.monitorFaulted = system.monitorFault().has_value();
    if (q.has_value() && *q != system.persistedEpisodes()) {
        r.countMismatch = true;
        system.resyncMonitor();
        system.runForMs(5.0);
        auto again = system.queryTreatments();
        r.resyncRepaired = again.has_value() &&
                           *again == system.persistedEpisodes();
    }

    r.detected = r.restarts > 0 || r.eccCorrected > 0 ||
                 r.eccUncorrectable > 0 || r.chanFaults > 0 ||
                 r.chanOverflows > 0 || r.sensorAlerts > 0 ||
                 r.monitorFaulted || r.countMismatch;

    bool missed = r.missedDeadline || r.lambdaDown;
    if (missed)
        r.outcome = Outcome::MissedDeadline;
    else if (!r.outputMatchesGolden && !r.detected)
        r.outcome = Outcome::SilentCorruption;
    else if (r.detected)
        r.outcome = Outcome::DetectedRecovered;
    else
        r.outcome = Outcome::Masked;

    // A tripped budget overrides the classification: the run was cut
    // short, so the bit-diff and detector observations above are
    // partial — recorded, but not a verdict.
    if (budget) {
        verify::BudgetTrip t = budget->tripped();
        if (t != verify::BudgetTrip::None) {
            r.budgetTrip = uint8_t(t);
            r.outcome = Outcome::BudgetExceeded;
        }
    }
    return r;
}

/** Quarantine descriptor for a scenario whose budget tripped
 *  terminally: enough to re-derive and replay the scenario by hand
 *  (the campaign's inputs are (index, seed) — there is no input
 *  file to capture). */
std::string
scenarioDescriptor(const ScenarioResult &r)
{
    return strprintf("zarf campaign scenario\n"
                     "index %llu\nseed %llu\nkind %s\nvt %d\n"
                     "protected %d\n",
                     (unsigned long long)r.index,
                     (unsigned long long)r.seed,
                     faultKindName(r.kind), int(r.vtFlavor),
                     int(r.protectedMemory));
}

/** Structured verdict sidecar for a quarantined scenario. */
std::string
scenarioVerdict(const ScenarioResult &r)
{
    return strprintf("{ \"type\": \"campaign-scenario\", "
                     "\"index\": %llu, \"seed\": %llu, "
                     "\"kind\": \"%s\", \"vt\": %d, "
                     "\"protected\": %d, \"trip\": \"%s\", "
                     "\"attempts\": %u }\n",
                     (unsigned long long)r.index,
                     (unsigned long long)r.seed,
                     faultKindName(r.kind), int(r.vtFlavor),
                     int(r.protectedMemory),
                     verify::budgetTripName(
                         verify::BudgetTrip(r.budgetTrip)),
                     r.attempts);
}

} // namespace

const char *
outcomeName(Outcome o)
{
    switch (o) {
      case Outcome::Masked:
        return "masked";
      case Outcome::DetectedRecovered:
        return "detected-recovered";
      case Outcome::MissedDeadline:
        return "missed-deadline";
      case Outcome::SilentCorruption:
        return "silent-corruption";
      case Outcome::BudgetExceeded:
        return "budget-exceeded";
    }
    return "?";
}

size_t
CampaignReport::count(Outcome o) const
{
    size_t n = 0;
    for (const ScenarioResult &r : results)
        n += r.outcome == o ? 1 : 0;
    return n;
}

size_t
CampaignReport::protectedSilentCorruptions() const
{
    size_t n = 0;
    for (const ScenarioResult &r : results)
        n += (r.protectedMemory &&
              r.outcome == Outcome::SilentCorruption)
                 ? 1
                 : 0;
    return n;
}

std::string
CampaignReport::toJson() const
{
    std::string s;
    s += "{\n";
    s += strprintf("  \"scenarios\": %llu,\n",
                   (unsigned long long)results.size());
    s += strprintf("  \"seedBase\": %llu,\n",
                   (unsigned long long)config.seedBase);
    s += "  \"outcomes\": {";
    for (size_t o = 0; o < kNumOutcomes; ++o) {
        s += strprintf("%s\"%s\": %llu", o ? ", " : " ",
                       outcomeName(Outcome(o)),
                       (unsigned long long)count(Outcome(o)));
    }
    s += " },\n";
    s += strprintf("  \"protectedSilentCorruptions\": %llu,\n",
                   (unsigned long long)protectedSilentCorruptions());

    // Outcome counts per fault kind, in kind order.
    s += "  \"byKind\": [\n";
    for (size_t k = 0; k < kNumFaultKinds; ++k) {
        size_t per[kNumOutcomes] = {};
        for (const ScenarioResult &r : results)
            if (r.kind == FaultKind(k))
                ++per[size_t(r.outcome)];
        s += strprintf("    { \"kind\": \"%s\"",
                       faultKindName(FaultKind(k)));
        for (size_t o = 0; o < kNumOutcomes; ++o)
            s += strprintf(", \"%s\": %llu",
                           outcomeName(Outcome(o)),
                           (unsigned long long)per[o]);
        s += k + 1 < kNumFaultKinds ? " },\n" : " }\n";
    }
    s += "  ],\n";

    s += "  \"results\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const ScenarioResult &r = results[i];
        s += strprintf(
            "    { \"index\": %llu, \"seed\": %llu, "
            "\"kind\": \"%s\", \"vt\": %d, \"protected\": %d, "
            "\"outcome\": \"%s\", \"outputMatch\": %d, "
            "\"detected\": %d, \"restarts\": %u, \"degraded\": %d, "
            "\"lambdaDown\": %d, \"monitorFault\": %d, "
            "\"countMismatch\": %d, \"resyncRepaired\": %d, "
            "\"missedDeadline\": %d, \"eccCorrected\": %llu, "
            "\"eccUncorrectable\": %llu, \"chanOverflows\": %llu, "
            "\"chanFaults\": %llu, \"sensorAlerts\": %llu, "
            "\"episodes\": %lld, \"shockEvents\": %llu, "
            "\"budgetTrip\": %u, \"attempts\": %u, "
            "\"quarantined\": %d }%s\n",
            (unsigned long long)r.index, (unsigned long long)r.seed,
            faultKindName(r.kind), int(r.vtFlavor),
            int(r.protectedMemory), outcomeName(r.outcome),
            int(r.outputMatchesGolden), int(r.detected), r.restarts,
            int(r.degraded), int(r.lambdaDown), int(r.monitorFaulted),
            int(r.countMismatch), int(r.resyncRepaired),
            int(r.missedDeadline),
            (unsigned long long)r.eccCorrected,
            (unsigned long long)r.eccUncorrectable,
            (unsigned long long)r.chanOverflows,
            (unsigned long long)r.chanFaults,
            (unsigned long long)r.sensorAlerts,
            (long long)r.episodes,
            (unsigned long long)r.shockEvents,
            unsigned(r.budgetTrip), r.attempts, int(r.quarantined),
            i + 1 < results.size() ? "," : "");
    }
    s += "  ]\n";
    s += "}\n";
    return s;
}

std::string
CampaignReport::metricsJson() const
{
    obs::Metrics m;
    m.setCounter("campaign.scenarios", results.size());
    m.setCounter("campaign.seed-base", config.seedBase);
    m.setCounter("campaign.protected-silent-corruptions",
                 protectedSilentCorruptions());
    for (size_t o = 0; o < kNumOutcomes; ++o)
        m.setCounter(std::string("campaign.outcome.") +
                         outcomeName(Outcome(o)),
                     count(Outcome(o)));

    uint64_t restarts = 0, degraded = 0, lambdaDown = 0;
    uint64_t monFaults = 0, mismatches = 0, repaired = 0, missed = 0;
    uint64_t ecc = 0, eccU = 0, overflows = 0, chanFaults = 0;
    uint64_t alerts = 0, shocks = 0;
    for (const ScenarioResult &r : results) {
        restarts += r.restarts;
        degraded += r.degraded ? 1 : 0;
        lambdaDown += r.lambdaDown ? 1 : 0;
        monFaults += r.monitorFaulted ? 1 : 0;
        mismatches += r.countMismatch ? 1 : 0;
        repaired += r.resyncRepaired ? 1 : 0;
        missed += r.missedDeadline ? 1 : 0;
        ecc += r.eccCorrected;
        eccU += r.eccUncorrectable;
        overflows += r.chanOverflows;
        chanFaults += r.chanFaults;
        alerts += r.sensorAlerts;
        shocks += r.shockEvents;
    }
    m.setCounter("campaign.watchdog-restarts", restarts);
    m.setCounter("campaign.degraded", degraded);
    m.setCounter("campaign.lambda-down", lambdaDown);
    m.setCounter("campaign.monitor-faults", monFaults);
    m.setCounter("campaign.count-mismatches", mismatches);
    m.setCounter("campaign.resync-repaired", repaired);
    m.setCounter("campaign.missed-deadlines", missed);
    m.setCounter("campaign.ecc-corrected", ecc);
    m.setCounter("campaign.ecc-uncorrectable", eccU);
    m.setCounter("campaign.chan-overflows", overflows);
    m.setCounter("campaign.chan-faults", chanFaults);
    m.setCounter("campaign.sensor-alerts", alerts);
    m.setCounter("campaign.shock-events", shocks);

    uint64_t retries = 0, quarantined = 0;
    for (const ScenarioResult &r : results) {
        retries += r.attempts > 1 ? r.attempts - 1 : 0;
        quarantined += r.quarantined ? 1 : 0;
    }
    m.setCounter("campaign.retries", retries);
    m.setCounter("campaign.quarantined", quarantined);

    // One histogram per outcome, bucketed by fault kind (kind order).
    for (size_t o = 0; o < kNumOutcomes; ++o) {
        std::string hist =
            std::string("campaign.by-kind.") + outcomeName(Outcome(o));
        for (size_t k = 0; k < kNumFaultKinds; ++k) {
            uint64_t n = 0;
            for (const ScenarioResult &r : results)
                if (r.kind == FaultKind(k) &&
                    r.outcome == Outcome(o))
                    ++n;
            m.addBucket(hist, faultKindName(FaultKind(k)), n);
        }
    }
    return m.toJson();
}

// ----------------------------------------------------------------
// Journal codec. Field-by-field little-endian u64s (no struct
// memcpy/padding); a leading format-version word lets the decoder
// reject records written by a different encoder.
// ----------------------------------------------------------------

namespace
{
/** Bump when the record layout changes; old journals then decode to
 *  nothing instead of to garbage. */
constexpr uint64_t kRecordVersion = 1;
/** Version word + 25 payload fields. */
constexpr size_t kRecordWords = 26;
} // namespace

std::string
campaignFingerprint(const CampaignConfig &cfg)
{
    std::string s = "zarf-campaign-v1";
    verify::journalPutU64(s, kRecordVersion);
    verify::journalPutU64(s, cfg.scenarios);
    verify::journalPutU64(s, cfg.seedBase);
    uint64_t sinusBits, vtBits;
    static_assert(sizeof(double) == sizeof(uint64_t));
    std::memcpy(&sinusBits, &cfg.sinusSeconds, sizeof(sinusBits));
    std::memcpy(&vtBits, &cfg.vtSeconds, sizeof(vtBits));
    verify::journalPutU64(s, sinusBits);
    verify::journalPutU64(s, vtBits);
    return s;
}

std::string
encodeScenarioRecord(const ScenarioResult &r)
{
    std::string s;
    s.reserve(kRecordWords * 8);
    verify::journalPutU64(s, kRecordVersion);
    verify::journalPutU64(s, r.index);
    verify::journalPutU64(s, r.seed);
    verify::journalPutU64(s, uint64_t(r.kind));
    verify::journalPutU64(s, r.vtFlavor);
    verify::journalPutU64(s, r.protectedMemory);
    verify::journalPutU64(s, uint64_t(r.outcome));
    verify::journalPutU64(s, r.outputMatchesGolden);
    verify::journalPutU64(s, r.detected);
    verify::journalPutU64(s, r.restarts);
    verify::journalPutU64(s, r.degraded);
    verify::journalPutU64(s, r.lambdaDown);
    verify::journalPutU64(s, r.monitorFaulted);
    verify::journalPutU64(s, r.countMismatch);
    verify::journalPutU64(s, r.resyncRepaired);
    verify::journalPutU64(s, r.missedDeadline);
    verify::journalPutU64(s, r.eccCorrected);
    verify::journalPutU64(s, r.eccUncorrectable);
    verify::journalPutU64(s, r.chanOverflows);
    verify::journalPutU64(s, r.chanFaults);
    verify::journalPutU64(s, r.sensorAlerts);
    verify::journalPutU64(s, uint64_t(r.episodes));
    verify::journalPutU64(s, r.shockEvents);
    verify::journalPutU64(s, r.budgetTrip);
    verify::journalPutU64(s, r.attempts);
    verify::journalPutU64(s, r.quarantined);
    return s;
}

bool
decodeScenarioRecord(const std::string &rec, ScenarioResult &out)
{
    if (rec.size() != kRecordWords * 8)
        return false;
    size_t off = 0;
    uint64_t v[kRecordWords];
    for (size_t i = 0; i < kRecordWords; ++i)
        if (!verify::journalGetU64(rec, off, v[i]))
            return false;
    if (v[0] != kRecordVersion)
        return false;
    ScenarioResult r;
    r.index = size_t(v[1]);
    r.seed = v[2];
    if (v[3] >= kNumFaultKinds)
        return false;
    r.kind = FaultKind(v[3]);
    r.vtFlavor = v[4] != 0;
    r.protectedMemory = v[5] != 0;
    if (v[6] >= kNumOutcomes)
        return false;
    r.outcome = Outcome(v[6]);
    r.outputMatchesGolden = v[7] != 0;
    r.detected = v[8] != 0;
    r.restarts = unsigned(v[9]);
    r.degraded = v[10] != 0;
    r.lambdaDown = v[11] != 0;
    r.monitorFaulted = v[12] != 0;
    r.countMismatch = v[13] != 0;
    r.resyncRepaired = v[14] != 0;
    r.missedDeadline = v[15] != 0;
    r.eccCorrected = v[16];
    r.eccUncorrectable = v[17];
    r.chanOverflows = v[18];
    r.chanFaults = v[19];
    r.sensorAlerts = v[20];
    r.episodes = int64_t(v[21]);
    r.shockEvents = v[22];
    r.budgetTrip = uint8_t(v[23]);
    r.attempts = unsigned(v[24]);
    r.quarantined = v[25] != 0;
    out = r;
    return true;
}

CampaignReport
runCampaign(const CampaignConfig &cfg)
{
    const Image image = icd::buildKernelImage();
    const mblaze::MbProgram monitor = icd::monitorProgram();
    const mblaze::MbProgram fallback = icd::baselineIcdProgram();

    const bool cold = cfg.strategy == LoadStrategy::Cold;
    const std::shared_ptr<const LoadedImage> li =
        cold ? nullptr : LoadedImage::load(image);

    // Scenario indices 11..21 (mod 44) are the VT flavor; skip its
    // golden when a tiny campaign never reaches them.
    const bool anyVt = cfg.scenarios > kNumFaultKinds;
    std::shared_ptr<const Golden> goldenSinus, goldenVt;
    if (cold) {
        goldenSinus = std::make_shared<const Golden>(
            goldenRun(image, monitor, fallback, false, cfg));
        if (anyVt)
            goldenVt = std::make_shared<const Golden>(
                goldenRun(image, monitor, fallback, true, cfg));
    } else {
        goldenSinus = cachedGolden(li, monitor, fallback, false,
                                   cfg.sinusSeconds);
        if (anyVt)
            goldenVt = cachedGolden(li, monitor, fallback, true,
                                    cfg.vtSeconds);
    }
    if (!goldenVt)
        goldenVt = std::make_shared<const Golden>();

    // ---- Resume: adopt journaled verdicts verbatim. ----
    std::map<size_t, ScenarioResult> journaled;
    bool resumeUsable = false;
    uint64_t resumeIntactBytes = 0;
    if (!cfg.resumePath.empty()) {
        verify::JournalRead jr = verify::readJournal(cfg.resumePath);
        if (jr.ok && !jr.records.empty()) {
            if (jr.records[0] == campaignFingerprint(cfg)) {
                resumeUsable = true;
                resumeIntactBytes = jr.intactBytes;
                for (size_t k = 1; k < jr.records.size(); ++k) {
                    ScenarioResult r;
                    if (decodeScenarioRecord(jr.records[k], r) &&
                        r.index < cfg.scenarios)
                        journaled[r.index] = r;
                }
            } else {
                warn("campaign resume: %s was written by a different "
                     "campaign configuration; ignoring it",
                     cfg.resumePath.c_str());
            }
        }
    }

    // ---- Journal writer. Appends are fsynced per record, under a
    // mutex (shard completion order — harmless, the decoder indexes
    // by scenario). Resuming into the same file keeps its intact
    // prefix; any other case starts a fresh journal. ----
    std::optional<verify::JournalWriter> journal;
    const bool sameFile =
        resumeUsable && cfg.journalPath == cfg.resumePath;
    if (!cfg.journalPath.empty()) {
        if (sameFile) {
            journal.emplace(cfg.journalPath,
                            verify::JournalWriter::Mode::Resume,
                            resumeIntactBytes);
        } else {
            journal.emplace(cfg.journalPath,
                            verify::JournalWriter::Mode::Truncate);
            journal->append(campaignFingerprint(cfg));
        }
    }
    std::mutex journalMu;

    const bool budgeted = cfg.scenarioBudget.any();
    std::atomic<size_t> resumedCount{ 0 };

    verify::ParallelConfig pcfg;
    pcfg.threads = cfg.threads;
    pcfg.seedBase = cfg.seedBase;
    pcfg.shards = cfg.scenarios;

    CampaignReport report;
    report.config = cfg;
    report.results =
        verify::shardMap(pcfg, [&](size_t i, uint64_t seed) {
            if (auto it = journaled.find(i); it != journaled.end()) {
                // Adopt the journaled verdict verbatim — this is
                // what makes a resumed report byte-identical to an
                // uninterrupted one. Re-journal it only into a
                // *fresh* journal (the same-file case already holds
                // the record).
                resumedCount.fetch_add(1, std::memory_order_relaxed);
                if (journal && !sameFile) {
                    std::lock_guard lk(journalMu);
                    journal->append(encodeScenarioRecord(it->second));
                }
                return it->second;
            }
            bool vt = (i / kNumFaultKinds) % 2 == 1;
            const Golden &golden = vt ? *goldenVt : *goldenSinus;
            ScenarioResult r;
            if (!budgeted) {
                r = runScenario(image, li, monitor, fallback, golden,
                                i, seed, cfg, nullptr);
            } else {
                // Supervised: transient (host-time/cancel) trips
                // retry with backoff under a fresh Budget; a
                // deterministic trip or exhausted retries is
                // terminal — record the partial observations as
                // BudgetExceeded and quarantine the descriptor so
                // the campaign completes without the scenario.
                verify::SupervisedRun sr = verify::superviseTask(
                    cfg.scenarioBudget, cfg.retry,
                    [&](verify::Budget &b, unsigned) {
                        r = runScenario(image, li, monitor, fallback,
                                        golden, i, seed, cfg, &b);
                    });
                r.attempts = sr.attempts;
                if (sr.wedged && !cfg.quarantineDir.empty()) {
                    verify::QuarantineEntry q = verify::quarantineStore(
                        cfg.quarantineDir, scenarioDescriptor(r),
                        ".scenario", scenarioVerdict(r));
                    r.quarantined = q.ok;
                }
            }
            if (journal) {
                std::lock_guard lk(journalMu);
                journal->append(encodeScenarioRecord(r));
            }
            return r;
        });
    report.resumedFromJournal = resumedCount.load();
    return report;
}

} // namespace zarf::fault
