#include "icd/spec.hh"

#include <cstddef>

using std::size_t;

namespace zarf::icd
{

namespace
{

// All arithmetic matches the λ-layer's 31-bit ALU exactly, so the
// refinement comparison against the extracted assembly is bit-level.
SWord add31(SWord a, SWord b) { return wrapInt31(int64_t(a) + b); }
SWord sub31(SWord a, SWord b) { return wrapInt31(int64_t(a) - b); }
SWord mul31(SWord a, SWord b)
{
    return wrapInt31(int64_t(a) * int64_t(b));
}
SWord div31(SWord a, SWord b) { return b ? wrapInt31(a / b) : 0; }
SWord min31(SWord a, SWord b) { return a < b ? a : b; }
SWord max31(SWord a, SWord b) { return a > b ? a : b; }

template <size_t N>
void
shiftIn(std::array<SWord, N> &line, SWord v)
{
    for (size_t i = N - 1; i > 0; --i)
        line[i] = line[i - 1];
    line[0] = v;
}

} // namespace

IcdSpec::IcdSpec()
{
    rr.fill(kRrInitMs);
}

SWord
IcdSpec::step(SWord sample)
{
    return stepTraced(sample).output;
}

StageTrace
IcdSpec::stepTraced(SWord x)
{
    StageTrace tr{};
    tr.input = x;

    // ---- Low-pass: y = 2y1 - y2 + x - 2x[n-6] + x[n-12] ----
    SWord ly = add31(
        sub31(add31(sub31(mul31(2, lpY1), lpY2), x),
              mul31(2, lpX[5])),
        lpX[11]);
    shiftIn(lpX, x);
    lpY2 = lpY1;
    lpY1 = ly;
    tr.lowpass = ly;

    // ---- High-pass: hy = hy1 + ly - ly[n-32]; f = ly[n-16] - hy/32
    SWord hy = sub31(add31(hpY1, ly), hpX[31]);
    SWord f = sub31(hpX[15], div31(hy, 32));
    shiftIn(hpX, ly);
    hpY1 = hy;
    tr.highpass = f;

    // ---- Derivative, clamp, square ----
    SWord d = div31(
        sub31(sub31(add31(mul31(2, f), dvX[0]), dvX[2]),
              mul31(2, dvX[3])),
        8);
    SWord dc = max31(min31(d, kDerivClamp), -kDerivClamp);
    SWord sq = min31(mul31(dc, dc), kSquareClamp);
    shiftIn(dvX, f);
    tr.derivative = dc;
    tr.squared = sq;

    // ---- Moving-window integration ----
    mwSum = sub31(add31(mwSum, sq), mwS[kMwLen - 1]);
    shiftIn(mwS, sq);
    SWord m = div31(mwSum, kMwLen);
    tr.mwi = m;

    // ---- Detection (adaptive thresholds, refractory) ----
    SWord isPeak = (m1 > m && m1 >= m2) ? 1 : 0;
    SWord thr = add31(npki, div31(sub31(spki, npki), 4));
    tr.threshold = thr;
    SWord active = (mode == 0 && isPeak) ? 1 : 0;
    SWord isQrs = (active && m1 > thr && m1 > kMinPeak &&
                   sinceQrs > kRefractorySamples)
                      ? 1
                      : 0;
    SWord isNoise = (active && !isQrs) ? 1 : 0;
    if (isQrs)
        spki = div31(add31(m1, mul31(7, spki)), 8);
    if (isNoise)
        npki = div31(add31(m1, mul31(7, npki)), 8);
    SWord rrMs = mul31(sinceQrs, kSampleMs);
    SWord rrOk =
        (isQrs && rrMs >= kRrMinMs && rrMs <= kRrMaxMs) ? 1 : 0;
    if (rrOk) {
        shiftIn(rr, rrMs);
        lastRr = rrMs;
    }
    sinceQrs = min31(add31(isQrs ? 0 : sinceQrs, 1), kSinceCap);
    SWord fast = 0;
    for (int i = 0; i < kRrHistory; ++i)
        fast = add31(fast, rr[size_t(i)] < kVtLimitMs ? 1 : 0);
    SWord vt = (isQrs && fast >= kVtCount) ? 1 : 0;
    m2 = m1;
    m1 = m;
    tr.qrs = isQrs != 0;
    if (isQrs) {
        ++qrsDetected;
        marks.push_back(sampleNo);
    }

    // ---- Anti-tachycardia pacing state machine ----
    SWord out = kOutNone;
    SWord cleared = 0;
    if (mode == 0) {
        if (vt) {
            mode = 1;
            seqsLeft = kAtpSequences;
            pulsesLeft = kAtpPulses;
            intervalSamples = max31(
                div31(div31(mul31(rrMs, kAtpCouplingPct), 100),
                      kSampleMs),
                kAtpMinIntervalSamples);
            countdown = intervalSamples;
            firstPulse = 1;
            ++therapies;
        }
    } else {
        SWord cd = sub31(countdown, 1);
        if (cd == 0) {
            out = firstPulse ? kOutTherapyStart : kOutPulse;
            SWord pl = sub31(pulsesLeft, 1);
            if (pl == 0) {
                SWord sl = sub31(seqsLeft, 1);
                if (sl == 0) {
                    mode = 0;
                    pulsesLeft = 0;
                    seqsLeft = 0;
                    intervalSamples = 0;
                    countdown = 0;
                    firstPulse = 0;
                    cleared = 1;
                } else {
                    SWord iv = max31(
                        sub31(intervalSamples,
                              kAtpDecrementMs / kSampleMs),
                        kAtpMinIntervalSamples);
                    seqsLeft = sl;
                    pulsesLeft = kAtpPulses;
                    intervalSamples = iv;
                    countdown = iv;
                    firstPulse = 0;
                }
            } else {
                pulsesLeft = pl;
                countdown = intervalSamples;
                firstPulse = 0;
            }
        } else {
            countdown = cd;
        }
    }

    // ---- Post-therapy detection reset ----
    if (cleared) {
        rr.fill(kRrInitMs);
        sinceQrs = kRrInitMs / kSampleMs;
    }

    tr.output = out;
    ++sampleNo;
    return tr;
}

} // namespace zarf::icd
