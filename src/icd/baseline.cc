#include "icd/baseline.hh"

#include "icd/params.hh"
#include "support/logging.hh"
#include "system/ports.hh"

namespace zarf::icd
{

namespace
{

// Data-memory map (word addresses).
constexpr int kLpX = 0;    // 12 words
constexpr int kLpY1 = 12;
constexpr int kLpY2 = 13;
constexpr int kHpX = 16;   // 32 words
constexpr int kHpY1 = 48;
constexpr int kDvX = 52;   // 4 words
constexpr int kMwS = 64;   // 30 words
constexpr int kMwSum = 94;
constexpr int kSpki = 100;
constexpr int kNpki = 101;
constexpr int kM1 = 102;
constexpr int kM2 = 103;
constexpr int kSince = 104;
constexpr int kRr = 110;   // 24 words
constexpr int kMode = 140;
constexpr int kPulses = 141;
constexpr int kSeqs = 142;
constexpr int kInterval = 143;
constexpr int kCountdown = 144;
constexpr int kFirst = 145;
constexpr int kLastOut = 200;

// Monitor program data memory.
constexpr int kMonitorCountAddr = int(kMonitorCountWord);

/** Emit a newest-first delay-line shift with unrolled lw/sw pairs,
 *  then store the new head value from `srcReg`. */
void
emitShift(std::string &s, int base, int len, const char *srcReg)
{
    for (int i = len - 1; i > 0; --i) {
        s += strprintf("  lw r11, r0, %d\n", base + i - 1);
        s += strprintf("  sw r11, r0, %d\n", base + i);
    }
    s += strprintf("  sw %s, r0, %d\n", srcReg, base);
}

} // namespace

std::string
baselineIcdAsmText()
{
    std::string s;
    s += "# Imperative ICD baseline (unverified path)\n";
    s += "init:\n";
    // rr history initialises to kRrInitMs; since to its sample form.
    s += strprintf("  movi r1, %d\n", kRrInitMs);
    for (int i = 0; i < kRrHistory; ++i)
        s += strprintf("  sw r1, r0, %d\n", kRr + i);
    s += strprintf("  movi r1, %d\n", kRrInitMs / kSampleMs);
    s += strprintf("  sw r1, r0, %d\n", kSince);

    s += "main_loop:\n";
    // Wait for the 5 ms tick.
    s += strprintf("  in r1, %d\n", int(sys::kPortTimer));
    s += "  beq r1, r0, main_loop\n";
    // Emit previous output, read the next sample.
    s += strprintf("  lw r2, r0, %d\n", kLastOut);
    s += strprintf("  out r2, %d\n", int(sys::kPortShockOut));
    s += strprintf("  in r3, %d\n", int(sys::kPortEcgIn));

    // ---- LPF: ly = 2*y1 - y2 + x - 2*lpX[5] + lpX[11] ----
    s += strprintf("  lw r5, r0, %d\n", kLpY1);
    s += strprintf("  lw r6, r0, %d\n", kLpY2);
    s += "  add r7, r5, r5\n";
    s += "  sub r7, r7, r6\n";
    s += "  add r7, r7, r3\n";
    s += strprintf("  lw r8, r0, %d\n", kLpX + 5);
    s += "  add r8, r8, r8\n";
    s += "  sub r7, r7, r8\n";
    s += strprintf("  lw r8, r0, %d\n", kLpX + 11);
    s += "  add r7, r7, r8\n"; // r7 = ly
    emitShift(s, kLpX, kLpLen, "r3");
    s += strprintf("  sw r5, r0, %d\n", kLpY2); // y2 = y1
    s += strprintf("  sw r7, r0, %d\n", kLpY1); // y1 = ly

    // ---- HPF: hy = y1 + ly - hpX[31]; f = hpX[15] - hy/32 ----
    s += strprintf("  lw r5, r0, %d\n", kHpY1);
    s += "  add r5, r5, r7\n";
    s += strprintf("  lw r6, r0, %d\n", kHpX + 31);
    s += "  sub r5, r5, r6\n"; // r5 = hy
    s += strprintf("  lw r6, r0, %d\n", kHpX + 15);
    s += "  movi r8, 32\n";
    s += "  div r9, r5, r8\n";
    s += "  sub r6, r6, r9\n"; // r6 = f
    emitShift(s, kHpX, kHpLen, "r7");
    s += strprintf("  sw r5, r0, %d\n", kHpY1);

    // ---- Derivative + clamp + square ----
    // d = (2f + dvX[0] - dvX[2] - 2*dvX[3]) / 8
    s += "  add r7, r6, r6\n";
    s += strprintf("  lw r8, r0, %d\n", kDvX + 0);
    s += "  add r7, r7, r8\n";
    s += strprintf("  lw r8, r0, %d\n", kDvX + 2);
    s += "  sub r7, r7, r8\n";
    s += strprintf("  lw r8, r0, %d\n", kDvX + 3);
    s += "  add r8, r8, r8\n";
    s += "  sub r7, r7, r8\n";
    s += "  movi r8, 8\n";
    s += "  div r7, r7, r8\n"; // r7 = d
    s += strprintf("  movi r8, %d\n", kDerivClamp);
    s += "  ble r7, r8, dclamp_hi\n";
    s += "  add r7, r8, r0\n";
    s += "dclamp_hi:\n";
    s += strprintf("  movi r8, %d\n", -kDerivClamp);
    s += "  bge r7, r8, dclamp_lo\n";
    s += "  add r7, r8, r0\n";
    s += "dclamp_lo:\n";
    s += "  mul r7, r7, r7\n";
    s += strprintf("  movi r8, %d\n", kSquareClamp);
    s += "  ble r7, r8, sq_ok\n";
    s += "  add r7, r8, r0\n";
    s += "sq_ok:\n"; // r7 = sq
    emitShift(s, kDvX, kDvLen, "r6");

    // ---- MWI: sum += sq - mwS[29]; m = sum / 30 ----
    s += strprintf("  lw r5, r0, %d\n", kMwSum);
    s += "  add r5, r5, r7\n";
    s += strprintf("  lw r6, r0, %d\n", kMwS + kMwLen - 1);
    s += "  sub r5, r5, r6\n";
    s += strprintf("  sw r5, r0, %d\n", kMwSum);
    emitShift(s, kMwS, kMwLen, "r7");
    s += strprintf("  movi r8, %d\n", kMwLen);
    s += "  div r4, r5, r8\n"; // r4 = m

    // ---- Detection ----
    // r5=m1 r6=m2 r7=thr r9=isQrs r10=isNoise
    s += strprintf("  lw r5, r0, %d\n", kM1);
    s += strprintf("  lw r6, r0, %d\n", kM2);
    s += "  movi r9, 0\n";  // isQrs = 0
    s += "  movi r10, 0\n"; // isNoise = 0
    // isPeak = m1 > m && m1 >= m2
    s += "  ble r5, r4, det_done_peak\n";
    s += "  blt r5, r6, det_done_peak\n";
    // active only in monitor mode
    s += strprintf("  lw r8, r0, %d\n", kMode);
    s += "  bne r8, r0, det_done_peak\n";
    // thr = npki + (spki - npki)/4
    s += strprintf("  lw r7, r0, %d\n", kNpki);
    s += strprintf("  lw r8, r0, %d\n", kSpki);
    s += "  sub r8, r8, r7\n";
    s += "  movi r11, 4\n";
    s += "  div r8, r8, r11\n";
    s += "  add r7, r7, r8\n";
    // qrs tests: m1 > thr, m1 > kMinPeak, since > refractory
    s += "  movi r10, 1\n"; // assume noise unless QRS
    s += "  ble r5, r7, det_done_peak\n";
    s += strprintf("  movi r8, %d\n", kMinPeak);
    s += "  ble r5, r8, det_done_peak\n";
    s += strprintf("  lw r8, r0, %d\n", kSince);
    s += strprintf("  movi r11, %d\n", kRefractorySamples);
    s += "  ble r8, r11, det_done_peak\n";
    s += "  movi r9, 1\n";  // QRS!
    s += "  movi r10, 0\n";
    s += "det_done_peak:\n";
    // spki/npki updates
    s += "  beq r9, r0, no_spki\n";
    s += strprintf("  lw r8, r0, %d\n", kSpki);
    s += "  muli r8, r8, 7\n";
    s += "  add r8, r8, r5\n";
    s += "  movi r11, 8\n";
    s += "  div r8, r8, r11\n";
    s += strprintf("  sw r8, r0, %d\n", kSpki);
    s += "no_spki:\n";
    s += "  beq r10, r0, no_npki\n";
    s += strprintf("  lw r8, r0, %d\n", kNpki);
    s += "  muli r8, r8, 7\n";
    s += "  add r8, r8, r5\n";
    s += "  movi r11, 8\n";
    s += "  div r8, r8, r11\n";
    s += strprintf("  sw r8, r0, %d\n", kNpki);
    s += "no_npki:\n";
    // rrMs = since * 5; conditional history push
    s += strprintf("  lw r8, r0, %d\n", kSince);
    s += strprintf("  muli r12, r8, %d\n", kSampleMs);
    s += "  beq r9, r0, no_rr\n";
    s += strprintf("  movi r11, %d\n", kRrMinMs);
    s += "  blt r12, r11, no_rr\n";
    s += strprintf("  movi r11, %d\n", kRrMaxMs);
    s += "  bgt r12, r11, no_rr\n";
    emitShift(s, kRr, kRrHistory, "r12");
    s += "no_rr:\n";
    // since update: since = min((isQrs?0:since)+1, cap)
    s += "  beq r9, r0, since_keep\n";
    s += "  movi r8, 0\n";
    s += "since_keep:\n";
    s += "  addi r8, r8, 1\n";
    s += strprintf("  movi r11, %d\n", kSinceCap);
    s += "  ble r8, r11, since_ok\n";
    s += "  add r8, r11, r0\n";
    s += "since_ok:\n";
    s += strprintf("  sw r8, r0, %d\n", kSince);
    // fast count over rr
    s += "  movi r13, 0\n";
    s += strprintf("  movi r11, %d\n", kVtLimitMs);
    for (int i = 0; i < kRrHistory; ++i) {
        s += strprintf("  lw r8, r0, %d\n", kRr + i);
        s += "  slt r8, r8, r11\n";
        s += "  add r13, r13, r8\n";
    }
    // vt = isQrs && fast >= kVtCount
    s += "  movi r14, 0\n";
    s += "  beq r9, r0, no_vt\n";
    s += strprintf("  movi r11, %d\n", kVtCount);
    s += "  blt r13, r11, no_vt\n";
    s += "  movi r14, 1\n";
    s += "no_vt:\n";
    // m2 = m1; m1 = m
    s += strprintf("  sw r5, r0, %d\n", kM2);
    s += strprintf("  sw r4, r0, %d\n", kM1);

    // ---- ATP state machine ----
    s += "  movi r4, 0\n"; // out = 0
    s += strprintf("  lw r8, r0, %d\n", kMode);
    s += "  bne r8, r0, treat\n";
    // monitor mode: enter therapy on vt
    s += "  beq r14, r0, atp_done\n";
    s += "  movi r8, 1\n";
    s += strprintf("  sw r8, r0, %d\n", kMode);
    s += strprintf("  movi r8, %d\n", kAtpPulses);
    s += strprintf("  sw r8, r0, %d\n", kPulses);
    s += strprintf("  movi r8, %d\n", kAtpSequences);
    s += strprintf("  sw r8, r0, %d\n", kSeqs);
    // interval = max(rrMs*88/100/5, min)
    s += strprintf("  muli r8, r12, %d\n", kAtpCouplingPct);
    s += "  movi r11, 100\n";
    s += "  div r8, r8, r11\n";
    s += strprintf("  movi r11, %d\n", kSampleMs);
    s += "  div r8, r8, r11\n";
    s += strprintf("  movi r11, %d\n", kAtpMinIntervalSamples);
    s += "  bge r8, r11, iv_ok\n";
    s += "  add r8, r11, r0\n";
    s += "iv_ok:\n";
    s += strprintf("  sw r8, r0, %d\n", kInterval);
    s += strprintf("  sw r8, r0, %d\n", kCountdown);
    s += "  movi r8, 1\n";
    s += strprintf("  sw r8, r0, %d\n", kFirst);
    s += "  j atp_done\n";

    s += "treat:\n";
    s += strprintf("  lw r8, r0, %d\n", kCountdown);
    s += "  addi r8, r8, -1\n";
    s += "  beq r8, r0, fire\n";
    s += strprintf("  sw r8, r0, %d\n", kCountdown);
    s += "  j atp_done\n";
    s += "fire:\n";
    // out = first ? 2 : 1
    s += strprintf("  lw r11, r0, %d\n", kFirst);
    s += "  movi r4, 1\n";
    s += "  beq r11, r0, not_first\n";
    s += "  movi r4, 2\n";
    s += "  movi r11, 0\n";
    s += strprintf("  sw r11, r0, %d\n", kFirst);
    s += "not_first:\n";
    s += strprintf("  lw r8, r0, %d\n", kPulses);
    s += "  addi r8, r8, -1\n";
    s += "  beq r8, r0, seq_end\n";
    s += strprintf("  sw r8, r0, %d\n", kPulses);
    s += strprintf("  lw r8, r0, %d\n", kInterval);
    s += strprintf("  sw r8, r0, %d\n", kCountdown);
    s += "  j atp_done\n";
    s += "seq_end:\n";
    s += strprintf("  lw r8, r0, %d\n", kSeqs);
    s += "  addi r8, r8, -1\n";
    s += "  beq r8, r0, therapy_end\n";
    s += strprintf("  sw r8, r0, %d\n", kSeqs);
    s += strprintf("  movi r8, %d\n", kAtpPulses);
    s += strprintf("  sw r8, r0, %d\n", kPulses);
    s += strprintf("  lw r8, r0, %d\n", kInterval);
    s += strprintf("  addi r8, r8, %d\n",
                   -(kAtpDecrementMs / kSampleMs));
    s += strprintf("  movi r11, %d\n", kAtpMinIntervalSamples);
    s += "  bge r8, r11, iv2_ok\n";
    s += "  add r8, r11, r0\n";
    s += "iv2_ok:\n";
    s += strprintf("  sw r8, r0, %d\n", kInterval);
    s += strprintf("  sw r8, r0, %d\n", kCountdown);
    s += "  j atp_done\n";
    s += "therapy_end:\n";
    s += "  movi r8, 0\n";
    s += strprintf("  sw r8, r0, %d\n", kMode);
    s += strprintf("  sw r8, r0, %d\n", kPulses);
    s += strprintf("  sw r8, r0, %d\n", kSeqs);
    s += strprintf("  sw r8, r0, %d\n", kInterval);
    s += strprintf("  sw r8, r0, %d\n", kCountdown);
    s += strprintf("  sw r8, r0, %d\n", kFirst);
    // clear rr history + since
    s += strprintf("  movi r8, %d\n", kRrInitMs);
    for (int i = 0; i < kRrHistory; ++i)
        s += strprintf("  sw r8, r0, %d\n", kRr + i);
    s += strprintf("  movi r8, %d\n", kRrInitMs / kSampleMs);
    s += strprintf("  sw r8, r0, %d\n", kSince);
    s += "atp_done:\n";

    // Store output, stream to comm, loop.
    s += strprintf("  sw r4, r0, %d\n", kLastOut);
    s += strprintf("  out r4, %d\n", int(sys::kPortCommOut));
    s += "  j main_loop\n";
    return s;
}

mblaze::MbProgram
baselineIcdProgram()
{
    return mblaze::assembleMbOrDie(baselineIcdAsmText());
}

std::string
monitorAsmText()
{
    std::string s;
    s += "# Monitoring software for the imperative layer\n";
    s += "# dmem[0] = therapy episode count (persistent state)\n";
    s += "  movi r1, 0\n";
    s += strprintf("  sw r1, r0, %d\n", kMonitorCountAddr);
    s += "poll:\n";
    // Drain the inter-layer channel.
    s += strprintf("  in r2, %d\n", int(sys::kMbChanStatus));
    s += "  beq r2, r0, diag\n";
    s += strprintf("  in r3, %d\n", int(sys::kMbChanData));
    s += strprintf("  movi r4, %d\n", int(sys::kTherapyStartMarker));
    s += "  bne r3, r4, poll\n";
    s += strprintf("  lw r1, r0, %d\n", kMonitorCountAddr);
    s += "  addi r1, r1, 1\n"; // therapy-start marker seen
    s += strprintf("  sw r1, r0, %d\n", kMonitorCountAddr);
    s += "  j poll\n";
    // Diagnostic channel: command 1 => report the count; command 2
    // => adopt the next command word as the authoritative count
    // (state replay from the system's persistent store after a
    // λ-layer restart or a detected count mismatch).
    s += "diag:\n";
    s += strprintf("  in r2, %d\n", int(sys::kMbDiagCmd));
    s += strprintf("  movi r4, %d\n", int(sys::kDiagCmdReport));
    s += "  bne r2, r4, try_resync\n";
    s += strprintf("  lw r1, r0, %d\n", kMonitorCountAddr);
    s += strprintf("  out r1, %d\n", int(sys::kMbDiagResp));
    s += "  j poll\n";
    s += "try_resync:\n";
    s += strprintf("  movi r4, %d\n", int(sys::kDiagCmdResync));
    s += "  bne r2, r4, poll\n";
    s += strprintf("  in r1, %d\n", int(sys::kMbDiagCmd));
    s += strprintf("  sw r1, r0, %d\n", kMonitorCountAddr);
    s += "  j poll\n";
    return s;
}

mblaze::MbProgram
monitorProgram()
{
    return mblaze::assembleMbOrDie(monitorAsmText());
}

} // namespace zarf::icd
