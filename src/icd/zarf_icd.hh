/**
 * @file
 * The ICD's verified-path implementation: the algorithm written in
 * the low-level functional IR and mechanically extracted to Zarf
 * assembly (the paper's Sec. 5.1 pipeline), plus the cooperative
 * microkernel program that runs it on the λ-execution layer with
 * the I/O and communication coroutines of Sec. 4.
 *
 * The algorithm mirrors icd/spec.hh operation for operation (same
 * constants from icd/params.hh, same 31-bit arithmetic), so the
 * refinement harness can require bit-identical output streams.
 *
 * Structure of the extracted program:
 *
 *   icdInit            — the initial algorithm state (constructors)
 *   lpStep/hpStep/...  — one function per pipeline stage; each takes
 *                        the stage state and produces a result
 *                        constructor carrying (new state, value)
 *   detStep/atpStep    — detection and pacing state machines, with
 *                        small helper functions as join points
 *   icdStep st x       — one 5 ms iteration: IcdOut(st', out)
 *
 * The kernel program adds main, kernelLoop, and the coroutines:
 * ioCoroutine (timer-paced sample-in/pulse-out), commCoroutine
 * (stream out-values to the imperative layer), and the per-iteration
 * garbage-collection call the timing analysis relies on (Sec. 5.2).
 */

#ifndef ZARF_ICD_ZARF_ICD_HH
#define ZARF_ICD_ZARF_ICD_HH

#include "isa/binary.hh"
#include "lowlevel/lexpr.hh"

namespace zarf::icd
{

/** The algorithm alone (main is a stub; used for refinement). */
ll::LProgram buildIcdLowLevel();

/** Extract, lower, and validate the algorithm program. */
Program buildIcdStepProgram();

/** The full λ-layer system program: microkernel + coroutines.
 *
 * @param gcEachIteration include the per-iteration call to the
 *        hardware collector (Sec. 5.2's real-time discipline).
 *        Disable to rely on the machine's exhaustion/interval
 *        policies instead (the GC-policy ablation).
 */
ll::LProgram buildKernelLowLevel(bool gcEachIteration = true);

/** Extracted, validated, encoded kernel image. */
Image buildKernelImage(bool gcEachIteration = true);

} // namespace zarf::icd

#endif // ZARF_ICD_ZARF_ICD_HH
