/**
 * @file
 * Shared algorithm constants of the ICD application.
 *
 * Every implementation of the algorithm — the executable stream
 * specification (icd/spec.hh), the low-level functional program
 * extracted to Zarf assembly (icd/zarf_icd.hh), and the imperative
 * baseline for the MicroBlaze-like core (icd/baseline.hh) — uses
 * exactly these constants, so the refinement chain compares like
 * with like.
 *
 * The QRS detector follows Pan & Tompkins (1985) in its integer
 * formulation (the filter cascade of Fig. 5); the VT test and ATP
 * prescription follow the paper's description of Wathen et al.
 * (Sec. 4.2): if 18 of the last 24 beat periods are under 360 ms,
 * deliver three sequences of eight pulses at 88% of the current
 * cycle length with a 20 ms decrement between sequences.
 */

#ifndef ZARF_ICD_PARAMS_HH
#define ZARF_ICD_PARAMS_HH

#include "support/types.hh"

namespace zarf::icd
{

// Sampling.
constexpr SWord kSampleMs = 5;     ///< 200 Hz.

// Pan-Tompkins filter cascade (delay-line lengths).
constexpr int kLpLen = 12;   ///< Low-pass x history.
constexpr int kHpLen = 32;   ///< High-pass x history.
constexpr int kDvLen = 4;    ///< Derivative history.
constexpr int kMwLen = 30;   ///< Moving-window integration (150 ms).

// Squaring-stage clamps (keep sums inside 31-bit machine ints).
constexpr SWord kDerivClamp = 23000;
constexpr SWord kSquareClamp = 1 << 24;

// Detection.
constexpr SWord kRefractorySamples = 40; ///< 200 ms.
constexpr SWord kMinPeak = 2000;  ///< Absolute peak floor (counts).
constexpr SWord kRrMinMs = 200;   ///< Plausible RR interval window.
constexpr SWord kRrMaxMs = 2000;
constexpr SWord kSinceCap = 100000; ///< Saturation for sinceQrs.

// VT detection (18 of 24 under 360 ms).
constexpr int kRrHistory = 24;
constexpr int kVtCount = 18;
constexpr SWord kVtLimitMs = 360;
constexpr SWord kRrInitMs = 1000; ///< History initialisation value.

// Anti-tachycardia pacing.
constexpr SWord kAtpSequences = 3;
constexpr SWord kAtpPulses = 8;
constexpr SWord kAtpCouplingPct = 88;  ///< Pulse at 88% of cycle.
constexpr SWord kAtpDecrementMs = 20;  ///< Between sequences.
constexpr SWord kAtpMinIntervalSamples = 30; ///< 150 ms floor.

// Output encoding of one ICD iteration.
constexpr SWord kOutNone = 0;
constexpr SWord kOutPulse = 1;
constexpr SWord kOutTherapyStart = 2; ///< First pulse of an episode.

} // namespace zarf::icd

#endif // ZARF_ICD_PARAMS_HH
