/**
 * @file
 * The executable stream specification of the ICD algorithm — the
 * analog of the paper's high-level Gallina specification (Sec. 5.1,
 * Fig. 6a).
 *
 * The specification consumes the 200 Hz sample stream one value at a
 * time and produces one output value per sample (0 none, 1 pacing
 * pulse, 2 first pulse of a therapy burst). It is written for
 * clarity and serves as the oracle in the refinement chain: the
 * low-level functional implementation extracted to Zarf assembly
 * must produce an identical output stream for every input stream
 * (verified by the lock-step differential harness in
 * verify/refine.hh), and the imperative baseline must as well.
 *
 * The per-stage filter outputs are exposed so the Fig. 5 pipeline
 * bench can plot every intermediate signal.
 */

#ifndef ZARF_ICD_SPEC_HH
#define ZARF_ICD_SPEC_HH

#include <array>
#include <cstdint>
#include <vector>

#include "icd/params.hh"
#include "support/types.hh"

namespace zarf::icd
{

/** Per-sample view of every pipeline stage (for Fig. 5). */
struct StageTrace
{
    SWord input;
    SWord lowpass;
    SWord highpass;
    SWord derivative; ///< After clamping.
    SWord squared;    ///< After clamping.
    SWord mwi;
    SWord threshold;
    bool qrs;         ///< QRS detected at this sample.
    SWord output;
};

/** The streaming specification. */
class IcdSpec
{
  public:
    IcdSpec();

    /** Process one sample; returns the output value. */
    SWord step(SWord sample);

    /** step() plus a full view of the pipeline (same transition). */
    StageTrace stepTraced(SWord sample);

    // Observers for tests and reports.
    bool inTreatment() const { return mode == 1; }
    uint64_t qrsCount() const { return qrsDetected; }
    uint64_t therapyCount() const { return therapies; }
    /** Sample indices at which QRS complexes were detected. */
    const std::vector<uint64_t> &detections() const { return marks; }
    /** Most recent measured RR interval in ms (0 before 2 beats). */
    SWord lastRrMs() const { return lastRr; }
    /** Current rate estimate in bpm from the last RR (0 if none). */
    SWord heartRateBpm() const
    {
        return lastRr > 0 ? 60000 / lastRr : 0;
    }

  private:
    // Filter state (delay lines ordered newest-first: x[0]=x[n-1]).
    std::array<SWord, kLpLen> lpX{};
    SWord lpY1 = 0, lpY2 = 0;
    std::array<SWord, kHpLen> hpX{};
    SWord hpY1 = 0;
    std::array<SWord, kDvLen> dvX{};
    std::array<SWord, kMwLen> mwS{};
    SWord mwSum = 0;

    // Detection state.
    SWord spki = 0, npki = 0;
    SWord m1 = 0, m2 = 0;
    SWord sinceQrs = kRrInitMs / kSampleMs;
    std::array<SWord, kRrHistory> rr{};

    // ATP state.
    SWord mode = 0;
    SWord pulsesLeft = 0, seqsLeft = 0;
    SWord intervalSamples = 0, countdown = 0;
    SWord firstPulse = 0;

    // Bookkeeping (not part of the algorithm state).
    uint64_t sampleNo = 0;
    uint64_t qrsDetected = 0;
    uint64_t therapies = 0;
    std::vector<uint64_t> marks;
    SWord lastRr = 0;
};

} // namespace zarf::icd

#endif // ZARF_ICD_SPEC_HH
