#include "icd/zarf_icd.hh"

#include "icd/params.hh"
#include "isa/validate.hh"
#include "lowlevel/extract.hh"
#include "support/logging.hh"
#include "system/ports.hh"

namespace zarf::icd
{

using namespace ll;

namespace
{

/** fields "p0".."p{n-1}" with a prefix. */
std::vector<std::string>
fieldNames(const char *prefix, int n)
{
    std::vector<std::string> out;
    out.reserve(size_t(n));
    for (int i = 0; i < n; ++i)
        out.push_back(strprintf("%s%d", prefix, i));
    return out;
}

std::vector<L>
vars(const std::vector<std::string> &names)
{
    std::vector<L> out;
    out.reserve(names.size());
    for (const auto &n : names)
        out.push_back(v(n));
    return out;
}

std::vector<L>
zeros(int n, SWord value = 0)
{
    std::vector<L> out;
    out.reserve(size_t(n));
    for (int i = 0; i < n; ++i)
        out.push_back(lit(value));
    return out;
}

/** Shift a delay line: newest first, drop the oldest. */
std::vector<L>
shifted(L newest, const std::vector<std::string> &old)
{
    std::vector<L> out;
    out.reserve(old.size());
    out.push_back(std::move(newest));
    for (size_t i = 0; i + 1 < old.size(); ++i)
        out.push_back(v(old[i]));
    return out;
}

/** Append extra values to a var list. */
std::vector<L>
withTail(std::vector<L> head, std::vector<L> tail)
{
    for (auto &t : tail)
        head.push_back(std::move(t));
    return head;
}

void
declareConses(LProgram &p)
{
    p.cons("St", 6);               // lp hp dv mw det atp
    p.cons("Lp", kLpLen + 2);      // x0..x11 y1 y2
    p.cons("Hp", kHpLen + 1);      // x0..x31 y1
    p.cons("Dv", kDvLen);          // d0..d3
    p.cons("Mw", kMwLen + 1);      // s0..s29 sum
    p.cons("Det", 6);              // spki npki m1 m2 since rr
    p.cons("Rr", kRrHistory);      // r0..r23
    p.cons("Atp", 6);              // mode pulses seqs interval
                                   // countdown first
    p.cons("LpRes", 2);
    p.cons("HpRes", 2);
    p.cons("DvRes", 2);
    p.cons("MwRes", 2);
    p.cons("DetRes", 3);           // det vt rrMs
    p.cons("AtpRes", 3);           // atp out cleared
    p.cons("IcdOut", 2);           // st out
}

void
defineAlgorithm(LProgram &p)
{
    const auto lpF = fieldNames("lx", kLpLen);
    const auto hpF = fieldNames("hx", kHpLen);
    const auto dvF = fieldNames("dx", kDvLen);
    const auto mwF = fieldNames("ms", kMwLen);
    const auto rrF = fieldNames("r", kRrHistory);

    // ---- icdInit ----
    {
        L det = call("Det",
                     { lit(0), lit(0), lit(0), lit(0),
                       lit(kRrInitMs / kSampleMs),
                       call("Rr", zeros(kRrHistory, kRrInitMs)) });
        L st = call(
            "St",
            { call("Lp", zeros(kLpLen + 2)),
              call("Hp", zeros(kHpLen + 1)),
              call("Dv", zeros(kDvLen)),
              call("Mw", zeros(kMwLen + 1)), det,
              call("Atp", zeros(6)) });
        p.fn("icdInit", {}, st);
    }

    // ---- lpStep lp x ----
    {
        auto f = lpF;
        f.push_back("ly1");
        f.push_back("ly2");
        // y = 2*y1 - y2 + x - 2*x[n-6] + x[n-12]
        L ly = lit(2) * v("ly1") - v("ly2") + v("x") -
               lit(2) * v(lpF[5]) + v(lpF[11]);
        L body = letIn(
            "ly", ly,
            call("LpRes",
                 { call("Lp", withTail(shifted(v("x"), lpF),
                                       { v("ly"), v("ly1") })),
                   v("ly") }));
        p.fn("lpStep", { "lp", "x" },
             match(v("lp"), { onCons("Lp", f, body) }, nullptr));
    }

    // ---- hpStep hp ly ----
    {
        auto f = hpF;
        f.push_back("hy1");
        // hy = hy1 + ly - x[n-32]; out = x[n-16] - hy/32
        L body = letIn(
            "hy", v("hy1") + v("ly") - v(hpF[31]),
            letIn("hf", v(hpF[15]) - v("hy") / lit(32),
                  call("HpRes",
                       { call("Hp", withTail(shifted(v("ly"), hpF),
                                             { v("hy") })),
                         v("hf") })));
        p.fn("hpStep", { "hp", "ly" },
             match(v("hp"), { onCons("Hp", f, body) }, nullptr));
    }

    // ---- dvStep dv f : derivative + clamp + square ----
    {
        L d = (lit(2) * v("f") + v(dvF[0]) - v(dvF[2]) -
               lit(2) * v(dvF[3])) /
              lit(8);
        L body = letIn(
            "d", d,
            letIn("dc",
                  call("max", { call("min",
                                     { v("d"), lit(kDerivClamp) }),
                                lit(-kDerivClamp) }),
                  letIn("sq",
                        call("min", { v("dc") * v("dc"),
                                      lit(kSquareClamp) }),
                        call("DvRes",
                             { call("Dv", shifted(v("f"), dvF)),
                               v("sq") }))));
        p.fn("dvStep", { "dv", "f" },
             match(v("dv"), { onCons("Dv", dvF, body) }, nullptr));
    }

    // ---- mwStep mw sq : moving-window integration ----
    {
        auto f = mwF;
        f.push_back("msum");
        L body = letIn(
            "msum2", v("msum") + v("sq") - v(mwF[kMwLen - 1]),
            letIn("m", v("msum2") / lit(kMwLen),
                  call("MwRes",
                       { call("Mw", withTail(shifted(v("sq"), mwF),
                                             { v("msum2") })),
                         v("m") })));
        p.fn("mwStep", { "mw", "sq" },
             match(v("mw"), { onCons("Mw", f, body) }, nullptr));
    }

    // ---- rrShift ok rr rrMs : conditionally push an interval ----
    {
        L keep = call("Rr", vars(rrF));
        L push = call("Rr", shifted(v("rrMs"), rrF));
        p.fn("rrShift", { "ok", "rr", "rrMs" },
             match(v("rr"),
                   { onCons("Rr", rrF,
                            iff(v("ok") == lit(1), push, keep)) },
                   nullptr));
    }

    // ---- countFast rr : how many intervals are under 360 ms ----
    {
        L sum = v(rrF[0]) < lit(kVtLimitMs);
        for (int i = 1; i < kRrHistory; ++i)
            sum = sum + (v(rrF[size_t(i)]) < lit(kVtLimitMs));
        p.fn("countFast", { "rr" },
             match(v("rr"), { onCons("Rr", rrF, sum) }, nullptr));
    }

    // ---- detStep det mode m ----
    {
        L body = letIn(
            "isPeak", (v("m1") > v("m")) && (v("m1") >= v("m2")),
        letIn("thr",
              v("npki") + (v("spki") - v("npki")) / lit(4),
        letIn("active", (v("mode") == lit(0)) && v("isPeak"),
        letIn("isQrs",
              v("active") && (v("m1") > v("thr")) &&
                  (v("m1") > lit(kMinPeak)) &&
                  (v("since") > lit(kRefractorySamples)),
        letIn("isNoise", v("active") && (v("isQrs") == lit(0)),
        letIn("spki2",
              sel(v("isQrs"),
                  (v("m1") + lit(7) * v("spki")) / lit(8),
                  v("spki")),
        letIn("npki2",
              sel(v("isNoise"),
                  (v("m1") + lit(7) * v("npki")) / lit(8),
                  v("npki")),
        letIn("rrMs", v("since") * lit(kSampleMs),
        letIn("rrOk",
              v("isQrs") && (v("rrMs") >= lit(kRrMinMs)) &&
                  (v("rrMs") <= lit(kRrMaxMs)),
        letIn("rr2", call("rrShift", { v("rrOk"), v("rr"),
                                       v("rrMs") }),
        letIn("since2",
              call("min", { sel(v("isQrs"), lit(0), v("since")) +
                                lit(1),
                            lit(kSinceCap) }),
        letIn("fast", call("countFast", { v("rr2") }),
        letIn("vt",
              v("isQrs") && (v("fast") >= lit(kVtCount)),
              // Strictness annotation: in treatment mode nothing
              // demands vt, so without this seq the rrShift/countFast
              // thunk chain would grow without bound (a classic lazy
              // space leak). Forcing fast forces the new history's
              // spine and fields every iteration.
              seq(v("fast"),
                  call("DetRes",
                       { call("Det",
                              { v("spki2"), v("npki2"), v("m"),
                                v("m1"), v("since2"), v("rr2") }),
                         v("vt"), v("rrMs") })))))))))))))));
        p.fn("detStep", { "det", "mode", "m" },
             match(v("det"),
                   { onCons("Det",
                            { "spki", "npki", "m1", "m2", "since",
                              "rr" },
                            body) },
                   nullptr));
    }

    // ---- detClear cleared det : reset history after therapy ----
    {
        L resetRr = call("Rr", zeros(kRrHistory, kRrInitMs));
        L resetDet = call("Det", { v("spki"), v("npki"), v("m1"),
                                   v("m2"),
                                   lit(kRrInitMs / kSampleMs),
                                   resetRr });
        L keep = call("Det", { v("spki"), v("npki"), v("m1"),
                               v("m2"), v("since"), v("rr") });
        p.fn("detClear", { "cleared", "det" },
             match(v("det"),
                   { onCons("Det",
                            { "spki", "npki", "m1", "m2", "since",
                              "rr" },
                            iff(v("cleared") == lit(1), resetDet,
                                keep)) },
                   nullptr));
    }

    // ---- ATP state machine ----
    p.fn("enterTherapy", { "rrMs" },
         letIn("iv",
               call("max",
                    { v("rrMs") * lit(kAtpCouplingPct) / lit(100) /
                          lit(kSampleMs),
                      lit(kAtpMinIntervalSamples) }),
               call("AtpRes",
                    { call("Atp", { lit(1), lit(kAtpPulses),
                                    lit(kAtpSequences), v("iv"),
                                    v("iv"), lit(1) }),
                      lit(kOutNone), lit(0) })));

    p.fn("endSeq", { "sl", "iv", "out" },
         letIn("sl2", v("sl") - lit(1),
               iff(v("sl2") == lit(0),
                   call("AtpRes",
                        { call("Atp", zeros(6)), v("out"),
                          lit(1) }),
                   letIn("iv2",
                         call("max",
                              { v("iv") - lit(kAtpDecrementMs /
                                              kSampleMs),
                                lit(kAtpMinIntervalSamples) }),
                         call("AtpRes",
                              { call("Atp",
                                     { lit(1), lit(kAtpPulses),
                                       v("sl2"), v("iv2"),
                                       v("iv2"), lit(0) }),
                                v("out"), lit(0) })))));

    p.fn("firePulse", { "pl", "sl", "iv", "fp" },
         letIn("out",
               sel(v("fp") == lit(1), lit(kOutTherapyStart),
                   lit(kOutPulse)),
               letIn("pl2", v("pl") - lit(1),
                     iff(v("pl2") == lit(0),
                         call("endSeq",
                              { v("sl"), v("iv"), v("out") }),
                         call("AtpRes",
                              { call("Atp",
                                     { lit(1), v("pl2"), v("sl"),
                                       v("iv"), v("iv"), lit(0) }),
                                v("out"), lit(0) })))));

    p.fn("treatTick", { "pl", "sl", "iv", "cd", "fp" },
         letIn("cd2", v("cd") - lit(1),
               iff(v("cd2") == lit(0),
                   call("firePulse",
                        { v("pl"), v("sl"), v("iv"), v("fp") }),
                   call("AtpRes",
                        { call("Atp", { lit(1), v("pl"), v("sl"),
                                        v("iv"), v("cd2"),
                                        v("fp") }),
                          lit(kOutNone), lit(0) }))));

    p.fn("atpStep", { "atp", "vt", "rrMs" },
         match(v("atp"),
               { onCons("Atp",
                        { "mode", "pl", "sl", "iv", "cd", "fp" },
                        iff(v("mode") == lit(0),
                            iff(v("vt") == lit(1),
                                call("enterTherapy", { v("rrMs") }),
                                call("AtpRes",
                                     { call("Atp",
                                            { lit(0), v("pl"),
                                              v("sl"), v("iv"),
                                              v("cd"), v("fp") }),
                                       lit(kOutNone), lit(0) })),
                            call("treatTick",
                                 { v("pl"), v("sl"), v("iv"),
                                   v("cd"), v("fp") }))) },
               nullptr));

    // ---- icdStep st x : one 5 ms iteration ----
    {
        L inner = letIn(
            "lr", call("lpStep", { v("lp"), v("x") }),
            match(v("lr"),
                  { onCons("LpRes", { "lp2", "ly" },
        letIn("hr", call("hpStep", { v("hp"), v("ly") }),
        match(v("hr"),
              { onCons("HpRes", { "hp2", "hf" },
        letIn("dr", call("dvStep", { v("dv"), v("hf") }),
        match(v("dr"),
              { onCons("DvRes", { "dv2", "sq" },
        letIn("mr", call("mwStep", { v("mw"), v("sq") }),
        match(v("mr"),
              { onCons("MwRes", { "mw2", "m" },
        match(v("atp"),
              { onCons("Atp",
                       { "mode", "q1", "q2", "q3", "q4", "q5" },
        letIn("er", call("detStep", { v("det"), v("mode"), v("m") }),
        match(v("er"),
              { onCons("DetRes", { "det2", "vt", "rrMs" },
        letIn("ar", call("atpStep", { v("atp"), v("vt"),
                                      v("rrMs") }),
        match(v("ar"),
              { onCons("AtpRes", { "atp2", "out", "cleared" },
        letIn("det3", call("detClear", { v("cleared"), v("det2") }),
              call("IcdOut",
                   { call("St", { v("lp2"), v("hp2"), v("dv2"),
                                  v("mw2"), v("det3"),
                                  v("atp2") }),
                     v("out") }))) },
              nullptr))) },
              nullptr))) },
              nullptr)) },
              nullptr))) },
              nullptr))) },
              nullptr))) },
                  nullptr));
        p.fn("icdStep", { "st", "x" },
             match(v("st"),
                   { onCons("St",
                            { "lp", "hp", "dv", "mw", "det", "atp" },
                            inner) },
                   nullptr));
    }
}

} // namespace

LProgram
buildIcdLowLevel()
{
    LProgram p;
    declareConses(p);
    // main is a stub; the refinement harness calls icdStep directly.
    p.fn("main", {}, lit(0));
    defineAlgorithm(p);
    return p;
}

Program
buildIcdStepProgram()
{
    return extractOrDie(buildIcdLowLevel());
}

LProgram
buildKernelLowLevel(bool gcEachIteration)
{
    LProgram p;
    declareConses(p);

    // main: build the initial state and enter the loop.
    p.fn("main", {},
         letIn("st", call("icdInit", {}),
               call("kernelLoop", { v("st"), lit(0) })));

    defineAlgorithm(p);

    // waitTick: poll the hardware timer until a 5 ms tick fires.
    // Self-recursive by design; the WCET analysis treats it as the
    // slack-consuming wait (Sec. 5.2).
    p.fn("waitTick", { "k" },
         letIn("t", call("getint", { lit(sys::kPortTimer) }),
               iff(v("t") == lit(0), call("waitTick", { v("k") }),
                   v("t"))));

    // ioCoroutine: wait for the tick, emit the previous iteration's
    // output on the pacing port, then read the next sample.
    p.fn("ioCoroutine", { "lastOut" },
         letIn("t", call("waitTick", { lit(0) }),
               seq(v("t"),
                   letIn("w", call("putint", { lit(sys::kPortShockOut),
                                               v("lastOut") }),
                         seq(v("w"),
                             call("getint",
                                  { lit(sys::kPortEcgIn) }))))));

    // commCoroutine: stream the output value to the monitor.
    p.fn("commCoroutine", { "out" },
         call("putint", { lit(sys::kPortCommOut), v("out") }));

    // kernelLoop: one cooperative round of the three coroutines,
    // then (optionally) an explicit garbage collection, then
    // recurse (Sec. 4.1).
    L tail = call("kernelLoop", { v("st2"), v("out") });
    if (gcEachIteration) {
        tail = letIn("g", call("gc", { lit(0) }),
                     seq(v("g"), std::move(tail)));
    }
    p.fn("kernelLoop", { "st", "lastOut" },
         letIn("sample", call("ioCoroutine", { v("lastOut") }),
               letIn("r", call("icdStep", { v("st"), v("sample") }),
                     match(v("r"),
                           { onCons("IcdOut", { "st2", "out" },
                                    letIn("c",
                                          call("commCoroutine",
                                               { v("out") }),
                                          seq(v("c"),
                                              std::move(tail)))) },
                           nullptr))));

    return p;
}

Image
buildKernelImage(bool gcEachIteration)
{
    Program p = extractOrDie(buildKernelLowLevel(gcEachIteration));
    return encodeProgram(p);
}

} // namespace zarf::icd
