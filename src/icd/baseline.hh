/**
 * @file
 * The unverified imperative ICD — the paper's "completely unverified
 * C version of the application on a Xilinx MicroBlaze" (Sec. 6) —
 * plus the monitoring software that runs on the imperative layer of
 * the two-layer system (Sec. 4.1).
 *
 * The baseline implements the identical algorithm (same constants,
 * same operation order as icd/spec.hh) in mblaze assembly with
 * straight-line delay-line code, the way a compiler would lower the
 * C original. Tests hold it to bit-identical outputs against the
 * specification, and the comparison bench measures its
 * cycles-per-iteration against the λ-execution layer (paper: under
 * one thousand cycles per iteration).
 */

#ifndef ZARF_ICD_BASELINE_HH
#define ZARF_ICD_BASELINE_HH

#include <string>

#include "mblaze/isa.hh"

namespace zarf::icd
{

/**
 * The standalone imperative ICD program.
 *
 * Loop per iteration: poll the timer port, emit the previous
 * output on the pacing port, read a sample, run the filter cascade +
 * detection + ATP, store the new output. Ports follow
 * system/ports.hh's λ-side numbering (timer 3, ECG 0, shock 1,
 * comm 2) so the same device rig drives both implementations.
 */
std::string baselineIcdAsmText();

/** Assembled form (dies on assembler errors). */
mblaze::MbProgram baselineIcdProgram();

/**
 * The monitoring software for the imperative layer of the two-layer
 * system: drains the inter-layer channel, counts therapy episodes
 * (value 2 = first pulse of a burst), and answers diagnostic
 * queries (command 1 -> respond with the episode count; command 2 ->
 * adopt the following word as the authoritative count — the state
 * replay half of the watchdog recovery protocol).
 *
 * The episode count lives in data memory at kMonitorCountWord (not
 * in a register), so an SEU in the unprotected BRAM can corrupt it —
 * which the system-level count cross-check then detects and a resync
 * repairs (docs/RESILIENCE.md).
 */
std::string monitorAsmText();
mblaze::MbProgram monitorProgram();

/** Data-memory word holding the monitor's episode count. */
constexpr unsigned kMonitorCountWord = 0;

} // namespace zarf::icd

#endif // ZARF_ICD_BASELINE_HH
