#include "system/system.hh"

namespace zarf::sys
{

TwoLayerSystem::TwoLayerSystem(const Image &zarfImage,
                               const mblaze::MbProgram &monitor,
                               ecg::Heart &heart, Config config)
    : heart(heart), cfg(config),
      machine(zarfImage, lambdaBus,
              MachineConfig{ config.semispaceWords, {}, true }),
      cpu(monitor, mbBus)
{}

SWord
TwoLayerSystem::LambdaBus::getInt(SWord port)
{
    switch (port) {
      case kPortEcgIn: {
        ++sys.nSamples;
        sys.lastSampleCycle = sys.machine.cycles();
        return sys.heart.nextSample();
      }
      case kPortTimer: {
        Cycles now = sys.machine.cycles();
        if (now >= sys.nextTickDue) {
            Cycles lag = now - sys.nextTickDue;
            if (lag > sys.maxLag)
                sys.maxLag = lag;
            // Consumed after the *next* tick was already due: the
            // 5 ms deadline was missed.
            if (lag >= kTickCycles)
                sys.missedDeadline = true;
            sys.nextTickDue += kTickCycles;
            ++sys.nTicks;
            return 1;
        }
        return 0;
      }
      default:
        return 0;
    }
}

void
TwoLayerSystem::LambdaBus::putInt(SWord port, SWord value)
{
    if (port == kPortShockOut) {
        sys.shockLog.push_back({ sys.machine.cycles(), value });
        sys.heart.onShock(value);
    } else if (port == kPortCommOut) {
        sys.channel.push_back(value);
        ++sys.nComm;
        if (sys.nSamples > 0) {
            Cycles it = sys.machine.cycles() - sys.lastSampleCycle;
            if (it > sys.maxIterCycles)
                sys.maxIterCycles = it;
        }
    }
}

SWord
TwoLayerSystem::MbBus::getInt(SWord port)
{
    switch (port) {
      case kMbChanStatus:
        return SWord(sys.channel.size());
      case kMbChanData: {
        if (sys.channel.empty())
            return 0;
        SWord v = sys.channel.front();
        sys.channel.pop_front();
        return v;
      }
      case kMbDiagCmd: {
        if (sys.diagCmds.empty())
            return 0;
        SWord v = sys.diagCmds.front();
        sys.diagCmds.pop_front();
        return v;
      }
      default:
        return 0;
    }
}

void
TwoLayerSystem::MbBus::putInt(SWord port, SWord value)
{
    if (port == kMbDiagResp)
        sys.diagResps.push_back(value);
}

MachineStatus
TwoLayerSystem::runForMs(double ms)
{
    Cycles target =
        machine.cycles() + Cycles(ms * double(kLambdaHz) / 1000.0);
    MachineStatus st = MachineStatus::Running;
    while (machine.cycles() < target &&
           st == MachineStatus::Running) {
        st = machine.advance(cfg.sliceCycles);
        cpu.advance(cfg.sliceCycles * kMbCyclesPerLambdaCycle);
    }
    return st;
}

std::optional<SWord>
TwoLayerSystem::queryTreatments()
{
    diagCmds.push_back(1);
    // Give the monitor a few milliseconds to notice and answer.
    for (int i = 0; i < 10 && diagResps.empty(); ++i)
        runForMs(1.0);
    if (diagResps.empty())
        return std::nullopt;
    SWord v = diagResps.front();
    diagResps.pop_front();
    return v;
}

} // namespace zarf::sys
