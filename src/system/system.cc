#include "system/system.hh"

#include <algorithm>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "support/logging.hh"
#include "verify/budget.hh"

namespace zarf::sys
{

namespace
{

/** Sensor integrity thresholds (docs/RESILIENCE.md). A healthy
 *  synthetic ECG never repeats 40 identical samples (noiseSigma 2.0)
 *  and its steepest R-wave edge moves a few hundred units per
 *  sample, far under the jump limit. */
constexpr unsigned kFlatlineRun = 40;
constexpr SWord kJumpLimit = 800;
constexpr unsigned kJumpRun = 3;

bool
isFailureStatus(MachineStatus st)
{
    return st == MachineStatus::OutOfMemory ||
           st == MachineStatus::Stuck ||
           st == MachineStatus::HeapCorrupt ||
           st == MachineStatus::MemFault;
}

/** Field-wise FaultPlan equality (the struct has no operator==). */
bool
samePlan(const fault::FaultPlan &a, const fault::FaultPlan &b)
{
    if (a.seed != b.seed || a.heapEcc != b.heapEcc ||
        a.operandParity != b.operandParity ||
        a.events.size() != b.events.size())
        return false;
    for (size_t i = 0; i < a.events.size(); ++i) {
        const fault::FaultEvent &x = a.events[i];
        const fault::FaultEvent &y = b.events[i];
        if (x.atCycle != y.atCycle || x.kind != y.kind ||
            x.a != y.a || x.b != y.b)
            return false;
    }
    return true;
}

} // namespace

TwoLayerSystem::TwoLayerSystem(const Image &zarfImage,
                               const mblaze::MbProgram &monitor,
                               ecg::Heart &heart, Config config)
    : TwoLayerSystem(LoadedImage::load(zarfImage), monitor, heart,
                     std::move(config))
{}

TwoLayerSystem::TwoLayerSystem(std::shared_ptr<const LoadedImage> loaded,
                               const mblaze::MbProgram &monitor,
                               ecg::Heart &heart, Config config)
    : heart(heart), cfg(std::move(config)), li(std::move(loaded)),
      cpu(monitor, mbBus), faultRng(cfg.faultPlan.seed)
{
    traceSys = cfg.trace && cfg.trace->wants(obs::Cat::System);
    cpu.setTrace(cfg.trace, kMbCyclesPerLambdaCycle, 0);
    machine.emplace(li, lambdaBus, lambdaConfig(0));
}

MachineConfig
TwoLayerSystem::lambdaConfig(Cycles epoch) const
{
    MachineConfig mc;
    mc.semispaceWords = cfg.semispaceWords;
    mc.timing = cfg.lambdaTiming;
    if (!tierCycleAccurate(cfg.lambdaTier))
        fatal("two-layer system: the %s dispatch tier has no cycle "
              "clock to schedule the co-simulation by; use a "
              "cycle-accurate tier",
              dispatchTierName(cfg.lambdaTier));
    mc.tier = cfg.lambdaTier;
    mc.gcOnExhaustion = true;
    mc.trace = cfg.trace;
    mc.traceBias = epoch;
    mc.fsmTally = cfg.lambdaFsmTally;
    return mc;
}

void
TwoLayerSystem::emitSys(obs::EventKind k, int64_t a, int64_t b)
{
    cfg.trace->emit(k, lambdaNow(), a, b);
}

SWord
TwoLayerSystem::LambdaBus::getInt(SWord port)
{
    switch (port) {
      case kPortEcgIn:
        return sys.ecgRead();
      case kPortTimer:
        return sys.timerRead();
      default:
        return 0;
    }
}

void
TwoLayerSystem::LambdaBus::putInt(SWord port, SWord value)
{
    if (port == kPortShockOut)
        sys.shockWrite(value);
    else if (port == kPortCommOut)
        sys.commWrite(value);
}

SWord
TwoLayerSystem::MbBus::getInt(SWord port)
{
    switch (port) {
      case kMbChanStatus:
        return SWord(sys.channel.size());
      case kMbChanData: {
        if (sys.channel.empty())
            return 0;
        SWord v = sys.channel.front();
        sys.channel.pop_front();
        if (sys.traceSys)
            sys.emitSys(obs::EventKind::ChanPop, v,
                        int64_t(sys.channel.size()));
        return v;
      }
      case kMbDiagCmd: {
        if (sys.diagCmds.empty())
            return 0;
        SWord v = sys.diagCmds.front();
        sys.diagCmds.pop_front();
        return v;
      }
      default:
        return 0;
    }
}

void
TwoLayerSystem::MbBus::putInt(SWord port, SWord value)
{
    if (port == kMbDiagResp)
        sys.diagResps.push_back(value);
}

SWord
TwoLayerSystem::ecgRead()
{
    ++nSamples;
    Cycles now = lambdaNow();
    lastSampleCycle = now;
    SWord raw = heart.nextSample();
    SWord sample = raw;
    if (now < sensorFaultUntil) {
        switch (sensorFaultKind) {
          case fault::FaultKind::SensorDropout:
            sample = 0;
            break;
          case fault::FaultKind::SensorStuck:
            sample = sensorStuckValue;
            break;
          case fault::FaultKind::SensorNoise: {
            // Alternating-sign magnitudes in [amp/2, amp]:
            // consecutive deltas of at least ~amp, guaranteed past
            // the jump limit for the planned amplitudes.
            uint64_t lo = sensorNoiseAmp / 2;
            SWord mag =
                SWord(lo + faultRng.below(sensorNoiseAmp - lo + 1));
            sample = raw + (sensorNoiseFlip ? -mag : mag);
            sensorNoiseFlip = !sensorNoiseFlip;
            break;
          }
          default:
            break;
        }
    }
    sensorIntegrity(sample, now);
    return sample;
}

void
TwoLayerSystem::sensorIntegrity(SWord sample, Cycles now)
{
    if (haveSample) {
        if (sample == prevSample) {
            if (++flatRun == kFlatlineRun) {
                sensorAlertLog.push_back(
                    { SensorAlert::Kind::Flatline, now });
                if (traceSys)
                    emitSys(obs::EventKind::SensorAlert,
                            int64_t(SensorAlert::Kind::Flatline),
                            sample);
            }
        } else {
            flatRun = 0;
        }
        SWord delta = sample - prevSample;
        if (delta > kJumpLimit || delta < -kJumpLimit) {
            if (++jumpRun == kJumpRun) {
                sensorAlertLog.push_back(
                    { SensorAlert::Kind::NoiseBurst, now });
                if (traceSys)
                    emitSys(obs::EventKind::SensorAlert,
                            int64_t(SensorAlert::Kind::NoiseBurst),
                            sample);
            }
        } else {
            jumpRun = 0;
        }
    }
    prevSample = sample;
    haveSample = true;
}

SWord
TwoLayerSystem::timerRead()
{
    Cycles now = lambdaNow();
    if (now >= nextTickDue) {
        Cycles lag = now - nextTickDue;
        if (lag > maxLag)
            maxLag = lag;
        // Consumed after the *next* tick was already due: the
        // 5 ms deadline was missed.
        if (lag >= kTickCycles)
            missedDeadline = true;
        // Lag inside the post-recovery grace window is blackout
        // backlog, not a steady-state miss.
        bool inGrace = restarts > 0 &&
                       now - lastRecoveryAt < cfg.recoveryGraceCycles;
        if (!inGrace) {
            if (lag > steadyMaxLag)
                steadyMaxLag = lag;
            if (lag >= kTickCycles)
                missedOutsideGrace = true;
        }
        nextTickDue += kTickCycles;
        ++nTicks;
        lastTickConsumed = now;
        if (traceSys) {
            emitSys(obs::EventKind::TickConsumed, int64_t(lag),
                    int64_t(nTicks));
            if (lag >= kTickCycles)
                emitSys(obs::EventKind::DeadlineMiss, int64_t(lag),
                        int64_t(nTicks));
        }
        return 1;
    }
    return 0;
}

void
TwoLayerSystem::shockWrite(SWord value)
{
    shockLog.push_back({ lambdaNow(), value });
    persistLastPace = value;
    if (value == kTherapyStartMarker)
        ++persistEpisodes;
    if (traceSys)
        emitSys(obs::EventKind::Shock, value, persistEpisodes);
    heart.onShock(value);
}

void
TwoLayerSystem::commWrite(SWord value)
{
    channelPush(value);
    ++nComm;
    if (nSamples > 0) {
        Cycles it = lambdaNow() - lastSampleCycle;
        if (it > maxIterCycles)
            maxIterCycles = it;
    }
}

void
TwoLayerSystem::channelPush(SWord value)
{
    // Armed drop/dup faults hit the next word through the FIFO; the
    // hardware tags flag them, so they count as detected.
    if (chanDropArmed > 0) {
        --chanDropArmed;
        ++chanFaultCount;
        if (traceSys)
            emitSys(obs::EventKind::ChanFaultDrop, value,
                    int64_t(chanFaultCount));
        return;
    }
    unsigned copies = 1;
    if (chanDupArmed > 0) {
        --chanDupArmed;
        ++chanFaultCount;
        copies = 2;
        if (traceSys)
            emitSys(obs::EventKind::ChanFaultDup, value,
                    int64_t(chanFaultCount));
    }
    for (unsigned i = 0; i < copies; ++i) {
        if (channel.size() >= cfg.channelCapacity) {
            ++chanOverflowCount;
            if (traceSys)
                emitSys(obs::EventKind::ChanOverflow, value,
                        int64_t(channel.size()));
            continue;
        }
        channel.push_back(value);
        if (channel.size() > maxChanDepth)
            maxChanDepth = channel.size();
        if (traceSys)
            emitSys(obs::EventKind::ChanPush, value,
                    int64_t(channel.size()));
    }
}

void
TwoLayerSystem::applyDueFaults()
{
    const auto &events = cfg.faultPlan.events;
    Cycles now = lambdaNow();
    while (planCursor < events.size() &&
           events[planCursor].atCycle <= now) {
        applyFault(events[planCursor]);
        ++planCursor;
    }
}

void
TwoLayerSystem::applyFault(const fault::FaultEvent &e)
{
    using fault::FaultKind;
    bool alive = !degradedMode && !lambdaDead;
    if (traceSys)
        emitSys(obs::EventKind::FaultInjected, int64_t(e.kind),
                int64_t(e.a));
    switch (e.kind) {
      case FaultKind::HeapSeu:
        if (!alive)
            break;
        if (cfg.faultPlan.heapEcc) {
            // SECDED corrects the single-bit flip in place.
            ++eccCorrected;
        } else {
            machine->injectHeapBitFlip(size_t(e.a), unsigned(e.b));
        }
        break;
      case FaultKind::HeapSeuDouble:
        if (!alive)
            break;
        if (cfg.faultPlan.heapEcc) {
            ++eccUncorrectable;
            machine->raiseMemFault(
                "uncorrectable double-bit SEU in heap word");
        } else {
            machine->injectHeapBitFlip(size_t(e.a),
                                       unsigned(e.b & 0xff));
            machine->injectHeapBitFlip(size_t(e.a),
                                       unsigned((e.b >> 8) & 0xff));
        }
        break;
      case FaultKind::OperandSeu:
        if (!alive)
            break;
        if (cfg.faultPlan.operandParity) {
            ++eccUncorrectable;
            machine->raiseMemFault("operand parity error");
        } else {
            machine->injectOperandBitFlip(unsigned(e.b));
        }
        break;
      case FaultKind::SensorDropout:
      case FaultKind::SensorStuck:
      case FaultKind::SensorNoise:
        sensorFaultKind = e.kind;
        // Duration is in samples; one sample per 5 ms tick.
        sensorFaultUntil = lambdaNow() + Cycles(e.a) * kTickCycles;
        sensorStuckValue = prevSample;
        sensorNoiseAmp = e.b;
        sensorNoiseFlip = false;
        break;
      case FaultKind::ChanDrop:
        ++chanDropArmed;
        break;
      case FaultKind::ChanDup:
        ++chanDupArmed;
        break;
      case FaultKind::ChanOverflowBurst:
        // Junk words slam the FIFO. 7 is not a therapy marker, so
        // any that squeeze in inflate the monitor's drain work but
        // not its episode count.
        for (uint64_t i = 0; i < e.a; ++i)
            channelPush(7);
        break;
      case FaultKind::MbMemSeu: {
        // The monitor's live state sits in the first few data words
        // (kMonitorCountWord and scratch); target that region so the
        // flip can actually matter.
        size_t w = size_t(e.a % 8) % cpu.memWords();
        cpu.setMem(w, cpu.mem(w) ^ (SWord(1) << (e.b & 31u)));
        ++mbMemFlipCount;
        break;
      }
      case FaultKind::LambdaWedge:
        if (!alive)
            break;
        {
            Cycles until = lambdaNow() + Cycles(e.a);
            if (until > wedgeUntil)
                wedgeUntil = until;
        }
        break;
    }
}

void
TwoLayerSystem::advanceMonitor(Cycles mbCycles)
{
    if (monFault)
        return;
    cpu.advance(mbCycles);
    if (cpu.status() == mblaze::MbStatus::Fault) {
        monFault = cpu.faultInfo();
        if (traceSys)
            emitSys(obs::EventKind::MonitorFault,
                    int64_t(monFault->cause),
                    int64_t(monFault->pc));
        // Report the structured fault record on the diagnostic
        // response queue: marker, cause, pc, address.
        diagResps.push_back(SWord(kDiagFaultMark));
        diagResps.push_back(SWord(int(monFault->cause)));
        diagResps.push_back(SWord(monFault->pc));
        diagResps.push_back(SWord(monFault->addr));
    }
}

void
TwoLayerSystem::watchdogCheck()
{
    if (degradedMode || lambdaDead)
        return;
    MachineStatus st = machine->status();
    Cycles now = lambdaNow();
    Cycles lastAlive = std::max(lastTickConsumed, lastRecoveryAt);
    bool hung = now > lastAlive + cfg.watchdogTimeoutCycles;
    if (isFailureStatus(st) || hung)
        triggerRestart(st);
}

void
TwoLayerSystem::triggerRestart(MachineStatus st)
{
    ++restarts;
    WatchdogEvent ev;
    ev.atCycle = lambdaNow();
    ev.machineStatus = st;
    ev.diagnostic = machine->diagnostic();
    ev.restartIndex = restarts;
    ev.flushedChannelWords = channel.size();
    if (traceSys)
        emitSys(obs::EventKind::WatchdogTrip, int64_t(st),
                int64_t(restarts));
    // In-flight words are part of the failed incarnation's state.
    channel.clear();
    Cycles tripAt = ev.atCycle;

    if (restarts > cfg.watchdogMaxRestarts) {
        // The λ-layer is beyond saving: degrade to the imperative
        // fallback detector on the same device rig, or — with no
        // fallback configured — mark the λ-layer dead and keep the
        // monitor/diagnostics alive.
        Cycles blackout = watchdogBlackoutPenalty(
            cfg.restartLatencyCycles, 0, cfg.maxBlackoutCycles);
        ev.blackoutCycles = blackout;
        machineEpoch = tripAt + blackout;
        degradedClock = 0;
        wedgeUntil = 0;
        if (cfg.fallbackProgram.code.empty()) {
            lambdaDead = true;
            if (traceSys)
                emitSys(obs::EventKind::LambdaDead,
                        int64_t(restarts), 0);
        } else {
            degradedMode = true;
            baselineCpu.emplace(cfg.fallbackProgram, lambdaBus);
            baselineCpu->setTrace(cfg.trace, kMbCyclesPerLambdaCycle,
                                  machineEpoch);
            resyncMonitor();
            if (traceSys)
                emitSys(obs::EventKind::Degraded,
                        int64_t(restarts), 0);
        }
        ev.degraded = degradedMode;
    } else {
        // Bounded-blackout restart: exponential backoff penalty,
        // image reload, state replay to the monitor. The doubling
        // saturates at maxBlackoutCycles: the pre-shift overflow
        // test keeps a large restartLatencyCycles from shifting
        // past 2^64 and wrapping to a near-zero blackout.
        unsigned shift = std::min(restarts - 1, 16u);
        Cycles penalty = watchdogBlackoutPenalty(
            cfg.restartLatencyCycles, shift, cfg.maxBlackoutCycles);
        // Retire the dying incarnation's counters before the reload
        // replaces it — aggregatedLambdaStats() keeps the full
        // history where lambdaStats() alone would silently reset.
        retiredLambda.accumulate(machine->stats());
        retiredTally.accumulate(machine->fsmTally());
        Cycles newEpoch = tripAt + penalty;
        machine.emplace(li, lambdaBus, lambdaConfig(newEpoch));
        machineEpoch = newEpoch;
        wedgeUntil = 0;
        resyncMonitor();
        ev.blackoutCycles = penalty;
        if (traceSys)
            cfg.trace->emit(obs::EventKind::WatchdogRestart, newEpoch,
                            int64_t(penalty), int64_t(restarts));
        // The monitor is not restarted; it runs through the blackout
        // and processes the replay before the λ-layer resumes.
        advanceMonitor(penalty * kMbCyclesPerLambdaCycle);
    }

    lastRecoveryAt = lambdaNow();
    if (lastRecoveryAt > lastTickConsumed)
        lastTickConsumed = lastRecoveryAt;
    wdLog.push_back(std::move(ev));
}

void
TwoLayerSystem::resyncMonitor()
{
    diagCmds.push_back(kDiagCmdResync);
    diagCmds.push_back(persistEpisodes);
    if (traceSys)
        emitSys(obs::EventKind::Resync, persistEpisodes,
                persistLastPace);
}

MachineStats
TwoLayerSystem::aggregatedLambdaStats() const
{
    MachineStats s = retiredLambda;
    s.accumulate(machine->stats());
    return s;
}

FsmTally
TwoLayerSystem::aggregatedLambdaTally() const
{
    FsmTally t = retiredTally;
    t.accumulate(machine->fsmTally());
    return t;
}

void
TwoLayerSystem::exportMetrics(obs::Metrics &m) const
{
    exportStats(aggregatedLambdaStats(), m, "lambda.");
    if (cfg.lambdaFsmTally)
        exportTally(aggregatedLambdaTally(), m, "lambda.fsm");
    m.setCounter("lambda.status", uint64_t(machine->status()));
    m.setGauge("lambda.heap.used-words",
               int64_t(machine->heapUsedWords()));

    m.setCounter("system.lambda-cycles", lambdaNow());
    m.setCounter("system.ticks", nTicks);
    m.setCounter("system.samples", nSamples);
    m.setCounter("system.comm-words", nComm);
    m.setCounter("system.shocks", shockLog.size());
    m.setCounter("system.max-tick-lag", maxLag);
    m.setCounter("system.steady-max-tick-lag", steadyMaxLag);
    m.setCounter("system.deadline-missed", missedDeadline ? 1 : 0);
    m.setCounter("system.deadline-missed-outside-recovery",
                 missedOutsideGrace ? 1 : 0);
    m.setCounter("system.max-iteration-cycles", maxIterCycles);

    m.setCounter("chan.overflows", chanOverflowCount);
    m.setCounter("chan.faults-detected", chanFaultCount);
    m.setCounter("chan.max-depth", maxChanDepth);
    m.setGauge("chan.depth", int64_t(channel.size()));

    m.setCounter("watchdog.restarts", restarts);
    m.setCounter("watchdog.degraded", degradedMode ? 1 : 0);
    m.setCounter("watchdog.lambda-dead", lambdaDead ? 1 : 0);
    m.setCounter("sensor.alerts", sensorAlertLog.size());
    m.setCounter("ecc.corrected", eccCorrected);
    m.setCounter("ecc.uncorrectable", eccUncorrectable);
    m.setCounter("mb.mem-flips", mbMemFlipCount);

    m.setCounter("mb.cycles", cpu.cycles());
    m.setCounter("mb.instructions", cpu.instructionsRetired());
    m.setCounter("mb.fault", monFault ? 1 : 0);

    m.setGauge("persist.episodes", persistEpisodes);
    m.setGauge("persist.last-pace", persistLastPace);
}

MachineStatus
TwoLayerSystem::runForMs(double ms)
{
    return runUntil(lambdaNow() +
                    Cycles(ms * double(kLambdaHz) / 1000.0));
}

MachineStatus
TwoLayerSystem::runUntil(Cycles target)
{
    while (lambdaNow() < target) {
        // Budget/cancellation between slices: every slice is a
        // consistent boundary (snapshot-able, observers coherent),
        // and a slice bounds the host work between checks. The λ
        // clock is the shared epoch-based one, so deterministic
        // trips land on the same boundary whatever the dispatch
        // tier.
        if (cfg.budget) {
            // A tripped budget stays tripped: later runUntil calls
            // (queryTreatments, resync settling) return immediately
            // instead of resuming the simulation.
            if (budgetStopped)
                break;
            uint64_t heapBytes =
                (degradedMode || lambdaDead)
                    ? 0
                    : machine->heapUsedWords() * sizeof(Word);
            verify::BudgetTrip t =
                cfg.budget->check(lambdaNow(), heapBytes);
            if (t != verify::BudgetTrip::None) {
                budgetStopped = true;
                // Once-per-run event; the recorder's own category
                // mask filters it (BudgetTrip is MachineLife, not
                // System, so don't gate on the cached traceSys).
                if (cfg.trace)
                    emitSys(obs::EventKind::BudgetTrip, int64_t(t),
                            int64_t(lambdaNow()));
                break;
            }
        }
        applyDueFaults();
        if (degradedMode || lambdaDead) {
            degradedClock += cfg.sliceCycles;
            if (degradedMode)
                baselineCpu->advance(cfg.sliceCycles *
                                     kMbCyclesPerLambdaCycle);
            advanceMonitor(cfg.sliceCycles * kMbCyclesPerLambdaCycle);
            continue;
        }
        MachineStatus st;
        if (wedgeUntil > lambdaNow()) {
            // Wedged pipeline: the clock counts, nothing retires.
            machineEpoch += cfg.sliceCycles;
            st = machine->status();
        } else {
            st = machine->advance(cfg.sliceCycles);
        }
        advanceMonitor(cfg.sliceCycles * kMbCyclesPerLambdaCycle);
        if (st == MachineStatus::Done)
            break;
        if (cfg.watchdogEnabled)
            watchdogCheck();
        else if (st != MachineStatus::Running)
            break;
    }
    if (degradedMode)
        return MachineStatus::Running;
    return machine->status();
}

std::shared_ptr<const SystemSnapshot>
TwoLayerSystem::snapshot() const
{
    auto s = std::make_shared<SystemSnapshot>();
    s->li = li;
    s->lambda = machine ? machine->snapshot() : nullptr;
    cpu.save(s->monitor);
    s->hasBaseline = baselineCpu.has_value();
    if (baselineCpu)
        baselineCpu->save(s->baseline);

    s->machineEpoch = machineEpoch;
    s->degradedClock = degradedClock;
    s->wedgeUntil = wedgeUntil;
    s->degradedMode = degradedMode;
    s->lambdaDead = lambdaDead;

    s->nextTickDue = nextTickDue;
    s->nTicks = nTicks;
    s->maxLag = maxLag;
    s->missedDeadline = missedDeadline;
    s->channel = channel;
    s->diagCmds = diagCmds;
    s->diagResps = diagResps;
    s->shockLog = shockLog;
    s->nSamples = nSamples;
    s->nComm = nComm;
    s->lastSampleCycle = lastSampleCycle;
    s->maxIterCycles = maxIterCycles;
    s->maxChanDepth = maxChanDepth;

    s->persistLastPace = persistLastPace;
    s->persistEpisodes = persistEpisodes;

    s->restarts = restarts;
    s->wdLog = wdLog;
    s->lastTickConsumed = lastTickConsumed;
    s->lastRecoveryAt = lastRecoveryAt;
    s->steadyMaxLag = steadyMaxLag;
    s->missedOutsideGrace = missedOutsideGrace;

    s->sensorAlertLog = sensorAlertLog;
    s->prevSample = prevSample;
    s->haveSample = haveSample;
    s->flatRun = flatRun;
    s->jumpRun = jumpRun;

    s->plan = cfg.faultPlan;
    s->planCursor = planCursor;
    s->faultRng = faultRng;
    s->sensorFaultKind = sensorFaultKind;
    s->sensorFaultUntil = sensorFaultUntil;
    s->sensorStuckValue = sensorStuckValue;
    s->sensorNoiseAmp = sensorNoiseAmp;
    s->sensorNoiseFlip = sensorNoiseFlip;
    s->chanDropArmed = chanDropArmed;
    s->chanDupArmed = chanDupArmed;
    s->chanOverflowCount = chanOverflowCount;
    s->chanFaultCount = chanFaultCount;
    s->eccCorrected = eccCorrected;
    s->eccUncorrectable = eccUncorrectable;
    s->mbMemFlipCount = mbMemFlipCount;
    s->monFault = monFault;

    s->retiredLambda = retiredLambda;
    s->retiredTally = retiredTally;
    return s;
}

void
TwoLayerSystem::restore(const SystemSnapshot &s)
{
    if (s.lambda)
        machine->restore(*s.lambda);
    cpu.restore(s.monitor);
    if (s.hasBaseline) {
        baselineCpu.emplace(cfg.fallbackProgram, lambdaBus);
        baselineCpu->setTrace(cfg.trace, kMbCyclesPerLambdaCycle,
                              s.machineEpoch);
        baselineCpu->restore(s.baseline);
    } else {
        baselineCpu.reset();
    }

    machineEpoch = s.machineEpoch;
    degradedClock = s.degradedClock;
    wedgeUntil = s.wedgeUntil;
    degradedMode = s.degradedMode;
    lambdaDead = s.lambdaDead;

    nextTickDue = s.nextTickDue;
    nTicks = s.nTicks;
    maxLag = s.maxLag;
    missedDeadline = s.missedDeadline;
    channel = s.channel;
    diagCmds = s.diagCmds;
    diagResps = s.diagResps;
    shockLog = s.shockLog;
    nSamples = s.nSamples;
    nComm = s.nComm;
    lastSampleCycle = s.lastSampleCycle;
    maxIterCycles = s.maxIterCycles;
    maxChanDepth = s.maxChanDepth;

    persistLastPace = s.persistLastPace;
    persistEpisodes = s.persistEpisodes;

    restarts = s.restarts;
    wdLog = s.wdLog;
    lastTickConsumed = s.lastTickConsumed;
    lastRecoveryAt = s.lastRecoveryAt;
    steadyMaxLag = s.steadyMaxLag;
    missedOutsideGrace = s.missedOutsideGrace;

    sensorAlertLog = s.sensorAlertLog;
    prevSample = s.prevSample;
    haveSample = s.haveSample;
    flatRun = s.flatRun;
    jumpRun = s.jumpRun;

    // Fault-effect latches are system state: transfer always. (At a
    // fault-free snapshot point they are all defaults, so a fork
    // inherits exactly what a cold run would have.)
    sensorFaultKind = s.sensorFaultKind;
    sensorFaultUntil = s.sensorFaultUntil;
    sensorStuckValue = s.sensorStuckValue;
    sensorNoiseAmp = s.sensorNoiseAmp;
    sensorNoiseFlip = s.sensorNoiseFlip;
    chanDropArmed = s.chanDropArmed;
    chanDupArmed = s.chanDupArmed;
    chanOverflowCount = s.chanOverflowCount;
    chanFaultCount = s.chanFaultCount;
    eccCorrected = s.eccCorrected;
    eccUncorrectable = s.eccUncorrectable;
    mbMemFlipCount = s.mbMemFlipCount;
    monFault = s.monFault;

    // Fault *context* (which events have fired, the noise RNG)
    // transfers only to a receiver running the identical plan; a
    // fork with its own plan keeps its fresh cursor and RNG — the
    // state a cold run of that plan has after a fault-free prefix.
    if (samePlan(cfg.faultPlan, s.plan)) {
        planCursor = s.planCursor;
        faultRng = s.faultRng;
    }

    retiredLambda = s.retiredLambda;
    retiredTally = s.retiredTally;
}

std::optional<SWord>
TwoLayerSystem::queryTreatments()
{
    if (monFault)
        return std::nullopt;
    diagCmds.push_back(kDiagCmdReport);
    // Give the monitor a few milliseconds to notice and answer.
    for (int i = 0; i < 10 && diagResps.empty(); ++i)
        runForMs(1.0);
    if (diagResps.empty())
        return std::nullopt;
    SWord v = diagResps.front();
    diagResps.pop_front();
    return v;
}

} // namespace zarf::sys
