/**
 * @file
 * The two-layer Zarf system: the λ-execution layer (50 MHz) and the
 * imperative core (100 MHz) co-simulated against a shared device
 * rig — hardware timer, ECG front-end, pacing output, the
 * inter-layer FIFO channel, and the diagnostic channel (paper,
 * Fig. 1 and Sec. 4).
 *
 * The λ-layer is the time master: its cycle counter drives the 5 ms
 * sample timer. The imperative core runs two cycles per λ cycle.
 * The rig records pacing events with timestamps and tracks timer
 * lag, so real-time-deadline adherence (Sec. 5.2) is directly
 * observable.
 *
 * Resilience (docs/RESILIENCE.md): the system carries the
 * detection-and-recovery machinery that makes every modelled failure
 * explicit rather than a host crash —
 *
 *  - the λ->mb FIFO is bounded (SystemConfig::channelCapacity) with
 *    overflow accounting, and drop/duplicate faults are flagged by
 *    the FIFO's integrity tags;
 *  - the ECG front-end has an integrity monitor (flatline and
 *    noise-burst detectors) that raises SensorAlerts;
 *  - a hardware watchdog detects a failed λ-layer (machine status)
 *    or a hung one (no tick consumed within the timeout) and
 *    performs a bounded-blackout restart: flush the channel, reload
 *    the image, resume the λ clock from an epoch base, and replay
 *    the persisted therapy state to the monitor over the diagnostic
 *    channel. Repeated restarts back off exponentially; past
 *    watchdogMaxRestarts the system degrades to the imperative
 *    fallback detector (SystemConfig::fallbackProgram) on the same
 *    device rig;
 *  - an imperative-core fault is captured as a structured record and
 *    reported on the diagnostic response queue.
 *
 * With an empty FaultPlan and a healthy kernel none of this
 * machinery perturbs the simulation: cycles, statistics, and shock
 * logs are bit-identical to the pre-resilience system.
 */

#ifndef ZARF_SYSTEM_SYSTEM_HH
#define ZARF_SYSTEM_SYSTEM_HH

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ecg/synth.hh"
#include "fault/plan.hh"
#include "machine/loaded_image.hh"
#include "machine/machine.hh"
#include "mblaze/cpu.hh"
#include "sem/io.hh"
#include "support/random.hh"
#include "system/ports.hh"

namespace zarf::obs
{
enum class EventKind : uint8_t;
} // namespace zarf::obs

namespace zarf::verify
{
class Budget;
} // namespace zarf::verify

namespace zarf::sys
{

/**
 * The watchdog's backed-off blackout penalty: `latency << shift`,
 * saturating at `ceiling` (SystemConfig::maxBlackoutCycles). The
 * overflow test happens *before* the shift — `latency << shift` on
 * a large configured latency can exceed 2^64 and wrap Cycles to a
 * near-zero blackout, silently defeating the backoff — so the
 * result is exact below the ceiling and exactly the ceiling at or
 * above it. Exposed as a free function so the arithmetic is
 * unit-testable without engineering a 17-restart scenario.
 */
inline Cycles
watchdogBlackoutPenalty(Cycles latency, unsigned shift, Cycles ceiling)
{
    if (latency >= ceiling)
        return ceiling;
    if (shift >= 64 || latency > (ceiling >> shift))
        return ceiling;
    return latency << shift;
}

/** One recorded pacing-port write. */
struct ShockEvent
{
    Cycles lambdaCycle;
    SWord value;
};

/** One watchdog trip and the recovery it performed. */
struct WatchdogEvent
{
    Cycles atCycle = 0;      ///< λ clock at the trip.
    MachineStatus machineStatus =
        MachineStatus::Running; ///< Status that tripped it (Running
                                ///< means a hang, not a failure).
    std::string diagnostic;  ///< The failed machine's diagnostic.
    Cycles blackoutCycles = 0; ///< Backoff penalty + image reload.
    unsigned restartIndex = 0; ///< 1-based restart ordinal.
    size_t flushedChannelWords = 0; ///< In-flight words discarded.
    bool degraded = false;   ///< This trip engaged the fallback.
};

/** One ECG front-end integrity alert. */
struct SensorAlert
{
    enum class Kind
    {
        Flatline,   ///< Stuck-at / dropout: long identical run.
        NoiseBurst, ///< Repeated physiologically impossible jumps.
    };
    Kind kind;
    Cycles atCycle;
};

/** Default λ->mb FIFO depth. The clean-system worst observed depth
 *  is 1 (the monitor drains within microseconds of a push); 8 gives
 *  ample headroom while keeping overflow observable under fault
 *  injection. */
constexpr size_t kDefaultChannelCapacity = 8;

/** Co-simulation sizing and resilience knobs. */
struct SystemConfig
{
    size_t semispaceWords = 1u << 18;
    Cycles sliceCycles = 2000; ///< λ cycles per co-sim slice.

    /** λ-layer timing override (tests slow the kernel down to trip
     *  the deadline machinery). */
    TimingModel lambdaTiming{};

    /** λ-machine dispatch tier. Any cycle-accurate tier is
     *  behavior-identical here (the threaded tier just co-simulates
     *  faster); FastFunctional is rejected at construction — the
     *  co-simulation schedules the two layers by λ cycles, which
     *  that tier does not model. */
    DispatchTier lambdaTier = DispatchTier::Uop;

    /** Bounded λ->mb FIFO depth; pushes beyond it are dropped and
     *  counted (channelOverflows). */
    size_t channelCapacity = kDefaultChannelCapacity;

    /** Watchdog: detect a failed/hung λ-layer and restart it. */
    bool watchdogEnabled = true;
    /** No tick consumed for this long => the λ-layer is hung. */
    Cycles watchdogTimeoutCycles = 8 * kTickCycles; // 40 ms
    /** Blackout floor for the first restart; doubles per restart. */
    Cycles restartLatencyCycles = kTickCycles / 5; // 1 ms
    /** Restarts beyond this engage the fallback (or give up). */
    unsigned watchdogMaxRestarts = 3;
    /** Ceiling on the exponentially backed-off blackout penalty.
     *  The doubling in triggerRestart() is a left shift of
     *  restartLatencyCycles; without a ceiling a large configured
     *  latency (or a raised watchdogMaxRestarts) can shift the
     *  penalty past 2^64 and wrap Cycles to a *tiny* blackout —
     *  exactly the wrong failure mode. The penalty saturates here
     *  instead (default: one simulated second, far above any real
     *  recovery but finite). */
    Cycles maxBlackoutCycles = kLambdaHz; // 1 s
    /** Tick lag inside this window after a recovery is attributed
     *  to the blackout backlog, not a steady-state deadline miss. */
    Cycles recoveryGraceCycles = 10 * kTickCycles; // 50 ms

    /** Imperative fallback detector (icd::baselineIcdProgram); an
     *  empty program disables graceful degradation. */
    mblaze::MbProgram fallbackProgram{};

    /** Scheduled fault injections; empty by default. */
    fault::FaultPlan faultPlan{};

    /** Event sink shared by both layers and the device rig (null =
     *  tracing off). Machine events are stamped with the epoch-based
     *  λ clock, imperative-core events with mbCycles/2, so every
     *  incarnation lands on one timeline (docs/OBSERVABILITY.md).
     *  Not owned; must outlive the system. */
    obs::Recorder *trace = nullptr;
    /** Cooperative cancellation/budget token (verify/budget.hh) for
     *  the whole co-simulation. Checked between slices in runUntil()
     *  against the shared λ clock and the live machine's heap, so a
     *  trip is observed within one slice (sliceCycles) of simulated
     *  progress. The machine's own MachineConfig::budget stays null —
     *  arming it there would surface the trip as a machine failure
     *  and spuriously engage the watchdog. Deterministic trips
     *  (λ-cycles, heap) land on the same slice boundary for every
     *  cycle-accurate tier and thread count. Not owned; may be
     *  cancelled from any thread. */
    verify::Budget *budget = nullptr;
    /** Maintain the λ-machine's per-FSM-state tally (it survives
     *  watchdog restarts via aggregatedLambdaTally()). */
    bool lambdaFsmTally = false;
};

/**
 * The complete mutable state of a TwoLayerSystem at a slice boundary
 * (docs/PERF.md, "Campaign-scale execution"). Campaigns capture one
 * snapshot at the end of the fault-free prefix of a golden run and
 * fork every scenario from it instead of re-simulating the prefix.
 * Immutable once built; shareable across threads.
 *
 * The heart is NOT part of the snapshot — it is external to the
 * system (passed by reference) and must be cloned separately
 * (ecg::Heart::clone) at the same instant the snapshot is taken.
 */
struct SystemSnapshot
{
    /** Identity of the λ image the snapshot was taken over. */
    std::shared_ptr<const LoadedImage> li;

    /** λ-machine state (null only if the λ-layer was already dead). */
    std::shared_ptr<const MachineSnapshot> lambda;
    mblaze::MbState monitor;
    bool hasBaseline = false;
    mblaze::MbState baseline;

    // λ clock epoch machinery.
    Cycles machineEpoch = 0;
    Cycles degradedClock = 0;
    Cycles wedgeUntil = 0;
    bool degradedMode = false;
    bool lambdaDead = false;

    // Devices.
    Cycles nextTickDue = 0;
    uint64_t nTicks = 0;
    Cycles maxLag = 0;
    bool missedDeadline = false;
    std::deque<SWord> channel;
    std::deque<SWord> diagCmds;
    std::deque<SWord> diagResps;
    std::vector<ShockEvent> shockLog;
    uint64_t nSamples = 0;
    uint64_t nComm = 0;
    Cycles lastSampleCycle = 0;
    Cycles maxIterCycles = 0;
    size_t maxChanDepth = 0;

    // Persistent therapy state.
    SWord persistLastPace = 0;
    SWord persistEpisodes = 0;

    // Watchdog state.
    unsigned restarts = 0;
    std::vector<WatchdogEvent> wdLog;
    Cycles lastTickConsumed = 0;
    Cycles lastRecoveryAt = 0;
    Cycles steadyMaxLag = 0;
    bool missedOutsideGrace = false;

    // Sensor front-end integrity monitor.
    std::vector<SensorAlert> sensorAlertLog;
    SWord prevSample = 0;
    bool haveSample = false;
    unsigned flatRun = 0;
    unsigned jumpRun = 0;

    /** The source system's fault plan, with its cursor and RNG.
     *  restore() adopts these only when the receiver runs the same
     *  plan (round-trip fidelity); a forked system with a different
     *  plan keeps its own fresh fault context, which is exactly the
     *  state a cold run of that plan has at the end of a fault-free
     *  prefix. */
    fault::FaultPlan plan;
    size_t planCursor = 0;
    Rng faultRng;
    fault::FaultKind sensorFaultKind =
        fault::FaultKind::SensorDropout;
    Cycles sensorFaultUntil = 0;
    SWord sensorStuckValue = 0;
    uint64_t sensorNoiseAmp = 0;
    bool sensorNoiseFlip = false;
    unsigned chanDropArmed = 0;
    unsigned chanDupArmed = 0;
    uint64_t chanOverflowCount = 0;
    uint64_t chanFaultCount = 0;
    uint64_t eccCorrected = 0;
    uint64_t eccUncorrectable = 0;
    uint64_t mbMemFlipCount = 0;
    std::optional<mblaze::MbFaultInfo> monFault;

    // Retired λ incarnation counters.
    MachineStats retiredLambda{};
    FsmTally retiredTally{};
};

/** Co-simulation of the two layers plus devices. */
class TwoLayerSystem
{
  public:
    using Config = SystemConfig;

    /**
     * @param zarfImage λ-layer program (e.g. icd::buildKernelImage)
     * @param monitor imperative-layer program
     * @param heart the signal source / pacing sink
     */
    TwoLayerSystem(const Image &zarfImage,
                   const mblaze::MbProgram &monitor, ecg::Heart &heart,
                   SystemConfig config = SystemConfig());

    /** Same, from a shared load artifact: header parsing and µop
     *  predecoding are reused instead of redone, and watchdog
     *  reloads re-use it too. Bit-identical to the raw-image
     *  constructor (machine/loaded_image.hh). */
    TwoLayerSystem(std::shared_ptr<const LoadedImage> li,
                   const mblaze::MbProgram &monitor, ecg::Heart &heart,
                   SystemConfig config = SystemConfig());

    /** Advance the whole system by `ms` milliseconds of λ time.
     *  Returns the λ-machine's status (Running while degraded: the
     *  system as a whole is still alive on the fallback). */
    MachineStatus runForMs(double ms);

    /** Advance until the shared λ clock reaches `target` (absolute
     *  cycles; no-op if already there). runForMs(ms) is exactly
     *  runUntil(lambdaNow() + ms·kLambdaHz/1000) — campaigns use the
     *  absolute form so a run split at a snapshot point replays the
     *  identical slice sequence as an unsplit one. */
    MachineStatus runUntil(Cycles target);

    /**
     * Capture the complete system state at the current slice
     * boundary. The heart is not included — clone it at the same
     * instant (ecg::Heart::clone) and give each fork its own clone.
     */
    std::shared_ptr<const SystemSnapshot> snapshot() const;

    /**
     * Adopt a state captured by snapshot(). The receiver must have
     * been built from the same image with the same semispace size
     * and the same monitor/fallback programs (the latter is the
     * caller's responsibility; program identity is not checked).
     * Fault context (plan cursor + RNG) transfers only when the
     * receiver's FaultPlan equals the snapshot source's; otherwise
     * the receiver keeps its own fresh context — precisely the state
     * a cold run of its plan has after a fault-free prefix, which is
     * what makes fork-from-snapshot bit-identical to cold runs in
     * campaigns whose fault windows start after the snapshot point.
     */
    void restore(const SystemSnapshot &s);

    /** Send a diagnostic command and collect the response (runs the
     *  system a little to let the monitor answer). */
    std::optional<SWord> queryTreatments();

    /** Replay the persisted therapy state to the monitor over the
     *  diagnostic channel (watchdog recovery does this
     *  automatically; campaigns call it after detecting a count
     *  mismatch). */
    void resyncMonitor();

    // Observers (pre-resilience set; semantics unchanged).
    const std::vector<ShockEvent> &shocks() const { return shockLog; }
    const MachineStats &lambdaStats() const { return machine->stats(); }
    Cycles lambdaCycles() const { return lambdaNow(); }
    Cycles mbCycles() const { return cpu.cycles(); }
    uint64_t samplesRead() const { return nSamples; }
    uint64_t ticksConsumed() const { return nTicks; }
    /** Worst observed delay between a tick being due and the kernel
     *  consuming it, in λ cycles (deadline slack check). */
    Cycles maxTickLag() const { return maxLag; }
    /** True if any tick was consumed after the next was already due
     *  (a missed 5 ms real-time deadline). */
    bool deadlineMissed() const { return missedDeadline; }
    /** Worst λ-cycles from sample read to comm write (per-iteration
     *  compute time, excluding the timer wait). */
    Cycles maxIterationCycles() const { return maxIterCycles; }
    uint64_t commWords() const { return nComm; }

    // Resilience observers.
    unsigned watchdogRestarts() const { return restarts; }
    const std::vector<WatchdogEvent> &watchdogLog() const
    {
        return wdLog;
    }
    /** True once the fallback detector has taken over. */
    bool degraded() const { return degradedMode; }
    /** True if the λ-layer is permanently down with no fallback. */
    bool lambdaDown() const { return lambdaDead; }
    /** True once SystemConfig::budget has tripped and stopped the
     *  co-simulation (runUntil returned early). The system state is
     *  a consistent slice boundary: snapshot(), the observers, and
     *  queryTreatments() all remain usable. */
    bool budgetTripped() const { return budgetStopped; }
    const std::vector<SensorAlert> &sensorAlerts() const
    {
        return sensorAlertLog;
    }
    /** Words dropped because the bounded FIFO was full. */
    uint64_t channelOverflows() const { return chanOverflowCount; }
    /** Drop/duplicate faults flagged by the FIFO integrity tags. */
    uint64_t channelFaultsDetected() const { return chanFaultCount; }
    /** Single-bit heap SEUs corrected by the SECDED code. */
    uint64_t eccCorrectedFaults() const { return eccCorrected; }
    /** Uncorrectable memory faults surfaced as MemFault. */
    uint64_t eccUncorrectableFaults() const { return eccUncorrectable; }
    /** Raw bit flips applied to the imperative core's data memory. */
    uint64_t mbMemFlips() const { return mbMemFlipCount; }
    /** The imperative core's fault record, if it has faulted. */
    const std::optional<mblaze::MbFaultInfo> &monitorFault() const
    {
        return monFault;
    }
    /** System-persisted therapy state (the "NVRAM" the watchdog
     *  replays on recovery). */
    SWord persistedEpisodes() const { return persistEpisodes; }
    SWord persistedLastPace() const { return persistLastPace; }
    /** Worst tick lag observed outside recovery-grace windows. */
    Cycles steadyStateMaxLag() const { return steadyMaxLag; }
    /** deadlineMissed() restricted to outside grace windows. */
    bool missedDeadlineOutsideRecovery() const
    {
        return missedOutsideGrace;
    }
    /** λ clock at the most recent tick consumption. */
    Cycles lastTickConsumedAt() const { return lastTickConsumed; }
    /** Worst FIFO depth observed at push time. */
    size_t maxChannelDepth() const { return maxChanDepth; }

    // Observability.
    /** λ-machine statistics summed across every incarnation this
     *  system has run (watchdog restarts retire the dying machine's
     *  counters into the sum instead of losing them). Equals
     *  lambdaStats() until the first restart. */
    MachineStats aggregatedLambdaStats() const;
    /** Per-FSM-state tally summed across incarnations (all-zero
     *  unless SystemConfig::lambdaFsmTally). */
    FsmTally aggregatedLambdaTally() const;
    /** Export the full system metric set — aggregated λ counters,
     *  channel/watchdog/sensor/ECC counters, deadline stats, and the
     *  imperative core's cycle and instruction counts. */
    void exportMetrics(obs::Metrics &metrics) const;

  private:
    /** The devices' view of λ time. Equals the machine's own cycle
     *  counter until the first watchdog restart; afterwards the
     *  epoch base keeps the clock monotonic across machine
     *  incarnations (and across degradation, where a slice counter
     *  stands in for the dead machine). */
    Cycles
    lambdaNow() const
    {
        if (degradedMode || lambdaDead)
            return machineEpoch + degradedClock;
        return machineEpoch + machine->cycles();
    }

    /** The λ-layer's (and the fallback detector's) view of the
     *  devices. */
    class LambdaBus : public IoBus
    {
      public:
        explicit LambdaBus(TwoLayerSystem &sys) : sys(sys) {}
        SWord getInt(SWord port) override;
        void putInt(SWord port, SWord value) override;

      private:
        TwoLayerSystem &sys;
    };

    /** The imperative core's view. */
    class MbBus : public IoBus
    {
      public:
        explicit MbBus(TwoLayerSystem &sys) : sys(sys) {}
        SWord getInt(SWord port) override;
        void putInt(SWord port, SWord value) override;

      private:
        TwoLayerSystem &sys;
    };

    /** MachineConfig for a (re)started λ incarnation whose trace
     *  timestamps must begin at `epoch` on the shared clock. */
    MachineConfig lambdaConfig(Cycles epoch) const;
    /** Emit a System-category event stamped with lambdaNow(). */
    void emitSys(obs::EventKind k, int64_t a = 0, int64_t b = 0);

    SWord ecgRead();
    SWord timerRead();
    void shockWrite(SWord value);
    void commWrite(SWord value);
    void channelPush(SWord value);
    void sensorIntegrity(SWord sample, Cycles now);
    void applyDueFaults();
    void applyFault(const fault::FaultEvent &e);
    void advanceMonitor(Cycles mbCycles);
    void watchdogCheck();
    void triggerRestart(MachineStatus st);

    ecg::Heart &heart;
    Config cfg;

    LambdaBus lambdaBus{ *this };
    MbBus mbBus{ *this };
    /** Shared load artifact; watchdog reloads and snapshot identity
     *  checks reuse it (was: an owned Image copy re-parsed per
     *  incarnation). */
    std::shared_ptr<const LoadedImage> li;
    std::optional<Machine> machine;
    mblaze::MbCpu cpu; ///< The monitor; never restarted.
    std::optional<mblaze::MbCpu> baselineCpu; ///< Degraded mode.

    // λ clock epoch machinery (see lambdaNow()).
    Cycles machineEpoch = 0;
    Cycles degradedClock = 0;
    Cycles wedgeUntil = 0; ///< λ pipeline wedged until this cycle.
    bool degradedMode = false;
    bool lambdaDead = false;

    // Devices.
    Cycles nextTickDue = kTickCycles;
    uint64_t nTicks = 0;
    Cycles maxLag = 0;
    bool missedDeadline = false;
    std::deque<SWord> channel; ///< λ -> imperative FIFO (bounded).
    std::deque<SWord> diagCmds;
    std::deque<SWord> diagResps;
    std::vector<ShockEvent> shockLog;
    uint64_t nSamples = 0;
    uint64_t nComm = 0;
    Cycles lastSampleCycle = 0;
    Cycles maxIterCycles = 0;
    size_t maxChanDepth = 0;

    // Persistent therapy state (the watchdog's replay source).
    SWord persistLastPace = 0;
    SWord persistEpisodes = 0;

    // Watchdog state.
    unsigned restarts = 0;
    std::vector<WatchdogEvent> wdLog;
    Cycles lastTickConsumed = 0;
    Cycles lastRecoveryAt = 0;
    Cycles steadyMaxLag = 0;
    bool missedOutsideGrace = false;

    // Sensor front-end integrity monitor.
    std::vector<SensorAlert> sensorAlertLog;
    SWord prevSample = 0;
    bool haveSample = false;
    unsigned flatRun = 0;
    unsigned jumpRun = 0;

    // Fault injection state.
    size_t planCursor = 0;
    Rng faultRng;
    fault::FaultKind sensorFaultKind = fault::FaultKind::SensorDropout;
    Cycles sensorFaultUntil = 0;
    SWord sensorStuckValue = 0;
    uint64_t sensorNoiseAmp = 0;
    bool sensorNoiseFlip = false;
    unsigned chanDropArmed = 0;
    unsigned chanDupArmed = 0;
    uint64_t chanOverflowCount = 0;
    uint64_t chanFaultCount = 0;
    uint64_t eccCorrected = 0;
    uint64_t eccUncorrectable = 0;
    uint64_t mbMemFlipCount = 0;
    std::optional<mblaze::MbFaultInfo> monFault;

    // Observability (SystemConfig::trace / lambdaFsmTally).
    bool traceSys = false; ///< Cached trace->wants(Cat::System).
    /** Latched once SystemConfig::budget trips (BudgetTrip event is
     *  emitted exactly once). */
    bool budgetStopped = false;
    /** Counters retired from machine incarnations the watchdog has
     *  replaced; aggregatedLambdaStats() adds the live machine's. */
    MachineStats retiredLambda{};
    FsmTally retiredTally{};
};

} // namespace zarf::sys

#endif // ZARF_SYSTEM_SYSTEM_HH
