/**
 * @file
 * The two-layer Zarf system: the λ-execution layer (50 MHz) and the
 * imperative core (100 MHz) co-simulated against a shared device
 * rig — hardware timer, ECG front-end, pacing output, the
 * inter-layer FIFO channel, and the diagnostic channel (paper,
 * Fig. 1 and Sec. 4).
 *
 * The λ-layer is the time master: its cycle counter drives the 5 ms
 * sample timer. The imperative core runs two cycles per λ cycle.
 * The rig records pacing events with timestamps and tracks timer
 * lag, so real-time-deadline adherence (Sec. 5.2) is directly
 * observable.
 */

#ifndef ZARF_SYSTEM_SYSTEM_HH
#define ZARF_SYSTEM_SYSTEM_HH

#include <deque>
#include <optional>
#include <vector>

#include "ecg/synth.hh"
#include "machine/machine.hh"
#include "mblaze/cpu.hh"
#include "sem/io.hh"
#include "system/ports.hh"

namespace zarf::sys
{

/** One recorded pacing-port write. */
struct ShockEvent
{
    Cycles lambdaCycle;
    SWord value;
};

/** Co-simulation sizing knobs. */
struct SystemConfig
{
    size_t semispaceWords = 1u << 18;
    Cycles sliceCycles = 2000; ///< λ cycles per co-sim slice.
};

/** Co-simulation of the two layers plus devices. */
class TwoLayerSystem
{
  public:
    using Config = SystemConfig;

    /**
     * @param zarfImage λ-layer program (e.g. icd::buildKernelImage)
     * @param monitor imperative-layer program
     * @param heart the signal source / pacing sink
     */
    TwoLayerSystem(const Image &zarfImage,
                   const mblaze::MbProgram &monitor, ecg::Heart &heart,
                   SystemConfig config = SystemConfig());

    /** Advance the whole system by `ms` milliseconds of λ time. */
    MachineStatus runForMs(double ms);

    /** Send a diagnostic command and collect the response (runs the
     *  system a little to let the monitor answer). */
    std::optional<SWord> queryTreatments();

    // Observers.
    const std::vector<ShockEvent> &shocks() const { return shockLog; }
    const MachineStats &lambdaStats() const { return machine.stats(); }
    Cycles lambdaCycles() const { return machine.cycles(); }
    Cycles mbCycles() const { return cpu.cycles(); }
    uint64_t samplesRead() const { return nSamples; }
    uint64_t ticksConsumed() const { return nTicks; }
    /** Worst observed delay between a tick being due and the kernel
     *  consuming it, in λ cycles (deadline slack check). */
    Cycles maxTickLag() const { return maxLag; }
    /** True if any tick was consumed after the next was already due
     *  (a missed 5 ms real-time deadline). */
    bool deadlineMissed() const { return missedDeadline; }
    /** Worst λ-cycles from sample read to comm write (per-iteration
     *  compute time, excluding the timer wait). */
    Cycles maxIterationCycles() const { return maxIterCycles; }
    uint64_t commWords() const { return nComm; }

  private:
    /** The λ-layer's view of the devices. */
    class LambdaBus : public IoBus
    {
      public:
        explicit LambdaBus(TwoLayerSystem &sys) : sys(sys) {}
        SWord getInt(SWord port) override;
        void putInt(SWord port, SWord value) override;

      private:
        TwoLayerSystem &sys;
    };

    /** The imperative core's view. */
    class MbBus : public IoBus
    {
      public:
        explicit MbBus(TwoLayerSystem &sys) : sys(sys) {}
        SWord getInt(SWord port) override;
        void putInt(SWord port, SWord value) override;

      private:
        TwoLayerSystem &sys;
    };

    ecg::Heart &heart;
    Config cfg;

    LambdaBus lambdaBus{ *this };
    MbBus mbBus{ *this };
    Machine machine;
    mblaze::MbCpu cpu;

    // Devices.
    Cycles nextTickDue = kTickCycles;
    uint64_t nTicks = 0;
    Cycles maxLag = 0;
    bool missedDeadline = false;
    std::deque<SWord> channel; ///< λ -> imperative FIFO.
    std::deque<SWord> diagCmds;
    std::deque<SWord> diagResps;
    std::vector<ShockEvent> shockLog;
    uint64_t nSamples = 0;
    uint64_t nComm = 0;
    Cycles lastSampleCycle = 0;
    Cycles maxIterCycles = 0;
};

} // namespace zarf::sys

#endif // ZARF_SYSTEM_SYSTEM_HH
