/**
 * @file
 * The port map of the two-layer system — the only connection between
 * the λ-execution layer and the imperative core (paper, Sec. 3: "a
 * communication channel through which the system components can pass
 * values").
 */

#ifndef ZARF_SYSTEM_PORTS_HH
#define ZARF_SYSTEM_PORTS_HH

#include "support/types.hh"

namespace zarf::sys
{

// λ-execution layer ports.
constexpr SWord kPortEcgIn = 0;   ///< getint: next 200 Hz sample.
constexpr SWord kPortShockOut = 1; ///< putint: pacing output.
constexpr SWord kPortCommOut = 2; ///< putint: word to the imperative
                                  ///< layer's monitoring software.
constexpr SWord kPortTimer = 3;   ///< getint: 1 when a 5 ms tick is
                                  ///< pending (consumes it), else 0.

// Imperative (mblaze) ports.
constexpr SWord kMbChanStatus = 0; ///< in: words waiting in channel.
constexpr SWord kMbChanData = 1;   ///< in: pop one channel word.
constexpr SWord kMbDiagCmd = 2;    ///< in: diagnostic command (0 =
                                   ///< none, 1 = report treatments).
constexpr SWord kMbDiagResp = 3;   ///< out: diagnostic response.

// Diagnostic-channel protocol words.
constexpr SWord kDiagCmdReport = 1; ///< Monitor answers with its
                                    ///< therapy-episode count.
constexpr SWord kDiagCmdResync = 2; ///< The next command word is the
                                    ///< authoritative episode count;
                                    ///< the monitor adopts it (state
                                    ///< replay after a restart).
/** Marker pushed on the diagnostic response queue by the system's
 *  exception unit when the imperative core faults, followed by three
 *  words: cause, faulting pc, faulting address. */
constexpr SWord kDiagFaultMark = 0x46544c54; // "FTLT"

/** Pacing/channel word announcing the first pulse of a therapy burst
 *  (the monitor counts these as therapy episodes). */
constexpr SWord kTherapyStartMarker = 2;

/** λ-layer clock: 50 MHz (20 ns); 5 ms tick period in λ cycles. */
constexpr Cycles kLambdaHz = 50'000'000;
constexpr Cycles kTickCycles = 250'000; // 5 ms at 50 MHz
/** Imperative core clock: 100 MHz — 2 mblaze cycles per λ cycle. */
constexpr Cycles kMbCyclesPerLambdaCycle = 2;

} // namespace zarf::sys

#endif // ZARF_SYSTEM_PORTS_HH
