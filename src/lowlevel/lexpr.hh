/**
 * @file
 * The low-level functional IR — the analog of the paper's
 * "lower-level Coq implementation" (Fig. 6b).
 *
 * In the paper's refinement pipeline, critical algorithms are
 * specified at a high level, re-written in a restricted low-level
 * form (machine integers, isolated function applications, no
 * if-then-else re-convergence), and then mechanically extracted to
 * Zarf assembly (Fig. 6c). This module is that low-level form: a
 * small expression language with nested calls, scalar conditionals,
 * and constructor matching, together with C++ operator sugar so
 * algorithm code reads naturally:
 *
 *   L y = (x + lit(1)) * v("gain");
 *   L out = sel(y > lit(100), lit(1), lit(0));   // branch-free select
 *
 * The extractor (lowlevel/extract.hh) performs A-normal-form
 * conversion into the named Zarf assembly of isa/builder.hh. Because
 * the Zarf ISA disallows re-convergent branches, `iff` duplicates
 * its continuation into both arms; prefer `sel` for scalar selection
 * and small helper functions as join points, exactly as the paper's
 * hand-written low-level code does.
 */

#ifndef ZARF_LOWLEVEL_LEXPR_HH
#define ZARF_LOWLEVEL_LEXPR_HH

#include <memory>
#include <string>
#include <vector>

#include "support/types.hh"

namespace zarf::ll
{

struct LNode;
/** A low-level expression (immutable shared tree). */
using L = std::shared_ptr<const LNode>;

/** One branch of a match expression. */
struct LBranch
{
    bool isCons;
    SWord lit;                       ///< isCons == false
    std::string cons;                ///< isCons == true
    std::vector<std::string> fields; ///< bound field names
    L body;
};

/** Low-level expression node. */
struct LNode
{
    enum class Kind { Lit, Var, Call, LetIn, Iff, Match };

    Kind kind;
    SWord lit = 0;          ///< Lit
    std::string name;       ///< Var name / Call callee / LetIn binder
    std::vector<L> args;    ///< Call arguments
    L a, b, c;              ///< LetIn rhs/body; Iff cond/then/else
    std::vector<LBranch> branches; ///< Match
    L scrut;                ///< Match scrutinee
    L elseBody;             ///< Match else
};

/** Integer literal. */
L lit(SWord v);
/** Variable reference. */
L v(std::string name);
/** Apply a function/constructor/primitive (or local closure). */
L call(std::string callee, std::vector<L> args);
/** let name = rhs in body (explicit sharing). */
L letIn(std::string name, L rhs, L body);
/** Conditional: cond is 0 (false) or non-0; duplicates the
 *  continuation — use for tails, prefer sel() mid-computation. */
L iff(L cond, L then, L els);
/** Constructor/literal matching. */
L match(L scrut, std::vector<LBranch> branches, L elseBody);
LBranch onCons(std::string cons, std::vector<std::string> fields,
               L body);
LBranch onLit(SWord value, L body);

/** Branch-free scalar select: c ? t : e with c in {0,1}. */
L sel(L c, L t, L e);

/** Force x to WHNF, then continue with e — a case with only an else
 *  branch. This is how Zarf code sequences I/O effects (the paper's
 *  artificial-data-dependency idiom, Sec. 3.4). */
L seq(L x, L e);

// Operator sugar over the hardware primitives.
L operator+(L a, L b);
L operator-(L a, L b);
L operator*(L a, L b);
L operator/(L a, L b);
L operator%(L a, L b);
L operator==(L a, L b);
L operator!=(L a, L b);
L operator<(L a, L b);
L operator<=(L a, L b);
L operator>(L a, L b);
L operator>=(L a, L b);
L operator&&(L a, L b); ///< band of {0,1} values
L operator||(L a, L b); ///< bor of {0,1} values

/** A low-level function definition. */
struct LFunc
{
    std::string name;
    std::vector<std::string> params;
    L body;
};

/** A low-level program: constructors plus functions. */
struct LProgram
{
    struct LCons
    {
        std::string name;
        Word arity;
    };

    std::vector<LCons> conses;
    std::vector<LFunc> funcs;

    void
    cons(std::string name, Word arity)
    {
        conses.push_back({ std::move(name), arity });
    }

    void
    fn(std::string name, std::vector<std::string> params, L body)
    {
        funcs.push_back({ std::move(name), std::move(params),
                          std::move(body) });
    }
};

/** Render the IR for inspection (Fig. 6b style). */
std::string printL(const L &e, int indent = 0);
std::string printLProgram(const LProgram &p);

} // namespace zarf::ll

#endif // ZARF_LOWLEVEL_LEXPR_HH
