#include "lowlevel/extract.hh"

#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "isa/prims.hh"
#include "isa/validate.hh"
#include "support/logging.hh"

namespace zarf::ll
{

namespace
{

/** Extraction context for one function body. */
class Extractor
{
  public:
    Extractor(const std::unordered_set<std::string> &globals)
        : globals(globals)
    {}

    /** Set the failure message (first wins) and return null. */
    NExprPtr
    fail(const std::string &why)
    {
        if (error.empty())
            error = why;
        return nullptr;
    }

    const std::string &errorText() const { return error; }

    /** Continuation: receives the NArg holding an expression's
     *  value and produces the rest of the function body. */
    using K = std::function<NExprPtr(NArg)>;

    NExprPtr
    lower(const L &e, const K &k)
    {
        if (!error.empty())
            return nullptr;
        switch (e->kind) {
          case LNode::Kind::Lit:
            return k(nImm(e->lit));

          case LNode::Kind::Var: {
            auto it = env.find(e->name);
            if (it == env.end())
                return fail("unbound variable '" + e->name + "'");
            return k(it->second);
          }

          case LNode::Kind::Call:
            return lowerCall(e, k);

          case LNode::Kind::LetIn:
            // Bind the user's name to the lowered rhs (pure
            // substitution: no extra machine instruction).
            return lower(e->a, [&](NArg a) {
                auto saved = env.find(e->name) != env.end()
                                 ? std::optional<NArg>(env[e->name])
                                 : std::nullopt;
                env[e->name] = a;
                NExprPtr body = lower(e->b, k);
                if (saved)
                    env[e->name] = *saved;
                else
                    env.erase(e->name);
                return body;
            });

          case LNode::Kind::Iff:
            // case cond of 0 => else-arm else then-arm. The
            // continuation is duplicated into both arms (the ISA
            // forbids re-convergence).
            return lower(e->a, [&](NArg c) {
                NExprPtr elseArm = lower(e->c, k);
                if (!elseArm)
                    return NExprPtr{};
                NExprPtr thenArm = lower(e->b, k);
                if (!thenArm)
                    return NExprPtr{};
                return nCase(c, { litBranch(0, std::move(elseArm)) },
                             std::move(thenArm));
            });

          case LNode::Kind::Match:
            return lower(e->scrut, [&](NArg s) {
                std::vector<NBranch> branches;
                for (const auto &br : e->branches) {
                    // Field names bind themselves in the env.
                    std::vector<std::pair<std::string,
                                          std::optional<NArg>>> saved;
                    for (const auto &f : br.fields) {
                        saved.push_back(
                            { f, env.count(f)
                                     ? std::optional<NArg>(env[f])
                                     : std::nullopt });
                        env[f] = nVar(f);
                    }
                    NExprPtr body = lower(br.body, k);
                    for (auto it = saved.rbegin(); it != saved.rend();
                         ++it) {
                        if (it->second)
                            env[it->first] = *it->second;
                        else
                            env.erase(it->first);
                    }
                    if (!body)
                        return NExprPtr{};
                    if (br.isCons) {
                        branches.push_back(consBranch(
                            br.cons, br.fields, std::move(body)));
                    } else {
                        branches.push_back(
                            litBranch(br.lit, std::move(body)));
                    }
                }
                NExprPtr elseArm;
                if (e->elseBody) {
                    elseArm = lower(e->elseBody, k);
                } else {
                    // Unmatched scrutinee: yield Error 0.
                    elseArm = nApplyRet("Error", { nImm(0) });
                }
                if (!elseArm)
                    return NExprPtr{};
                return nCase(s, std::move(branches),
                             std::move(elseArm));
            });
        }
        return fail("unknown IR node");
    }

    /** Enter one function. */
    void
    begin(const std::vector<std::string> &params)
    {
        env.clear();
        tmp = 0;
        for (const auto &p : params)
            env[p] = nVar(p);
    }

  private:
    NExprPtr
    lowerCall(const L &e, const K &k)
    {
        // Lower arguments left to right, then emit the let.
        auto argsOut = std::make_shared<std::vector<NArg>>();
        std::function<NExprPtr(size_t)> go =
            [&](size_t i) -> NExprPtr {
            if (i < e->args.size()) {
                return lower(e->args[i], [&, i](NArg a) {
                    argsOut->push_back(a);
                    NExprPtr r = go(i + 1);
                    argsOut->pop_back();
                    return r;
                });
            }
            // Resolve the callee: a local binding takes priority
            // (closure application); otherwise a global name.
            std::string callee = e->name;
            auto it = env.find(callee);
            if (it != env.end()) {
                if (it->second.isImm) {
                    return fail("callee '" + callee +
                                "' is bound to an integer");
                }
                callee = it->second.name;
            } else if (!globals.count(callee) &&
                       !primByName(callee)) {
                return fail("unknown callee '" + callee + "'");
            }
            std::string t = strprintf("t%u", tmp++);
            return nLet(t, callee, *argsOut,
                        k(nVar(t)));
        };
        return go(0);
    }

    const std::unordered_set<std::string> &globals;
    std::unordered_map<std::string, NArg> env;
    unsigned tmp = 0;
    std::string error;
};

} // namespace

ExtractResult
extract(const LProgram &program)
{
    std::unordered_set<std::string> globals;
    for (const auto &c : program.conses)
        globals.insert(c.name);
    for (const auto &f : program.funcs)
        globals.insert(f.name);

    ProgramBuilder pb;
    for (const auto &c : program.conses)
        pb.cons(c.name, c.arity);

    Extractor ex(globals);
    for (const auto &f : program.funcs) {
        ex.begin(f.params);
        NExprPtr body =
            ex.lower(f.body, [](NArg a) { return nRet(a); });
        if (!body) {
            return ExtractResult{ false, {},
                                  "in " + f.name + ": " +
                                      ex.errorText() };
        }
        pb.fn(f.name, f.params, std::move(body));
    }
    return ExtractResult{ true, std::move(pb), "" };
}

Program
extractOrDie(const LProgram &program)
{
    ExtractResult r = extract(program);
    if (!r.ok)
        fatal("extraction failed: %s", r.error.c_str());
    BuildResult b = r.builder.tryBuild();
    if (!b.ok)
        fatal("extracted assembly failed to lower: %s",
              b.error.c_str());
    validateProgramOrDie(b.program);
    return std::move(b.program);
}

} // namespace zarf::ll
