#include "lowlevel/lexpr.hh"

#include "support/logging.hh"

namespace zarf::ll
{

namespace
{

std::shared_ptr<LNode>
node(LNode::Kind kind)
{
    auto n = std::make_shared<LNode>();
    n->kind = kind;
    return n;
}

} // namespace

L
lit(SWord v)
{
    auto n = node(LNode::Kind::Lit);
    n->lit = v;
    return n;
}

L
v(std::string name)
{
    auto n = node(LNode::Kind::Var);
    n->name = std::move(name);
    return n;
}

L
call(std::string callee, std::vector<L> args)
{
    auto n = node(LNode::Kind::Call);
    n->name = std::move(callee);
    n->args = std::move(args);
    return n;
}

L
letIn(std::string name, L rhs, L body)
{
    auto n = node(LNode::Kind::LetIn);
    n->name = std::move(name);
    n->a = std::move(rhs);
    n->b = std::move(body);
    return n;
}

L
iff(L cond, L then, L els)
{
    auto n = node(LNode::Kind::Iff);
    n->a = std::move(cond);
    n->b = std::move(then);
    n->c = std::move(els);
    return n;
}

L
match(L scrut, std::vector<LBranch> branches, L elseBody)
{
    auto n = node(LNode::Kind::Match);
    n->scrut = std::move(scrut);
    n->branches = std::move(branches);
    n->elseBody = std::move(elseBody);
    return n;
}

LBranch
onCons(std::string cons, std::vector<std::string> fields, L body)
{
    return LBranch{ true, 0, std::move(cons), std::move(fields),
                    std::move(body) };
}

LBranch
onLit(SWord value, L body)
{
    return LBranch{ false, value, {}, {}, std::move(body) };
}

L
sel(L c, L t, L e)
{
    // c*t + (1-c)*e — evaluates both sides; for scalars only.
    return call("add", { call("mul", { c, t }),
                         call("mul",
                              { call("sub", { lit(1), c }), e }) });
}

L
seq(L x, L e)
{
    return match(std::move(x), {}, std::move(e));
}

L operator+(L a, L b) { return call("add", { a, b }); }
L operator-(L a, L b) { return call("sub", { a, b }); }
L operator*(L a, L b) { return call("mul", { a, b }); }
L operator/(L a, L b) { return call("div", { a, b }); }
L operator%(L a, L b) { return call("mod", { a, b }); }
L operator==(L a, L b) { return call("eq", { a, b }); }
L operator!=(L a, L b) { return call("ne", { a, b }); }
L operator<(L a, L b) { return call("lt", { a, b }); }
L operator<=(L a, L b) { return call("le", { a, b }); }
L operator>(L a, L b) { return call("gt", { a, b }); }
L operator>=(L a, L b) { return call("ge", { a, b }); }
L operator&&(L a, L b) { return call("band", { a, b }); }
L operator||(L a, L b) { return call("bor", { a, b }); }

std::string
printL(const L &e, int indent)
{
    std::string pad(size_t(indent) * 2, ' ');
    switch (e->kind) {
      case LNode::Kind::Lit:
        return strprintf("%d", e->lit);
      case LNode::Kind::Var:
        return e->name;
      case LNode::Kind::Call: {
        std::string s = "(" + e->name;
        for (const auto &a : e->args)
            s += " " + printL(a, 0);
        return s + ")";
      }
      case LNode::Kind::LetIn:
        return "let " + e->name + " := " + printL(e->a, 0) + " in\n" +
               pad + printL(e->b, indent);
      case LNode::Kind::Iff:
        return "if " + printL(e->a, 0) + "\n" + pad + "then " +
               printL(e->b, indent + 1) + "\n" + pad + "else " +
               printL(e->c, indent + 1);
      case LNode::Kind::Match: {
        std::string s = "match " + printL(e->scrut, 0) + " with\n";
        for (const auto &br : e->branches) {
            s += pad + "| ";
            if (br.isCons) {
                s += br.cons;
                for (const auto &f : br.fields)
                    s += " " + f;
            } else {
                s += strprintf("%d", br.lit);
            }
            s += " => " + printL(br.body, indent + 1) + "\n";
        }
        s += pad + "| _ => " +
             (e->elseBody ? printL(e->elseBody, indent + 1)
                          : std::string("(Error 0)"));
        return s;
      }
    }
    return "?";
}

std::string
printLProgram(const LProgram &p)
{
    std::string out;
    for (const auto &c : p.conses)
        out += strprintf("Inductive %s (arity %u).\n", c.name.c_str(),
                         c.arity);
    for (const auto &f : p.funcs) {
        out += "Definition " + f.name;
        for (const auto &prm : f.params)
            out += " " + prm;
        out += " :=\n  " + printL(f.body, 1) + ".\n\n";
    }
    return out;
}

} // namespace zarf::ll
