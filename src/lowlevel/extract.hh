/**
 * @file
 * The mechanical extractor from the low-level IR to Zarf named
 * assembly (the paper's Fig. 6c step).
 *
 * Extraction is A-normal-form conversion: every nested call is
 * hoisted into its own let with a fresh temporary; `iff` becomes a
 * case on 0 with the continuation replicated into both arms (the
 * ISA has no re-convergent branches); `match` becomes a case with
 * constructor patterns, the else arm yielding the reserved Error
 * constructor unless an explicit else body was given. The
 * correspondence is line-for-line by construction, which is what
 * keeps the paper's trusted extractor "simple".
 */

#ifndef ZARF_LOWLEVEL_EXTRACT_HH
#define ZARF_LOWLEVEL_EXTRACT_HH

#include <string>

#include "isa/builder.hh"
#include "lowlevel/lexpr.hh"

namespace zarf::ll
{

/** Outcome of extraction. */
struct ExtractResult
{
    bool ok;
    ProgramBuilder builder;
    std::string error;
};

/** Extract a low-level program to named Zarf assembly. */
ExtractResult extract(const LProgram &program);

/** Extract, lower, and validate; dies on any failure. */
Program extractOrDie(const LProgram &program);

} // namespace zarf::ll

#endif // ZARF_LOWLEVEL_EXTRACT_HH
