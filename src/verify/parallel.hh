/**
 * @file
 * Seed-sharded parallel driver for the dynamic verification
 * harnesses.
 *
 * The refinement checker (verify/refine.hh) and the perturbation
 * harness (verify/noninterference.hh) are embarrassingly parallel
 * over seeds: each shard constructs its own engines from a shared
 * read-only Program, so shards never touch shared mutable state.
 * This driver fans a campaign of shards across a pool of
 * std::jthread workers while keeping results fully deterministic:
 *
 *   - every shard's PRNG stream is derived from (seedBase, shard
 *     index) alone, never from scheduling order;
 *   - results are written into a preallocated slot per shard and
 *     reported in shard order, so the merged report is identical no
 *     matter how the OS interleaves the workers.
 *
 * A campaign with the same configuration therefore produces the same
 * report on 1 thread and on 64.
 */

#ifndef ZARF_VERIFY_PARALLEL_HH
#define ZARF_VERIFY_PARALLEL_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "isa/ast.hh"
#include "verify/itype.hh"

namespace zarf::verify
{

/** Campaign sizing. */
struct ParallelConfig
{
    /** Worker threads; 0 means hardware_concurrency (at least 1).
     *  Never affects results, only wall-clock time. */
    unsigned threads = 0;
    /** Base of the deterministic per-shard seed derivation. */
    uint64_t seedBase = 1;
    /** Number of independent shards to run. */
    size_t shards = 16;
};

/** Result of one shard. */
struct ShardOutcome
{
    uint64_t seed = 0;  ///< The shard's derived seed.
    bool ok = false;
    std::string detail; ///< Failure context; empty when ok.
};

/** Merged campaign result, in shard order. */
struct ParallelReport
{
    std::vector<ShardOutcome> outcomes;

    size_t passed() const;
    size_t failed() const { return outcomes.size() - passed(); }
    bool allOk() const { return passed() == outcomes.size(); }
    /** One line: pass count plus the first failure's detail. */
    std::string summary() const;
};

/**
 * Run `shards` invocations of `fn` across the worker pool.
 *
 * @param cfg sizing; fn receives (shardIndex, derivedSeed)
 * @param fn the shard body; must not touch shared mutable state.
 *           A thrown exception is recorded as a failed outcome.
 */
using ShardFn = std::function<ShardOutcome(size_t, uint64_t)>;
ParallelReport runSharded(const ParallelConfig &cfg,
                          const ShardFn &fn);

/** The deterministic per-shard seed derivation runSharded uses:
 *  a function of (seedBase, shard index) only, never of scheduling
 *  order. */
uint64_t shardSeed(uint64_t seedBase, size_t shard);

/** Worker-pool size for a config (threads clamped to shards). */
unsigned shardWorkerCount(const ParallelConfig &cfg);

namespace detail
{

/**
 * Run `body` concurrently on `workers` threads in total — the
 * calling thread participates as one of them — against a process-
 * wide, lazily grown worker pool. Campaigns that fan out repeatedly
 * (bench sweeps, thread-count determinism tests) reuse the same OS
 * threads instead of spawning and joining a fresh std::jthread pool
 * per invocation. `body` must be a run-to-completion worker (all
 * coordination, e.g. an atomic work counter, lives in the caller);
 * poolRun returns once every participating thread has finished it.
 * Calls from inside a pool worker (nested parallelism) and calls
 * with workers <= 1 degrade to running `body` on the calling thread.
 */
void poolRun(unsigned workers, const std::function<void()> &body);

} // namespace detail

/**
 * Generic deterministic fan-out: run cfg.shards invocations of
 * `fn(shardIndex, derivedSeed)` across the worker pool and return
 * the results in shard order. Same determinism contract as
 * runSharded — identical results on 1 thread and on 64 — but with a
 * caller-chosen result type (e.g. the fault campaign's per-scenario
 * records, fault/campaign.hh). `fn` must not throw and must not
 * touch shared mutable state.
 */
template <typename Fn>
auto
shardMap(const ParallelConfig &cfg, Fn &&fn)
    -> std::vector<decltype(fn(size_t{}, uint64_t{}))>
{
    using Result = decltype(fn(size_t{}, uint64_t{}));
    std::vector<Result> results(cfg.shards);
    if (cfg.shards == 0)
        return results;

    // Work-stealing over an atomic shard counter; every result goes
    // to its preallocated slot, so the merged vector never depends
    // on the interleaving.
    std::atomic<size_t> next{ 0 };
    auto worker = [&]() {
        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= cfg.shards)
                return;
            results[i] = fn(i, shardSeed(cfg.seedBase, i));
        }
    };
    detail::poolRun(shardWorkerCount(cfg), worker);
    return results;
}

/**
 * Refinement campaign (Sec. 5.1): each shard drives the extracted
 * Zarf program and the executable specification in lock-step over
 * its own adversarial random input stream.
 *
 * @param icdProgram the extracted program (icd::buildIcdStepProgram)
 * @param samplesPerShard input-stream length per shard
 */
ParallelReport refinementCampaign(const Program &icdProgram,
                                  size_t samplesPerShard,
                                  const ParallelConfig &cfg);

/**
 * Non-interference campaign (Sec. 5.3): each shard runs one
 * perturbation experiment with its own pair of untrusted-input
 * seeds. A shard passes when both executions complete and no
 * trusted output interferes.
 */
ParallelReport
noninterferenceCampaign(const Program &program, const TypeEnv &env,
                        const std::vector<SWord> &trustedInputs,
                        const ParallelConfig &cfg);

} // namespace zarf::verify

#endif // ZARF_VERIFY_PARALLEL_HH
