/**
 * @file
 * Seed-sharded parallel driver for the dynamic verification
 * harnesses.
 *
 * The refinement checker (verify/refine.hh) and the perturbation
 * harness (verify/noninterference.hh) are embarrassingly parallel
 * over seeds: each shard constructs its own engines from a shared
 * read-only Program, so shards never touch shared mutable state.
 * This driver fans a campaign of shards across a pool of
 * std::jthread workers while keeping results fully deterministic:
 *
 *   - every shard's PRNG stream is derived from (seedBase, shard
 *     index) alone, never from scheduling order;
 *   - results are written into a preallocated slot per shard and
 *     reported in shard order, so the merged report is identical no
 *     matter how the OS interleaves the workers.
 *
 * A campaign with the same configuration therefore produces the same
 * report on 1 thread and on 64.
 */

#ifndef ZARF_VERIFY_PARALLEL_HH
#define ZARF_VERIFY_PARALLEL_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "isa/ast.hh"
#include "verify/itype.hh"

namespace zarf::verify
{

/** Campaign sizing. */
struct ParallelConfig
{
    /** Worker threads; 0 means hardware_concurrency (at least 1).
     *  Never affects results, only wall-clock time. */
    unsigned threads = 0;
    /** Base of the deterministic per-shard seed derivation. */
    uint64_t seedBase = 1;
    /** Number of independent shards to run. */
    size_t shards = 16;
};

/** Result of one shard. */
struct ShardOutcome
{
    uint64_t seed = 0;  ///< The shard's derived seed.
    bool ok = false;
    std::string detail; ///< Failure context; empty when ok.
};

/** Merged campaign result, in shard order. */
struct ParallelReport
{
    std::vector<ShardOutcome> outcomes;

    size_t passed() const;
    size_t failed() const { return outcomes.size() - passed(); }
    bool allOk() const { return passed() == outcomes.size(); }
    /** One line: pass count plus the first failure's detail. */
    std::string summary() const;
};

/**
 * Run `shards` invocations of `fn` across the worker pool.
 *
 * @param cfg sizing; fn receives (shardIndex, derivedSeed)
 * @param fn the shard body; must not touch shared mutable state.
 *           A thrown exception is recorded as a failed outcome.
 */
using ShardFn = std::function<ShardOutcome(size_t, uint64_t)>;
ParallelReport runSharded(const ParallelConfig &cfg,
                          const ShardFn &fn);

/**
 * Refinement campaign (Sec. 5.1): each shard drives the extracted
 * Zarf program and the executable specification in lock-step over
 * its own adversarial random input stream.
 *
 * @param icdProgram the extracted program (icd::buildIcdStepProgram)
 * @param samplesPerShard input-stream length per shard
 */
ParallelReport refinementCampaign(const Program &icdProgram,
                                  size_t samplesPerShard,
                                  const ParallelConfig &cfg);

/**
 * Non-interference campaign (Sec. 5.3): each shard runs one
 * perturbation experiment with its own pair of untrusted-input
 * seeds. A shard passes when both executions complete and no
 * trusted output interferes.
 */
ParallelReport
noninterferenceCampaign(const Program &program, const TypeEnv &env,
                        const std::vector<SWord> &trustedInputs,
                        const ParallelConfig &cfg);

} // namespace zarf::verify

#endif // ZARF_VERIFY_PARALLEL_HH
