/**
 * @file
 * Crash-safe append-only verdict journal (docs/RESILIENCE.md,
 * "Harness resilience").
 *
 * Campaign runners journal each completed scenario verdict so a
 * killed run resumes instead of restarting: on `--resume`, verdicts
 * already in the journal are served verbatim and only the missing
 * scenarios re-execute, making the resumed final report byte-
 * identical to an uninterrupted run.
 *
 * Record format (all integers little-endian):
 *
 *     [u32 payload length][u64 FNV-1a-64 of payload][payload bytes]
 *
 * Every append is fsync'd before returning, so a record is either
 * durably complete or absent. A reader that hits a short or
 * checksum-failing tail — the torn last record of a run killed
 * mid-write — stops there, keeps every earlier record, and flags
 * `truncatedTail`; the writer then reopens in append mode positioned
 * after the last good record, so the torn bytes are overwritten by
 * the next append.
 *
 * By convention record 0 is a *fingerprint* of the campaign
 * configuration that determines the report; a resume against a
 * journal whose fingerprint differs ignores the journal (with a
 * warning) rather than mixing incompatible verdicts.
 */

#ifndef ZARF_VERIFY_JOURNAL_HH
#define ZARF_VERIFY_JOURNAL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace zarf::verify
{

/** FNV-1a-64 over a byte string (the record checksum). */
uint64_t journalChecksum(const std::string &payload);

/** Everything readJournal recovered. */
struct JournalRead
{
    bool ok = false;       ///< File existed and was readable.
    std::string error;     ///< Why not, when !ok.
    bool truncatedTail = false; ///< A torn/corrupt tail was dropped.
    /** Offset of the first byte past the last intact record — where
     *  an appending writer must resume. */
    uint64_t intactBytes = 0;
    std::vector<std::string> records; ///< Intact records, in order.
};

/** Read every intact record of `path` (see file comment for the
 *  torn-tail contract). A missing file is !ok — the caller decides
 *  whether that means "fresh run" or an error. */
JournalRead readJournal(const std::string &path);

/**
 * The appender. Opens the file at construction; every append()
 * writes one framed record and fsyncs. Write failures latch !ok()
 * and are reported once via warn() — a full disk degrades the run
 * to journal-less (it still completes), never aborts it.
 */
class JournalWriter
{
  public:
    /** Truncate: start a fresh journal. Resume: keep the first
     *  `keepBytes` bytes (JournalRead::intactBytes) and append after
     *  them, discarding any torn tail. */
    enum class Mode
    {
        Truncate,
        Resume
    };

    JournalWriter(const std::string &path, Mode mode,
                  uint64_t keepBytes = 0);
    ~JournalWriter();
    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    bool ok() const { return fd >= 0; }

    /** Append one record durably (length + checksum + payload, then
     *  fsync). Returns false — and latches !ok() — on any failure. */
    bool append(const std::string &payload);

  private:
    void failOnce(const std::string &why);

    std::string path;
    int fd = -1;
    bool warned = false;
};

/**
 * Little-endian u64 field codec for journal payloads. Records encode
 * every field explicitly — never a struct memcpy — so payloads carry
 * no padding bytes and are byte-identical across compilers.
 */
void journalPutU64(std::string &out, uint64_t v);
/** Reads the u64 at `*off`, advancing it; false on a short buffer. */
bool journalGetU64(const std::string &in, size_t &off, uint64_t &v);

} // namespace zarf::verify

#endif // ZARF_VERIFY_JOURNAL_HH
