/**
 * @file
 * Integrity-type annotations for the ICD kernel program — the
 * trust-level annotations the paper adds "in a few places" (Sec.
 * 5.3) so the checker can verify that nothing outside the verified
 * path can corrupt the ICD's inputs or outputs.
 *
 * Port policy: the ECG front-end, the pacing output, and the
 * hardware timer are trusted (T); the channel to the imperative
 * layer is untrusted (U) — trusted data may flow out to it (T ⊑ U),
 * but nothing read from an untrusted source may reach the pacing
 * output or the algorithm state.
 */

#ifndef ZARF_VERIFY_ICD_TYPES_HH
#define ZARF_VERIFY_ICD_TYPES_HH

#include "isa/ast.hh"
#include "verify/itype.hh"

namespace zarf::verify
{

/** Build the typing environment for icd::buildKernelLowLevel()'s
 *  extracted program (also covers buildIcdStepProgram, which is a
 *  subset with the same declarations). */
TypeEnv icdKernelTypeEnv(const Program &program);

} // namespace zarf::verify

#endif // ZARF_VERIFY_ICD_TYPES_HH
