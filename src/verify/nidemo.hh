/**
 * @file
 * Demonstration programs for the non-interference analysis: a small
 * two-path application in the spirit of the ICD system — a trusted
 * sensor/actuator loop running next to untrusted telemetry — in a
 * well-typed form and in deliberately corrupted variants that the
 * type checker must reject and the perturbation harness must flag.
 */

#ifndef ZARF_VERIFY_NIDEMO_HH
#define ZARF_VERIFY_NIDEMO_HH

#include "isa/ast.hh"
#include "verify/itype.hh"

namespace zarf::verify
{

/** Which variant of the demo to build. */
enum class NiVariant
{
    Clean,        ///< Well-typed: paths independent.
    ExplicitFlow, ///< Untrusted value added into the trusted output.
    ImplicitFlow, ///< Trusted output chosen by an untrusted test.
};

/** Port map of the demo. */
constexpr SWord kNiSensorPort = 0;    // T input
constexpr SWord kNiActuatorPort = 1;  // T output
constexpr SWord kNiTelemetryIn = 10;  // U input
constexpr SWord kNiTelemetryOut = 11; // U output

/** Build the demo program (processes `iterations` sensor values). */
Program buildNiDemo(NiVariant variant, int iterations = 24);

/** The demo's typing environment. */
TypeEnv niDemoTypeEnv(const Program &program);

} // namespace zarf::verify

#endif // ZARF_VERIFY_NIDEMO_HH
