#include "verify/wcet.hh"

#include <algorithm>

#include "isa/prims.hh"
#include "support/logging.hh"

namespace zarf::verify
{

namespace
{

/** Per-path accumulation. */
struct Cost
{
    Cycles cycles = 0;
    uint64_t objects = 0;
    uint64_t words = 0;

    Cost &
    operator+=(const Cost &o)
    {
        cycles += o.cycles;
        objects += o.objects;
        words += o.words;
        return *this;
    }
};

Cost
maxCost(const Cost &a, const Cost &b)
{
    // Maximize cycles; take the matching allocation profile, and to
    // stay conservative for the GC bound, maximize words/objects
    // independently (allocation on the non-worst path can still be
    // live at collection time only if it was executed, but a single
    // path executes — taking the component-wise max is a sound upper
    // bound for both dimensions).
    Cost m;
    m.cycles = std::max(a.cycles, b.cycles);
    m.objects = std::max(a.objects, b.objects);
    m.words = std::max(a.words, b.words);
    return m;
}

class Analyzer
{
  public:
    Analyzer(const Program &prog, const WcetConfig &cfg)
        : prog(prog), cfg(cfg)
    {}

    WcetReport
    run(const std::string &root)
    {
        int idx = prog.findByName(root);
        if (idx < 0) {
            report.error = "no function named " + root;
            return report;
        }
        Cost c = costCall(Program::idOf(size_t(idx)));
        if (!report.error.empty())
            return report;

        report.ok = true;
        report.execBound = c.cycles;
        report.allocObjects = c.objects;
        report.allocWords = c.words;

        // GC bound (Sec. 5.2): every allocated object may be live;
        // each object of N words costs N+4 to copy; every payload
        // word may be a reference costing 2 cycles to check.
        const TimingModel &t = cfg.timing;
        report.gcBound =
            t.gcSetup + c.objects * t.gcPerObjectFixed +
            c.words * t.gcPerWordCopied +
            c.words * t.gcRefCheck;
        return report;
    }

  private:
    void
    fail(const std::string &why)
    {
        if (report.error.empty())
            report.error = why;
    }

    /** Worst cost of forcing a saturated application of `id`. */
    Cost
    costCall(Word id)
    {
        const TimingModel &t = cfg.timing;
        Cost c;
        if (isPrimId(id)) {
            auto p = primById(id);
            if (!p) {
                fail("call of unknown primitive");
                return c;
            }
            c.cycles = t.whnfCheck + t.enterThunk + t.primSetup +
                       p->arity * (t.primPerArg + t.whnfCheck) +
                       (p->effectful ? t.ioOp : t.aluOp) +
                       t.update + t.returnToCase;
            return c;
        }
        size_t idx = Program::indexOf(id);
        if (idx >= prog.decls.size()) {
            fail("call of unknown function id");
            return c;
        }
        const Decl &d = prog.decls[idx];
        if (d.isCons) {
            // Saturated constructors are built at let time; no
            // evaluation cost here.
            return c;
        }
        if (inProgress.count(id)) {
            if (cfg.boundaryFunctions.count(d.name)) {
                // The recursive tail call marks the next iteration.
                return c;
            }
            fail("recursive call of '" + d.name +
                 "' (not a boundary function); the worst case is "
                 "unbounded");
            return c;
        }
        auto memo = cache.find(id);
        if (memo != cache.end())
            return memo->second;

        inProgress.insert(id);
        Cost body = costExpr(*d.body, id);
        inProgress.erase(id);

        Cost out;
        out.cycles = t.whnfCheck + t.enterThunk + t.callSetup +
                     body.cycles + t.update + t.returnToCase;
        out.objects = body.objects;
        out.words = body.words;
        cache.emplace(id, out);

        WcetFunction wf;
        wf.name = d.name;
        wf.worstCycles = out.cycles;
        wf.allocObjects = out.objects;
        wf.allocWords = out.words;
        report.functions[d.name] = wf;
        return out;
    }

    Cost
    costExpr(const Expr &e, Word self)
    {
        const TimingModel &t = cfg.timing;
        if (e.isLet()) {
            const Let &l = e.asLet();
            Cost c;
            // Instruction fetch, argument words, allocation.
            size_t payload = std::max<size_t>(l.args.size(), 1);
            c.cycles = t.letBase + l.args.size() * t.letPerArg +
                       t.allocHeader + payload * t.letPerArg;
            c.objects = 1;
            c.words = 1 + payload;

            if (l.callee.kind != CalleeKind::Func) {
                fail("higher-order call (callee is a value); the "
                     "static analysis requires first-order calls");
                return c;
            }
            // Charge the eventual forcing of this application when
            // saturated. Under-saturated applications are values;
            // partial application of user functions would make the
            // analysis higher-order, so only exact saturation is
            // accepted for non-constructors.
            Word id = l.callee.id;
            unsigned arity;
            bool cons;
            if (isPrimId(id)) {
                auto p = primById(id);
                arity = p ? p->arity : 0;
                cons = p && p->isConstructor;
            } else {
                size_t idx = Program::indexOf(id);
                if (idx >= prog.decls.size()) {
                    fail("unknown callee id");
                    return c;
                }
                arity = prog.decls[idx].arity;
                cons = prog.decls[idx].isCons;
            }
            if (!cons) {
                if (l.args.size() == arity) {
                    c += costCall(id);
                } else if (l.args.size() > arity) {
                    fail("over-application; the static analysis "
                         "requires exact saturation");
                    return c;
                }
                // Under-saturated: a closure value, no eval cost.
            } else if (l.args.size() > arity) {
                fail("over-applied constructor");
                return c;
            }
            Cost rest = costExpr(*l.body, self);
            c += rest;
            return c;
        }
        if (e.isCase()) {
            const Case &c0 = e.asCase();
            Cost base;
            base.cycles = t.caseBase + t.whnfCheck;
            Cost worstBranch;
            for (size_t i = 0; i < c0.branches.size(); ++i) {
                const CaseBranch &br = c0.branches[i];
                Cost b;
                b.cycles = (i + 1) * t.branchHead;
                if (br.isCons) {
                    Word ar = consArity(br.consId);
                    b.cycles += ar * t.fieldPush;
                }
                b += costExpr(*br.body, self);
                worstBranch = maxCost(worstBranch, b);
            }
            Cost eb;
            eb.cycles = c0.branches.size() * t.branchHead;
            eb += costExpr(*c0.elseBody, self);
            worstBranch = maxCost(worstBranch, eb);
            base += worstBranch;
            return base;
        }
        // result: fetch + the tail hand-off.
        Cost c;
        c.cycles = t.resultBase + t.collapseUpdate;
        return c;
    }

    Word
    consArity(Word id) const
    {
        if (isPrimId(id)) {
            auto p = primById(id);
            return p ? p->arity : 0;
        }
        size_t idx = Program::indexOf(id);
        return idx < prog.decls.size() ? prog.decls[idx].arity : 0;
    }

    const Program &prog;
    const WcetConfig &cfg;
    WcetReport report;
    std::set<Word> inProgress;
    std::map<Word, Cost> cache;
};

} // namespace

std::string
WcetReport::summary() const
{
    if (!ok)
        return "analysis failed: " + error + "\n";
    std::string out;
    out += strprintf("  execution bound: %llu cycles\n",
                     (unsigned long long)execBound);
    out += strprintf("  GC bound:        %llu cycles "
                     "(%llu objects / %llu words worst-case live)\n",
                     (unsigned long long)gcBound,
                     (unsigned long long)allocObjects,
                     (unsigned long long)allocWords);
    out += strprintf("  total:           %llu cycles\n",
                     (unsigned long long)totalBound());
    return out;
}

WcetReport
analyzeWcet(const Program &program, const std::string &rootFunction,
            const WcetConfig &config)
{
    return Analyzer(program, config).run(rootFunction);
}

} // namespace zarf::verify
