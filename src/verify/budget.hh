/**
 * @file
 * Cooperative cancellation/budget token for long-running runners
 * (docs/RESILIENCE.md, "Harness resilience").
 *
 * A Budget bounds one task — a campaign scenario, one oracle
 * evaluation, a co-simulated system run — along four axes: simulated
 * λ cycles, host wall-clock milliseconds, machine heap bytes, and an
 * external cancel flag a supervisor (verify/supervise.hh) or signal
 * handler may raise from another thread. The runner checks the token
 * at its externally observable SYNC points (the λ-machine between
 * bounded advance chunks, the co-simulation between slices, the
 * oracle between evaluator runs); the first limit to fire *latches*,
 * and the run aborts with MachineStatus::BudgetExceeded /
 * fault::Outcome::BudgetExceeded instead of spinning forever.
 *
 * Determinism: the λ-cycle and heap limits are functions of simulated
 * state only, so they trip at the same point on every host, thread
 * count, and cycle-accurate dispatch tier. The host-time limit and
 * the cancel flag are host artifacts — runners treat those trips as
 * transient (retryable), never as verdicts.
 *
 * Header-only and dependency-free below support/, so the machine
 * layer can accept a Budget without linking the verify library.
 */

#ifndef ZARF_VERIFY_BUDGET_HH
#define ZARF_VERIFY_BUDGET_HH

#include <atomic>
#include <chrono>
#include <cstdint>

#include "support/types.hh"

namespace zarf::verify
{

/** Which limit fired first. Latched: a Budget trips at most once. */
enum class BudgetTrip : uint8_t
{
    None = 0,
    Cycles,   ///< Simulated λ-cycle limit (deterministic).
    Heap,     ///< Machine heap-byte limit (deterministic).
    HostTime, ///< Host wall-clock limit (transient; retryable).
    Cancelled ///< External cancel flag (transient; retryable).
};

/** Stable display name of a trip cause. */
inline const char *
budgetTripName(BudgetTrip t)
{
    switch (t) {
      case BudgetTrip::None:
        return "none";
      case BudgetTrip::Cycles:
        return "lambda-cycles";
      case BudgetTrip::Heap:
        return "heap-bytes";
      case BudgetTrip::HostTime:
        return "host-time";
      case BudgetTrip::Cancelled:
        return "cancelled";
    }
    return "?";
}

/** True for the trip causes that are host artifacts rather than
 *  functions of the simulated state — the ones a supervisor retries
 *  before quarantining (verify/supervise.hh). */
inline bool
budgetTripTransient(BudgetTrip t)
{
    return t == BudgetTrip::HostTime || t == BudgetTrip::Cancelled;
}

/** The limits; 0 on any axis means unlimited. */
struct BudgetSpec
{
    /** Total simulated λ cycles (the machine clock: load +
     *  execution; fused steps on the fast-functional tier). */
    Cycles maxLambdaCycles = 0;
    /** Host wall-clock milliseconds from the Budget's construction
     *  (or the last armHostDeadline()). */
    uint64_t maxHostMillis = 0;
    /** Machine heap bytes in use at a check point. */
    uint64_t maxHeapBytes = 0;

    bool
    any() const
    {
        return maxLambdaCycles || maxHostMillis || maxHeapBytes;
    }
};

/**
 * The token. Thread-safe: cancel() and check() may race freely; the
 * first trip wins and every later observer sees it. A Budget is not
 * resettable — supervised retries construct a fresh one per attempt
 * so a stale trip can never leak into the next run.
 */
class Budget
{
  public:
    explicit Budget(BudgetSpec spec = {}) : limits(spec)
    {
        armHostDeadline();
    }

    Budget(const Budget &) = delete;
    Budget &operator=(const Budget &) = delete;

    /** Restart the host-time clock at "now" (the constructor already
     *  arms it; a runner that queues tasks re-arms at dequeue). */
    void
    armHostDeadline()
    {
        start = std::chrono::steady_clock::now();
    }

    /** Raise the external cancel flag (any thread). The run aborts
     *  at its next check point with BudgetTrip::Cancelled. */
    void
    cancel()
    {
        cancelFlag.store(true, std::memory_order_relaxed);
    }

    bool
    cancelRequested() const
    {
        return cancelFlag.load(std::memory_order_relaxed);
    }

    /** The latched trip cause (None while within budget). */
    BudgetTrip
    tripped() const
    {
        return BudgetTrip(trip.load(std::memory_order_acquire));
    }

    const BudgetSpec &spec() const { return limits; }

    /** Host milliseconds since the deadline was armed. */
    uint64_t
    hostElapsedMs() const
    {
        using namespace std::chrono;
        return uint64_t(duration_cast<milliseconds>(
                            steady_clock::now() - start)
                            .count());
    }

    /**
     * The SYNC-point check: given the current simulated cycle count
     * and heap usage, latch and return the first limit that fired
     * (or the already-latched trip). Deterministic limits are tested
     * before host-time so a run that blows both always reports the
     * reproducible cause.
     */
    BudgetTrip
    check(Cycles lambdaCycles, uint64_t heapBytes)
    {
        BudgetTrip t = tripped();
        if (t != BudgetTrip::None)
            return t;
        if (limits.maxLambdaCycles &&
            lambdaCycles >= limits.maxLambdaCycles)
            return latch(BudgetTrip::Cycles);
        if (limits.maxHeapBytes && heapBytes > limits.maxHeapBytes)
            return latch(BudgetTrip::Heap);
        if (cancelRequested())
            return latch(BudgetTrip::Cancelled);
        if (limits.maxHostMillis &&
            hostElapsedMs() >= limits.maxHostMillis)
            return latch(BudgetTrip::HostTime);
        return BudgetTrip::None;
    }

  private:
    BudgetTrip
    latch(BudgetTrip t)
    {
        uint8_t expect = 0;
        trip.compare_exchange_strong(expect, uint8_t(t),
                                     std::memory_order_acq_rel);
        return tripped(); // first latch wins under a race
    }

    BudgetSpec limits;
    std::chrono::steady_clock::time_point start;
    std::atomic<bool> cancelFlag{ false };
    std::atomic<uint8_t> trip{ 0 };
};

} // namespace zarf::verify

#endif // ZARF_VERIFY_BUDGET_HH
