#include "verify/journal.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "support/logging.hh"

namespace zarf::verify
{

uint64_t
journalChecksum(const std::string &payload)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : payload) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

void
journalPutU64(std::string &out, uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        out.push_back(char((v >> (8 * i)) & 0xff));
}

bool
journalGetU64(const std::string &in, size_t &off, uint64_t &v)
{
    if (off + 8 > in.size())
        return false;
    v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= uint64_t(uint8_t(in[off + i])) << (8 * i);
    off += 8;
    return true;
}

namespace
{

uint32_t
getU32(const std::string &in, size_t off)
{
    uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= uint32_t(uint8_t(in[off + i])) << (8 * i);
    return v;
}

uint64_t
getU64(const std::string &in, size_t off)
{
    uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= uint64_t(uint8_t(in[off + i])) << (8 * i);
    return v;
}

constexpr size_t kFrameBytes = 4 + 8; // length + checksum

} // namespace

JournalRead
readJournal(const std::string &path)
{
    JournalRead out;
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        out.error = path + ": " + std::strerror(errno);
        return out;
    }
    std::string data;
    char buf[1 << 16];
    ssize_t n;
    while ((n = ::read(fd, buf, sizeof(buf))) > 0)
        data.append(buf, size_t(n));
    ::close(fd);
    if (n < 0) {
        out.error = path + ": " + std::strerror(errno);
        return out;
    }

    out.ok = true;
    size_t off = 0;
    while (off + kFrameBytes <= data.size()) {
        uint32_t len = getU32(data, off);
        uint64_t sum = getU64(data, off + 4);
        if (off + kFrameBytes + len > data.size())
            break; // torn tail: record body never hit the disk
        std::string payload = data.substr(off + kFrameBytes, len);
        if (journalChecksum(payload) != sum)
            break; // corrupt tail: stop at the last good record
        out.records.push_back(std::move(payload));
        off += kFrameBytes + len;
    }
    out.intactBytes = off;
    out.truncatedTail = off != data.size();
    return out;
}

JournalWriter::JournalWriter(const std::string &path, Mode mode,
                             uint64_t keepBytes)
    : path(path)
{
    int flags = O_WRONLY | O_CREAT | O_CLOEXEC;
    fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
        failOnce(std::strerror(errno));
        return;
    }
    // Drop everything past the resume point (the whole file for a
    // fresh journal): a torn tail must not precede new appends.
    uint64_t keep = mode == Mode::Resume ? keepBytes : 0;
    if (::ftruncate(fd, off_t(keep)) != 0 ||
        ::lseek(fd, off_t(keep), SEEK_SET) < 0) {
        failOnce(std::strerror(errno));
        ::close(fd);
        fd = -1;
    }
}

JournalWriter::~JournalWriter()
{
    if (fd >= 0)
        ::close(fd);
}

void
JournalWriter::failOnce(const std::string &why)
{
    if (warned)
        return;
    warned = true;
    warn("journal %s: %s; continuing without checkpointing",
         path.c_str(), why.c_str());
}

bool
JournalWriter::append(const std::string &payload)
{
    if (fd < 0)
        return false;
    std::string frame;
    frame.reserve(kFrameBytes + payload.size());
    uint32_t len = uint32_t(payload.size());
    for (unsigned i = 0; i < 4; ++i)
        frame.push_back(char((len >> (8 * i)) & 0xff));
    journalPutU64(frame, journalChecksum(payload));
    frame += payload;

    size_t done = 0;
    while (done < frame.size()) {
        ssize_t n =
            ::write(fd, frame.data() + done, frame.size() - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            failOnce(std::strerror(errno));
            ::close(fd);
            fd = -1;
            return false;
        }
        done += size_t(n);
    }
    if (::fsync(fd) != 0) {
        failOnce(std::strerror(errno));
        ::close(fd);
        fd = -1;
        return false;
    }
    return true;
}

} // namespace zarf::verify
