/**
 * @file
 * Dynamic validation of the non-interference theorem (Sec. 5.3).
 *
 * The paper's soundness proof states: if expression e has type τ and
 * evaluates to v, then changing any value whose type is less trusted
 * than τ leaves e's value unchanged. This harness checks the
 * system-level corollary the ICD relies on — arbitrarily changing
 * every untrusted input leaves every trusted output bit-identical —
 * by running a (type-checked) program twice with identical
 * trusted-port inputs but independently randomized untrusted-port
 * inputs, and comparing the write sequences on all trusted ports.
 */

#ifndef ZARF_VERIFY_NONINTERFERENCE_HH
#define ZARF_VERIFY_NONINTERFERENCE_HH

#include <string>
#include <vector>

#include "isa/ast.hh"
#include "verify/itype.hh"

namespace zarf::verify
{

/** Outcome of one perturbation experiment. */
struct NiReport
{
    bool ran;          ///< Both executions completed.
    bool interference; ///< A trusted output differed.
    std::string detail;
};

/**
 * Run the perturbation experiment.
 *
 * @param program the program under test
 * @param env the typing environment (provides port labels)
 * @param trustedInputs words served on every T-labelled input port
 * @param seedA, seedB seeds for the two U-input streams
 */
NiReport perturbUntrusted(const Program &program, const TypeEnv &env,
                          const std::vector<SWord> &trustedInputs,
                          uint64_t seedA, uint64_t seedB);

} // namespace zarf::verify

#endif // ZARF_VERIFY_NONINTERFERENCE_HH
