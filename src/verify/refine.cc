#include "verify/refine.hh"

#include "icd/baseline.hh"
#include "icd/spec.hh"
#include "mblaze/cpu.hh"
#include "sem/smallstep.hh"
#include "support/logging.hh"
#include "system/ports.hh"

namespace zarf::verify
{

std::vector<SWord>
specOutputs(const std::vector<SWord> &inputs)
{
    icd::IcdSpec spec;
    std::vector<SWord> out;
    out.reserve(inputs.size());
    for (SWord x : inputs)
        out.push_back(spec.step(x));
    return out;
}

RefinementReport
checkSpecVsZarf(const Program &icdProgram,
                const std::vector<SWord> &inputs)
{
    icd::IcdSpec spec;
    NullBus bus;
    SmallStep engine(icdProgram, bus);

    RunResult st = engine.call("icdInit", {});
    if (!st.ok()) {
        return { false, 0, 0,
                 "icdInit failed: " + st.where };
    }
    ValuePtr state = st.value;

    for (size_t i = 0; i < inputs.size(); ++i) {
        SWord want = spec.step(inputs[i]);
        RunResult r = engine.call(
            "icdStep", { state, Value::makeInt(inputs[i]) });
        if (!r.ok()) {
            return { false, i, i,
                     strprintf("icdStep diverged (engine %s) at "
                               "sample %zu", r.where.c_str(), i) };
        }
        const Value &v = *r.value;
        if (!v.isCons() || v.items().size() != 2) {
            return { false, i, i,
                     strprintf("icdStep returned a non-IcdOut value "
                               "at sample %zu: %s", i,
                               v.toString().c_str()) };
        }
        const ValuePtr &outV = v.items()[1];
        if (!outV->isInt() || outV->intVal() != want) {
            return { false, i, i,
                     strprintf("output mismatch at sample %zu: spec "
                               "%d, zarf %s", i, want,
                               outV->toString().c_str()) };
        }
        state = v.items()[0];
    }
    return { true, inputs.size(), 0, "" };
}

namespace
{

/** Device rig for driving the baseline in lock-step: the timer
 *  always fires while samples remain, and comm-port writes are the
 *  per-iteration outputs. */
class BaselineRig : public IoBus
{
  public:
    explicit BaselineRig(const std::vector<SWord> &inputs)
        : inputs(inputs)
    {}

    SWord
    getInt(SWord port) override
    {
        if (port == sys::kPortTimer)
            return next < inputs.size() ? 1 : 0;
        if (port == sys::kPortEcgIn) {
            if (next < inputs.size())
                return inputs[next++];
            return 0;
        }
        return 0;
    }

    void
    putInt(SWord port, SWord value) override
    {
        if (port == sys::kPortCommOut)
            comm.push_back(value);
        else if (port == sys::kPortShockOut)
            shocks.push_back(value);
    }

    const std::vector<SWord> &inputs;
    size_t next = 0;
    std::vector<SWord> comm;
    std::vector<SWord> shocks;
};

} // namespace

RefinementReport
checkSpecVsBaseline(const std::vector<SWord> &inputs)
{
    std::vector<SWord> want = specOutputs(inputs);

    mblaze::MbProgram prog = icd::baselineIcdProgram();
    BaselineRig rig(inputs);
    mblaze::MbCpu cpu(prog, rig);
    // Generous budget: ~2k cycles per iteration covers worst cases.
    cpu.run(Cycles(inputs.size()) * 4000 + 100'000);

    if (rig.comm.size() < want.size()) {
        return { false, rig.comm.size(), rig.comm.size(),
                 strprintf("baseline produced %zu outputs for %zu "
                           "samples", rig.comm.size(), want.size()) };
    }
    for (size_t i = 0; i < want.size(); ++i) {
        if (rig.comm[i] != want[i]) {
            return { false, i, i,
                     strprintf("output mismatch at sample %zu: spec "
                               "%d, baseline %d", i, want[i],
                               rig.comm[i]) };
        }
    }
    return { true, want.size(), 0, "" };
}

} // namespace zarf::verify
