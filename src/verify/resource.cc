#include "verify/resource.hh"

#include <cmath>

#include "isa/prims.hh"
#include "support/logging.hh"
#include "support/text.hh"

namespace zarf::verify
{

namespace
{

// Calibration coefficients (see the file comment in resource.hh):
// chosen once so the λ-layer structure reproduces the paper's
// published synthesis numbers within a few percent; the same
// coefficients are then applied to the imperative core.
constexpr double kGatesPerStateBit = 10.0;  ///< Control/muxing.
constexpr double kGatesPerAluOpBit = 11.0;  ///< Datapath function.
constexpr double kGatesPerLut = 6.91;       ///< Artix-7 packing.
constexpr unsigned kFfOverhead = 52;        ///< Clocking/handshake.

} // namespace

CoreStructure
lambdaLayerStructure()
{
    CoreStructure s;
    // The simulator's control FSM reproduces the paper's inventory:
    // 4 load + 15 apply + 18 eval + 29 GC = 66 states.
    s.fsmStates = kTotalStates;
    s.datapathBits = 32;
    s.aluOps = unsigned(primTable().size());
    // Machine registers: value/scratch registers, heap and code
    // pointers, stack heads, GC scan/alloc pointers, etc.
    s.architRegs = 85;
    s.cycleNs = 20.0; // 50 MHz
    return s;
}

CoreStructure
mblazeStructure()
{
    CoreStructure s;
    // A 3-stage pipeline's control is far smaller: fetch/decode/
    // execute plus hazard, branch, and serial-divider sequencing.
    s.fsmStates = 14;
    s.datapathBits = 32;
    s.aluOps = 18;
    s.architRegs = 47; // 32 GPRs + pipeline/special registers.
    s.cycleNs = 10.0;  // 100 MHz
    return s;
}

ResourceEstimate
estimateResources(const CoreStructure &s)
{
    double gates =
        kGatesPerStateBit * s.fsmStates * s.datapathBits +
        kGatesPerAluOpBit * s.aluOps * s.datapathBits;
    double luts = gates / kGatesPerLut;
    unsigned stateFfs = unsigned(
        std::ceil(std::log2(double(s.fsmStates))));
    unsigned ffs =
        s.architRegs * s.datapathBits + stateFfs + kFfOverhead;
    ResourceEstimate e;
    e.gates = unsigned(std::lround(gates));
    e.luts = unsigned(std::lround(luts));
    e.ffs = ffs;
    e.cycleNs = s.cycleNs;
    return e;
}

ResourceEstimate
paperLambdaLayer()
{
    return ResourceEstimate{ 4337, 2779, 29980, 20.0 };
}

ResourceEstimate
paperMicroBlaze()
{
    // Table 1 lists LUTs/FFs/cycle time only; the gate count is
    // back-computed with the same packing factor for comparison.
    return ResourceEstimate{ 1840, 1556,
                             unsigned(std::lround(1840 *
                                                  kGatesPerLut)),
                             10.0 };
}

std::string
renderTable1()
{
    CoreStructure ls = lambdaLayerStructure();
    ResourceEstimate lm = estimateResources(ls);
    ResourceEstimate lp = paperLambdaLayer();
    ResourceEstimate mm = estimateResources(mblazeStructure());
    ResourceEstimate mp = paperMicroBlaze();

    auto pct = [](double model, double paper) {
        return paper != 0.0
                   ? strprintf("%+5.1f%%",
                               100.0 * (model - paper) / paper)
                   : std::string("   n/a");
    };

    std::string out;
    out += "Table 1: resource usage (model vs. paper)\n";
    out += strprintf("  control states: %u (%u load / %u apply / "
                     "%u eval / %u GC)\n",
                     ls.fsmStates, kLoadStates, kApplyStates,
                     kEvalStates, kGcStates);
    out += "  Resource        lambda(model)  lambda(paper)   err"
           "    MicroBlaze(model)  MicroBlaze(paper)   err\n";
    out += strprintf(
        "  LUTs            %13u  %13u  %s  %17u  %17u  %s\n",
        lm.luts, lp.luts, pct(lm.luts, lp.luts).c_str(), mm.luts,
        mp.luts, pct(mm.luts, mp.luts).c_str());
    out += strprintf(
        "  FFs             %13u  %13u  %s  %17u  %17u  %s\n",
        lm.ffs, lp.ffs, pct(lm.ffs, lp.ffs).c_str(), mm.ffs, mp.ffs,
        pct(mm.ffs, mp.ffs).c_str());
    out += strprintf(
        "  gates           %13u  %13u  %s  %17u  %17u  %s\n",
        lm.gates, lp.gates, pct(lm.gates, lp.gates).c_str(),
        mm.gates, mp.gates, pct(mm.gates, mp.gates).c_str());
    out += strprintf(
        "  cycle time (ns) %13.0f  %13.0f  %s  %17.0f  %17.0f  %s\n",
        lm.cycleNs, lp.cycleNs, pct(lm.cycleNs, lp.cycleNs).c_str(),
        mm.cycleNs, mp.cycleNs, pct(mm.cycleNs, mp.cycleNs).c_str());
    out += strprintf(
        "  relative size:  lambda/MicroBlaze = %.2fx LUTs (paper "
        "%.2fx), %.2fx FFs (paper %.2fx)\n",
        double(lm.luts) / mm.luts, double(lp.luts) / mp.luts,
        double(lm.ffs) / mm.ffs, double(lp.ffs) / mp.ffs);
    return out;
}

} // namespace zarf::verify
