/**
 * @file
 * Refinement checking for the ICD correctness argument (Sec. 5.1).
 *
 * The paper proves, in Coq, that for every input stream the output
 * stream of the high-level specification equals that of the
 * low-level implementation extracted to Zarf assembly. We reproduce
 * the argument's structure as high-volume lock-step differential
 * execution: feed the same input stream to
 *
 *   (a) the executable stream specification (icd/spec.hh),
 *   (b) the extracted Zarf assembly, one icdStep call per sample,
 *       threading the state value through the reference engine, and
 *   (c) the imperative baseline on the mblaze core,
 *
 * and require bit-identical outputs at every sample. The harness
 * reports the first divergence with full context.
 */

#ifndef ZARF_VERIFY_REFINE_HH
#define ZARF_VERIFY_REFINE_HH

#include <string>
#include <vector>

#include "isa/ast.hh"
#include "support/types.hh"

namespace zarf::verify
{

/** Result of a lock-step refinement run. */
struct RefinementReport
{
    bool ok;
    size_t samplesChecked;
    size_t firstMismatch; ///< Valid when !ok.
    std::string detail;
};

/**
 * Check the extracted Zarf assembly against the specification.
 *
 * @param icdProgram the extracted program (icd::buildIcdStepProgram)
 * @param inputs the sample stream
 */
RefinementReport checkSpecVsZarf(const Program &icdProgram,
                                 const std::vector<SWord> &inputs);

/** Check the imperative baseline against the specification. */
RefinementReport
checkSpecVsBaseline(const std::vector<SWord> &inputs);

/** Spec outputs for an input stream (convenience for benches). */
std::vector<SWord> specOutputs(const std::vector<SWord> &inputs);

} // namespace zarf::verify

#endif // ZARF_VERIFY_REFINE_HH
