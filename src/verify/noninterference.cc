#include "verify/noninterference.hh"

#include <map>

#include "sem/smallstep.hh"
#include "support/logging.hh"
#include "support/random.hh"

namespace zarf::verify
{

namespace
{

/** Serves trusted inputs deterministically and untrusted inputs
 *  from a seeded stream; records all writes per port. */
class NiBus : public IoBus
{
  public:
    NiBus(const TypeEnv &env, const std::vector<SWord> &trusted,
          uint64_t seed)
        : env(env), trusted(trusted), rng(seed)
    {}

    SWord
    getInt(SWord port) override
    {
        if (env.portLabel(port) == Label::T) {
            if (tPos < trusted.size())
                return trusted[tPos++];
            return 0;
        }
        return SWord(rng.range(-1000000, 1000000));
    }

    void
    putInt(SWord port, SWord value) override
    {
        writes[port].push_back(value);
    }

    const TypeEnv &env;
    const std::vector<SWord> &trusted;
    size_t tPos = 0;
    Rng rng;
    std::map<SWord, std::vector<SWord>> writes;
};

} // namespace

NiReport
perturbUntrusted(const Program &program, const TypeEnv &env,
                 const std::vector<SWord> &trustedInputs,
                 uint64_t seedA, uint64_t seedB)
{
    NiBus busA(env, trustedInputs, seedA);
    NiBus busB(env, trustedInputs, seedB);

    SmallStep engineA(program, busA);
    RunResult ra = engineA.runMain();
    SmallStep engineB(program, busB);
    RunResult rb = engineB.runMain();

    if (!ra.ok() || !rb.ok()) {
        return { false, false,
                 "execution did not complete: " +
                     (ra.ok() ? rb.where : ra.where) };
    }

    // Compare every trusted port's write sequence.
    for (const auto &[port, seqA] : busA.writes) {
        if (env.portLabel(port) != Label::T)
            continue;
        auto itB = busB.writes.find(port);
        const std::vector<SWord> empty;
        const std::vector<SWord> &seqB =
            itB == busB.writes.end() ? empty : itB->second;
        if (seqA.size() != seqB.size()) {
            return { true, true,
                     strprintf("trusted port %d wrote %zu words in "
                               "run A but %zu in run B", port,
                               seqA.size(), seqB.size()) };
        }
        for (size_t i = 0; i < seqA.size(); ++i) {
            if (seqA[i] != seqB[i]) {
                return { true, true,
                         strprintf("trusted port %d diverged at "
                                   "write %zu: %d vs %d", port, i,
                                   seqA[i], seqB[i]) };
            }
        }
    }
    // Ports only written in run B.
    for (const auto &[port, seqB] : busB.writes) {
        if (env.portLabel(port) != Label::T)
            continue;
        if (!busA.writes.count(port) && !seqB.empty()) {
            return { true, true,
                     strprintf("trusted port %d written only in "
                               "run B", port) };
        }
    }
    return { true, false, "" };
}

} // namespace zarf::verify
