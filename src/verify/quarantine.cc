#include "verify/quarantine.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "support/logging.hh"

namespace zarf::verify
{

uint64_t
quarantineHash(const std::string &payload)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : payload) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
quarantineName(const std::string &payload)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  (unsigned long long)quarantineHash(payload));
    return buf;
}

namespace
{

bool
writeWhole(const std::string &path, const std::string &body)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << body;
    out.flush();
    return bool(out);
}

} // namespace

QuarantineEntry
quarantineStore(const std::string &dir, const std::string &payload,
                const std::string &ext, const std::string &verdict)
{
    namespace fs = std::filesystem;
    QuarantineEntry e;
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        warn("quarantine: cannot create %s: %s", dir.c_str(),
             ec.message().c_str());
        return e;
    }
    std::string stem = (fs::path(dir) / quarantineName(payload))
                           .string();
    e.inputPath = stem + ext;
    e.verdictPath = stem + ".verdict";
    if (!writeWhole(e.inputPath, payload) ||
        !writeWhole(e.verdictPath, verdict)) {
        warn("quarantine: cannot write %s", stem.c_str());
        e = QuarantineEntry{};
        return e;
    }
    e.ok = true;
    return e;
}

} // namespace zarf::verify
