/**
 * @file
 * Content-addressed quarantine store for wedging inputs
 * (docs/RESILIENCE.md, "Harness resilience").
 *
 * When supervision (verify/supervise.hh) classifies an input as
 * deterministically wedging — it trips a simulated-state budget, or
 * exhausts its transient retries — the runner quarantines it here so
 * the campaign terminates with a complete report and the input is
 * preserved for offline replay.
 *
 * The store mirrors the fuzz corpus format (fuzz/corpus.hh): each
 * entry is written under the FNV-1a-64 hash of its payload, 16
 * lowercase hex digits plus a caller-chosen extension (".zimg" for
 * fuzz images, ".scenario" for campaign scenario descriptors), so
 * the directory deduplicates itself. Alongside the payload a
 * `<hash>.verdict` sidecar records the structured verdict (trip
 * cause, attempts, budget) in readable `key value` lines.
 *
 * Quarantining is best-effort: an unwritable directory warns once
 * and returns empty paths — resilience machinery must never be the
 * thing that aborts a run.
 */

#ifndef ZARF_VERIFY_QUARANTINE_HH
#define ZARF_VERIFY_QUARANTINE_HH

#include <cstdint>
#include <string>

namespace zarf::verify
{

/** FNV-1a-64 over payload bytes — matches fuzz::imageHash on a
 *  .zimg rendering's source image words only by coincidence; the
 *  address is a pure function of the stored payload bytes. */
uint64_t quarantineHash(const std::string &payload);

/** "0123456789abcdef" content-address of a payload. */
std::string quarantineName(const std::string &payload);

/** Where one quarantined entry landed ("" on failure). */
struct QuarantineEntry
{
    std::string inputPath;   ///< dir/<hash><ext>
    std::string verdictPath; ///< dir/<hash>.verdict
    bool ok = false;
};

/**
 * Write `payload` under its content-address in `dir` (created if
 * missing) with extension `ext`, plus the `verdict` sidecar text.
 * Best-effort: failures warn and return ok == false.
 */
QuarantineEntry quarantineStore(const std::string &dir,
                                const std::string &payload,
                                const std::string &ext,
                                const std::string &verdict);

} // namespace zarf::verify

#endif // ZARF_VERIFY_QUARANTINE_HH
