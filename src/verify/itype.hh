/**
 * @file
 * The integrity type system of Sec. 5.3.
 *
 * The paper proves non-interference — "untrusted values cannot
 * affect trusted values" — by typing the λ-layer assembly with a
 * two-point integrity lattice T ⊑ U (trusted below untrusted, so
 * information may flow T → U but never U → T), in the style of the
 * SLam calculus and Volpano-style soundness. Following the paper, we
 * extend the assembly with type annotations (function signatures and
 * constructor field types) and "constrain the normal semantics
 * slightly to make type-checking much easier":
 *
 *   - let callees must be global identifiers or variables of
 *     function type (checked),
 *   - getint/putint port operands must be immediates, so each port's
 *     static trust label applies,
 *   - the checker is first-order-polymorphism-free: every function
 *     has one declared signature, and every constructor belongs to
 *     exactly one data type (so a generic container is typed at one
 *     element type per program — see tests/test_itype_recursive.cc
 *     for where this bites and how the paper's programs avoid it).
 *
 * Types are τ ::= num^ℓ | data D^ℓ | (~τ → τ)^ℓ, with declared
 * algebraic data types D grouping constructors (the paper's (cn, ~τ)
 * form generalized to sums). The program-counter label tracks
 * implicit flows: every value produced under an untrusted case
 * scrutinee is untrusted.
 *
 * Soundness is validated dynamically by the perturbation harness in
 * noninterference.hh: for well-typed programs, arbitrarily changing
 * U-labelled inputs must leave every T-labelled output bit-identical.
 */

#ifndef ZARF_VERIFY_ITYPE_HH
#define ZARF_VERIFY_ITYPE_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "isa/ast.hh"

namespace zarf::verify
{

/** The integrity lattice: T ⊑ U. */
enum class Label : uint8_t { T = 0, U = 1 };

/** Lattice join. */
inline Label
join(Label a, Label b)
{
    return a == Label::U || b == Label::U ? Label::U : Label::T;
}

/** Lattice order: a ⊑ b. */
inline bool
flowsTo(Label a, Label b)
{
    return a == Label::T || b == Label::U;
}

struct IType;
using ITypePtr = std::shared_ptr<const IType>;

/** An integrity type. */
struct IType
{
    enum class Kind { Num, Data, Fun, Bottom };

    Kind kind;
    Label label;
    int dataId = -1;              ///< Data: index into TypeEnv.
    std::vector<ITypePtr> params; ///< Fun.
    ITypePtr result;              ///< Fun.

    std::string toString() const;
};

/** num^ℓ */
ITypePtr tNum(Label l);
/** ⊥ — the type of the reserved Error constructor's dead branches;
 *  subtype of everything, identity of join. */
ITypePtr tBottom();
/** data D^ℓ */
ITypePtr tData(int dataId, Label l);
/** (~τ → τ)^ℓ */
ITypePtr tFun(std::vector<ITypePtr> params, ITypePtr result,
              Label l = Label::T);

/** Raise a type's label by ℓ (deconstruction under taint). */
ITypePtr raise(const ITypePtr &t, Label l);

/** Structural subtyping (labels covariant, Fun params contravariant). */
bool subtype(const ITypePtr &a, const ITypePtr &b);

/** Least upper bound; null if the shapes are incompatible. */
ITypePtr joinTypes(const ITypePtr &a, const ITypePtr &b);

/** One algebraic data type: named constructors with field types. */
struct DataDecl
{
    std::string name;
    /** Constructor id -> field types. */
    std::map<Word, std::vector<ITypePtr>> conses;
};

/** A function signature. */
struct FunSig
{
    std::vector<ITypePtr> params;
    ITypePtr result;
};

/** Typing environment for a whole program. */
struct TypeEnv
{
    std::vector<DataDecl> datas;
    /** Function id -> signature (every non-cons decl needs one). */
    std::map<Word, FunSig> funs;
    /** I/O port -> trust label; unlisted ports default to U. */
    std::map<SWord, Label> ports;

    /** Register a data type; returns its dataId. */
    int addData(DataDecl d);
    /** Which data type owns a constructor id; -1 if none. */
    int dataOfCons(Word consId) const;
    Label portLabel(SWord port) const;
};

/** One typing diagnostic. */
struct ITypeError
{
    std::string where; ///< Function name.
    std::string what;
};

/** Checking outcome. */
struct ITypeReport
{
    std::vector<ITypeError> errors;
    bool ok() const { return errors.empty(); }
    std::string summary() const;
};

/** Type-check a program against an environment. */
ITypeReport checkIntegrity(const Program &program, const TypeEnv &env);

} // namespace zarf::verify

#endif // ZARF_VERIFY_ITYPE_HH
