#include "verify/supervise.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>

namespace zarf::verify
{

uint64_t
RetryPolicy::delayBeforeAttemptMs(unsigned attempt) const
{
    if (attempt <= 1 || backoffBaseMs == 0)
        return 0;
    // backoffBaseMs << (attempt - 2), saturating at the cap so the
    // shift can never overflow however many retries are configured.
    unsigned shift = attempt - 2;
    uint64_t cap = backoffCapMs ? backoffCapMs : backoffBaseMs;
    if (shift >= 63 || backoffBaseMs >= (cap >> shift))
        return cap;
    uint64_t d = backoffBaseMs << shift;
    return d < cap ? d : cap;
}

void
backoffSleep(const RetryPolicy &policy, unsigned attempt)
{
    uint64_t ms = policy.delayBeforeAttemptMs(attempt);
    if (ms)
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

namespace
{

using Clock = std::chrono::steady_clock;

struct WatchEntry
{
    Budget *budget = nullptr;
    Clock::time_point deadline;
    bool fired = false;
};

/** The monitor state behind Supervisor. A plain namespace-scope
 *  singleton: the sweep thread starts on the first watch and parks
 *  on a condvar whenever no watches are registered, so idle
 *  processes pay nothing. */
class Monitor
{
  public:
    static Monitor &
    instance()
    {
        // Intentionally leaked: the sweep thread is detached and may
        // still be parked on `wake` at process exit; destroying the
        // mutex/condvar under it would hang or abort exit.
        static Monitor *m = new Monitor;
        return *m;
    }

    uint64_t
    add(Budget &b, uint64_t hostMillis)
    {
        std::lock_guard lk(mu);
        uint64_t id = ++nextId;
        watches[id] = { &b,
                        Clock::now() +
                            std::chrono::milliseconds(hostMillis),
                        false };
        if (!running) {
            running = true;
            std::thread([this] { sweepLoop(); }).detach();
        }
        wake.notify_all();
        return id;
    }

    void
    remove(uint64_t id)
    {
        std::lock_guard lk(mu);
        watches.erase(id);
    }

    uint64_t
    cancellations() const
    {
        return nCancelled.load(std::memory_order_relaxed);
    }

  private:
    void
    sweepLoop()
    {
        std::unique_lock lk(mu);
        for (;;) {
            if (watches.empty()) {
                wake.wait(lk, [&] { return !watches.empty(); });
                continue;
            }
            wake.wait_for(lk, std::chrono::milliseconds(50));
            Clock::time_point now = Clock::now();
            for (auto &[id, w] : watches) {
                if (!w.fired && now >= w.deadline) {
                    w.fired = true;
                    w.budget->cancel();
                    nCancelled.fetch_add(1,
                                         std::memory_order_relaxed);
                }
            }
        }
    }

    std::mutex mu;
    std::condition_variable wake;
    std::map<uint64_t, WatchEntry> watches;
    uint64_t nextId = 0;
    bool running = false;
    std::atomic<uint64_t> nCancelled{ 0 };
};

} // namespace

Supervisor &
Supervisor::instance()
{
    static Supervisor s;
    return s;
}

uint64_t
Supervisor::cancellations() const
{
    return Monitor::instance().cancellations();
}

Supervisor::Watch::Watch(Budget &budget, uint64_t hostMillis)
{
    if (hostMillis)
        id = Monitor::instance().add(budget, hostMillis);
}

Supervisor::Watch::~Watch()
{
    if (id)
        Monitor::instance().remove(id);
}

SupervisedRun
superviseTask(const BudgetSpec &spec, const RetryPolicy &policy,
              const std::function<void(Budget &, unsigned)> &attempt)
{
    SupervisedRun run;
    unsigned maxAttempts =
        policy.maxAttempts ? policy.maxAttempts : 1;
    for (;;) {
        ++run.attempts;
        backoffSleep(policy, run.attempts);
        Budget budget(spec);
        Supervisor::Watch watch(budget, spec.maxHostMillis);
        attempt(budget, run.attempts);
        run.trip = budget.tripped();
        if (run.trip == BudgetTrip::None)
            return run;
        if (budgetTripTransient(run.trip) &&
            run.attempts < maxAttempts)
            continue;
        run.wedged = true;
        return run;
    }
}

} // namespace zarf::verify
