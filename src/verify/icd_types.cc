#include "verify/icd_types.hh"

#include "icd/params.hh"
#include "support/logging.hh"
#include "system/ports.hh"

namespace zarf::verify
{

TypeEnv
icdKernelTypeEnv(const Program &program)
{
    TypeEnv env;

    // Port policy (Sec. 5.3): sensor, actuator, and timer trusted;
    // the inter-layer channel untrusted.
    env.ports[sys::kPortEcgIn] = Label::T;
    env.ports[sys::kPortShockOut] = Label::T;
    env.ports[sys::kPortTimer] = Label::T;
    env.ports[sys::kPortCommOut] = Label::U;

    auto idOf = [&](const char *name) {
        int i = program.findByName(name);
        if (i < 0)
            fatal("kernel program lacks declaration '%s'", name);
        return Program::idOf(size_t(i));
    };

    ITypePtr n = tNum(Label::T);
    auto nums = [&](int k) {
        return std::vector<ITypePtr>(size_t(k), n);
    };

    // One data type per constructor family, in dependency order.
    auto single = [&](const char *name, std::vector<ITypePtr> fs) {
        DataDecl d;
        d.name = name;
        d.conses[idOf(name)] = std::move(fs);
        return env.addData(std::move(d));
    };

    using icd::kDvLen;
    using icd::kHpLen;
    using icd::kLpLen;
    using icd::kMwLen;
    using icd::kRrHistory;

    int dLp = single("Lp", nums(kLpLen + 2));
    int dHp = single("Hp", nums(kHpLen + 1));
    int dDv = single("Dv", nums(kDvLen));
    int dMw = single("Mw", nums(kMwLen + 1));
    int dRr = single("Rr", nums(kRrHistory));
    int dDet = single("Det", { n, n, n, n, n, tData(dRr, Label::T) });
    int dAtp = single("Atp", nums(6));
    int dSt = single("St", { tData(dLp, Label::T),
                             tData(dHp, Label::T),
                             tData(dDv, Label::T),
                             tData(dMw, Label::T),
                             tData(dDet, Label::T),
                             tData(dAtp, Label::T) });
    int dLpRes = single("LpRes", { tData(dLp, Label::T), n });
    int dHpRes = single("HpRes", { tData(dHp, Label::T), n });
    int dDvRes = single("DvRes", { tData(dDv, Label::T), n });
    int dMwRes = single("MwRes", { tData(dMw, Label::T), n });
    int dDetRes = single("DetRes", { tData(dDet, Label::T), n, n });
    int dAtpRes = single("AtpRes", { tData(dAtp, Label::T), n, n });
    int dIcdOut = single("IcdOut", { tData(dSt, Label::T), n });

    auto fn = [&](const char *name, std::vector<ITypePtr> params,
                  ITypePtr result) {
        env.funs[idOf(name)] = FunSig{ std::move(params),
                                       std::move(result) };
    };

    ITypePtr tSt = tData(dSt, Label::T);
    ITypePtr tRr = tData(dRr, Label::T);
    ITypePtr tDet = tData(dDet, Label::T);
    ITypePtr tAtp = tData(dAtp, Label::T);

    fn("icdInit", {}, tSt);
    fn("lpStep", { tData(dLp, Label::T), n },
       tData(dLpRes, Label::T));
    fn("hpStep", { tData(dHp, Label::T), n },
       tData(dHpRes, Label::T));
    fn("dvStep", { tData(dDv, Label::T), n },
       tData(dDvRes, Label::T));
    fn("mwStep", { tData(dMw, Label::T), n },
       tData(dMwRes, Label::T));
    fn("rrShift", { n, tRr, n }, tRr);
    fn("countFast", { tRr }, n);
    fn("detStep", { tDet, n, n }, tData(dDetRes, Label::T));
    fn("detClear", { n, tDet }, tDet);
    fn("enterTherapy", { n }, tData(dAtpRes, Label::T));
    fn("endSeq", { n, n, n }, tData(dAtpRes, Label::T));
    fn("firePulse", { n, n, n, n }, tData(dAtpRes, Label::T));
    fn("treatTick", { n, n, n, n, n }, tData(dAtpRes, Label::T));
    fn("atpStep", { tAtp, n, n }, tData(dAtpRes, Label::T));
    fn("icdStep", { tSt, n }, tData(dIcdOut, Label::T));

    // The kernel-only functions (present in the full kernel image).
    if (program.findByName("kernelLoop") >= 0) {
        fn("main", {}, n);
        fn("kernelLoop", { tSt, n }, n);
        fn("waitTick", { n }, n);
        fn("ioCoroutine", { n }, n);
        // Sends a trusted value to the untrusted channel (T ⊑ U);
        // putint returns the written (trusted) value.
        fn("commCoroutine", { n }, n);
    } else {
        fn("main", {}, n);
    }

    return env;
}

} // namespace zarf::verify
