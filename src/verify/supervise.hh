/**
 * @file
 * Per-task supervision for the worker pool (docs/RESILIENCE.md,
 * "Harness resilience").
 *
 * Tasks fanned across verify::detail::poolRun are cooperative: they
 * check their Budget (verify/budget.hh) at SYNC points and abort
 * with a latched trip. Supervision adds the two pieces cooperation
 * alone cannot provide:
 *
 *  - a process-wide *monitor thread* (Supervisor) that watches every
 *    registered task's host-time deadline and raises the task's
 *    cancel flag when it blows through — so a task wedged between
 *    check points (one enormous GC, a pathological host stall) is
 *    still reeled in at its next observable point instead of holding
 *    a pool worker forever;
 *
 *  - a *retry policy* with capped exponential backoff: transient
 *    trips (host time, cancellation — functions of host load, not of
 *    the input) are retried with a fresh Budget; deterministic trips
 *    (λ-cycle or heap limits — the same input trips them every time)
 *    and retry exhaustion classify the input as wedging, which the
 *    runner quarantines (verify/quarantine.hh) so the campaign
 *    terminates with a complete report.
 */

#ifndef ZARF_VERIFY_SUPERVISE_HH
#define ZARF_VERIFY_SUPERVISE_HH

#include <cstdint>
#include <functional>

#include "verify/budget.hh"

namespace zarf::verify
{

/** Capped exponential backoff between retries of a transient trip. */
struct RetryPolicy
{
    /** Total attempts (first run included); minimum 1. */
    unsigned maxAttempts = 3;
    /** Backoff before the second attempt; doubles per retry. 0
     *  disables sleeping (tests). */
    uint64_t backoffBaseMs = 10;
    /** Backoff ceiling — the documented cap on the doubling. */
    uint64_t backoffCapMs = 2000;

    /** Milliseconds to sleep before attempt `attempt` (2-based: the
     *  first retry is attempt 2). Saturating, never overflows. */
    uint64_t delayBeforeAttemptMs(unsigned attempt) const;
};

/** Sleep for the policy's backoff before `attempt` (no-op for the
 *  first attempt or a zero base). */
void backoffSleep(const RetryPolicy &policy, unsigned attempt);

/**
 * The process-wide monitor. One lazily started thread sweeps the
 * registered watches a few times per second; a watch whose host
 * deadline has passed gets its Budget cancelled (once). Watches are
 * registered RAII-style around a supervised attempt.
 */
class Supervisor
{
  public:
    static Supervisor &instance();

    /** Register `budget` for cancellation `hostMillis` from now;
     *  deregisters on destruction. A watch with hostMillis == 0 is
     *  a no-op. The budget must outlive the watch. */
    class Watch
    {
      public:
        Watch(Budget &budget, uint64_t hostMillis);
        ~Watch();
        Watch(const Watch &) = delete;
        Watch &operator=(const Watch &) = delete;

      private:
        uint64_t id = 0; ///< 0 = inactive.
    };

    /** Tasks the monitor has cancelled since process start. */
    uint64_t cancellations() const;

  private:
    Supervisor() = default;
    friend class Watch;
};

/**
 * Run one task under budget + retry supervision.
 *
 * `attempt(budget, attemptNo)` runs the task against a fresh Budget
 * built from `spec` (host deadline armed, monitor watch registered)
 * and returns when the task completes or aborts on a trip. The
 * attempt's trip cause decides what happens next:
 *
 *   None                  -> done, ok;
 *   transient trip        -> backoff, retry (up to maxAttempts);
 *   deterministic trip    -> done, wedged (no retry: same input,
 *                            same trip);
 *   retries exhausted     -> done, wedged.
 *
 * Returns the final attempt's trip plus the attempt count; `wedged`
 * is the caller's cue to quarantine the input.
 */
struct SupervisedRun
{
    BudgetTrip trip = BudgetTrip::None;
    unsigned attempts = 0;
    bool wedged = false; ///< Deterministic trip or retries exhausted.
    unsigned retries() const { return attempts ? attempts - 1 : 0; }
};
SupervisedRun
superviseTask(const BudgetSpec &spec, const RetryPolicy &policy,
              const std::function<void(Budget &, unsigned)> &attempt);

} // namespace zarf::verify

#endif // ZARF_VERIFY_SUPERVISE_HH
