#include "verify/nidemo.hh"

#include "lowlevel/extract.hh"
#include "support/logging.hh"

namespace zarf::verify
{

using namespace ll;

Program
buildNiDemo(NiVariant variant, int iterations)
{
    LProgram p;

    // main: run the loop; flush the telemetry accumulator at the
    // end (which is when the lazily accumulated untrusted reads
    // actually happen).
    p.fn("main", {},
         call("loop", { lit(iterations), lit(0) }));

    // loop k uacc: one trusted sensor->actuator round per step,
    // with the untrusted telemetry threaded through uacc.
    {
        // Trusted computation: a toy filter y = 3x + 7.
        L y = v("s") * lit(3) + lit(7);
        if (variant == NiVariant::ExplicitFlow) {
            // Corrupted: telemetry leaks into the actuator value.
            y = y + v("uacc");
        }

        L writeAndContinue =
            letIn("w", call("putint", { lit(kNiActuatorPort),
                                        v("y") }),
                  seq(v("w"),
                      letIn("u", call("getint",
                                      { lit(kNiTelemetryIn) }),
                            letIn("uacc2", v("uacc") + v("u"),
                                  call("loop",
                                       { v("k") - lit(1),
                                         v("uacc2") })))));

        L body;
        if (variant == NiVariant::ImplicitFlow) {
            // Corrupted: an untrusted test picks the trusted output.
            body = letIn(
                "s", call("getint", { lit(kNiSensorPort) }),
                letIn("u0", call("getint", { lit(kNiTelemetryIn) }),
                      iff(v("u0") > lit(0),
                          letIn("y", v("s") * lit(3) + lit(7),
                                writeAndContinue),
                          letIn("y", lit(0), writeAndContinue))));
        } else {
            body = letIn("s", call("getint", { lit(kNiSensorPort) }),
                         letIn("y", y, writeAndContinue));
        }

        p.fn("loop", { "k", "uacc" },
             match(v("k"),
                   { onLit(0, call("putint", { lit(kNiTelemetryOut),
                                               v("uacc") })) },
                   body));
    }

    return extractOrDie(p);
}

TypeEnv
niDemoTypeEnv(const Program &program)
{
    TypeEnv env;
    env.ports[kNiSensorPort] = Label::T;
    env.ports[kNiActuatorPort] = Label::T;
    env.ports[kNiTelemetryIn] = Label::U;
    env.ports[kNiTelemetryOut] = Label::U;

    auto idOf = [&](const char *name) {
        int i = program.findByName(name);
        if (i < 0)
            fatal("demo program lacks declaration '%s'", name);
        return Program::idOf(size_t(i));
    };
    env.funs[idOf("main")] = FunSig{ {}, tNum(Label::U) };
    env.funs[idOf("loop")] =
        FunSig{ { tNum(Label::T), tNum(Label::U) }, tNum(Label::U) };
    return env;
}

} // namespace zarf::verify
