#include "verify/parallel.hh"

#include <atomic>
#include <thread>

#include "support/logging.hh"
#include "support/random.hh"
#include "verify/noninterference.hh"
#include "verify/refine.hh"

namespace zarf::verify
{

// The Rng constructor splitmixes its seed, so consecutive values
// here still yield decorrelated streams.
uint64_t
shardSeed(uint64_t seedBase, size_t shard)
{
    return seedBase + uint64_t(shard) * 0x9e3779b97f4a7c15ull;
}

unsigned
shardWorkerCount(const ParallelConfig &cfg)
{
    unsigned n = cfg.threads ? cfg.threads
                             : std::thread::hardware_concurrency();
    if (n == 0)
        n = 1;
    if (size_t(n) > cfg.shards)
        n = unsigned(cfg.shards ? cfg.shards : 1);
    return n;
}

size_t
ParallelReport::passed() const
{
    size_t n = 0;
    for (const ShardOutcome &o : outcomes)
        n += o.ok ? 1 : 0;
    return n;
}

std::string
ParallelReport::summary() const
{
    std::string s = strprintf("%zu/%zu shards passed", passed(),
                              outcomes.size());
    for (const ShardOutcome &o : outcomes) {
        if (!o.ok) {
            s += strprintf("; first failure (seed %llu): %s",
                           static_cast<unsigned long long>(o.seed),
                           o.detail.c_str());
            break;
        }
    }
    return s;
}

ParallelReport
runSharded(const ParallelConfig &cfg, const ShardFn &fn)
{
    ParallelReport report;
    report.outcomes.resize(cfg.shards);
    if (cfg.shards == 0)
        return report;

    // Work-stealing over an atomic shard counter: each worker claims
    // the next undone shard and writes its preallocated slot, so the
    // merged report never depends on the interleaving.
    std::atomic<size_t> next{ 0 };
    auto worker = [&]() {
        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= cfg.shards)
                return;
            uint64_t seed = shardSeed(cfg.seedBase, i);
            ShardOutcome out;
            try {
                out = fn(i, seed);
            } catch (const std::exception &e) {
                out.ok = false;
                out.detail =
                    strprintf("shard threw: %s", e.what());
            }
            out.seed = seed;
            report.outcomes[i] = std::move(out);
        }
    };

    unsigned nWorkers = shardWorkerCount(cfg);
    if (nWorkers <= 1) {
        worker();
        return report;
    }
    {
        std::vector<std::jthread> pool;
        pool.reserve(nWorkers);
        for (unsigned t = 0; t < nWorkers; ++t)
            pool.emplace_back(worker);
    } // jthreads join here
    return report;
}

ParallelReport
refinementCampaign(const Program &icdProgram, size_t samplesPerShard,
                   const ParallelConfig &cfg)
{
    return runSharded(cfg, [&](size_t, uint64_t seed) {
        // Adversarial random samples: plausible ECG magnitudes plus
        // occasional extremes, as in the seed refinement tests.
        Rng rng(seed);
        std::vector<SWord> inputs;
        inputs.reserve(samplesPerShard);
        for (size_t i = 0; i < samplesPerShard; ++i) {
            SWord v = rng.chance(0.05)
                          ? SWord(rng.range(-100000, 100000))
                          : SWord(rng.range(-2000, 2000));
            inputs.push_back(v);
        }
        RefinementReport r = checkSpecVsZarf(icdProgram, inputs);
        ShardOutcome out;
        out.ok = r.ok && r.samplesChecked == inputs.size();
        out.detail = r.ok ? "" : r.detail;
        return out;
    });
}

ParallelReport
noninterferenceCampaign(const Program &program, const TypeEnv &env,
                        const std::vector<SWord> &trustedInputs,
                        const ParallelConfig &cfg)
{
    return runSharded(cfg, [&](size_t, uint64_t seed) {
        // Two decorrelated untrusted streams per shard.
        NiReport r = perturbUntrusted(program, env, trustedInputs,
                                      seed * 2 + 1, seed * 2 + 2);
        ShardOutcome out;
        out.ok = r.ran && !r.interference;
        out.detail = out.ok ? "" : r.detail;
        return out;
    });
}

} // namespace zarf::verify
