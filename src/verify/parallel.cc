#include "verify/parallel.hh"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "support/logging.hh"
#include "support/random.hh"
#include "verify/noninterference.hh"
#include "verify/refine.hh"

namespace zarf::verify
{

namespace detail
{

namespace
{

/** True on threads owned by the pool: a nested poolRun from inside a
 *  worker degrades to serial instead of deadlocking on the pool's
 *  own capacity. */
thread_local bool inPoolWorker = false;

/**
 * The process-wide worker pool. Threads are created lazily, grown to
 * the largest concurrency ever requested, and parked on a condition
 * variable between jobs, so repeated campaigns pay thread creation
 * once instead of per invocation. One job runs at a time (run() is
 * serialized); the submitting thread executes the body too, so a
 * job with N-way concurrency occupies N-1 pool threads.
 */
class WorkerPool
{
  public:
    static WorkerPool &
    instance()
    {
        static WorkerPool pool;
        return pool;
    }

    void
    run(unsigned workers, const std::function<void()> &body)
    {
        if (workers <= 1 || inPoolWorker) {
            body();
            return;
        }
        std::lock_guard serial(submitMutex);
        unsigned helpers = workers - 1;
        {
            std::lock_guard lk(m);
            while (threads.size() < helpers) {
                threads.emplace_back([this](std::stop_token st) {
                    workerLoop(st);
                });
            }
            job = &body;
            claims = helpers;
            ++generation;
        }
        wake.notify_all();
        body(); // the submitter participates
        std::unique_lock lk(m);
        job = nullptr; // no further claims on this job
        claims = 0;
        idle.wait(lk, [&] { return running == 0; });
    }

  private:
    void
    workerLoop(std::stop_token st)
    {
        inPoolWorker = true;
        std::unique_lock lk(m);
        // Start at generation 0, not the current generation: a
        // thread created for this very job blocks on the mutex while
        // the submitter publishes the job and bumps the generation,
        // and must still see that bump as "new" once it gets in.
        uint64_t seen = 0;
        for (;;) {
            wake.wait(lk, st,
                      [&] { return generation != seen; });
            if (st.stop_requested())
                return;
            seen = generation;
            if (!job || claims == 0)
                continue;
            --claims;
            ++running;
            const std::function<void()> *j = job;
            lk.unlock();
            (*j)();
            lk.lock();
            if (--running == 0)
                idle.notify_all();
        }
    }

    std::mutex submitMutex; ///< Serializes jobs from independent
                            ///< submitters.
    std::mutex m;
    std::condition_variable_any wake;
    std::condition_variable idle;
    std::vector<std::jthread> threads;
    const std::function<void()> *job = nullptr;
    unsigned claims = 0;  ///< Helpers that may still join the job.
    unsigned running = 0; ///< Helpers currently inside the job.
    uint64_t generation = 0;
};

} // namespace

void
poolRun(unsigned workers, const std::function<void()> &body)
{
    WorkerPool::instance().run(workers, body);
}

} // namespace detail

// The Rng constructor splitmixes its seed, so consecutive values
// here still yield decorrelated streams.
uint64_t
shardSeed(uint64_t seedBase, size_t shard)
{
    return seedBase + uint64_t(shard) * 0x9e3779b97f4a7c15ull;
}

unsigned
shardWorkerCount(const ParallelConfig &cfg)
{
    unsigned n = cfg.threads ? cfg.threads
                             : std::thread::hardware_concurrency();
    if (n == 0)
        n = 1;
    if (size_t(n) > cfg.shards)
        n = unsigned(cfg.shards ? cfg.shards : 1);
    return n;
}

size_t
ParallelReport::passed() const
{
    size_t n = 0;
    for (const ShardOutcome &o : outcomes)
        n += o.ok ? 1 : 0;
    return n;
}

std::string
ParallelReport::summary() const
{
    std::string s = strprintf("%zu/%zu shards passed", passed(),
                              outcomes.size());
    for (const ShardOutcome &o : outcomes) {
        if (!o.ok) {
            s += strprintf("; first failure (seed %llu): %s",
                           static_cast<unsigned long long>(o.seed),
                           o.detail.c_str());
            break;
        }
    }
    return s;
}

ParallelReport
runSharded(const ParallelConfig &cfg, const ShardFn &fn)
{
    ParallelReport report;
    report.outcomes.resize(cfg.shards);
    if (cfg.shards == 0)
        return report;

    // Work-stealing over an atomic shard counter: each worker claims
    // the next undone shard and writes its preallocated slot, so the
    // merged report never depends on the interleaving.
    std::atomic<size_t> next{ 0 };
    auto worker = [&]() {
        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= cfg.shards)
                return;
            uint64_t seed = shardSeed(cfg.seedBase, i);
            ShardOutcome out;
            try {
                out = fn(i, seed);
            } catch (const std::exception &e) {
                out.ok = false;
                out.detail =
                    strprintf("shard threw: %s", e.what());
            }
            out.seed = seed;
            report.outcomes[i] = std::move(out);
        }
    };

    detail::poolRun(shardWorkerCount(cfg), worker);
    return report;
}

ParallelReport
refinementCampaign(const Program &icdProgram, size_t samplesPerShard,
                   const ParallelConfig &cfg)
{
    return runSharded(cfg, [&](size_t, uint64_t seed) {
        // Adversarial random samples: plausible ECG magnitudes plus
        // occasional extremes, as in the seed refinement tests.
        Rng rng(seed);
        std::vector<SWord> inputs;
        inputs.reserve(samplesPerShard);
        for (size_t i = 0; i < samplesPerShard; ++i) {
            SWord v = rng.chance(0.05)
                          ? SWord(rng.range(-100000, 100000))
                          : SWord(rng.range(-2000, 2000));
            inputs.push_back(v);
        }
        RefinementReport r = checkSpecVsZarf(icdProgram, inputs);
        ShardOutcome out;
        out.ok = r.ok && r.samplesChecked == inputs.size();
        out.detail = r.ok ? "" : r.detail;
        return out;
    });
}

ParallelReport
noninterferenceCampaign(const Program &program, const TypeEnv &env,
                        const std::vector<SWord> &trustedInputs,
                        const ParallelConfig &cfg)
{
    return runSharded(cfg, [&](size_t, uint64_t seed) {
        // Two decorrelated untrusted streams per shard.
        NiReport r = perturbUntrusted(program, env, trustedInputs,
                                      seed * 2 + 1, seed * 2 + 2);
        ShardOutcome out;
        out.ok = r.ran && !r.interference;
        out.detail = out.ok ? "" : r.detail;
        return out;
    });
}

} // namespace zarf::verify
