#include "verify/itype.hh"

#include "isa/prims.hh"
#include "support/logging.hh"

namespace zarf::verify
{

namespace
{

const char *
labelText(Label l)
{
    return l == Label::T ? "T" : "U";
}

} // namespace

std::string
IType::toString() const
{
    switch (kind) {
      case Kind::Num:
        return strprintf("num^%s", labelText(label));
      case Kind::Bottom:
        return "bot";
      case Kind::Data:
        return strprintf("data#%d^%s", dataId, labelText(label));
      case Kind::Fun: {
        std::string s = "(";
        for (size_t i = 0; i < params.size(); ++i) {
            if (i)
                s += ", ";
            s += params[i]->toString();
        }
        s += " -> " + result->toString() + ")^";
        s += labelText(label);
        return s;
      }
    }
    return "?";
}

ITypePtr
tNum(Label l)
{
    auto t = std::make_shared<IType>();
    t->kind = IType::Kind::Num;
    t->label = l;
    return t;
}

ITypePtr
tBottom()
{
    auto t = std::make_shared<IType>();
    t->kind = IType::Kind::Bottom;
    t->label = Label::T;
    return t;
}

ITypePtr
tData(int dataId, Label l)
{
    auto t = std::make_shared<IType>();
    t->kind = IType::Kind::Data;
    t->label = l;
    t->dataId = dataId;
    return t;
}

ITypePtr
tFun(std::vector<ITypePtr> params, ITypePtr result, Label l)
{
    auto t = std::make_shared<IType>();
    t->kind = IType::Kind::Fun;
    t->label = l;
    t->params = std::move(params);
    t->result = std::move(result);
    return t;
}

ITypePtr
raise(const ITypePtr &t, Label l)
{
    if (l == Label::T || t->label == Label::U)
        return t;
    auto u = std::make_shared<IType>(*t);
    u->label = Label::U;
    return u;
}

bool
subtype(const ITypePtr &a, const ITypePtr &b)
{
    if (a->kind == IType::Kind::Bottom)
        return true;
    if (a->kind != b->kind)
        return false;
    if (!flowsTo(a->label, b->label))
        return false;
    switch (a->kind) {
      case IType::Kind::Bottom:
        return true; // unreachable (handled above)
      case IType::Kind::Num:
        return true;
      case IType::Kind::Data:
        return a->dataId == b->dataId;
      case IType::Kind::Fun: {
        if (a->params.size() != b->params.size())
            return false;
        for (size_t i = 0; i < a->params.size(); ++i) {
            // Contravariant parameters.
            if (!subtype(b->params[i], a->params[i]))
                return false;
        }
        return subtype(a->result, b->result);
      }
    }
    return false;
}

ITypePtr
joinTypes(const ITypePtr &a, const ITypePtr &b)
{
    if (a->kind == IType::Kind::Bottom)
        return b;
    if (b->kind == IType::Kind::Bottom)
        return a;
    if (a->kind != b->kind)
        return nullptr;
    Label l = join(a->label, b->label);
    switch (a->kind) {
      case IType::Kind::Bottom:
        return b; // unreachable (handled above)
      case IType::Kind::Num:
        return tNum(l);
      case IType::Kind::Data:
        if (a->dataId != b->dataId)
            return nullptr;
        return tData(a->dataId, l);
      case IType::Kind::Fun: {
        if (a->params.size() != b->params.size())
            return nullptr;
        // Parameters must match exactly (no meet operator needed for
        // the programs we check); results join.
        for (size_t i = 0; i < a->params.size(); ++i) {
            if (!subtype(a->params[i], b->params[i]) ||
                !subtype(b->params[i], a->params[i])) {
                return nullptr;
            }
        }
        ITypePtr r = joinTypes(a->result, b->result);
        if (!r)
            return nullptr;
        return tFun(a->params, std::move(r), l);
      }
    }
    return nullptr;
}

int
TypeEnv::addData(DataDecl d)
{
    datas.push_back(std::move(d));
    return int(datas.size()) - 1;
}

int
TypeEnv::dataOfCons(Word consId) const
{
    for (size_t i = 0; i < datas.size(); ++i) {
        if (datas[i].conses.count(consId))
            return int(i);
    }
    return -1;
}

Label
TypeEnv::portLabel(SWord port) const
{
    auto it = ports.find(port);
    return it == ports.end() ? Label::U : it->second;
}

namespace
{

/** The checker proper. */
class Checker
{
  public:
    Checker(const Program &prog, const TypeEnv &env)
        : prog(prog), env(env)
    {}

    ITypeReport
    run()
    {
        for (size_t i = 0; i < prog.decls.size(); ++i) {
            const Decl &d = prog.decls[i];
            if (d.isCons) {
                if (env.dataOfCons(Program::idOf(i)) < 0) {
                    error(d.name, "constructor is not part of any "
                                  "declared data type");
                }
                continue;
            }
            auto sig = env.funs.find(Program::idOf(i));
            if (sig == env.funs.end()) {
                error(d.name, "function has no signature");
                continue;
            }
            if (sig->second.params.size() != d.arity) {
                error(d.name, "signature arity does not match");
                continue;
            }
            where = d.name;
            args = sig->second.params;
            locals.clear();
            ITypePtr t = checkExpr(*d.body, Label::T);
            if (t && !subtype(t, sig->second.result)) {
                error(where, "body has type " + t->toString() +
                                 ", signature declares " +
                                 sig->second.result->toString());
            }
        }
        return report;
    }

  private:
    void
    error(const std::string &w, std::string what)
    {
        report.errors.push_back({ w, std::move(what) });
    }

    ITypePtr
    fail(std::string what)
    {
        error(where, std::move(what));
        return nullptr;
    }

    ITypePtr
    operandType(const Operand &op, Label pc)
    {
        switch (op.src) {
          case Src::Imm:
            return tNum(pc);
          case Src::Arg:
            if (size_t(op.val) >= args.size())
                return fail("argument index out of range");
            return raise(args[size_t(op.val)], pc);
          case Src::Local:
            if (size_t(op.val) >= locals.size())
                return fail("local index out of range");
            return raise(locals[size_t(op.val)], pc);
        }
        return nullptr;
    }

    /** Type the application of `calleeType` to argument types. */
    ITypePtr
    apply(ITypePtr calleeType, const std::vector<ITypePtr> &argTs,
          Label pc)
    {
        size_t i = 0;
        ITypePtr cur = std::move(calleeType);
        // A zero-parameter function saturates immediately.
        while (cur->kind == IType::Kind::Fun &&
               cur->params.empty()) {
            cur = raise(cur->result, join(cur->label, pc));
        }
        while (i < argTs.size()) {
            if (cur->kind != IType::Kind::Fun)
                return fail("application of a non-function type " +
                            cur->toString());
            size_t take =
                std::min(argTs.size() - i, cur->params.size());
            for (size_t k = 0; k < take; ++k) {
                if (!subtype(argTs[i + k], cur->params[k])) {
                    return fail(strprintf(
                        "argument %zu has type %s; expected %s",
                        i + k,
                        argTs[i + k]->toString().c_str(),
                        cur->params[k]->toString().c_str()));
                }
            }
            Label l = join(cur->label, pc);
            if (take < cur->params.size()) {
                // Partial application: a smaller closure.
                std::vector<ITypePtr> rest(
                    cur->params.begin() + ptrdiff_t(take),
                    cur->params.end());
                return tFun(std::move(rest), cur->result, l);
            }
            // Saturated: the result, tainted by the closure label.
            cur = raise(cur->result, l);
            i += take;
        }
        return cur;
    }

    /** The type of a global identifier as a callable. */
    ITypePtr
    globalCallable(Word id, const std::vector<Operand> &argOps,
                   Label pc)
    {
        if (!isPrimId(id)) {
            size_t idx = Program::indexOf(id);
            if (idx >= prog.decls.size())
                return fail("unknown callee id");
            const Decl &d = prog.decls[idx];
            if (d.isCons) {
                int di = env.dataOfCons(id);
                if (di < 0)
                    return fail("constructor not in any data type");
                return tFun(env.datas[size_t(di)].conses.at(id),
                            tData(di, Label::T));
            }
            auto sig = env.funs.find(id);
            if (sig == env.funs.end())
                return fail("callee has no signature");
            return tFun(sig->second.params, sig->second.result);
        }

        Prim p = static_cast<Prim>(id);
        if (p == Prim::GetInt || p == Prim::PutInt) {
            // Port operands must be immediates so the static port
            // label applies (the paper's slight constraint).
            if (argOps.empty() || argOps[0].src != Src::Imm)
                return fail("I/O port operand must be an immediate");
            Label pl = env.portLabel(argOps[0].val);
            if (p == Prim::GetInt)
                return tFun({ tNum(Label::U) }, tNum(pl));
            // putint: the written value and the pc must flow to the
            // port's label.
            if (!flowsTo(pc, pl)) {
                return fail(strprintf(
                    "putint to %s port under %s control flow",
                    labelText(pl), labelText(pc)));
            }
            return tFun({ tNum(Label::U), tNum(pl) }, tNum(pl));
        }
        if (p == Prim::Error) {
            return fail("typed programs may not apply Error "
                        "directly");
        }
        auto info = primById(id);
        if (!info)
            return fail("unknown primitive");
        // ALU primitives and gc: polymorphic in the label — typed
        // here as U-accepting with a result labelled by the join of
        // actual argument labels, which `apply` cannot express, so
        // prims are special-cased in checkLet instead.
        std::vector<ITypePtr> ps(info->arity, tNum(Label::U));
        return tFun(std::move(ps), tNum(Label::U));
    }

    /** let: special-cases label-polymorphic ALU primitives. */
    ITypePtr
    checkLet(const Let &l, Label pc)
    {
        std::vector<ITypePtr> argTs;
        argTs.reserve(l.args.size());
        for (const auto &a : l.args) {
            ITypePtr t = operandType(a, pc);
            if (!t)
                return nullptr;
            argTs.push_back(std::move(t));
        }

        if (l.callee.kind == CalleeKind::Func &&
            isPrimId(l.callee.id)) {
            Prim p = static_cast<Prim>(l.callee.id);
            auto info = primById(l.callee.id);

            // The reserved Error constructor: its instances are the
            // undefined-behaviour escape hatch (Sec. 3.4) — a
            // Hindley-Milner front end rules them out dynamically —
            // so an explicit Error construction types as ⊥ (it only
            // appears in dead else branches of total matches).
            if (p == Prim::Error)
                return tBottom();

            // I/O primitives are label-polymorphic in the value:
            // getint p : num^(label(p) ⊔ pc); putint p v requires
            // label(v) ⊑ label(p) and pc ⊑ label(p), and returns
            // the written value's type.
            if ((p == Prim::GetInt || p == Prim::PutInt) &&
                argTs.size() == info->arity) {
                if (l.args[0].src != Src::Imm) {
                    return fail("I/O port operand must be an "
                                "immediate");
                }
                Label pl = env.portLabel(l.args[0].val);
                if (!flowsTo(pc, pl)) {
                    return fail(strprintf(
                        "I/O on %s port under %s control flow",
                        labelText(pl), labelText(pc)));
                }
                if (p == Prim::GetInt)
                    return tNum(join(pl, pc));
                const ITypePtr &vt = argTs[1];
                if (vt->kind == IType::Kind::Bottom)
                    return tBottom();
                if (vt->kind != IType::Kind::Num) {
                    return fail("putint of a non-numeric value " +
                                vt->toString());
                }
                if (!flowsTo(vt->label, pl)) {
                    return fail(strprintf(
                        "putint of a %s value to a %s port",
                        labelText(vt->label), labelText(pl)));
                }
                return tNum(join(vt->label, pc));
            }

            bool alu = info && !info->effectful &&
                       !info->isConstructor;
            if (alu && argTs.size() == info->arity) {
                // Saturated ALU/gc application: result label is the
                // join of the operand labels and the pc.
                Label out = pc;
                for (const auto &t : argTs) {
                    if (t->kind == IType::Kind::Bottom)
                        return tBottom();
                    if (t->kind != IType::Kind::Num) {
                        return fail("primitive operand is not a "
                                    "number: " + t->toString());
                    }
                    out = join(out, t->label);
                }
                (void)p;
                return tNum(out);
            }
        }

        ITypePtr callee;
        switch (l.callee.kind) {
          case CalleeKind::Func:
            callee = globalCallable(l.callee.id, l.args, pc);
            break;
          case CalleeKind::Local:
            if (l.callee.id >= locals.size())
                return fail("callee local out of range");
            callee = raise(locals[l.callee.id], pc);
            break;
          case CalleeKind::Arg:
            if (l.callee.id >= args.size())
                return fail("callee arg out of range");
            callee = raise(args[l.callee.id], pc);
            break;
        }
        if (!callee)
            return nullptr;
        if (argTs.empty() && (callee->kind != IType::Kind::Fun ||
                              !callee->params.empty())) {
            // Pure alias or under-applied closure: keep the type.
            return callee;
        }
        return apply(std::move(callee), argTs, pc);
    }

    ITypePtr
    checkExpr(const Expr &e, Label pc)
    {
        if (e.isLet()) {
            ITypePtr bound = checkLet(e.asLet(), pc);
            if (!bound)
                return nullptr;
            locals.push_back(std::move(bound));
            ITypePtr out = checkExpr(*e.asLet().body, pc);
            locals.pop_back();
            return out;
        }
        if (e.isCase())
            return checkCase(e.asCase(), pc);
        return operandType(e.asResult().value, pc);
    }

    ITypePtr
    checkCase(const Case &c, Label pc)
    {
        ITypePtr scrut = operandType(c.scrut, pc);
        if (!scrut)
            return nullptr;
        if (scrut->kind == IType::Kind::Bottom)
            return tBottom(); // dead code past an Error value
        if (scrut->kind == IType::Kind::Fun)
            return fail("case scrutinee has function type");
        // Branch selection leaks the scrutinee: raise the pc.
        Label bpc = join(pc, scrut->label);

        ITypePtr out;
        auto merge = [&](ITypePtr t) -> bool {
            if (!t)
                return false;
            if (!out) {
                out = std::move(t);
                return true;
            }
            ITypePtr j = joinTypes(out, t);
            if (!j) {
                fail("case branches have incompatible types " +
                     out->toString() + " and " + t->toString());
                return false;
            }
            out = std::move(j);
            return true;
        };

        for (const auto &br : c.branches) {
            if (br.isCons) {
                if (scrut->kind != IType::Kind::Data) {
                    return fail("constructor pattern on non-data "
                                "scrutinee " + scrut->toString());
                }
                const DataDecl &dd =
                    env.datas[size_t(scrut->dataId)];
                auto fields = dd.conses.find(br.consId);
                if (fields == dd.conses.end()) {
                    return fail(strprintf(
                        "pattern constructor 0x%x is not part of "
                        "the scrutinee's data type", br.consId));
                }
                size_t base = locals.size();
                for (const auto &ft : fields->second) {
                    // Fields of a tainted structure are tainted.
                    locals.push_back(raise(ft, scrut->label));
                }
                ITypePtr t = checkExpr(*br.body, bpc);
                locals.resize(base);
                if (!merge(std::move(t)))
                    return nullptr;
            } else {
                if (scrut->kind != IType::Kind::Num) {
                    return fail("literal pattern on non-numeric "
                                "scrutinee " + scrut->toString());
                }
                if (!merge(checkExpr(*br.body, bpc)))
                    return nullptr;
            }
        }
        if (!merge(checkExpr(*c.elseBody, bpc)))
            return nullptr;
        // The produced value depends on the scrutinee.
        return raise(out, scrut->label);
    }

    const Program &prog;
    const TypeEnv &env;
    ITypeReport report;
    std::string where;
    std::vector<ITypePtr> args;
    std::vector<ITypePtr> locals;
};

} // namespace

std::string
ITypeReport::summary() const
{
    std::string out;
    for (const auto &e : errors)
        out += e.where + ": " + e.what + "\n";
    return out;
}

ITypeReport
checkIntegrity(const Program &program, const TypeEnv &env)
{
    return Checker(program, env).run();
}

} // namespace zarf::verify
