/**
 * @file
 * Static worst-case execution-time analysis (Sec. 5.2).
 *
 * With knowledge of how the λ-execution layer executes each
 * instruction, the analysis extracts the worst-case route through
 * the hardware state machine for every operation and sums them. The
 * prerequisites are the paper's: within the analyzed region no
 * function calls into itself (the top-level loop's recursive tail
 * call and designated wait functions are excluded — they mark the
 * iteration boundary and the slack-consuming poll, respectively),
 * and calls are first-order (every callee is a global identifier),
 * both checked.
 *
 * The analysis uses the same TimingModel as the simulator
 * (machine/timing.hh), charging each let the full worst-case cost of
 * eventually forcing its application — laziness can only do less
 * work — plus the fetch/decode, pattern-check, field-push, update,
 * and return costs of the case/result machinery.
 *
 * The garbage-collection bound follows the paper's argument: assume
 * every word allocated during one iteration is simultaneously live
 * at collection time, charge N+4 cycles per object of N words, and
 * 2 cycles per payload reference checked.
 */

#ifndef ZARF_VERIFY_WCET_HH
#define ZARF_VERIFY_WCET_HH

#include <map>
#include <set>
#include <string>

#include "isa/ast.hh"
#include "machine/timing.hh"

namespace zarf::verify
{

/** Analysis configuration. */
struct WcetConfig
{
    TimingModel timing{};
    /** Functions whose recursive self-calls cost zero (the loop
     *  boundary and wait functions). Their single-iteration body is
     *  still costed. */
    std::set<std::string> boundaryFunctions;
};

/** Per-function analysis results. */
struct WcetFunction
{
    std::string name;
    Cycles worstCycles = 0;     ///< Worst path through one call.
    uint64_t allocObjects = 0;  ///< Worst-case objects allocated.
    uint64_t allocWords = 0;    ///< Worst-case words allocated.
};

/** Whole-analysis result. */
struct WcetReport
{
    bool ok = false;
    std::string error;

    /** Worst-case execution cycles of one call of the root. */
    Cycles execBound = 0;
    /** Worst-case garbage-collection cycles per iteration. */
    Cycles gcBound = 0;
    /** execBound + gcBound. */
    Cycles totalBound() const { return execBound + gcBound; }

    uint64_t allocObjects = 0;
    uint64_t allocWords = 0;

    std::map<std::string, WcetFunction> functions;

    std::string summary() const;
};

/**
 * Analyze the worst case of calling `rootFunction` once.
 *
 * @param program the program (validated)
 * @param rootFunction name of the analyzed entry (e.g. "kernelLoop"
 *        for one ICD iteration, with itself listed as a boundary)
 */
WcetReport analyzeWcet(const Program &program,
                       const std::string &rootFunction,
                       const WcetConfig &config = {});

} // namespace zarf::verify

#endif // ZARF_VERIFY_WCET_HH
