/**
 * @file
 * Hardware resource model for Table 1.
 *
 * The paper synthesizes the λ-execution layer and a 3-stage
 * MicroBlaze for a Xilinx Artix-7 and reports LUTs, flip-flops, and
 * cycle time; the λ-layer's combinational logic is 29,980 primitive
 * gates ("roughly the size of a MIPS R3000", 0.274 mm² at 130 nm,
 * under 7% of the FPGA). We cannot synthesize RTL here, so Table 1
 * is reproduced by a structural model: area is estimated from the
 * control-FSM state count (66 states grouped 4/15/18/29, which the
 * simulator's MState inventory reproduces exactly) and the 32-bit
 * datapath, with per-state and per-datapath coefficients calibrated
 * once against the paper's published λ-layer figures. The MicroBlaze
 * column uses the paper's published numbers directly (it is a vendor
 * core, not part of the contribution). The claim the bench verifies
 * is therefore relative: the λ-layer costs roughly twice the
 * resources of a minimal imperative core and runs at half the clock.
 */

#ifndef ZARF_VERIFY_RESOURCE_HH
#define ZARF_VERIFY_RESOURCE_HH

#include <string>

#include "machine/timing.hh"

namespace zarf::verify
{

/** One synthesis-results column of Table 1. */
struct ResourceEstimate
{
    unsigned luts;
    unsigned ffs;
    unsigned gates;
    double cycleNs;
    double mhz() const { return 1000.0 / cycleNs; }
};

/** Structural description of a control-FSM-based core. */
struct CoreStructure
{
    unsigned fsmStates;
    unsigned datapathBits;
    unsigned aluOps;       ///< Distinct ALU operations.
    unsigned architRegs;   ///< Architectural state words.
    double cycleNs;        ///< Achieved clock period.
};

/** The λ-execution layer's structure, derived from the simulator's
 *  state inventory (machine/timing.hh). */
CoreStructure lambdaLayerStructure();

/** The MicroBlaze-like imperative core's structure. */
CoreStructure mblazeStructure();

/** Estimate synthesis results from a core structure. */
ResourceEstimate estimateResources(const CoreStructure &s);

/** The paper's published Table 1 values, for comparison. */
ResourceEstimate paperLambdaLayer();
ResourceEstimate paperMicroBlaze();

/** Render the full Table 1 comparison (model vs. paper). */
std::string renderTable1();

} // namespace zarf::verify

#endif // ZARF_VERIFY_RESOURCE_HH
