#include "zasm/prelude.hh"

namespace zarf
{

const std::string &
preludeText()
{
    static const std::string text = R"(
# ---------------- Zarf prelude ----------------

con Nil
con Cons head tail
con Pair fst snd
con None
con Some value

# ---- combinators ----

fun id x =
  result x

fun constK x y =
  result x

fun compose f g x =
  let gx = g x
  let fgx = f gx
  result fgx

fun flip f x y =
  let r = f y x
  result r

fun applyFn f x =
  let r = f x
  result r

# boolean not over 0/1
fun bnot01 b =
  case b of
    0 =>
      result 1
  else
    result 0

# ---- pairs / options ----

fun fst p =
  case p of
    Pair a b =>
      result a
  else
    let e = Error 0
    result e

fun snd p =
  case p of
    Pair a b =>
      result b
  else
    let e = Error 0
    result e

fun fromSome d opt =
  case opt of
    Some v =>
      result v
    None =>
      result d
  else
    result d

# ---- lists ----

fun length list =
  case list of
    Nil =>
      result 0
    Cons h t =>
      let n = length t
      let n' = add n 1
      result n'
  else
    let e = Error 0
    result e

fun append xs ys =
  case xs of
    Nil =>
      result ys
    Cons h t =>
      let rest = append t ys
      let out = Cons h rest
      result out
  else
    let e = Error 0
    result e

fun revHelp acc list =
  case list of
    Nil =>
      result acc
    Cons h t =>
      let acc' = Cons h acc
      let r = revHelp acc' t
      result r
  else
    let e = Error 0
    result e

fun reverse list =
  let n = Nil
  let r = revHelp n list
  result r

fun mapL f list =
  case list of
    Nil =>
      let e = Nil
      result e
    Cons h t =>
      let h' = f h
      let t' = mapL f t
      let out = Cons h' t'
      result out
  else
    let e = Error 0
    result e

fun filterL p list =
  case list of
    Nil =>
      let e = Nil
      result e
    Cons h t =>
      let keep = p h
      let rest = filterL p t
      case keep of
        0 =>
          result rest
      else
        let out = Cons h rest
        result out
  else
    let e = Error 0
    result e

fun foldl f acc list =
  case list of
    Nil =>
      result acc
    Cons h t =>
      let acc' = f acc h
      let r = foldl f acc' t
      result r
  else
    let e = Error 0
    result e

fun foldr f z list =
  case list of
    Nil =>
      result z
    Cons h t =>
      let rest = foldr f z t
      let r = f h rest
      result r
  else
    let e = Error 0
    result e

fun take n list =
  case n of
    0 =>
      let e = Nil
      result e
  else
    case list of
      Nil =>
        let e = Nil
        result e
      Cons h t =>
        let n' = sub n 1
        let rest = take n' t
        let out = Cons h rest
        result out
    else
      let e = Error 0
      result e

fun drop n list =
  case n of
    0 =>
      result list
  else
    case list of
      Nil =>
        let e = Nil
        result e
      Cons h t =>
        let n' = sub n 1
        let r = drop n' t
        result r
    else
      let e = Error 0
      result e

# rangeL lo hi = [lo, lo+1, .., hi]
fun rangeL lo hi =
  let over = gt lo hi
  case over of
    1 =>
      let e = Nil
      result e
  else
    let lo' = add lo 1
    let rest = rangeL lo' hi
    let out = Cons lo rest
    result out

fun replicate n x =
  case n of
    0 =>
      let e = Nil
      result e
  else
    let n' = sub n 1
    let rest = replicate n' x
    let out = Cons x rest
    result out

fun sum list =
  let f = addF
  let z = foldl f 0 list
  result z

fun addF a b =
  let r = add a b
  result r

fun product list =
  let f = mulF
  let z = foldl f 1 list
  result z

fun mulF a b =
  let r = mul a b
  result r

fun maximumL list =
  case list of
    Cons h t =>
      let f = maxF
      let m = foldl f h t
      let s = Some m
      result s
    Nil =>
      let e = None
      result e
  else
    let e = Error 0
    result e

fun maxF a b =
  let r = max a b
  result r

fun elemL x list =
  case list of
    Nil =>
      result 0
    Cons h t =>
      let same = eq x h
      case same of
        1 =>
          result 1
      else
        let r = elemL x t
        result r
  else
    let e = Error 0
    result e

# nth n list: zero-based; None when out of range
fun nth n list =
  case list of
    Nil =>
      let e = None
      result e
    Cons h t =>
      case n of
        0 =>
          let s = Some h
          result s
      else
        let n' = sub n 1
        let r = nth n' t
        result r
  else
    let e = Error 0
    result e

fun zipWith f xs ys =
  case xs of
    Nil =>
      let e = Nil
      result e
    Cons xh xt =>
      case ys of
        Nil =>
          let e = Nil
          result e
        Cons yh yt =>
          let h = f xh yh
          let t = zipWith f xt yt
          let out = Cons h t
          result out
      else
        let e = Error 0
        result e
  else
    let e = Error 0
    result e

fun allL p list =
  case list of
    Nil =>
      result 1
    Cons h t =>
      let ok = p h
      case ok of
        0 =>
          result 0
      else
        let r = allL p t
        result r
  else
    let e = Error 0
    result e

fun anyL p list =
  case list of
    Nil =>
      result 0
    Cons h t =>
      let ok = p h
      case ok of
        0 =>
          let r = anyL p t
          result r
      else
        result 1
  else
    let e = Error 0
    result e

# association lists of Pair key value
fun lookupL k list =
  case list of
    Nil =>
      let e = None
      result e
    Cons h t =>
      case h of
        Pair hk hv =>
          let same = eq hk k
          case same of
            1 =>
              let s = Some hv
              result s
          else
            let r = lookupL k t
            result r
      else
        let e = Error 0
        result e
  else
    let e = Error 0
    result e
)";
    return text;
}

} // namespace zarf
