/**
 * @file
 * Larger sample programs for the functional ISA.
 *
 * miniVmText(): a stack-machine interpreter written in Zarf assembly
 * — the classic case-dispatch workload. Programs are lists of
 * Pair(opcode, operand) instructions executed against a list-shaped
 * stack:
 *
 *   0 push k     push the literal k
 *   1 add        pop b, pop a, push a+b
 *   2 sub        pop b, pop a, push a-b
 *   3 mul        pop b, pop a, push a*b
 *   4 dup        duplicate the top of stack
 *   5 swap       exchange the two top elements
 *   6 neg        negate the top of stack
 *   7 maxi       pop b, pop a, push max(a,b)
 *
 * Entry point: vmRun prog stack -> the final top of stack (or the
 * reserved Error constructor on stack underflow / bad opcodes).
 * Requires the prelude (lists and pairs).
 *
 * Its dynamic profile is what the paper's hand-written software
 * looks like — several pattern heads checked per dispatched
 * instruction — which complements the extractor-generated ICD in
 * the Sec. 6 statistics.
 */

#ifndef ZARF_ZASM_SAMPLES_HH
#define ZARF_ZASM_SAMPLES_HH

#include <string>
#include <vector>

#include "support/types.hh"

namespace zarf
{

/** The VM interpreter source (no main; needs the prelude). */
const std::string &miniVmText();

/** One mini-VM instruction. */
struct VmInstr
{
    SWord op;
    SWord arg;
};

/** Render `main` running the given VM program on an empty stack.
 *  Prepend to miniVmText() + preludeText() and assemble. */
std::string vmMainText(const std::vector<VmInstr> &program);

/** Host-side reference semantics of the VM (for differential
 *  tests); returns false on underflow or a bad opcode. */
bool vmReference(const std::vector<VmInstr> &program, SWord &out);

} // namespace zarf

#endif // ZARF_ZASM_SAMPLES_HH
