/**
 * @file
 * The Zarf prelude: a standard library of list, pair, option, and
 * combinator functions written in the functional assembly.
 *
 * The paper's ISA is complete — "it is entirely possible that all
 * code in the system be written to be purely functional and run on
 * the λ-execution layer" — and this library is what a downstream
 * user would build general software on. Every function is exercised
 * by tests on all three execution engines.
 *
 * Usage: append preludeText() to your program text before
 * assembling (the prelude declares no main), e.g.
 *
 *   Program p = assembleOrDie(myText + preludeText());
 *
 * Provided:
 *   con Nil / Cons / Pair / None / Some
 *   id, constK, compose, flip, applyFn
 *   bnot01 (boolean not on 0/1)
 *   length, append, reverse, mapL, filterL, foldl, foldr, take,
 *   drop, rangeL, replicate, sum, product, maximumL, elemL, nth,
 *   zipWith, allL, anyL, fst, snd, fromSome, lookupL
 */

#ifndef ZARF_ZASM_PRELUDE_HH
#define ZARF_ZASM_PRELUDE_HH

#include <string>

namespace zarf
{

/** The prelude source text (valid assembly, no main). */
const std::string &preludeText();

} // namespace zarf

#endif // ZARF_ZASM_PRELUDE_HH
