/**
 * @file
 * Textual assembly for the Zarf functional ISA.
 *
 * The surface syntax follows Fig. 4a of the paper: constructor and
 * function declarations whose bodies are let/case/result expressions
 * over named variables.
 *
 *   con Nil
 *   con Cons head tail
 *
 *   fun map f list =
 *     case list of
 *       Nil =>
 *         let e = Nil
 *         result e
 *       Cons head tail =>
 *         let head' = f head
 *         let tail' = map f tail
 *         let list' = Cons head' tail'
 *         result list'
 *     else
 *       let err = Error 0
 *       result err
 *
 * Notes on the grammar: `let x = callee a b` has no `in` keyword (the
 * continuation is simply the next expression); `case` branches are
 * `pattern =>` followed by a body expression; every case ends with an
 * `else` branch; `#` starts a comment. Indentation is not
 * significant — the expression grammar is self-delimiting, exactly
 * like the binary encoding.
 *
 * parseAssembly produces named declarations (see isa/builder.hh);
 * printAssembly renders them back (round-trip stable); disassemble
 * renders a machine-level Program (e.g. decoded from a binary, which
 * carries no names) in the Fig. 4b machine-assembly style.
 */

#ifndef ZARF_ZASM_ZASM_HH
#define ZARF_ZASM_ZASM_HH

#include <string>

#include "isa/ast.hh"
#include "isa/builder.hh"

namespace zarf
{

/** Outcome of parsing assembly text. */
struct ParseResult
{
    bool ok;
    ProgramBuilder builder; ///< Valid when ok.
    std::string error;      ///< line:col message when !ok.
};

/** Parse assembly text into named declarations. */
ParseResult parseAssembly(const std::string &text);

/** Parse, lower, and validate; dies with a message on any failure. */
Program assembleOrDie(const std::string &text);

/** Render named declarations as parseable assembly text. */
std::string printAssembly(const ProgramBuilder &builder);

/** Render a machine-level program in Fig. 4b style (human-facing). */
std::string disassemble(const Program &program);

} // namespace zarf

#endif // ZARF_ZASM_ZASM_HH
