#include "zasm/zasm.hh"

#include <cctype>

#include "isa/prims.hh"
#include "isa/validate.hh"
#include "support/logging.hh"
#include "support/text.hh"

namespace zarf
{

namespace
{

// ----------------------------------------------------------------
// Lexer
// ----------------------------------------------------------------

struct Token
{
    enum class Kind { Name, Int, Equals, Arrow, End };

    Kind kind;
    std::string text;
    SWord value = 0;
    int line = 0;
    int col = 0;
};

class Lexer
{
  public:
    explicit Lexer(const std::string &text) : src(text) { advance(); }

    const Token &peek() const { return tok; }

    Token
    take()
    {
        Token t = tok;
        advance();
        return t;
    }

  private:
    void
    advance()
    {
        skipSpace();
        tok.line = line;
        tok.col = col;
        if (pos >= src.size()) {
            tok.kind = Token::Kind::End;
            tok.text.clear();
            return;
        }
        char c = src[pos];
        if (c == '=') {
            if (pos + 1 < src.size() && src[pos + 1] == '>') {
                bump();
                bump();
                tok.kind = Token::Kind::Arrow;
                tok.text = "=>";
                return;
            }
            bump();
            tok.kind = Token::Kind::Equals;
            tok.text = "=";
            return;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '-' && pos + 1 < src.size() &&
             std::isdigit(static_cast<unsigned char>(src[pos + 1])))) {
            std::string num;
            num.push_back(c);
            bump();
            while (pos < src.size() &&
                   std::isdigit(static_cast<unsigned char>(src[pos]))) {
                num.push_back(src[pos]);
                bump();
            }
            tok.kind = Token::Kind::Int;
            tok.text = num;
            tok.value = static_cast<SWord>(std::stol(num));
            return;
        }
        if (isNameChar(c)) {
            std::string name;
            while (pos < src.size() && isNameChar(src[pos])) {
                name.push_back(src[pos]);
                bump();
            }
            tok.kind = Token::Kind::Name;
            tok.text = name;
            return;
        }
        // Unknown character: surface it as a name token so the
        // parser reports a located error.
        tok.kind = Token::Kind::Name;
        tok.text = std::string(1, c);
        bump();
    }

    static bool
    isNameChar(char c)
    {
        return std::isalnum(static_cast<unsigned char>(c)) ||
               c == '_' || c == '\'' || c == '$' || c == '.';
    }

    void
    skipSpace()
    {
        while (pos < src.size()) {
            char c = src[pos];
            if (c == '#') {
                while (pos < src.size() && src[pos] != '\n')
                    bump();
            } else if (std::isspace(static_cast<unsigned char>(c))) {
                bump();
            } else {
                break;
            }
        }
    }

    void
    bump()
    {
        if (src[pos] == '\n') {
            ++line;
            col = 1;
        } else {
            ++col;
        }
        ++pos;
    }

    const std::string &src;
    size_t pos = 0;
    int line = 1;
    int col = 1;
    Token tok;
};

// ----------------------------------------------------------------
// Parser
// ----------------------------------------------------------------

bool
isKeyword(const std::string &s)
{
    return s == "let" || s == "case" || s == "of" || s == "else" ||
           s == "result" || s == "con" || s == "fun";
}

class Parser
{
  public:
    explicit Parser(const std::string &text) : lex(text) {}

    ParseResult
    run()
    {
        while (lex.peek().kind != Token::Kind::End) {
            if (!parseDecl())
                return { false, {}, error };
        }
        if (builder.decls().empty())
            return { false, {}, "no declarations in input" };
        return { true, std::move(builder), "" };
    }

  private:
    bool
    fail(const Token &at, const std::string &why)
    {
        if (error.empty()) {
            error = strprintf("%d:%d: %s", at.line, at.col,
                              why.c_str());
        }
        return false;
    }

    bool
    expectName(const char *what, std::string &out)
    {
        Token t = lex.take();
        if (t.kind != Token::Kind::Name || isKeyword(t.text))
            return fail(t, strprintf("expected %s", what));
        out = t.text;
        return true;
    }

    bool
    parseDecl()
    {
        Token t = lex.take();
        if (t.kind != Token::Kind::Name)
            return fail(t, "expected 'con' or 'fun'");
        if (t.text == "con") {
            std::string name;
            if (!expectName("constructor name", name))
                return false;
            std::vector<std::string> fields;
            while (lex.peek().kind == Token::Kind::Name &&
                   !isKeyword(lex.peek().text)) {
                fields.push_back(lex.take().text);
            }
            builder.cons(name, static_cast<Word>(fields.size()));
            return true;
        }
        if (t.text == "fun") {
            std::string name;
            if (!expectName("function name", name))
                return false;
            std::vector<std::string> params;
            while (lex.peek().kind == Token::Kind::Name &&
                   !isKeyword(lex.peek().text)) {
                params.push_back(lex.take().text);
            }
            Token eq = lex.take();
            if (eq.kind != Token::Kind::Equals)
                return fail(eq, "expected '=' after function header");
            NExprPtr body = parseExpr();
            if (!body)
                return false;
            builder.fn(name, std::move(params), std::move(body));
            return true;
        }
        return fail(t, "expected 'con' or 'fun'");
    }

    /** arg := INT | IDENT */
    bool
    parseArg(NArg &out)
    {
        Token t = lex.take();
        if (t.kind == Token::Kind::Int) {
            out = nImm(t.value);
            return true;
        }
        if (t.kind == Token::Kind::Name && !isKeyword(t.text)) {
            out = nVar(t.text);
            return true;
        }
        return fail(t, "expected an argument (integer or name)");
    }

    NExprPtr
    parseExpr()
    {
        Token t = lex.take();
        if (t.kind != Token::Kind::Name)
            return failE(t, "expected let/case/result");
        if (t.text == "let")
            return parseLet();
        if (t.text == "case")
            return parseCase();
        if (t.text == "result") {
            NArg v;
            if (!parseArg(v))
                return nullptr;
            return nRet(std::move(v));
        }
        return failE(t, "expected let/case/result");
    }

    NExprPtr
    failE(const Token &at, const std::string &why)
    {
        fail(at, why);
        return nullptr;
    }

    NExprPtr
    parseLet()
    {
        std::string var;
        if (!expectName("variable name after let", var))
            return nullptr;
        Token eq = lex.take();
        if (eq.kind != Token::Kind::Equals)
            return failE(eq, "expected '=' in let");
        std::string callee;
        if (!expectName("callee name", callee))
            return nullptr;
        std::vector<NArg> args;
        while (lex.peek().kind == Token::Kind::Int ||
               (lex.peek().kind == Token::Kind::Name &&
                !isKeyword(lex.peek().text))) {
            NArg a;
            if (!parseArg(a))
                return nullptr;
            args.push_back(std::move(a));
        }
        NExprPtr body = parseExpr();
        if (!body)
            return nullptr;
        return nLet(std::move(var), std::move(callee), std::move(args),
                    std::move(body));
    }

    NExprPtr
    parseCase()
    {
        NArg scrut;
        if (!parseArg(scrut))
            return nullptr;
        Token of = lex.take();
        if (of.kind != Token::Kind::Name || of.text != "of")
            return failE(of, "expected 'of' in case");

        std::vector<NBranch> branches;
        for (;;) {
            const Token &p = lex.peek();
            if (p.kind == Token::Kind::Name && p.text == "else") {
                lex.take();
                NExprPtr eb = parseExpr();
                if (!eb)
                    return nullptr;
                return nCase(std::move(scrut), std::move(branches),
                             std::move(eb));
            }
            if (p.kind == Token::Kind::Int) {
                Token lit = lex.take();
                Token ar = lex.take();
                if (ar.kind != Token::Kind::Arrow)
                    return failE(ar, "expected '=>' after pattern");
                NExprPtr body = parseExpr();
                if (!body)
                    return nullptr;
                branches.push_back(litBranch(lit.value,
                                             std::move(body)));
                continue;
            }
            if (p.kind == Token::Kind::Name && !isKeyword(p.text)) {
                Token cons = lex.take();
                std::vector<std::string> fields;
                while (lex.peek().kind == Token::Kind::Name &&
                       !isKeyword(lex.peek().text)) {
                    fields.push_back(lex.take().text);
                }
                Token ar = lex.take();
                if (ar.kind != Token::Kind::Arrow)
                    return failE(ar, "expected '=>' after pattern");
                NExprPtr body = parseExpr();
                if (!body)
                    return nullptr;
                branches.push_back(consBranch(cons.text,
                                              std::move(fields),
                                              std::move(body)));
                continue;
            }
            return failE(p, "expected a pattern or 'else'");
        }
    }

    Lexer lex;
    ProgramBuilder builder;
    std::string error;
};

// ----------------------------------------------------------------
// Printers
// ----------------------------------------------------------------

void
indent(std::string &out, int depth)
{
    out.append(static_cast<size_t>(depth) * 2, ' ');
}

std::string
argText(const NArg &a)
{
    if (a.isImm)
        return strprintf("%d", a.imm);
    return a.name;
}

void
printNExpr(const NExpr &e, std::string &out, int depth)
{
    if (const auto *l = std::get_if<NLet>(&e.node)) {
        indent(out, depth);
        out += "let " + l->var + " = " + l->callee;
        for (const auto &a : l->args)
            out += " " + argText(a);
        out += "\n";
        printNExpr(*l->body, out, depth);
        return;
    }
    if (const auto *c = std::get_if<NCase>(&e.node)) {
        indent(out, depth);
        out += "case " + argText(c->scrut) + " of\n";
        for (const auto &br : c->branches) {
            indent(out, depth + 1);
            if (br.isCons) {
                out += br.consName;
                for (const auto &f : br.fields)
                    out += " " + f;
            } else {
                out += strprintf("%d", br.lit);
            }
            out += " =>\n";
            printNExpr(*br.body, out, depth + 2);
        }
        indent(out, depth + 1);
        out += "else\n";
        printNExpr(*c->elseBody, out, depth + 2);
        return;
    }
    const auto &r = std::get<NRet>(e.node);
    indent(out, depth);
    out += "result " + argText(r.value) + "\n";
}

std::string
operandText(const Operand &op)
{
    switch (op.src) {
      case Src::Local:
        return strprintf("local%d", op.val);
      case Src::Arg:
        return strprintf("arg%d", op.val);
      case Src::Imm:
        return strprintf("%d", op.val);
    }
    return "?";
}

std::string
globalName(Word id, const Program &prog)
{
    if (isPrimId(id)) {
        auto p = primById(id);
        return p ? p->name : strprintf("prim_0x%x", id);
    }
    size_t idx = Program::indexOf(id);
    if (idx < prog.decls.size())
        return prog.decls[idx].name;
    return strprintf("fn_0x%x", id);
}

void
printMExpr(const Expr &e, const Program &prog, std::string &out,
           int depth, Word next_local)
{
    if (e.isLet()) {
        const Let &l = e.asLet();
        indent(out, depth);
        std::string callee;
        switch (l.callee.kind) {
          case CalleeKind::Func:
            callee = globalName(l.callee.id, prog);
            break;
          case CalleeKind::Local:
            callee = strprintf("local%u", l.callee.id);
            break;
          case CalleeKind::Arg:
            callee = strprintf("arg%u", l.callee.id);
            break;
        }
        out += strprintf("let local%u = %s", next_local,
                         callee.c_str());
        for (const auto &a : l.args)
            out += " " + operandText(a);
        out += "\n";
        printMExpr(*l.body, prog, out, depth, next_local + 1);
        return;
    }
    if (e.isCase()) {
        const Case &c = e.asCase();
        indent(out, depth);
        out += "case " + operandText(c.scrut) + " of\n";
        for (const auto &br : c.branches) {
            indent(out, depth + 1);
            Word bound = next_local;
            if (br.isCons) {
                out += globalName(br.consId, prog);
                Word ar = 0;
                if (isPrimId(br.consId)) {
                    auto p = primById(br.consId);
                    ar = p ? p->arity : 0;
                } else {
                    ar = prog.decls[Program::indexOf(br.consId)].arity;
                }
                for (Word i = 0; i < ar; ++i)
                    out += strprintf(" local%u", bound + i);
                bound += ar;
            } else {
                out += strprintf("%d", br.lit);
            }
            out += strprintf(" =>   # skip %zu\n",
                             exprWordCount(*br.body));
            printMExpr(*br.body, prog, out, depth + 2, bound);
        }
        indent(out, depth + 1);
        out += "else\n";
        printMExpr(*c.elseBody, prog, out, depth + 2, next_local);
        return;
    }
    indent(out, depth);
    out += "result " + operandText(e.asResult().value) + "\n";
}

} // namespace

ParseResult
parseAssembly(const std::string &text)
{
    return Parser(text).run();
}

Program
assembleOrDie(const std::string &text)
{
    ParseResult p = parseAssembly(text);
    if (!p.ok)
        fatal("assembly parse error: %s", p.error.c_str());
    BuildResult b = p.builder.tryBuild();
    if (!b.ok)
        fatal("assembly lowering error: %s", b.error.c_str());
    validateProgramOrDie(b.program);
    return std::move(b.program);
}

std::string
printAssembly(const ProgramBuilder &builder)
{
    std::string out;
    for (const auto &d : builder.decls()) {
        if (d.isCons) {
            out += "con " + d.name;
            for (Word i = 0; i < d.arity; ++i)
                out += strprintf(" f%u", i);
            out += "\n";
            continue;
        }
        out += "fun " + d.name;
        for (const auto &p : d.params)
            out += " " + p;
        out += " =\n";
        printNExpr(*d.body, out, 1);
        out += "\n";
    }
    return out;
}

std::string
disassemble(const Program &program)
{
    std::string out;
    for (size_t i = 0; i < program.decls.size(); ++i) {
        const Decl &d = program.decls[i];
        out += strprintf("# id 0x%x\n", Program::idOf(i));
        if (d.isCons) {
            out += strprintf("con %s   # arity %u\n\n",
                             d.name.c_str(), d.arity);
            continue;
        }
        out += strprintf("fun %s   # arity %u, locals %u\n",
                         d.name.c_str(), d.arity, d.numLocals);
        printMExpr(*d.body, program, out, 1, 0);
        out += "\n";
    }
    return out;
}

} // namespace zarf
