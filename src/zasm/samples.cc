#include "zasm/samples.hh"

#include <algorithm>
#include <vector>

#include "support/logging.hh"

namespace zarf
{

const std::string &
miniVmText()
{
    static const std::string text = R"(
# ---------------- mini stack-machine VM ----------------
# vmRun prog stack: execute a list of Pair(op, arg) instructions.

fun vmRun prog stack =
  case prog of
    Nil =>
      case stack of
        Cons top rest =>
          result top
      else
        let e = Error 10
        result e
    Cons ins tail =>
      case ins of
        Pair op arg =>
          case op of
            0 =>
              let s' = Cons arg stack
              let r = vmRun tail s'
              result r
            1 =>
              let s' = vmBin 1 stack
              let r = vmRun tail s'
              result r
            2 =>
              let s' = vmBin 2 stack
              let r = vmRun tail s'
              result r
            3 =>
              let s' = vmBin 3 stack
              let r = vmRun tail s'
              result r
            4 =>
              let s' = vmDup stack
              let r = vmRun tail s'
              result r
            5 =>
              let s' = vmSwap stack
              let r = vmRun tail s'
              result r
            6 =>
              let s' = vmNeg stack
              let r = vmRun tail s'
              result r
            7 =>
              let s' = vmBin 7 stack
              let r = vmRun tail s'
              result r
          else
            let e = Error 11
            result e
      else
        let e = Error 12
        result e
  else
    let e = Error 12
    result e

# binary ops pop b then a and push the combination
fun vmBin op stack =
  case stack of
    Cons b rest1 =>
      case rest1 of
        Cons a rest =>
          let v = vmAlu op a b
          let s' = Cons v rest
          result s'
      else
        let e = Error 10
        result e
  else
    let e = Error 10
    result e

fun vmAlu op a b =
  case op of
    1 =>
      let v = add a b
      result v
    2 =>
      let v = sub a b
      result v
    3 =>
      let v = mul a b
      result v
    7 =>
      let v = max a b
      result v
  else
    let e = Error 11
    result e

fun vmDup stack =
  case stack of
    Cons top rest =>
      let s' = Cons top stack
      result s'
  else
    let e = Error 10
    result e

fun vmSwap stack =
  case stack of
    Cons b rest1 =>
      case rest1 of
        Cons a rest =>
          let s1 = Cons b rest
          let s2 = Cons a s1
          result s2
      else
        let e = Error 10
        result e
  else
    let e = Error 10
    result e

fun vmNeg stack =
  case stack of
    Cons top rest =>
      let v = neg top
      let s' = Cons v rest
      result s'
  else
    let e = Error 10
    result e
)";
    return text;
}

std::string
vmMainText(const std::vector<VmInstr> &program)
{
    // A function may bind at most kMaxLocals locals, so large
    // programs are split into chunk functions of 800 instructions;
    // each chunk prepends its instructions onto the rest of the
    // list.
    constexpr size_t kChunk = 800;
    size_t n = program.size();
    size_t chunks = (n + kChunk - 1) / kChunk;

    std::string s;
    s += "fun main =\n  let p0 = Nil\n";
    for (size_t c = 0; c < chunks; ++c) {
        // Apply the last chunk first so the first instruction ends
        // up at the head of the list.
        size_t chunkIdx = chunks - 1 - c;
        s += strprintf("  let p%zu = vmChunk%zu p%zu\n", c + 1,
                       chunkIdx, c);
    }
    s += strprintf("  let st = Nil\n  let r = vmRun p%zu st\n"
                   "  result r\n\n",
                   chunks);

    for (size_t c = 0; c < chunks; ++c) {
        size_t begin = c * kChunk;
        size_t end = std::min(n, begin + kChunk);
        s += strprintf("fun vmChunk%zu rest =\n", c);
        size_t k = 0;
        std::string prev = "rest";
        for (size_t i = end; i > begin; --i) {
            const VmInstr &ins = program[i - 1];
            s += strprintf("  let i%zu = Pair %d %d\n", k, ins.op,
                           ins.arg);
            s += strprintf("  let q%zu = Cons i%zu %s\n", k, k,
                           prev.c_str());
            prev = strprintf("q%zu", k);
            ++k;
        }
        s += strprintf("  result %s\n\n", prev.c_str());
    }
    return s;
}

bool
vmReference(const std::vector<VmInstr> &program, SWord &out)
{
    std::vector<SWord> stack;
    auto pop = [&](SWord &v) {
        if (stack.empty())
            return false;
        v = stack.back();
        stack.pop_back();
        return true;
    };
    for (const VmInstr &ins : program) {
        SWord a, b;
        switch (ins.op) {
          case 0:
            stack.push_back(wrapInt31(ins.arg));
            break;
          case 1:
          case 2:
          case 3:
          case 7:
            if (!pop(b) || !pop(a))
                return false;
            switch (ins.op) {
              case 1: stack.push_back(wrapInt31(int64_t(a) + b)); break;
              case 2: stack.push_back(wrapInt31(int64_t(a) - b)); break;
              case 3:
                stack.push_back(wrapInt31(int64_t(a) * int64_t(b)));
                break;
              default: stack.push_back(a > b ? a : b); break;
            }
            break;
          case 4:
            if (!pop(a))
                return false;
            stack.push_back(a);
            stack.push_back(a);
            break;
          case 5:
            if (!pop(b) || !pop(a))
                return false;
            stack.push_back(b);
            stack.push_back(a);
            break;
          case 6:
            if (!pop(a))
                return false;
            stack.push_back(wrapInt31(-int64_t(a)));
            break;
          default:
            return false;
        }
    }
    if (stack.empty())
        return false;
    out = stack.back();
    return true;
}

} // namespace zarf
