#include "isa/binary.hh"

#include "isa/encoding.hh"
#include "isa/prims.hh"
#include "support/logging.hh"

namespace zarf
{

namespace
{

void
encodeExpr(const Expr &e, Image &out)
{
    if (e.isLet()) {
        const Let &l = e.asLet();
        out.push_back(packLet(l.callee.kind,
                              static_cast<Word>(l.args.size()),
                              l.callee.id));
        for (const auto &a : l.args)
            out.push_back(packOperand(a));
        encodeExpr(*l.body, out);
        return;
    }
    if (e.isCase()) {
        const Case &c = e.asCase();
        out.push_back(packCase(c.scrut));
        for (const auto &br : c.branches) {
            Word skip = static_cast<Word>(exprWordCount(*br.body));
            out.push_back(br.isCons ? packPatCons(skip, br.consId)
                                    : packPatLit(skip, br.lit));
            encodeExpr(*br.body, out);
        }
        out.push_back(packPatElse());
        encodeExpr(*c.elseBody, out);
        return;
    }
    out.push_back(packResult(e.asResult().value));
}

/** Strict recursive-descent decoder over one function body. */
class BodyDecoder
{
  public:
    BodyDecoder(const Image &image, size_t begin, size_t end)
        : image(image), pos(begin), end(end)
    {}

    /** The 2-bit source/kind fields have three legal values; the
     *  fourth encoding is reserved and must be rejected. */
    static bool
    srcFieldValid(Word w)
    {
        return ((w >> 26) & 0x3u) != 3u;
    }

    /** Decode a full expression; null and error set on failure. */
    ExprPtr
    decodeExpr()
    {
        if (!fits(1))
            return fail("truncated body: expected an instruction");
        Word w = image[pos];
        switch (opOf(w)) {
          case Op::Let: return decodeLet(w);
          case Op::Case:
            if (!srcFieldValid(w))
                return fail("reserved source field in case word");
            return decodeCase(w);
          case Op::Result:
            if (!srcFieldValid(w))
                return fail("reserved source field in result word");
            ++pos;
            return std::make_unique<Expr>(Result{ unpackResult(w) });
          default:
            return fail(strprintf("unexpected opcode %u where an "
                                  "instruction must start",
                                  static_cast<unsigned>(opOf(w))));
        }
    }

    bool done() const { return pos == end; }
    const std::string &errorText() const { return error; }
    size_t position() const { return pos; }

  private:
    ExprPtr
    decodeLet(Word w)
    {
        if (!srcFieldValid(w))
            return fail("reserved callee kind in let word");
        LetWord head = unpackLet(w);
        ++pos;
        Let let;
        let.callee = Callee{ head.kind, head.id };
        let.args.reserve(head.nargs);
        for (Word i = 0; i < head.nargs; ++i) {
            if (!fits(1))
                return fail("truncated let argument list");
            Word aw = image[pos];
            if (opOf(aw) != Op::Arg)
                return fail("let argument word has wrong opcode");
            if (!srcFieldValid(aw))
                return fail("reserved source field in argument word");
            let.args.push_back(unpackOperand(aw));
            ++pos;
        }
        let.body = decodeExpr();
        if (!let.body)
            return nullptr;
        return std::make_unique<Expr>(std::move(let));
    }

    ExprPtr
    decodeCase(Word w)
    {
        Case cs;
        cs.scrut = unpackCaseScrut(w);
        ++pos;
        for (;;) {
            if (!fits(1))
                return fail("case instruction has no else branch");
            Word pw = image[pos];
            Op op = opOf(pw);
            if (op == Op::PatElse) {
                ++pos;
                cs.elseBody = decodeExpr();
                if (!cs.elseBody)
                    return nullptr;
                return std::make_unique<Expr>(std::move(cs));
            }
            if (op != Op::PatLit && op != Op::PatCons)
                return fail("malformed case: expected a pattern word");
            PatWord pat = unpackPat(pw);
            ++pos;
            size_t body_begin = pos;
            CaseBranch br;
            br.isCons = pat.isCons;
            br.lit = pat.lit;
            br.consId = pat.consId;
            br.body = decodeExpr();
            if (!br.body)
                return nullptr;
            size_t body_words = pos - body_begin;
            if (body_words != pat.skip) {
                return fail(strprintf(
                    "pattern skip field %u does not match branch "
                    "body size %zu", pat.skip, body_words));
            }
            cs.branches.push_back(std::move(br));
        }
    }

    bool fits(size_t n) const { return pos + n <= end; }

    ExprPtr
    fail(const std::string &why)
    {
        if (error.empty())
            error = strprintf("word %zu: %s", pos, why.c_str());
        return nullptr;
    }

    const Image &image;
    size_t pos;
    size_t end;
    std::string error;
};

} // namespace

size_t
declWordCount(const Decl &decl)
{
    return 2 + (decl.body ? exprWordCount(*decl.body) : 0);
}

Image
encodeProgram(const Program &program)
{
    Image out;
    out.push_back(kMagic);
    out.push_back(static_cast<Word>(program.decls.size()));
    for (const auto &d : program.decls) {
        out.push_back(packInfo(d.isCons, d.numLocals, d.arity));
        if (d.isCons) {
            out.push_back(0);
            continue;
        }
        if (!d.body)
            fatal("function %s has no body", d.name.c_str());
        size_t len_at = out.size();
        out.push_back(0); // patched below
        encodeExpr(*d.body, out);
        out[len_at] = static_cast<Word>(out.size() - len_at - 1);
    }
    return out;
}

DecodeResult
decodeProgram(const Image &image)
{
    auto err = [](std::string why) {
        return DecodeResult{ false, {}, std::move(why) };
    };

    if (image.size() < 2)
        return err("image too small for header");
    if (image[0] != kMagic)
        return err(strprintf("bad magic word 0x%08x", image[0]));
    Word n = image[1];
    if (n == 0)
        return err("program declares no functions (main required)");

    Program prog;
    size_t pos = 2;
    for (Word i = 0; i < n; ++i) {
        if (pos + 2 > image.size())
            return err(strprintf("declaration %u: truncated header", i));
        if (opOf(image[pos]) != Op::Info) {
            return err(strprintf(
                "declaration %u: expected info word at %zu", i, pos));
        }
        InfoWord info = unpackInfo(image[pos]);
        Word m = image[pos + 1];
        pos += 2;
        if (pos + m > image.size()) {
            return err(strprintf(
                "declaration %u: body of %u words overruns image",
                i, m));
        }

        Decl d;
        d.isCons = info.isCons;
        d.arity = info.arity;
        d.numLocals = info.numLocals;
        Word id = Program::idOf(i);
        if (info.isCons) {
            if (m != 0) {
                return err(strprintf(
                    "declaration %u: constructor with a body", i));
            }
            d.name = strprintf("con_0x%x", id);
        } else {
            if (m == 0) {
                return err(strprintf(
                    "declaration %u: function with empty body", i));
            }
            BodyDecoder dec(image, pos, pos + m);
            d.body = dec.decodeExpr();
            if (!d.body) {
                return err(strprintf("declaration %u: %s", i,
                                     dec.errorText().c_str()));
            }
            if (!dec.done()) {
                return err(strprintf(
                    "declaration %u: %zu trailing words after body",
                    i, pos + m - dec.position()));
            }
            d.name = strprintf("fn_0x%x", id);
            pos += m;
        }
        prog.decls.push_back(std::move(d));
    }
    if (pos != image.size())
        return err("trailing words after final declaration");
    int entry = prog.entryIndex();
    if (entry < 0)
        return err("program contains no function (main required)");
    if (prog.decls[size_t(entry)].arity != 0)
        return err("main must take no arguments");
    prog.decls[size_t(entry)].name = "main";

    return DecodeResult{ true, std::move(prog), "" };
}

Program
decodeProgramOrDie(const Image &image)
{
    DecodeResult r = decodeProgram(image);
    if (!r.ok)
        fatal("invalid Zarf binary: %s", r.error.c_str());
    return std::move(r.program);
}

} // namespace zarf
