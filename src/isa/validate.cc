#include "isa/validate.hh"

#include "isa/encoding.hh"
#include "isa/prims.hh"
#include "support/logging.hh"

namespace zarf
{

std::string
ValidationReport::summary() const
{
    std::string out;
    for (const auto &d : errors) {
        out += d.where;
        out += ": ";
        out += d.what;
        out += "\n";
    }
    return out;
}

namespace
{

class Validator
{
  public:
    explicit Validator(const Program &program) : prog(program) {}

    ValidationReport
    run()
    {
        if (prog.decls.empty()) {
            error("<program>", "no declarations");
            return report;
        }
        int entry = prog.entryIndex();
        if (entry < 0)
            error("<program>", "no entry function (main)");
        else if (prog.decls[size_t(entry)].arity != 0) {
            error(prog.decls[size_t(entry)].name,
                  "main must take no arguments");
        }

        for (const auto &d : prog.decls) {
            where = d.name;
            if (d.arity > kMaxArity)
                error(where, "arity exceeds encoding limit");
            if (d.isCons) {
                if (d.body)
                    error(where, "constructor has a body");
                continue;
            }
            if (!d.body) {
                error(where, "function has no body");
                continue;
            }
            if (d.numLocals > kMaxLocals)
                error(where, "locals count exceeds encoding limit");
            Word need = computeNumLocalsSafe(*d.body);
            if (d.numLocals < need) {
                error(where, strprintf(
                    "fingerprint declares %u locals; body needs %u",
                    d.numLocals, need));
            }
            arity = d.arity;
            checkExpr(*d.body, 0);
        }
        return report;
    }

  private:
    void
    error(const std::string &w, std::string what)
    {
        report.errors.push_back(Diagnostic{ w, std::move(what) });
    }

    Word
    computeNumLocalsSafe(const Expr &e)
    {
        // computeNumLocals panics on unknown constructor ids; guard
        // by pre-checking ids during checkExpr instead. Here we only
        // call it when all pattern ids resolve.
        if (!patternsResolve(e))
            return 0;
        return computeNumLocals(e, prog);
    }

    bool
    patternsResolve(const Expr &e) const
    {
        if (e.isLet())
            return patternsResolve(*e.asLet().body);
        if (e.isCase()) {
            const Case &c = e.asCase();
            for (const auto &br : c.branches) {
                if (br.isCons && !consArity(br.consId))
                    return false;
                if (!patternsResolve(*br.body))
                    return false;
            }
            return patternsResolve(*c.elseBody);
        }
        return true;
    }

    /** Arity of a constructor id, or nullopt if not a constructor. */
    std::optional<Word>
    consArity(Word id) const
    {
        if (isPrimId(id)) {
            auto p = primById(id);
            if (p && p->isConstructor)
                return p->arity;
            return std::nullopt;
        }
        size_t idx = Program::indexOf(id);
        if (idx >= prog.decls.size())
            return std::nullopt;
        if (!prog.decls[idx].isCons)
            return std::nullopt;
        return prog.decls[idx].arity;
    }

    bool
    calleeExists(Word id) const
    {
        if (isPrimId(id))
            return primById(id).has_value();
        return Program::indexOf(id) < prog.decls.size();
    }

    void
    checkOperand(const Operand &op, Word locals_bound)
    {
        switch (op.src) {
          case Src::Imm:
            if (op.val < kMinImm || op.val > kMaxImm)
                error(where, "immediate out of 26-bit range");
            break;
          case Src::Arg:
            if (op.val < 0 || op.val >= SWord(arity)) {
                error(where, strprintf(
                    "arg index %d out of range (arity %u)",
                    op.val, arity));
            }
            break;
          case Src::Local:
            if (op.val < 0 || op.val >= SWord(locals_bound)) {
                error(where, strprintf(
                    "local index %d not yet bound (%u bound here)",
                    op.val, locals_bound));
            }
            break;
        }
    }

    void
    checkExpr(const Expr &e, Word locals_bound)
    {
        if (e.isLet()) {
            const Let &l = e.asLet();
            if (l.args.size() > kMaxArgs)
                error(where, "let argument count exceeds encoding");
            switch (l.callee.kind) {
              case CalleeKind::Func:
                if (!calleeExists(l.callee.id)) {
                    error(where, strprintf(
                        "callee id 0x%x does not exist", l.callee.id));
                }
                break;
              case CalleeKind::Local:
                if (l.callee.id >= locals_bound) {
                    error(where, strprintf(
                        "callee local %u not yet bound", l.callee.id));
                }
                break;
              case CalleeKind::Arg:
                if (l.callee.id >= arity) {
                    error(where, strprintf(
                        "callee arg %u out of range", l.callee.id));
                }
                break;
            }
            for (const auto &a : l.args)
                checkOperand(a, locals_bound);
            checkExpr(*l.body, locals_bound + 1);
            return;
        }
        if (e.isCase()) {
            const Case &c = e.asCase();
            checkOperand(c.scrut, locals_bound);
            for (const auto &br : c.branches) {
                size_t body_words = exprWordCount(*br.body);
                if (body_words > kMaxSkip) {
                    error(where, strprintf(
                        "branch body of %zu words exceeds the skip "
                        "field", body_words));
                }
                if (br.isCons) {
                    auto ar = consArity(br.consId);
                    if (!ar) {
                        error(where, strprintf(
                            "pattern id 0x%x is not a constructor",
                            br.consId));
                        checkExpr(*br.body, locals_bound);
                        continue;
                    }
                    checkExpr(*br.body, locals_bound + *ar);
                } else {
                    if (br.lit < kMinPatLit || br.lit > kMaxPatLit) {
                        error(where,
                              "literal pattern out of 16-bit range");
                    }
                    checkExpr(*br.body, locals_bound);
                }
            }
            checkExpr(*c.elseBody, locals_bound);
            return;
        }
        checkOperand(e.asResult().value, locals_bound);
    }

    const Program &prog;
    ValidationReport report;
    std::string where;
    Word arity = 0;
};

} // namespace

ValidationReport
validateProgram(const Program &program)
{
    return Validator(program).run();
}

void
validateProgramOrDie(const Program &program)
{
    ValidationReport r = validateProgram(program);
    if (!r.ok())
        fatal("invalid program:\n%s", r.summary().c_str());
}

} // namespace zarf
