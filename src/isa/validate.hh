/**
 * @file
 * Structural validation of machine-assembly programs.
 *
 * The hardware loader (and the binary decoder in isa/binary.hh)
 * rejects images that are not well-shaped; this validator performs
 * the same checks on in-memory programs before encoding, plus the
 * scoping checks that make a program executable: every reference must
 * name an argument or an already-bound local on its path, every
 * callee must exist, and every field must fit its encoding.
 */

#ifndef ZARF_ISA_VALIDATE_HH
#define ZARF_ISA_VALIDATE_HH

#include <string>
#include <vector>

#include "isa/ast.hh"

namespace zarf
{

/** One validation diagnostic. */
struct Diagnostic
{
    std::string where; ///< Declaration name.
    std::string what;
};

/** Full validation report. */
struct ValidationReport
{
    std::vector<Diagnostic> errors;
    bool ok() const { return errors.empty(); }
    std::string summary() const;
};

/** Validate a whole program. */
ValidationReport validateProgram(const Program &program);

/** Validate or die; for pipelines where programs must be correct. */
void validateProgramOrDie(const Program &program);

} // namespace zarf

#endif // ZARF_ISA_VALIDATE_HH
