/**
 * @file
 * Binary word formats of the Zarf functional ISA (paper, Fig. 4d).
 *
 * Every word of a program image is either a program header word, the
 * start of a declaration (info word followed by a raw length word),
 * the start of an instruction, or an argument word inside a let
 * instruction. Each instruction word carries a 4-bit opcode in its
 * top bits; variable-length instructions (let, case) are sequences of
 * word-aligned pieces that are trivial to decode, exactly as the
 * paper describes.
 *
 * Field layouts (bit ranges inclusive):
 *
 *   LET      [31:28]=0x1  [27:26]=callee kind  [25:16]=nargs
 *            [15:0]=callee id or slot index
 *   ARG      [31:28]=0x2  [27:26]=source       [25:0]=payload
 *            (payload is a 26-bit signed immediate for Src::Imm,
 *             an unsigned slot index otherwise)
 *   CASE     [31:28]=0x3  [27:26]=source       [25:0]=payload
 *   PAT_LIT  [31:28]=0x4  [27:16]=skip         [15:0]=signed literal
 *   PAT_CONS [31:28]=0x5  [27:16]=skip         [15:0]=constructor id
 *   PAT_ELSE [31:28]=0x6
 *   RESULT   [31:28]=0x7  [27:26]=source       [25:0]=payload
 *   INFO     [31:28]=0x8  [27]=constructor     [26:16]=num locals
 *            [15:0]=arity
 *
 * The `skip` field of a pattern word is the number of words to jump
 * over when the pattern fails — i.e. the encoded size of the branch
 * body — which lands execution on the next pattern word (Sec. 3.3).
 */

#ifndef ZARF_ISA_ENCODING_HH
#define ZARF_ISA_ENCODING_HH

#include "isa/ast.hh"
#include "support/types.hh"

namespace zarf
{

/** The leading magic word of every Zarf binary ("ZRF:"). */
constexpr Word kMagic = 0x5a52463a;

/** Instruction/word opcodes (top 4 bits). */
enum class Op : Word
{
    Let = 0x1,
    Arg = 0x2,
    Case = 0x3,
    PatLit = 0x4,
    PatCons = 0x5,
    PatElse = 0x6,
    Result = 0x7,
    Info = 0x8,
};

/** Field width limits implied by the layouts above. */
constexpr Word kMaxArgs = (1u << 10) - 1;     ///< let argument count
constexpr Word kMaxSlotIndex = (1u << 16) - 1;
constexpr SWord kMaxImm = (1 << 25) - 1;      ///< 26-bit signed
constexpr SWord kMinImm = -(1 << 25);
constexpr Word kMaxSkip = (1u << 12) - 1;
constexpr SWord kMaxPatLit = (1 << 15) - 1;   ///< 16-bit signed
constexpr SWord kMinPatLit = -(1 << 15);
constexpr Word kMaxLocals = (1u << 11) - 1;
/** Arity is capped below the encoding's 16-bit field so that every
 *  heap object (1 header + ≤ arity payload words) fits the machine's
 *  GC safe-point margin and the heap header's payload-count field. */
constexpr Word kMaxArity = (1u << 10) - 1;

/** Extract the opcode of a word. */
inline Op
opOf(Word w)
{
    return static_cast<Op>(w >> 28);
}

/** Pack a LET head word. */
Word packLet(CalleeKind kind, Word nargs, Word id);
/** Pack an operand word (ARG opcode). */
Word packOperand(const Operand &op);
/** Pack a CASE head word. */
Word packCase(const Operand &scrut);
/** Pack a literal pattern word. */
Word packPatLit(Word skip, SWord lit);
/** Pack a constructor pattern word. */
Word packPatCons(Word skip, Word consId);
/** Pack the else pattern word. */
Word packPatElse();
/** Pack a RESULT word. */
Word packResult(const Operand &value);
/** Pack a declaration info word. */
Word packInfo(bool isCons, Word numLocals, Word arity);

/** Decoded views of each word kind. */
struct LetWord { CalleeKind kind; Word nargs; Word id; };
struct OperandWord { Operand op; };
struct PatWord { bool isCons; Word skip; SWord lit; Word consId; };
struct InfoWord { bool isCons; Word numLocals; Word arity; };

LetWord unpackLet(Word w);
Operand unpackOperand(Word w);
Operand unpackCaseScrut(Word w);
PatWord unpackPat(Word w);
Operand unpackResult(Word w);
InfoWord unpackInfo(Word w);

} // namespace zarf

#endif // ZARF_ISA_ENCODING_HH
