/**
 * @file
 * The canonical operand-site walk over Zarf expression trees.
 *
 * Several consumers enumerate the data-reference sites of a function
 * body in a fixed order: the symbolic engine claims immediate
 * operands as symbolic input variables and later writes solver
 * models back through them (sym/eval.cc, sym/concolic.cc), and the
 * analysis-IR lifter records the same sites as the entry function's
 * immediate-site table (ir/lift.cc). The two enumerations must agree
 * byte-for-byte — a model patched into site k by the concolic
 * harness must be the value the lifter reports at site k — so the
 * walk lives here, once, instead of being re-derived per consumer.
 *
 * Order contract (stable; regression-tested by tests/test_ir_lift.cc):
 *   let    — arguments left to right, then the body;
 *   case   — the scrutinee, then each branch body in declaration
 *            order, then the else body;
 *   result — the value operand.
 *
 * Pattern literals are not operand sites: they are matched against,
 * never read as data.
 */

#ifndef ZARF_ISA_SITES_HH
#define ZARF_ISA_SITES_HH

#include "isa/ast.hh"

namespace zarf
{

/** Visit every operand site of `e` in the canonical order, calling
 *  `f(Operand &)` on each. The mutable overload is what writeback
 *  consumers (sym's model concretization) use. */
template <typename F>
void
forEachOperandSite(Expr &e, F &&f)
{
    if (e.isLet()) {
        Let &l = e.asLet();
        for (Operand &a : l.args)
            f(a);
        forEachOperandSite(*l.body, f);
        return;
    }
    if (e.isCase()) {
        Case &c = e.asCase();
        f(c.scrut);
        for (auto &br : c.branches)
            forEachOperandSite(*br.body, f);
        forEachOperandSite(*c.elseBody, f);
        return;
    }
    f(e.asResult().value);
}

/** Read-only overload of the same walk, same order. */
template <typename F>
void
forEachOperandSite(const Expr &e, F &&f)
{
    if (e.isLet()) {
        const Let &l = e.asLet();
        for (const Operand &a : l.args)
            f(a);
        forEachOperandSite(*l.body, f);
        return;
    }
    if (e.isCase()) {
        const Case &c = e.asCase();
        f(c.scrut);
        for (const auto &br : c.branches)
            forEachOperandSite(*br.body, f);
        forEachOperandSite(*c.elseBody, f);
        return;
    }
    f(e.asResult().value);
}

} // namespace zarf

#endif // ZARF_ISA_SITES_HH
