/**
 * @file
 * The hardware (primitive) function space of the Zarf functional ISA.
 *
 * Function identifiers below 0x100 are reserved for hardware
 * operations (paper, Sec. 3.4): ALU functions, the getint/putint I/O
 * primitives, the garbage-collector invocation hook, and the reserved
 * runtime Error constructor. The first program-supplied function,
 * main, is always 0x100.
 */

#ifndef ZARF_ISA_PRIMS_HH
#define ZARF_ISA_PRIMS_HH

#include <optional>
#include <string>
#include <vector>

#include "support/logging.hh"
#include "support/types.hh"

namespace zarf
{

/** First identifier available to program-supplied declarations. */
constexpr Word kFirstUserFuncId = 0x100;

/** Identifiers of the built-in hardware functions. */
enum class Prim : Word
{
    // The reserved runtime-error constructor (Sec. 3.4). One field:
    // an integer error code.
    Error = 0x00,

    // ALU functions. All operate on 31-bit machine integers and
    // return a 31-bit machine integer, except where noted.
    Add = 0x01,
    Sub = 0x02,
    Mul = 0x03,
    Div = 0x04, ///< Returns Error(kErrDivZero) when divisor is 0.
    Mod = 0x05, ///< Returns Error(kErrDivZero) when divisor is 0.
    Neg = 0x06,
    Abs = 0x07,
    Min = 0x08,
    Max = 0x09,
    Eq = 0x0a,  ///< 1 if equal else 0.
    Ne = 0x0b,
    Lt = 0x0c,
    Le = 0x0d,
    Gt = 0x0e,
    Ge = 0x0f,
    BAnd = 0x10,
    BOr = 0x11,
    BXor = 0x12,
    BNot = 0x13,
    Shl = 0x14,
    Shr = 0x15, ///< Arithmetic right shift.
    Sru = 0x16, ///< Logical right shift over the 31-bit payload.

    // I/O primitives — the only two effectful functions in the
    // system (Fig. 3: getint / putint).
    GetInt = 0x20, ///< (port) -> value read from port.
    PutInt = 0x21, ///< (port, value) -> value, written to port.

    // Hardware-function hook the microkernel calls to invoke the
    // garbage collector once per iteration (Sec. 5.2). Identity on
    // its argument.
    InvokeGc = 0x30,
};

/** Error codes carried by the reserved Error constructor. */
constexpr SWord kErrDivZero = 1;
constexpr SWord kErrBadApply = 2; ///< Applying an integer as a function.
constexpr SWord kErrArity = 3;    ///< Over-applying a constructor.
constexpr SWord kErrIoNotInt = 4; ///< Non-integer fed to putint/getint.

/** Metadata describing one primitive function. */
struct PrimInfo
{
    Prim id;
    const char *name;
    unsigned arity;
    bool effectful;     ///< getint/putint only.
    bool isConstructor; ///< Error only.
};

/** Table of every primitive, ordered by identifier. */
const std::vector<PrimInfo> &primTable();

/** Lookup by identifier; nullopt if the id names no primitive. */
std::optional<PrimInfo> primById(Word id);

/** Lookup by assembly name; nullopt if unknown. */
std::optional<PrimInfo> primByName(const std::string &name);

/** True if the identifier is in the reserved hardware range. */
inline bool
isPrimId(Word id)
{
    return id < kFirstUserFuncId;
}

/** Evaluate a pure ALU primitive on saturated integer arguments.
 *
 * Pre: id is a pure ALU primitive (not I/O, not InvokeGc, not Error)
 * and args.size() equals its arity. Division/modulo by zero are
 * signalled via the ok flag so callers can construct an Error value.
 */
struct PrimResult
{
    bool ok;
    SWord value;   ///< Valid when ok.
    SWord errCode; ///< Valid when !ok.
};
inline PrimResult
evalAlu(Prim id, const std::vector<SWord> &args)
{
    auto a = [&](size_t i) { return static_cast<int64_t>(args[i]); };
    auto ok = [](int64_t v) {
        return PrimResult{ true, wrapInt31(v), 0 };
    };
    switch (id) {
      case Prim::Add: return ok(a(0) + a(1));
      case Prim::Sub: return ok(a(0) - a(1));
      case Prim::Mul: return ok(a(0) * a(1));
      case Prim::Div:
        if (a(1) == 0)
            return { false, 0, kErrDivZero };
        return ok(a(0) / a(1));
      case Prim::Mod:
        if (a(1) == 0)
            return { false, 0, kErrDivZero };
        return ok(a(0) % a(1));
      case Prim::Neg: return ok(-a(0));
      case Prim::Abs: return ok(a(0) < 0 ? -a(0) : a(0));
      case Prim::Min: return ok(a(0) < a(1) ? a(0) : a(1));
      case Prim::Max: return ok(a(0) > a(1) ? a(0) : a(1));
      case Prim::Eq: return ok(a(0) == a(1) ? 1 : 0);
      case Prim::Ne: return ok(a(0) != a(1) ? 1 : 0);
      case Prim::Lt: return ok(a(0) < a(1) ? 1 : 0);
      case Prim::Le: return ok(a(0) <= a(1) ? 1 : 0);
      case Prim::Gt: return ok(a(0) > a(1) ? 1 : 0);
      case Prim::Ge: return ok(a(0) >= a(1) ? 1 : 0);
      case Prim::BAnd: return ok(a(0) & a(1));
      case Prim::BOr: return ok(a(0) | a(1));
      case Prim::BXor: return ok(a(0) ^ a(1));
      case Prim::BNot: return ok(~a(0));
      case Prim::Shl: {
        unsigned sh = static_cast<unsigned>(a(1)) & 31u;
        return ok(static_cast<int64_t>(
            static_cast<uint64_t>(a(0)) << sh));
      }
      case Prim::Shr: {
        unsigned sh = static_cast<unsigned>(a(1)) & 31u;
        return ok(a(0) >> sh);
      }
      case Prim::Sru: {
        unsigned sh = static_cast<unsigned>(a(1)) & 31u;
        uint32_t payload = static_cast<uint32_t>(args[0]) & 0x7fffffffu;
        return ok(static_cast<int64_t>(payload >> sh));
      }
      default:
        panic("evalAlu: id 0x%x is not a pure ALU primitive",
              static_cast<unsigned>(id));
    }
}

} // namespace zarf

#endif // ZARF_ISA_PRIMS_HH
