/**
 * @file
 * Abstract syntax of the Zarf functional ISA (paper, Fig. 2).
 *
 * This is the machine-assembly level representation: variables have
 * already been resolved to (source, index) pairs, exactly as the
 * binary encodes them (Fig. 4b/4c). The high-level named assembly in
 * src/zasm and the programmatic builder both lower to this form.
 *
 * A program is a list of declarations — constructors (tuple stubs
 * with no body) and functions (arity, local count, body expression) —
 * where declaration i carries the global function identifier
 * 0x100 + i and declaration 0 must be the function main.
 *
 * Expressions are exactly the paper's three instructions:
 *   let    — apply a callee to arguments, bind the next local;
 *   case   — pattern-match an evaluated value against literal and
 *            constructor patterns with a mandatory else branch;
 *   result — yield a value and return control to the forcing case.
 */

#ifndef ZARF_ISA_AST_HH
#define ZARF_ISA_AST_HH

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "isa/prims.hh"
#include "support/types.hh"

namespace zarf
{

/** Where an operand's value comes from (Fig. 4d source/index). */
enum class Src : uint8_t
{
    Local = 0, ///< A value bound by let or by a constructor pattern.
    Arg = 1,   ///< A function argument.
    Imm = 2,   ///< An immediate integer literal.
};

/** A data reference: source plus index (or immediate payload). */
struct Operand
{
    Src src;
    SWord val;

    bool
    operator==(const Operand &o) const
    {
        return src == o.src && val == o.val;
    }
};

/** Shorthand constructors for operands. */
inline Operand opLocal(SWord i) { return { Src::Local, i }; }
inline Operand opArg(SWord i) { return { Src::Arg, i }; }
inline Operand opImm(SWord v) { return { Src::Imm, v }; }

/** What a let instruction applies (Fig. 4d: func id or closure). */
enum class CalleeKind : uint8_t
{
    Func = 0,  ///< A global function/constructor/primitive identifier.
    Local = 1, ///< A closure value held in a local slot.
    Arg = 2,   ///< A closure value held in an argument slot.
};

/** The callee field of a let instruction. */
struct Callee
{
    CalleeKind kind;
    Word id; ///< Global id (Func) or slot index (Local/Arg).

    bool
    operator==(const Callee &o) const
    {
        return kind == o.kind && id == o.id;
    }
};

inline Callee calleeFunc(Word id) { return { CalleeKind::Func, id }; }
inline Callee calleeLocal(Word i) { return { CalleeKind::Local, i }; }
inline Callee calleeArg(Word i) { return { CalleeKind::Arg, i }; }

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/** let x = callee args... in body — binds the next local index. */
struct Let
{
    Callee callee;
    std::vector<Operand> args;
    ExprPtr body;
};

/** One non-else branch of a case instruction. */
struct CaseBranch
{
    bool isCons;  ///< Constructor pattern vs. integer literal.
    SWord lit;    ///< Literal value (isCons == false).
    Word consId;  ///< Constructor identifier (isCons == true).
    ExprPtr body; ///< Constructor fields become new locals in body.
};

/** case scrut of branches... else elseBody. */
struct Case
{
    Operand scrut;
    std::vector<CaseBranch> branches;
    ExprPtr elseBody;
};

/** result value — the function yields this value. */
struct Result
{
    Operand value;
};

/** An expression node: one of the three instructions. */
struct Expr
{
    std::variant<Let, Case, Result> node;

    Expr(Let l) : node(std::move(l)) {}
    Expr(Case c) : node(std::move(c)) {}
    Expr(Result r) : node(r) {}

    bool isLet() const { return std::holds_alternative<Let>(node); }
    bool isCase() const { return std::holds_alternative<Case>(node); }
    bool isResult() const { return std::holds_alternative<Result>(node); }

    Let &asLet() { return std::get<Let>(node); }
    const Let &asLet() const { return std::get<Let>(node); }
    Case &asCase() { return std::get<Case>(node); }
    const Case &asCase() const { return std::get<Case>(node); }
    Result &asResult() { return std::get<Result>(node); }
    const Result &asResult() const { return std::get<Result>(node); }
};

/** A top-level declaration: constructor stub or full function. */
struct Decl
{
    bool isCons;
    std::string name;  ///< Debug metadata; not encoded in the binary.
    Word arity;
    Word numLocals;    ///< Maximum locals live on any path (functions).
    ExprPtr body;      ///< Null for constructors.
};

/** A whole program: declarations in identifier order. */
struct Program
{
    std::vector<Decl> decls;

    /** Global identifier of declaration index i. */
    static Word idOf(size_t i) { return kFirstUserFuncId + Word(i); }

    /** Declaration index of a user function id, unchecked. */
    static size_t indexOf(Word id) { return id - kFirstUserFuncId; }

    /** Find a declaration index by name; -1 if absent. */
    int findByName(const std::string &name) const;

    /**
     * Index of the entry function: the first non-constructor
     * declaration (the paper's main, the first program-supplied
     * *function*). -1 if the program has no functions.
     */
    int entryIndex() const;

    /** Deep copy (Decl holds unique_ptr bodies). */
    Program clone() const;
};

/** Deep-copy an expression tree. */
ExprPtr cloneExpr(const Expr &e);

/** Structural equality of expression trees. */
bool exprEquals(const Expr &a, const Expr &b);

/** Number of binary words this expression encodes to. */
size_t exprWordCount(const Expr &e);

/** Count expression nodes (lets + cases + results) in a tree. */
size_t exprNodeCount(const Expr &e);

/**
 * Compute the maximum number of locals any path through the body
 * binds, given the enclosing declaration table (constructor patterns
 * bind as many locals as the matched constructor's arity).
 *
 * @param e the function body
 * @param program the enclosing program (for constructor arities)
 * @return the locals-frame size the function requires
 */
Word computeNumLocals(const Expr &e, const Program &program);

} // namespace zarf

#endif // ZARF_ISA_AST_HH
