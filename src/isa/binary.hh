/**
 * @file
 * Serialization between the Zarf AST and the flat binary image.
 *
 * A binary image is the exact word sequence the hardware loader
 * consumes (paper, Sec. 3.2): the magic word, a declaration count N,
 * then N declarations, each comprising an info word (the function
 * "fingerprint": arity, locals, constructor flag), a body-length word
 * M, and M body words. Declarations are assigned sequential global
 * identifiers starting at 0x100 in image order; the first must be
 * main.
 *
 * Decoding is a strict recursive descent that rejects every
 * malformed shape the paper calls out (cases without else branches,
 * skips into the middle of a branch, truncated argument lists), so a
 * loaded program is structurally valid by construction.
 */

#ifndef ZARF_ISA_BINARY_HH
#define ZARF_ISA_BINARY_HH

#include <string>
#include <vector>

#include "isa/ast.hh"
#include "support/types.hh"

namespace zarf
{

/** A flat program image. */
using Image = std::vector<Word>;

/** Encode a program into a binary image. Dies on field overflow. */
Image encodeProgram(const Program &program);

/** Result of attempting to decode an image. */
struct DecodeResult
{
    bool ok;
    Program program;   ///< Valid when ok.
    std::string error; ///< Human-readable reason when !ok.
};

/**
 * Decode a binary image back into the AST.
 *
 * Synthesizes names (fn_0x101, con_0x102, ...) since the binary
 * carries none. Verifies the magic word, all field ranges, skip
 * consistency, and expression well-formedness.
 */
DecodeResult decodeProgram(const Image &image);

/** Decode or die — for tools where a bad image is a fatal error. */
Program decodeProgramOrDie(const Image &image);

/** Total encoded size of one declaration in words (info + len + M). */
size_t declWordCount(const Decl &decl);

} // namespace zarf

#endif // ZARF_ISA_BINARY_HH
