#include "isa/builder.hh"

#include <unordered_map>

#include "isa/prims.hh"
#include "support/logging.hh"

namespace zarf
{

NExprPtr
nLet(std::string var, std::string callee, std::vector<NArg> args,
     NExprPtr body)
{
    return std::make_shared<const NExpr>(
        NLet{ std::move(var), std::move(callee), std::move(args),
              std::move(body) });
}

NExprPtr
nCase(NArg scrut, std::vector<NBranch> branches, NExprPtr elseBody)
{
    return std::make_shared<const NExpr>(
        NCase{ std::move(scrut), std::move(branches),
               std::move(elseBody) });
}

NExprPtr
nRet(NArg value)
{
    return std::make_shared<const NExpr>(NRet{ std::move(value) });
}

NBranch
litBranch(SWord lit, NExprPtr body)
{
    return NBranch{ false, lit, {}, {}, std::move(body) };
}

NBranch
consBranch(std::string consName, std::vector<std::string> fields,
           NExprPtr body)
{
    return NBranch{ true, 0, std::move(consName), std::move(fields),
                    std::move(body) };
}

NExprPtr
nApplyRet(std::string callee, std::vector<NArg> args)
{
    return nLet("$r", std::move(callee), std::move(args),
                nRet(nVar("$r")));
}

void
ProgramBuilder::cons(std::string name, Word arity)
{
    ndecls.push_back(
        NDecl{ true, std::move(name), {}, arity, nullptr });
}

void
ProgramBuilder::fn(std::string name, std::vector<std::string> params,
                   NExprPtr body)
{
    NDecl d;
    d.isCons = false;
    d.name = std::move(name);
    d.arity = static_cast<Word>(params.size());
    d.params = std::move(params);
    d.body = std::move(body);
    ndecls.push_back(std::move(d));
}

namespace
{

/** Lexical scope mapping names to arg/local slots along one path. */
class Scope
{
  public:
    explicit Scope(const std::vector<std::string> &params)
    {
        for (size_t i = 0; i < params.size(); ++i)
            bindings.emplace(params[i], opArg(SWord(i)));
    }

    /** Bind a new local; returns its slot index. */
    SWord
    bindLocal(const std::string &name)
    {
        SWord slot = nextLocal++;
        saved.push_back({ name, lookupRaw(name) });
        bindings[name] = opLocal(slot);
        return slot;
    }

    /** Current checkpoint for branch-scoped unwinding. */
    struct Mark { size_t savedSize; SWord nextLocal; };
    Mark mark() const { return { saved.size(), nextLocal }; }

    /** Unwind bindings and local numbering to a checkpoint. */
    void
    unwind(const Mark &m)
    {
        while (saved.size() > m.savedSize) {
            auto &[name, old] = saved.back();
            if (old)
                bindings[name] = *old;
            else
                bindings.erase(name);
            saved.pop_back();
        }
        nextLocal = m.nextLocal;
    }

    /** Look a name up; nullopt if unbound. */
    std::optional<Operand>
    lookup(const std::string &name) const
    {
        auto it = bindings.find(name);
        if (it == bindings.end())
            return std::nullopt;
        return it->second;
    }

  private:
    std::optional<Operand>
    lookupRaw(const std::string &name) const
    {
        return lookup(name);
    }

    std::unordered_map<std::string, Operand> bindings;
    std::vector<std::pair<std::string, std::optional<Operand>>> saved;
    SWord nextLocal = 0;
};

/** Lowers one named program to machine assembly. */
class Lowerer
{
  public:
    explicit Lowerer(const std::vector<NDecl> &decls) : ndecls(decls)
    {
        for (size_t i = 0; i < decls.size(); ++i)
            globalIds.emplace(decls[i].name, Program::idOf(i));
    }

    BuildResult
    run()
    {
        if (ndecls.empty())
            return err("program has no declarations");
        // The entry is the first *function* declaration (leading
        // constructor declarations are fine).
        const NDecl *entry = nullptr;
        for (const auto &d : ndecls) {
            if (!d.isCons) {
                entry = &d;
                break;
            }
        }
        if (!entry)
            return err("program declares no functions");
        if (!entry->params.empty())
            return err("entry function (main) must take no arguments");
        // Reject duplicate global names and prim-name collisions.
        for (const auto &d : ndecls) {
            if (primByName(d.name))
                return err("declaration '" + d.name +
                           "' shadows a hardware primitive");
        }
        if (globalIds.size() != ndecls.size())
            return err("duplicate global declaration name");

        Program prog;
        for (const auto &nd : ndecls) {
            Decl d;
            d.isCons = nd.isCons;
            d.name = nd.name;
            d.arity = nd.arity;
            d.numLocals = 0;
            if (!nd.isCons) {
                if (!nd.body)
                    return err("function '" + nd.name + "' has no body");
                current = nd.name;
                Scope scope(nd.params);
                d.body = lowerExpr(*nd.body, scope);
                if (!d.body)
                    return err(failure);
            }
            prog.decls.push_back(std::move(d));
        }
        // Locals counts need the whole program (constructor arities).
        for (auto &d : prog.decls) {
            if (!d.isCons)
                d.numLocals = computeNumLocals(*d.body, prog);
        }
        return BuildResult{ true, std::move(prog), "" };
    }

  private:
    BuildResult
    err(std::string why)
    {
        return BuildResult{ false, {}, std::move(why) };
    }

    ExprPtr
    fail(const std::string &why)
    {
        if (failure.empty())
            failure = "in " + current + ": " + why;
        return nullptr;
    }

    std::optional<Word>
    globalId(const std::string &name) const
    {
        if (auto p = primByName(name))
            return static_cast<Word>(p->id);
        auto it = globalIds.find(name);
        if (it == globalIds.end())
            return std::nullopt;
        return it->second;
    }

    /** Resolve an argument to an operand in the current scope. */
    std::optional<Operand>
    lowerArg(const NArg &a, const Scope &scope)
    {
        if (a.isImm)
            return opImm(a.imm);
        return scope.lookup(a.name);
    }

    ExprPtr
    lowerExpr(const NExpr &ne, Scope &scope)
    {
        if (const auto *l = std::get_if<NLet>(&ne.node))
            return lowerLet(*l, scope);
        if (const auto *c = std::get_if<NCase>(&ne.node))
            return lowerCase(*c, scope);
        const auto &r = std::get<NRet>(ne.node);
        auto v = lowerArg(r.value, scope);
        if (!v)
            return fail("result of unbound name '" + r.value.name + "'");
        return std::make_unique<Expr>(Result{ *v });
    }

    ExprPtr
    lowerLet(const NLet &l, Scope &scope)
    {
        Let out;
        // The callee is a variable in scope or a global name; scope
        // shadows globals, matching lexical intuition.
        if (auto local = scope.lookup(l.callee)) {
            if (local->src == Src::Local)
                out.callee = calleeLocal(static_cast<Word>(local->val));
            else
                out.callee = calleeArg(static_cast<Word>(local->val));
        } else if (auto id = globalId(l.callee)) {
            out.callee = calleeFunc(*id);
        } else {
            return fail("unknown callee '" + l.callee + "'");
        }
        out.args.reserve(l.args.size());
        for (const auto &a : l.args) {
            auto v = lowerArg(a, scope);
            if (!v)
                return fail("unbound argument '" + a.name + "'");
            out.args.push_back(*v);
        }
        scope.bindLocal(l.var);
        out.body = lowerExpr(*l.body, scope);
        if (!out.body)
            return nullptr;
        return std::make_unique<Expr>(std::move(out));
    }

    ExprPtr
    lowerCase(const NCase &c, Scope &scope)
    {
        Case out;
        auto scrut = lowerArg(c.scrut, scope);
        if (!scrut)
            return fail("case on unbound name '" + c.scrut.name + "'");
        out.scrut = *scrut;
        for (const auto &br : c.branches) {
            CaseBranch ob;
            ob.isCons = br.isCons;
            ob.lit = br.lit;
            auto m = scope.mark();
            if (br.isCons) {
                auto id = globalId(br.consName);
                if (!id)
                    return fail("unknown constructor pattern '" +
                                br.consName + "'");
                ob.consId = *id;
                Word want = consArityOf(*id);
                if (br.fields.size() != want) {
                    return fail(strprintf(
                        "pattern %s binds %zu fields; constructor "
                        "has %u", br.consName.c_str(),
                        br.fields.size(), want));
                }
                for (const auto &f : br.fields)
                    scope.bindLocal(f);
            } else {
                ob.consId = 0;
            }
            ob.body = lowerExpr(*br.body, scope);
            scope.unwind(m);
            if (!ob.body)
                return nullptr;
            out.branches.push_back(std::move(ob));
        }
        auto m = scope.mark();
        out.elseBody = lowerExpr(*c.elseBody, scope);
        scope.unwind(m);
        if (!out.elseBody)
            return nullptr;
        return std::make_unique<Expr>(std::move(out));
    }

    Word
    consArityOf(Word id) const
    {
        if (isPrimId(id)) {
            auto p = primById(id);
            return p ? p->arity : 0;
        }
        return ndecls[Program::indexOf(id)].arity;
    }

    const std::vector<NDecl> &ndecls;
    std::unordered_map<std::string, Word> globalIds;
    std::string current;
    std::string failure;
};

} // namespace

BuildResult
ProgramBuilder::tryBuild() const
{
    return Lowerer(ndecls).run();
}

Program
ProgramBuilder::build() const
{
    BuildResult r = tryBuild();
    if (!r.ok)
        fatal("program build failed: %s", r.error.c_str());
    return std::move(r.program);
}

} // namespace zarf
