#include "isa/encoding.hh"

#include "support/logging.hh"

namespace zarf
{

namespace
{

Word
opBits(Op op)
{
    return static_cast<Word>(op) << 28;
}

/** Encode a source + 26-bit payload pair into the low 28 bits. */
Word
srcPayload(const Operand &op)
{
    Word src = static_cast<Word>(op.src) << 26;
    Word payload;
    if (op.src == Src::Imm) {
        if (op.val < kMinImm || op.val > kMaxImm)
            fatal("immediate %d out of 26-bit range", op.val);
        payload = static_cast<Word>(op.val) & 0x03ffffffu;
    } else {
        if (op.val < 0 || op.val > SWord(kMaxSlotIndex))
            fatal("slot index %d out of range", op.val);
        payload = static_cast<Word>(op.val);
    }
    return src | payload;
}

Operand
decodeSrcPayload(Word w)
{
    Src src = static_cast<Src>((w >> 26) & 0x3);
    Word payload = w & 0x03ffffffu;
    SWord val;
    if (src == Src::Imm) {
        // Sign-extend the 26-bit payload.
        val = static_cast<SWord>(payload << 6) >> 6;
    } else {
        val = static_cast<SWord>(payload);
    }
    return Operand{ src, val };
}

} // namespace

Word
packLet(CalleeKind kind, Word nargs, Word id)
{
    if (nargs > kMaxArgs)
        fatal("let has %u arguments; maximum is %u", nargs, kMaxArgs);
    if (id > kMaxSlotIndex)
        fatal("let callee id 0x%x out of 16-bit range", id);
    return opBits(Op::Let) | (static_cast<Word>(kind) << 26) |
           (nargs << 16) | id;
}

Word
packOperand(const Operand &op)
{
    return opBits(Op::Arg) | srcPayload(op);
}

Word
packCase(const Operand &scrut)
{
    return opBits(Op::Case) | srcPayload(scrut);
}

Word
packPatLit(Word skip, SWord lit)
{
    if (skip > kMaxSkip)
        fatal("case branch body of %u words exceeds skip field", skip);
    if (lit < kMinPatLit || lit > kMaxPatLit)
        fatal("literal pattern %d out of 16-bit range", lit);
    return opBits(Op::PatLit) | (skip << 16) |
           (static_cast<Word>(lit) & 0xffffu);
}

Word
packPatCons(Word skip, Word consId)
{
    if (skip > kMaxSkip)
        fatal("case branch body of %u words exceeds skip field", skip);
    if (consId > kMaxSlotIndex)
        fatal("constructor id 0x%x out of 16-bit range", consId);
    return opBits(Op::PatCons) | (skip << 16) | consId;
}

Word
packPatElse()
{
    return opBits(Op::PatElse);
}

Word
packResult(const Operand &value)
{
    return opBits(Op::Result) | srcPayload(value);
}

Word
packInfo(bool isCons, Word numLocals, Word arity)
{
    if (numLocals > kMaxLocals)
        fatal("function needs %u locals; maximum is %u", numLocals,
              kMaxLocals);
    if (arity > kMaxArity)
        fatal("arity %u out of range", arity);
    return opBits(Op::Info) | (static_cast<Word>(isCons) << 27) |
           (numLocals << 16) | arity;
}

LetWord
unpackLet(Word w)
{
    return LetWord{ static_cast<CalleeKind>((w >> 26) & 0x3),
                    (w >> 16) & 0x3ffu, w & 0xffffu };
}

Operand
unpackOperand(Word w)
{
    return decodeSrcPayload(w);
}

Operand
unpackCaseScrut(Word w)
{
    return decodeSrcPayload(w);
}

PatWord
unpackPat(Word w)
{
    PatWord p{};
    p.isCons = opOf(w) == Op::PatCons;
    p.skip = (w >> 16) & 0xfffu;
    if (p.isCons) {
        p.consId = w & 0xffffu;
        p.lit = 0;
    } else {
        p.lit = static_cast<SWord>(static_cast<int16_t>(w & 0xffffu));
        p.consId = 0;
    }
    return p;
}

Operand
unpackResult(Word w)
{
    return decodeSrcPayload(w);
}

InfoWord
unpackInfo(Word w)
{
    return InfoWord{ ((w >> 27) & 0x1) != 0, (w >> 16) & 0x7ffu,
                     w & 0xffffu };
}

} // namespace zarf
