#include "isa/prims.hh"

#include <unordered_map>

#include "support/logging.hh"

namespace zarf
{

const std::vector<PrimInfo> &
primTable()
{
    static const std::vector<PrimInfo> table = {
        { Prim::Error, "Error", 1, false, true },
        { Prim::Add, "add", 2, false, false },
        { Prim::Sub, "sub", 2, false, false },
        { Prim::Mul, "mul", 2, false, false },
        { Prim::Div, "div", 2, false, false },
        { Prim::Mod, "mod", 2, false, false },
        { Prim::Neg, "neg", 1, false, false },
        { Prim::Abs, "abs", 1, false, false },
        { Prim::Min, "min", 2, false, false },
        { Prim::Max, "max", 2, false, false },
        { Prim::Eq, "eq", 2, false, false },
        { Prim::Ne, "ne", 2, false, false },
        { Prim::Lt, "lt", 2, false, false },
        { Prim::Le, "le", 2, false, false },
        { Prim::Gt, "gt", 2, false, false },
        { Prim::Ge, "ge", 2, false, false },
        { Prim::BAnd, "band", 2, false, false },
        { Prim::BOr, "bor", 2, false, false },
        { Prim::BXor, "bxor", 2, false, false },
        { Prim::BNot, "bnot", 1, false, false },
        { Prim::Shl, "shl", 2, false, false },
        { Prim::Shr, "shr", 2, false, false },
        { Prim::Sru, "sru", 2, false, false },
        { Prim::GetInt, "getint", 1, true, false },
        { Prim::PutInt, "putint", 2, true, false },
        { Prim::InvokeGc, "gc", 1, false, false },
    };
    return table;
}

std::optional<PrimInfo>
primById(Word id)
{
    static const auto byId = [] {
        std::unordered_map<Word, PrimInfo> m;
        for (const auto &p : primTable())
            m.emplace(static_cast<Word>(p.id), p);
        return m;
    }();
    auto it = byId.find(id);
    if (it == byId.end())
        return std::nullopt;
    return it->second;
}

std::optional<PrimInfo>
primByName(const std::string &name)
{
    static const auto byName = [] {
        std::unordered_map<std::string, PrimInfo> m;
        for (const auto &p : primTable())
            m.emplace(p.name, p);
        return m;
    }();
    auto it = byName.find(name);
    if (it == byName.end())
        return std::nullopt;
    return it->second;
}

} // namespace zarf
