#include "isa/prims.hh"

#include <unordered_map>

#include "support/logging.hh"

namespace zarf
{

const std::vector<PrimInfo> &
primTable()
{
    static const std::vector<PrimInfo> table = {
        { Prim::Error, "Error", 1, false, true },
        { Prim::Add, "add", 2, false, false },
        { Prim::Sub, "sub", 2, false, false },
        { Prim::Mul, "mul", 2, false, false },
        { Prim::Div, "div", 2, false, false },
        { Prim::Mod, "mod", 2, false, false },
        { Prim::Neg, "neg", 1, false, false },
        { Prim::Abs, "abs", 1, false, false },
        { Prim::Min, "min", 2, false, false },
        { Prim::Max, "max", 2, false, false },
        { Prim::Eq, "eq", 2, false, false },
        { Prim::Ne, "ne", 2, false, false },
        { Prim::Lt, "lt", 2, false, false },
        { Prim::Le, "le", 2, false, false },
        { Prim::Gt, "gt", 2, false, false },
        { Prim::Ge, "ge", 2, false, false },
        { Prim::BAnd, "band", 2, false, false },
        { Prim::BOr, "bor", 2, false, false },
        { Prim::BXor, "bxor", 2, false, false },
        { Prim::BNot, "bnot", 1, false, false },
        { Prim::Shl, "shl", 2, false, false },
        { Prim::Shr, "shr", 2, false, false },
        { Prim::Sru, "sru", 2, false, false },
        { Prim::GetInt, "getint", 1, true, false },
        { Prim::PutInt, "putint", 2, true, false },
        { Prim::InvokeGc, "gc", 1, false, false },
    };
    return table;
}

std::optional<PrimInfo>
primById(Word id)
{
    static const auto byId = [] {
        std::unordered_map<Word, PrimInfo> m;
        for (const auto &p : primTable())
            m.emplace(static_cast<Word>(p.id), p);
        return m;
    }();
    auto it = byId.find(id);
    if (it == byId.end())
        return std::nullopt;
    return it->second;
}

std::optional<PrimInfo>
primByName(const std::string &name)
{
    static const auto byName = [] {
        std::unordered_map<std::string, PrimInfo> m;
        for (const auto &p : primTable())
            m.emplace(p.name, p);
        return m;
    }();
    auto it = byName.find(name);
    if (it == byName.end())
        return std::nullopt;
    return it->second;
}

PrimResult
evalAlu(Prim id, const std::vector<SWord> &args)
{
    auto a = [&](size_t i) { return static_cast<int64_t>(args[i]); };
    auto ok = [](int64_t v) {
        return PrimResult{ true, wrapInt31(v), 0 };
    };
    switch (id) {
      case Prim::Add: return ok(a(0) + a(1));
      case Prim::Sub: return ok(a(0) - a(1));
      case Prim::Mul: return ok(a(0) * a(1));
      case Prim::Div:
        if (a(1) == 0)
            return { false, 0, kErrDivZero };
        return ok(a(0) / a(1));
      case Prim::Mod:
        if (a(1) == 0)
            return { false, 0, kErrDivZero };
        return ok(a(0) % a(1));
      case Prim::Neg: return ok(-a(0));
      case Prim::Abs: return ok(a(0) < 0 ? -a(0) : a(0));
      case Prim::Min: return ok(a(0) < a(1) ? a(0) : a(1));
      case Prim::Max: return ok(a(0) > a(1) ? a(0) : a(1));
      case Prim::Eq: return ok(a(0) == a(1) ? 1 : 0);
      case Prim::Ne: return ok(a(0) != a(1) ? 1 : 0);
      case Prim::Lt: return ok(a(0) < a(1) ? 1 : 0);
      case Prim::Le: return ok(a(0) <= a(1) ? 1 : 0);
      case Prim::Gt: return ok(a(0) > a(1) ? 1 : 0);
      case Prim::Ge: return ok(a(0) >= a(1) ? 1 : 0);
      case Prim::BAnd: return ok(a(0) & a(1));
      case Prim::BOr: return ok(a(0) | a(1));
      case Prim::BXor: return ok(a(0) ^ a(1));
      case Prim::BNot: return ok(~a(0));
      case Prim::Shl: {
        unsigned sh = static_cast<unsigned>(a(1)) & 31u;
        return ok(static_cast<int64_t>(
            static_cast<uint64_t>(a(0)) << sh));
      }
      case Prim::Shr: {
        unsigned sh = static_cast<unsigned>(a(1)) & 31u;
        return ok(a(0) >> sh);
      }
      case Prim::Sru: {
        unsigned sh = static_cast<unsigned>(a(1)) & 31u;
        uint32_t payload = static_cast<uint32_t>(args[0]) & 0x7fffffffu;
        return ok(static_cast<int64_t>(payload >> sh));
      }
      default:
        panic("evalAlu: id 0x%x is not a pure ALU primitive",
              static_cast<unsigned>(id));
    }
}

} // namespace zarf
