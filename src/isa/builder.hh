/**
 * @file
 * Named-assembly program construction for the Zarf functional ISA.
 *
 * This is the level of Fig. 4a in the paper: functions and
 * constructors carry names, and expressions refer to variables by
 * name. Building a Program lowers names to the machine-assembly
 * source/index form (Fig. 4b) with the same scoping discipline the
 * hardware uses: arguments occupy the arg space, each let binds the
 * next local slot, and a matched constructor pattern pushes its
 * fields as new locals.
 *
 * The expression combinators produce immutable shared trees, so
 * helper C++ functions can assemble program fragments compositionally:
 *
 *   NExprPtr body =
 *       nCase(nVar("list"),
 *             { consBranch("Nil", {}, nApplyRet("Nil", {})) },
 *             ...);
 *   builder.fn("map", {"f", "list"}, body);
 */

#ifndef ZARF_ISA_BUILDER_HH
#define ZARF_ISA_BUILDER_HH

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "isa/ast.hh"

namespace zarf
{

/** A named argument: either an integer literal or a variable name. */
struct NArg
{
    bool isImm;
    SWord imm;
    std::string name;
};

inline NArg nImm(SWord v) { return NArg{ true, v, {} }; }
inline NArg nVar(std::string n) { return NArg{ false, 0, std::move(n) }; }

struct NExpr;
using NExprPtr = std::shared_ptr<const NExpr>;

/** let var = callee args... in body. */
struct NLet
{
    std::string var;
    std::string callee; ///< Variable, function, constructor, or prim.
    std::vector<NArg> args;
    NExprPtr body;
};

/** One branch of a named case. */
struct NBranch
{
    bool isCons;
    SWord lit;                       ///< isCons == false
    std::string consName;            ///< isCons == true
    std::vector<std::string> fields; ///< Names bound to cons fields.
    NExprPtr body;
};

/** case scrut of branches else elseBody. */
struct NCase
{
    NArg scrut;
    std::vector<NBranch> branches;
    NExprPtr elseBody;
};

/** result value. */
struct NRet
{
    NArg value;
};

/** A named expression node. */
struct NExpr
{
    std::variant<NLet, NCase, NRet> node;

    NExpr(NLet l) : node(std::move(l)) {}
    NExpr(NCase c) : node(std::move(c)) {}
    NExpr(NRet r) : node(std::move(r)) {}
};

/** let combinator. */
NExprPtr nLet(std::string var, std::string callee, std::vector<NArg> args,
              NExprPtr body);
/** case combinator. */
NExprPtr nCase(NArg scrut, std::vector<NBranch> branches,
               NExprPtr elseBody);
/** result combinator. */
NExprPtr nRet(NArg value);
/** Branch helpers. */
NBranch litBranch(SWord lit, NExprPtr body);
NBranch consBranch(std::string consName, std::vector<std::string> fields,
                   NExprPtr body);
/** `let t = callee args in result t` in one step. */
NExprPtr nApplyRet(std::string callee, std::vector<NArg> args);

/** A named top-level declaration. */
struct NDecl
{
    bool isCons;
    std::string name;
    std::vector<std::string> params; ///< Arg names (functions) .
    Word arity;                      ///< Constructors: field count.
    NExprPtr body;                   ///< Null for constructors.
};

/** Outcome of lowering a named program. */
struct BuildResult
{
    bool ok;
    Program program;
    std::string error;
};

/**
 * Collects named declarations and lowers them to a Program.
 *
 * The first function added must be main (arity 0); forward references
 * between functions are allowed and resolved at build time.
 */
class ProgramBuilder
{
  public:
    /** Declare a constructor with the given field count. */
    void cons(std::string name, Word arity);

    /** Declare a function with named parameters and a body. */
    void fn(std::string name, std::vector<std::string> params,
            NExprPtr body);

    /** Lower to machine assembly; reports name/scope errors. */
    BuildResult tryBuild() const;

    /** Lower or die — convenience for tests and examples. */
    Program build() const;

    const std::vector<NDecl> &decls() const { return ndecls; }

  private:
    std::vector<NDecl> ndecls;
};

} // namespace zarf

#endif // ZARF_ISA_BUILDER_HH
