#include "isa/ast.hh"

#include <algorithm>

#include "isa/prims.hh"
#include "support/logging.hh"

namespace zarf
{

int
Program::findByName(const std::string &name) const
{
    for (size_t i = 0; i < decls.size(); ++i) {
        if (decls[i].name == name)
            return static_cast<int>(i);
    }
    return -1;
}

int
Program::entryIndex() const
{
    for (size_t i = 0; i < decls.size(); ++i) {
        if (!decls[i].isCons)
            return static_cast<int>(i);
    }
    return -1;
}

Program
Program::clone() const
{
    Program out;
    out.decls.reserve(decls.size());
    for (const auto &d : decls) {
        Decl c;
        c.isCons = d.isCons;
        c.name = d.name;
        c.arity = d.arity;
        c.numLocals = d.numLocals;
        c.body = d.body ? cloneExpr(*d.body) : nullptr;
        out.decls.push_back(std::move(c));
    }
    return out;
}

ExprPtr
cloneExpr(const Expr &e)
{
    if (e.isLet()) {
        const Let &l = e.asLet();
        Let c{ l.callee, l.args, cloneExpr(*l.body) };
        return std::make_unique<Expr>(std::move(c));
    }
    if (e.isCase()) {
        const Case &cs = e.asCase();
        Case c{ cs.scrut, {}, cloneExpr(*cs.elseBody) };
        c.branches.reserve(cs.branches.size());
        for (const auto &br : cs.branches) {
            c.branches.push_back(CaseBranch{ br.isCons, br.lit,
                                             br.consId,
                                             cloneExpr(*br.body) });
        }
        return std::make_unique<Expr>(std::move(c));
    }
    return std::make_unique<Expr>(Result{ e.asResult().value });
}

bool
exprEquals(const Expr &a, const Expr &b)
{
    if (a.node.index() != b.node.index())
        return false;
    if (a.isLet()) {
        const Let &x = a.asLet();
        const Let &y = b.asLet();
        return x.callee == y.callee && x.args == y.args &&
               exprEquals(*x.body, *y.body);
    }
    if (a.isCase()) {
        const Case &x = a.asCase();
        const Case &y = b.asCase();
        if (!(x.scrut == y.scrut) ||
            x.branches.size() != y.branches.size()) {
            return false;
        }
        for (size_t i = 0; i < x.branches.size(); ++i) {
            const auto &p = x.branches[i];
            const auto &q = y.branches[i];
            if (p.isCons != q.isCons || p.lit != q.lit ||
                p.consId != q.consId || !exprEquals(*p.body, *q.body)) {
                return false;
            }
        }
        return exprEquals(*x.elseBody, *y.elseBody);
    }
    return a.asResult().value == b.asResult().value;
}

size_t
exprWordCount(const Expr &e)
{
    if (e.isLet()) {
        const Let &l = e.asLet();
        // One let word, one word per argument, then the continuation.
        return 1 + l.args.size() + exprWordCount(*l.body);
    }
    if (e.isCase()) {
        const Case &c = e.asCase();
        // One case word, one pattern word per branch plus its body,
        // then the else pattern word and else body.
        size_t n = 1;
        for (const auto &br : c.branches)
            n += 1 + exprWordCount(*br.body);
        n += 1 + exprWordCount(*c.elseBody);
        return n;
    }
    return 1; // result
}

size_t
exprNodeCount(const Expr &e)
{
    if (e.isLet())
        return 1 + exprNodeCount(*e.asLet().body);
    if (e.isCase()) {
        const Case &c = e.asCase();
        size_t n = 1 + exprNodeCount(*c.elseBody);
        for (const auto &br : c.branches)
            n += exprNodeCount(*br.body);
        return n;
    }
    return 1;
}

namespace
{

Word
consArity(Word id, const Program &program)
{
    if (isPrimId(id)) {
        auto p = primById(id);
        if (!p || !p->isConstructor)
            panic("constructor pattern on non-constructor prim 0x%x", id);
        return p->arity;
    }
    size_t idx = Program::indexOf(id);
    if (idx >= program.decls.size())
        panic("constructor pattern names unknown id 0x%x", id);
    return program.decls[idx].arity;
}

Word
maxLocals(const Expr &e, Word bound, const Program &program)
{
    if (e.isLet()) {
        // The let binds one more local for the rest of this path.
        return maxLocals(*e.asLet().body, bound + 1, program);
    }
    if (e.isCase()) {
        const Case &c = e.asCase();
        Word best = maxLocals(*c.elseBody, bound, program);
        for (const auto &br : c.branches) {
            Word extra = br.isCons ? consArity(br.consId, program) : 0;
            best = std::max(best,
                            maxLocals(*br.body, bound + extra, program));
        }
        return best;
    }
    return bound;
}

} // namespace

Word
computeNumLocals(const Expr &e, const Program &program)
{
    return maxLocals(e, 0, program);
}

} // namespace zarf
