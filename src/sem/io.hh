/**
 * @file
 * The I/O port interface shared by every Zarf execution engine.
 *
 * getint and putint are the only effectful functions in the system
 * (paper, Sec. 3.4); they move single words over numbered ports. The
 * engines (big-step, small-step, cycle machine) are parameterized
 * over an IoBus so the same program can face test fixtures, the
 * two-layer system's channel, or recorded traces.
 */

#ifndef ZARF_SEM_IO_HH
#define ZARF_SEM_IO_HH

#include <deque>
#include <unordered_map>
#include <vector>

#include "support/types.hh"

namespace zarf
{

/** Abstract word-port bus. */
class IoBus
{
  public:
    virtual ~IoBus() = default;

    /** Read one word from a port (the getint primitive). */
    virtual SWord getInt(SWord port) = 0;

    /** Write one word to a port (the putint primitive). */
    virtual void putInt(SWord port, SWord value) = 0;
};

/** A bus where every read returns zero and writes are dropped. */
class NullBus : public IoBus
{
  public:
    SWord getInt(SWord) override { return 0; }
    void putInt(SWord, SWord) override {}
};

/** Scripted bus for tests: per-port input queues, recorded outputs. */
class ScriptBus : public IoBus
{
  public:
    /** Queue input words on a port, served FIFO; empty queues read 0. */
    void
    feed(SWord port, const std::vector<SWord> &words)
    {
        auto &q = inputs[port];
        q.insert(q.end(), words.begin(), words.end());
    }

    SWord
    getInt(SWord port) override
    {
        auto it = inputs.find(port);
        if (it == inputs.end() || it->second.empty())
            return 0;
        SWord v = it->second.front();
        it->second.pop_front();
        return v;
    }

    void
    putInt(SWord port, SWord value) override
    {
        outputs[port].push_back(value);
        log.push_back({ port, value });
    }

    /** All writes to a port, in order. */
    const std::vector<SWord> &
    written(SWord port)
    {
        return outputs[port];
    }

    /** Full interleaved write log. */
    struct WriteEvent { SWord port; SWord value; };
    std::vector<WriteEvent> log;

  private:
    std::unordered_map<SWord, std::deque<SWord>> inputs;
    std::unordered_map<SWord, std::vector<SWord>> outputs;
};

} // namespace zarf

#endif // ZARF_SEM_IO_HH
