#include "sem/bigstep.hh"

#include "support/logging.hh"

namespace zarf
{

/**
 * Internal evaluator. Non-Ok outcomes are propagated through a
 * sticky failure flag so the recursive evaluation unwinds promptly.
 */
class BigStep::Impl
{
  public:
    Impl(const Program &program, IoBus &bus, BigStepConfig config)
        : prog(program.clone()), bus(bus), cfg(config)
    {}

    EvalResult
    runMain()
    {
        reset();
        int entry = prog.entryIndex();
        if (entry < 0) {
            return { EvalResult::Status::Stuck, nullptr,
                     "program has no entry function" };
        }
        const Decl &main = prog.decls[size_t(entry)];
        Frame frame;
        ValuePtr v = evalExpr(*main.body, frame);
        return finish(v);
    }

    EvalResult
    call(const std::string &fnName, const std::vector<ValuePtr> &args)
    {
        reset();
        int idx = prog.findByName(fnName);
        if (idx < 0) {
            return { EvalResult::Status::Stuck, nullptr,
                     "no function named " + fnName };
        }
        ValuePtr callee = Value::makeClosure(Program::idOf(size_t(idx)),
                                             {});
        ValuePtr v = apply(callee, args);
        return finish(v);
    }

    uint64_t stepsUsed() const { return steps; }

  private:
    /** Argument and local frames of one activation. */
    struct Frame
    {
        std::vector<ValuePtr> args;
        std::vector<ValuePtr> locals;
    };

    void
    reset()
    {
        steps = 0;
        depth = 0;
        failure = EvalResult::Status::Ok;
        failWhere.clear();
    }

    EvalResult
    finish(ValuePtr v)
    {
        if (failure != EvalResult::Status::Ok)
            return { failure, nullptr, failWhere };
        return { EvalResult::Status::Ok, std::move(v), "" };
    }

    ValuePtr
    fail(EvalResult::Status why, const std::string &where)
    {
        if (failure == EvalResult::Status::Ok) {
            failure = why;
            failWhere = where;
        }
        return nullptr;
    }

    bool failed() const { return failure != EvalResult::Status::Ok; }

    /** ρ(arg) of Fig. 3. Out-of-range slot references are undefined
     *  by the semantics; they report Stuck so the engine is total
     *  over every decodable program, not just scope-validated ones
     *  (the conformance fuzzer feeds it near-well-formed mutants). */
    ValuePtr
    operand(const Operand &op, const Frame &frame)
    {
        switch (op.src) {
          case Src::Imm:
            return Value::makeInt(op.val);
          case Src::Arg:
            if (size_t(op.val) >= frame.args.size())
                return fail(EvalResult::Status::Stuck,
                            "argument index out of range");
            return frame.args[size_t(op.val)];
          case Src::Local:
            if (size_t(op.val) >= frame.locals.size())
                return fail(EvalResult::Status::Stuck,
                            "local index out of range");
            return frame.locals[size_t(op.val)];
        }
        return nullptr;
    }

    /** Guarded recursion entry: fuel and depth accounting. */
    bool
    enter()
    {
        if (failed())
            return false;
        if (++steps > cfg.maxSteps) {
            fail(EvalResult::Status::OutOfFuel, "step budget");
            return false;
        }
        if (depth >= cfg.maxDepth) {
            fail(EvalResult::Status::DepthExceeded, "recursion depth");
            return false;
        }
        return true;
    }

    ValuePtr
    evalExpr(const Expr &e, Frame &frame)
    {
        if (!enter())
            return nullptr;
        ++depth;
        ValuePtr v = evalExprInner(e, frame);
        --depth;
        return v;
    }

    ValuePtr
    evalExprInner(const Expr &e, Frame &frame)
    {
        if (e.isLet()) {
            const Let &l = e.asLet();
            ValuePtr bound = evalLet(l, frame);
            if (failed())
                return nullptr;
            frame.locals.push_back(std::move(bound));
            ValuePtr out = evalExpr(*l.body, frame);
            frame.locals.pop_back();
            return out;
        }
        if (e.isCase())
            return evalCase(e.asCase(), frame);
        // (result): v = ρ(arg).
        return operand(e.asResult().value, frame);
    }

    /** The let-* rules: dispatch on the callee form. */
    ValuePtr
    evalLet(const Let &l, Frame &frame)
    {
        std::vector<ValuePtr> args;
        args.reserve(l.args.size());
        for (const auto &a : l.args)
            args.push_back(operand(a, frame));

        ValuePtr callee;
        switch (l.callee.kind) {
          case CalleeKind::Func:
            // (let-fun)/(let-con)/(let-prim)/(getint)/(putint):
            // a bare identifier denotes an empty closure over it.
            // Decoded identifiers are unchecked: reject one that
            // names neither a primitive nor a declaration before it
            // can index the declaration table.
            if (isPrimId(l.callee.id)
                    ? !primById(l.callee.id).has_value()
                    : Program::indexOf(l.callee.id) >=
                          prog.decls.size())
                return fail(EvalResult::Status::Stuck,
                            "unknown callee id");
            callee = Value::makeClosure(l.callee.id, {});
            break;
          case CalleeKind::Local:
            if (l.callee.id >= frame.locals.size())
                return fail(EvalResult::Status::Stuck,
                            "callee local out of range");
            callee = frame.locals[l.callee.id];
            break;
          case CalleeKind::Arg:
            if (l.callee.id >= frame.args.size())
                return fail(EvalResult::Status::Stuck,
                            "callee arg out of range");
            callee = frame.args[l.callee.id];
            break;
        }
        return apply(callee, args);
    }

    /**
     * applyFn / applyCn / applyPrim of Fig. 3, unified over the
     * callee's identifier class. Accumulates arguments into the
     * closure, evaluates on saturation, and re-applies leftovers on
     * over-application.
     */
    ValuePtr
    apply(ValuePtr callee, std::vector<ValuePtr> args)
    {
        for (;;) {
            if (failed())
                return nullptr;
            if (!callee)
                return fail(EvalResult::Status::Stuck, "null callee");
            if (callee->isInt()) {
                // Applying an integer: the tag bit catches this in
                // hardware; semantically it is the bad-apply error.
                if (args.empty())
                    return callee;
                return Value::makeError(kErrBadApply);
            }
            if (callee->isCons()) {
                if (args.empty())
                    return callee;
                if (callee->isError())
                    return callee; // Errors absorb application.
                return Value::makeError(kErrArity);
            }

            Word id = callee->id();
            unsigned arity = arityOf(id);
            std::vector<ValuePtr> have = callee->items();

            // Accumulate arguments up to saturation.
            size_t take = std::min(args.size(),
                                   size_t(arity) - have.size());
            have.insert(have.end(), args.begin(),
                        args.begin() + ptrdiff_t(take));
            std::vector<ValuePtr> rest(args.begin() + ptrdiff_t(take),
                                       args.end());

            if (have.size() < arity) {
                // Under-application: a new closure value.
                return Value::makeClosure(id, std::move(have));
            }

            // Saturated: evaluate this call.
            ValuePtr out = invoke(id, have);
            if (failed())
                return nullptr;
            if (rest.empty())
                return out;
            // Over-application: apply the result to the leftovers.
            callee = std::move(out);
            args = std::move(rest);
        }
    }

    /** Evaluate a saturated call of id on args. */
    ValuePtr
    invoke(Word id, const std::vector<ValuePtr> &args)
    {
        if (isPrimId(id))
            return invokePrim(id, args);
        const Decl &d = prog.decls[Program::indexOf(id)];
        if (d.isCons)
            return Value::makeCons(id, args);
        Frame frame;
        frame.args = args;
        return evalExpr(*d.body, frame);
    }

    ValuePtr
    invokePrim(Word id, const std::vector<ValuePtr> &args)
    {
        Prim p = static_cast<Prim>(id);
        if (p == Prim::Error)
            return Value::makeCons(id, args);
        // An Error value reaching any primitive argument propagates
        // unchanged (argument order), matching the lazy engine.
        for (const auto &a : args) {
            if (a->isError())
                return a;
        }
        if (p == Prim::GetInt) {
            if (!args[0]->isInt())
                return Value::makeError(kErrIoNotInt);
            // (getint): n2 is input from port n1.
            return Value::makeInt(bus.getInt(args[0]->intVal()));
        }
        if (p == Prim::PutInt) {
            if (!args[0]->isInt() || !args[1]->isInt())
                return Value::makeError(kErrIoNotInt);
            // (putint): write and yield the written value.
            bus.putInt(args[0]->intVal(), args[1]->intVal());
            return args[1];
        }
        if (p == Prim::InvokeGc) {
            // Strict integer identity; collection is a machine-level
            // effect only. The kernel threads an integer token
            // through gc to sequence it.
            if (!args[0]->isInt())
                return Value::makeError(kErrBadApply);
            return args[0];
        }
        // Pure ALU primitive: all arguments must be integers.
        std::vector<SWord> ints;
        ints.reserve(args.size());
        for (const auto &a : args) {
            if (!a->isInt())
                return Value::makeError(kErrBadApply);
            ints.push_back(a->intVal());
        }
        PrimResult r = evalAlu(p, ints);
        if (!r.ok)
            return Value::makeError(r.errCode);
        return Value::makeInt(r.value);
    }

    /** (case-*) rules: match an evaluated scrutinee. */
    ValuePtr
    evalCase(const Case &c, Frame &frame)
    {
        ValuePtr scrut = operand(c.scrut, frame);
        if (failed())
            return nullptr;

        for (const auto &br : c.branches) {
            bool match;
            if (br.isCons) {
                // (case-con): same constructor name.
                match = scrut->isCons() && scrut->id() == br.consId;
            } else {
                // (case-lit): same integer.
                match = scrut->isInt() && scrut->intVal() == br.lit;
            }
            if (!match)
                continue;
            if (br.isCons) {
                // Fields become new locals for the branch body.
                size_t base = frame.locals.size();
                for (const auto &f : scrut->items())
                    frame.locals.push_back(f);
                ValuePtr out = evalExpr(*br.body, frame);
                frame.locals.resize(base);
                return out;
            }
            return evalExpr(*br.body, frame);
        }
        // (case-else1)/(case-else2): no branch matched. Closures
        // also fall through to else (they match no pattern).
        return evalExpr(*c.elseBody, frame);
    }

    unsigned
    arityOf(Word id) const
    {
        if (isPrimId(id)) {
            auto p = primById(id);
            if (!p)
                panic("apply of unknown primitive 0x%x", id);
            return p->arity;
        }
        return prog.decls[Program::indexOf(id)].arity;
    }

    const Program prog; // owned clone: callers may pass temporaries
    IoBus &bus;
    BigStepConfig cfg;

    uint64_t steps = 0;
    unsigned depth = 0;
    EvalResult::Status failure = EvalResult::Status::Ok;
    std::string failWhere;
};

BigStep::BigStep(const Program &program, IoBus &bus, BigStepConfig config)
    : impl(std::make_unique<Impl>(program, bus, config))
{}

BigStep::~BigStep() = default;

EvalResult
BigStep::runMain()
{
    return impl->runMain();
}

EvalResult
BigStep::call(const std::string &fnName,
              const std::vector<ValuePtr> &args)
{
    return impl->call(fnName, args);
}

uint64_t
BigStep::stepsUsed() const
{
    return impl->stepsUsed();
}

} // namespace zarf
