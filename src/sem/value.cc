#include "sem/value.hh"

#include "support/logging.hh"

namespace zarf
{

ValuePtr
Value::makeInt(int64_t v)
{
    return ValuePtr(new Value(Kind::Int, wrapInt31(v), 0, {}));
}

ValuePtr
Value::makeCons(Word id, std::vector<ValuePtr> fields)
{
    return ValuePtr(new Value(Kind::Cons, 0, id, std::move(fields)));
}

ValuePtr
Value::makeClosure(Word funcId, std::vector<ValuePtr> applied)
{
    return ValuePtr(
        new Value(Kind::Closure, 0, funcId, std::move(applied)));
}

ValuePtr
Value::makeError(SWord code)
{
    return makeCons(static_cast<Word>(Prim::Error),
                    { makeInt(code) });
}

bool
Value::equal(const Value &a, const Value &b)
{
    if (a._kind != b._kind)
        return false;
    switch (a._kind) {
      case Kind::Int:
        return a._int == b._int;
      case Kind::Cons:
      case Kind::Closure:
        if (a._id != b._id || a._items.size() != b._items.size())
            return false;
        for (size_t i = 0; i < a._items.size(); ++i) {
            if (!equal(*a._items[i], *b._items[i]))
                return false;
        }
        return true;
    }
    return false;
}

std::string
Value::toString() const
{
    switch (_kind) {
      case Kind::Int:
        return strprintf("%d", _int);
      case Kind::Cons: {
        std::string s = strprintf("(cons 0x%x", _id);
        for (const auto &f : _items) {
            s += ' ';
            s += f->toString();
        }
        s += ')';
        return s;
      }
      case Kind::Closure: {
        std::string s = strprintf("(closure 0x%x/%zu", _id,
                                  _items.size());
        for (const auto &f : _items) {
            s += ' ';
            s += f->toString();
        }
        s += ')';
        return s;
      }
    }
    return "<?>";
}

} // namespace zarf
