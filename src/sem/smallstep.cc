#include "sem/smallstep.hh"

#include <deque>
#include <optional>

#include "support/logging.hh"

namespace zarf
{

namespace
{

/** A runtime word: an integer or a heap reference (the tag bit). */
struct RtVal
{
    bool isInt;
    SWord i;   ///< isInt
    size_t r;  ///< !isInt
};

RtVal rtInt(SWord v) { return { true, v, 0 }; }
RtVal rtRef(size_t r) { return { false, 0, r }; }

/** A heap node. */
struct Node
{
    enum class Tag
    {
        App,       ///< Application: callee (id or value) + arguments.
        Cons,      ///< Saturated constructor value.
        Ind,       ///< Updated: indirection to a value.
        Blackhole, ///< Under evaluation (self-dependency detector).
    };

    Tag tag = Tag::App;
    bool calleeIsRef = false; ///< App: callee is a value, not an id.
    Word fn = 0;              ///< App (id) / Cons constructor id.
    RtVal callee{};           ///< App with calleeIsRef.
    std::vector<RtVal> args;  ///< App arguments / Cons fields.
    RtVal ind{};              ///< Ind target.
};

} // namespace

class SmallStep::Impl
{
  public:
    Impl(const Program &program, IoBus &bus, SmallStepConfig config)
        : prog(program.clone()), bus(bus), cfg(config)
    {}

    RunResult
    runMain()
    {
        resetRun();
        int entry = prog.entryIndex();
        if (entry < 0)
            return stuckResult("program has no entry function");
        size_t root = allocApp(Program::idOf(size_t(entry)), {});
        return drive(rtRef(root));
    }

    RunResult
    call(const std::string &fnName, const std::vector<ValuePtr> &args)
    {
        resetRun();
        int idx = prog.findByName(fnName);
        if (idx < 0)
            return stuckResult("no function named " + fnName);
        std::vector<RtVal> rargs;
        rargs.reserve(args.size());
        for (const auto &a : args)
            rargs.push_back(import(a));
        size_t root = allocApp(Program::idOf(size_t(idx)),
                               std::move(rargs));
        return drive(rtRef(root));
    }

    const SmallStepStats &statsRef() const { return stats; }

  private:
    // ------------------------------------------------------------
    // Machine structure
    // ------------------------------------------------------------

    /** One function activation. */
    struct Activation
    {
        const Decl *decl = nullptr;
        std::vector<RtVal> args;
        std::vector<RtVal> locals;
        const Expr *pc = nullptr;
    };

    /** A continuation frame. */
    struct Frame
    {
        enum class Kind { Update, Case, PrimArgs, Apply };

        Kind kind;
        // Update
        size_t target = 0;
        // Case
        Activation act;
        // PrimArgs
        Prim prim{};
        std::vector<RtVal> primArgs;
        std::vector<SWord> collected;
        size_t nextArg = 0;
        // Apply
        std::vector<RtVal> extra;
    };

    enum class Mode { Exec, EvalVal, Deliver, Done, Stuck };

    // ------------------------------------------------------------
    // Heap helpers
    // ------------------------------------------------------------

    size_t
    allocNode(Node n)
    {
        ++stats.allocations;
        heap.push_back(std::move(n));
        return heap.size() - 1;
    }

    size_t
    allocApp(Word fn, std::vector<RtVal> args)
    {
        Node n;
        n.tag = Node::Tag::App;
        n.fn = fn;
        n.args = std::move(args);
        return allocNode(std::move(n));
    }

    size_t
    allocAppRef(RtVal callee, std::vector<RtVal> args)
    {
        Node n;
        n.tag = Node::Tag::App;
        n.calleeIsRef = true;
        n.callee = callee;
        n.args = std::move(args);
        return allocNode(std::move(n));
    }

    size_t
    allocCons(Word id, std::vector<RtVal> fields)
    {
        Node n;
        n.tag = Node::Tag::Cons;
        n.fn = id;
        n.args = std::move(fields);
        return allocNode(std::move(n));
    }

    size_t
    allocError(SWord code)
    {
        return allocCons(static_cast<Word>(Prim::Error),
                         { rtInt(code) });
    }

    /** Follow indirection chains to the representative value. */
    RtVal
    chase(RtVal v)
    {
        while (!v.isInt && heap[v.r].tag == Node::Tag::Ind)
            v = heap[v.r].ind;
        return v;
    }

    unsigned
    arityOf(Word id) const
    {
        if (isPrimId(id)) {
            auto p = primById(id);
            return p ? p->arity : 0;
        }
        return prog.decls[Program::indexOf(id)].arity;
    }

    bool
    isConsId(Word id) const
    {
        if (isPrimId(id)) {
            auto p = primById(id);
            return p && p->isConstructor;
        }
        return prog.decls[Program::indexOf(id)].isCons;
    }

    /** Is this node, as it stands, already a value (WHNF)? */
    bool
    nodeIsWhnf(const Node &n) const
    {
        if (n.tag == Node::Tag::Cons)
            return true;
        if (n.tag != Node::Tag::App || n.calleeIsRef)
            return false;
        // A partial application is a value.
        return n.args.size() < arityOf(n.fn);
    }

    // ------------------------------------------------------------
    // The driver loop
    // ------------------------------------------------------------

    void
    resetRun()
    {
        heap.clear();
        conts.clear();
        mode = Mode::Done;
        stuckWhere.clear();
        steps = 0;
    }

    RunResult
    stuckResult(std::string why)
    {
        return { RunResult::Status::Stuck, nullptr, std::move(why) };
    }

    /** Run the machine until `start` is in WHNF, then deep-force. */
    RunResult
    drive(RtVal start)
    {
        std::optional<RtVal> whnf = forceToWhnf(start);
        if (!whnf) {
            if (mode == Mode::Stuck)
                return stuckResult(stuckWhere);
            return { RunResult::Status::OutOfFuel, nullptr, "" };
        }
        // Deep-force the value so callers get a full Value tree.
        ValuePtr v = deepValue(*whnf, 0);
        if (!v) {
            if (mode == Mode::Stuck)
                return stuckResult(stuckWhere);
            return { RunResult::Status::OutOfFuel, nullptr, "" };
        }
        return { RunResult::Status::Done, std::move(v), "" };
    }

    /** Force one value to WHNF; nullopt on fuel/stuck. */
    std::optional<RtVal>
    forceToWhnf(RtVal v)
    {
        mode = Mode::EvalVal;
        cur = v;
        size_t base = conts.size();
        while (true) {
            if (++steps > cfg.maxSteps)
                return std::nullopt;
            switch (mode) {
              case Mode::EvalVal:
                stepEval(base);
                break;
              case Mode::Exec:
                stepExec();
                break;
              case Mode::Deliver:
                if (conts.size() == base) {
                    // WHNF reached for this force request.
                    return cur;
                }
                stepDeliver();
                break;
              case Mode::Done:
                return cur;
              case Mode::Stuck:
                return std::nullopt;
            }
        }
    }

    /** Convert a WHNF value into a deep Value, forcing fields. */
    ValuePtr
    deepValue(RtVal v, unsigned depth)
    {
        if (depth > 512) {
            setStuck("deep-force recursion limit");
            return nullptr;
        }
        v = chase(v);
        if (v.isInt)
            return Value::makeInt(v.i);
        const Node &n = heap[v.r];
        if (n.tag == Node::Tag::Cons) {
            std::vector<ValuePtr> fields;
            // Copy the field list: forcing may grow the heap and
            // invalidate `n`.
            std::vector<RtVal> raw = n.args;
            Word id = n.fn;
            fields.reserve(raw.size());
            for (RtVal f : raw) {
                auto w = forceToWhnf(f);
                if (!w)
                    return nullptr;
                ValuePtr fv = deepValue(*w, depth + 1);
                if (!fv)
                    return nullptr;
                fields.push_back(std::move(fv));
            }
            return Value::makeCons(id, std::move(fields));
        }
        if (n.tag == Node::Tag::App && !n.calleeIsRef &&
            n.args.size() < arityOf(n.fn)) {
            std::vector<ValuePtr> applied;
            std::vector<RtVal> raw = n.args;
            Word id = n.fn;
            applied.reserve(raw.size());
            for (RtVal f : raw) {
                auto w = forceToWhnf(f);
                if (!w)
                    return nullptr;
                ValuePtr fv = deepValue(*w, depth + 1);
                if (!fv)
                    return nullptr;
                applied.push_back(std::move(fv));
            }
            return Value::makeClosure(id, std::move(applied));
        }
        setStuck("deep-force reached a non-WHNF node");
        return nullptr;
    }

    void
    setStuck(std::string why)
    {
        mode = Mode::Stuck;
        if (stuckWhere.empty())
            stuckWhere = std::move(why);
    }

    // ------------------------------------------------------------
    // EvalVal: bring `cur` to WHNF
    // ------------------------------------------------------------

    void
    stepEval(size_t base)
    {
        cur = chase(cur);
        if (cur.isInt) {
            mode = Mode::Deliver;
            return;
        }
        Node &n = heap[cur.r];
        if (n.tag == Node::Tag::Blackhole) {
            setStuck("self-dependent thunk (infinite loop)");
            return;
        }
        if (nodeIsWhnf(n)) {
            mode = Mode::Deliver;
            return;
        }

        // A thunk: evaluate it. Collapse consecutive update frames
        // through indirections so tail recursion runs in constant
        // continuation depth.
        size_t target = cur.r;
        while (conts.size() > base &&
               conts.back().kind == Frame::Kind::Update) {
            heap[conts.back().target].tag = Node::Tag::Ind;
            heap[conts.back().target].ind = rtRef(target);
            conts.pop_back();
            ++stats.updates;
        }
        pushUpdate(target);
        ++stats.forces;

        if (n.calleeIsRef) {
            // Evaluate the callee first, then apply the arguments.
            Frame f;
            f.kind = Frame::Kind::Apply;
            f.extra = n.args;
            RtVal callee = n.callee;
            heap[target].tag = Node::Tag::Blackhole;
            conts.push_back(std::move(f));
            cur = callee;
            return; // stay in EvalVal
        }

        Word fn = n.fn;
        unsigned arity = arityOf(fn);
        std::vector<RtVal> args = n.args;
        heap[target].tag = Node::Tag::Blackhole;

        if (isConsId(fn)) {
            // Only reachable when over-applied (saturated cons nodes
            // are built as values at allocation time).
            cur = rtRef(allocError(kErrArity));
            return;
        }
        if (args.size() > arity) {
            Frame f;
            f.kind = Frame::Kind::Apply;
            f.extra.assign(args.begin() + arity, args.end());
            args.resize(arity);
            conts.push_back(std::move(f));
        }
        if (isPrimId(fn)) {
            beginPrim(static_cast<Prim>(fn), std::move(args));
            return;
        }
        // User function: start executing its body.
        const Decl &d = prog.decls[Program::indexOf(fn)];
        act = Activation{};
        act.decl = &d;
        act.args = std::move(args);
        act.pc = d.body.get();
        mode = Mode::Exec;
    }

    void
    pushUpdate(size_t target)
    {
        Frame f;
        f.kind = Frame::Kind::Update;
        f.target = target;
        conts.push_back(std::move(f));
    }

    /** Begin evaluating a saturated primitive application. */
    void
    beginPrim(Prim p, std::vector<RtVal> args)
    {
        Frame f;
        f.kind = Frame::Kind::PrimArgs;
        f.prim = p;
        f.primArgs = std::move(args);
        f.nextArg = 0;
        if (f.primArgs.empty())
            panic("zero-arity primitive application");
        RtVal first = f.primArgs[0];
        conts.push_back(std::move(f));
        cur = first;
        mode = Mode::EvalVal;
    }

    // ------------------------------------------------------------
    // Exec: run function-body instructions
    // ------------------------------------------------------------

    /** Out-of-range slot references are undefined by the semantics;
     *  they latch Stuck so the engine is total over every decodable
     *  program, not just scope-validated ones (the conformance
     *  fuzzer feeds it near-well-formed mutants). Callers must check
     *  the mode before consuming the placeholder return. */
    RtVal
    resolveOperand(const Operand &op)
    {
        switch (op.src) {
          case Src::Imm:
            return rtInt(op.val);
          case Src::Arg:
            if (size_t(op.val) >= act.args.size()) {
                setStuck("argument index out of range");
                return rtInt(0);
            }
            return act.args[size_t(op.val)];
          case Src::Local:
            if (size_t(op.val) >= act.locals.size()) {
                setStuck("local index out of range");
                return rtInt(0);
            }
            return act.locals[size_t(op.val)];
        }
        return rtInt(0);
    }

    void
    stepExec()
    {
        const Expr &e = *act.pc;
        if (e.isLet()) {
            ++stats.lets;
            execLet(e.asLet());
            return;
        }
        if (e.isCase()) {
            ++stats.cases;
            // Force the scrutinee; resume this activation when a
            // WHNF value is delivered.
            Frame f;
            f.kind = Frame::Kind::Case;
            f.act = act;
            RtVal scrut = resolveOperand(e.asCase().scrut);
            if (mode == Mode::Stuck)
                return;
            conts.push_back(std::move(f));
            cur = scrut;
            mode = Mode::EvalVal;
            return;
        }
        // result: yield the (possibly unevaluated) value.
        ++stats.results;
        RtVal v = resolveOperand(e.asResult().value);
        if (mode == Mode::Stuck)
            return;
        cur = v;
        mode = Mode::EvalVal;
    }

    void
    execLet(const Let &l)
    {
        std::vector<RtVal> args;
        args.reserve(l.args.size());
        for (const auto &a : l.args) {
            args.push_back(resolveOperand(a));
            if (mode == Mode::Stuck)
                return;
        }

        RtVal bound;
        if (l.callee.kind == CalleeKind::Func) {
            Word fn = l.callee.id;
            // The decoder accepts any 16-bit identifier; one that
            // names neither a primitive nor a declaration must stop
            // us here, before it can index the declaration table.
            if (isPrimId(fn) ? !primById(fn).has_value()
                             : Program::indexOf(fn) >=
                                   prog.decls.size()) {
                setStuck("unknown callee id");
                return;
            }
            if (isConsId(fn) && args.size() == arityOf(fn)) {
                // A saturated constructor is a value immediately.
                bound = rtRef(allocCons(fn, std::move(args)));
            } else if (isConsId(fn) && args.size() > arityOf(fn)) {
                bound = rtRef(allocError(kErrArity));
            } else {
                bound = rtRef(allocApp(fn, std::move(args)));
            }
        } else {
            const std::vector<RtVal> &slots =
                l.callee.kind == CalleeKind::Local ? act.locals
                                                   : act.args;
            if (l.callee.id >= slots.size()) {
                setStuck(l.callee.kind == CalleeKind::Local
                             ? "callee local out of range"
                             : "callee arg out of range");
                return;
            }
            RtVal callee = slots[l.callee.id];
            if (args.empty()) {
                // Pure aliasing; no allocation needed.
                bound = callee;
            } else {
                RtVal c = chase(callee);
                if (c.isInt) {
                    bound = rtRef(allocError(kErrBadApply));
                } else if (heap[c.r].tag == Node::Tag::App &&
                           !heap[c.r].calleeIsRef &&
                           nodeIsWhnf(heap[c.r])) {
                    // Applying to a known partial application:
                    // extend its argument list (paper: let builds a
                    // new structure tying code to data).
                    std::vector<RtVal> all = heap[c.r].args;
                    all.insert(all.end(), args.begin(), args.end());
                    Word fn = heap[c.r].fn;
                    if (isConsId(fn) && all.size() == arityOf(fn))
                        bound = rtRef(allocCons(fn, std::move(all)));
                    else if (isConsId(fn) && all.size() > arityOf(fn))
                        bound = rtRef(allocError(kErrArity));
                    else
                        bound = rtRef(allocApp(fn, std::move(all)));
                } else if (heap[c.r].tag == Node::Tag::Cons) {
                    bound = heap[c.r].fn ==
                                    static_cast<Word>(Prim::Error)
                                ? c
                                : rtRef(allocError(kErrArity));
                } else {
                    // Callee is itself an unevaluated thunk: defer.
                    bound = rtRef(allocAppRef(callee, std::move(args)));
                }
            }
        }
        act.locals.push_back(bound);
        act.pc = l.body.get();
    }

    // ------------------------------------------------------------
    // Deliver: hand a WHNF value to the top continuation
    // ------------------------------------------------------------

    void
    stepDeliver()
    {
        Frame f = std::move(conts.back());
        conts.pop_back();
        switch (f.kind) {
          case Frame::Kind::Update:
            heap[f.target].tag = Node::Tag::Ind;
            heap[f.target].ind = cur;
            ++stats.updates;
            // stay in Deliver
            return;
          case Frame::Kind::Case:
            act = std::move(f.act);
            resumeCase();
            return;
          case Frame::Kind::PrimArgs:
            resumePrim(std::move(f));
            return;
          case Frame::Kind::Apply:
            resumeApply(std::move(f));
            return;
        }
    }

    void
    resumeCase()
    {
        const Case &c = act.pc->asCase();
        RtVal v = chase(cur);

        const Node *node = v.isInt ? nullptr : &heap[v.r];
        for (const auto &br : c.branches) {
            // Each branch head performs one equality comparison.
            bool match;
            if (br.isCons) {
                match = node && node->tag == Node::Tag::Cons &&
                        node->fn == br.consId;
            } else {
                match = v.isInt && v.i == br.lit;
            }
            if (!match)
                continue;
            if (br.isCons) {
                for (const RtVal &field : node->args)
                    act.locals.push_back(field);
            }
            act.pc = br.body.get();
            mode = Mode::Exec;
            return;
        }
        act.pc = c.elseBody.get();
        mode = Mode::Exec;
    }

    void
    resumePrim(Frame f)
    {
        RtVal v = chase(cur);
        Prim p = f.prim;

        // An Error value reaching a primitive argument propagates.
        if (!v.isInt) {
            const Node &n = heap[v.r];
            if (n.tag == Node::Tag::Cons &&
                n.fn == static_cast<Word>(Prim::Error)) {
                cur = v;
                mode = Mode::Deliver;
                return;
            }
            // Any other non-integer is a type error for primitives.
            SWord code = (p == Prim::GetInt || p == Prim::PutInt)
                             ? kErrIoNotInt
                             : kErrBadApply;
            cur = rtRef(allocError(code));
            mode = Mode::Deliver;
            return;
        }

        f.collected.push_back(v.i);
        f.nextArg++;
        if (f.nextArg < f.primArgs.size()) {
            RtVal next = f.primArgs[f.nextArg];
            conts.push_back(std::move(f));
            cur = next;
            mode = Mode::EvalVal;
            return;
        }

        // All arguments are integers: perform the operation.
        switch (p) {
          case Prim::GetInt:
            cur = rtInt(wrapInt31(bus.getInt(f.collected[0])));
            break;
          case Prim::PutInt:
            bus.putInt(f.collected[0], f.collected[1]);
            cur = rtInt(f.collected[1]);
            break;
          case Prim::InvokeGc:
            cur = rtInt(f.collected[0]);
            break;
          default: {
            PrimResult r = evalAlu(p, f.collected);
            cur = r.ok ? rtInt(r.value) : rtRef(allocError(r.errCode));
            break;
          }
        }
        mode = Mode::Deliver;
    }

    void
    resumeApply(Frame f)
    {
        RtVal v = chase(cur);
        if (v.isInt) {
            cur = rtRef(allocError(kErrBadApply));
            mode = Mode::Deliver;
            return;
        }
        const Node &n = heap[v.r];
        if (n.tag == Node::Tag::Cons) {
            // Errors absorb application; other constructors reject.
            cur = n.fn == static_cast<Word>(Prim::Error)
                      ? v
                      : rtRef(allocError(kErrArity));
            mode = Mode::Deliver;
            return;
        }
        // Partial application: extend and re-evaluate.
        std::vector<RtVal> all = n.args;
        all.insert(all.end(), f.extra.begin(), f.extra.end());
        Word fn = n.fn;
        if (isConsId(fn) && all.size() == arityOf(fn))
            cur = rtRef(allocCons(fn, std::move(all)));
        else if (isConsId(fn) && all.size() > arityOf(fn))
            cur = rtRef(allocError(kErrArity));
        else
            cur = rtRef(allocApp(fn, std::move(all)));
        mode = Mode::EvalVal;
    }

    // ------------------------------------------------------------
    // Import host values into the heap
    // ------------------------------------------------------------

    RtVal
    import(const ValuePtr &v)
    {
        if (v->isInt())
            return rtInt(v->intVal());
        std::vector<RtVal> items;
        items.reserve(v->items().size());
        for (const auto &f : v->items())
            items.push_back(import(f));
        if (v->isCons())
            return rtRef(allocCons(v->id(), std::move(items)));
        return rtRef(allocApp(v->id(), std::move(items)));
    }

    const Program prog; // owned clone: callers may pass temporaries
    IoBus &bus;
    SmallStepConfig cfg;

    std::vector<Node> heap;
    std::vector<Frame> conts;
    Activation act;
    RtVal cur{};
    Mode mode = Mode::Done;
    std::string stuckWhere;
    uint64_t steps = 0;
    SmallStepStats stats;
};

SmallStep::SmallStep(const Program &program, IoBus &bus,
                     SmallStepConfig config)
    : impl(std::make_unique<Impl>(program, bus, config))
{}

SmallStep::~SmallStep() = default;

RunResult
SmallStep::runMain()
{
    return impl->runMain();
}

RunResult
SmallStep::call(const std::string &fnName,
                const std::vector<ValuePtr> &args)
{
    return impl->call(fnName, args);
}

const SmallStepStats &
SmallStep::stats() const
{
    return impl->statsRef();
}

} // namespace zarf
