/**
 * @file
 * Runtime values of the Zarf functional ISA (paper, Fig. 3):
 * Value = Z ∪ Constructor ∪ Closure.
 *
 * Constructors are (name × values) tuples; closures pair a function
 * (by global identifier — the ISA is lambda-lifted, so closures track
 * an applied-value list rather than a captured environment) with the
 * values applied so far. The reserved Error constructor (id 0x00) is
 * an ordinary constructor value carrying an error code.
 */

#ifndef ZARF_SEM_VALUE_HH
#define ZARF_SEM_VALUE_HH

#include <memory>
#include <string>
#include <vector>

#include "isa/prims.hh"
#include "support/types.hh"

namespace zarf
{

class Value;
using ValuePtr = std::shared_ptr<const Value>;

/** An immutable runtime value. */
class Value
{
  public:
    enum class Kind { Int, Cons, Closure };

    /** Make an integer value (wrapped to the 31-bit machine range). */
    static ValuePtr makeInt(int64_t v);
    /** Make a saturated constructor value. */
    static ValuePtr makeCons(Word id, std::vector<ValuePtr> fields);
    /** Make a (possibly empty) partial application. */
    static ValuePtr makeClosure(Word funcId, std::vector<ValuePtr> applied);
    /** Make an Error constructor instance. */
    static ValuePtr makeError(SWord code);

    Kind kind() const { return _kind; }
    bool isInt() const { return _kind == Kind::Int; }
    bool isCons() const { return _kind == Kind::Cons; }
    bool isClosure() const { return _kind == Kind::Closure; }

    /** Integer payload (Kind::Int). */
    SWord intVal() const { return _int; }
    /** Constructor or closure function identifier. */
    Word id() const { return _id; }
    /** Constructor fields or applied arguments. */
    const std::vector<ValuePtr> &items() const { return _items; }

    /** True if this is an instance of the reserved Error cons. */
    bool
    isError() const
    {
        return isCons() && _id == static_cast<Word>(Prim::Error);
    }

    /** Structural equality (deep). */
    static bool equal(const Value &a, const Value &b);

    /** Render for diagnostics and golden tests. */
    std::string toString() const;

  private:
    Value(Kind kind, SWord i, Word id, std::vector<ValuePtr> items)
        : _kind(kind), _int(i), _id(id), _items(std::move(items))
    {}

    Kind _kind;
    SWord _int;
    Word _id;
    std::vector<ValuePtr> _items;
};

} // namespace zarf

#endif // ZARF_SEM_VALUE_HH
