/**
 * @file
 * The eager big-step reference semantics of the Zarf functional ISA —
 * a direct transcription of Fig. 3 of the paper.
 *
 * Evaluation is a relation between an environment (argument and
 * local frames), an expression, and a value; program evaluation
 * begins with main's body. All four applyFn cases (saturation,
 * under-application, argument accumulation, over-application) and
 * both applyCn cases are implemented, as are the getint/putint rules
 * and the case/else rules.
 *
 * Being big-step and eager, this engine recurses on the host stack
 * and cannot execute unbounded loops; it exists as the semantic
 * oracle against which the small-step engine and the cycle-level
 * machine are differentially tested. Fuel and depth limits turn
 * divergence into reported errors rather than host crashes.
 */

#ifndef ZARF_SEM_BIGSTEP_HH
#define ZARF_SEM_BIGSTEP_HH

#include <string>

#include "isa/ast.hh"
#include "sem/io.hh"
#include "sem/value.hh"

namespace zarf
{

/** Evaluation outcome. */
struct EvalResult
{
    enum class Status
    {
        Ok,
        OutOfFuel,      ///< Step budget exhausted.
        DepthExceeded,  ///< Host recursion bound hit.
        Stuck,          ///< Semantically undefined state reached.
    };

    Status status;
    ValuePtr value;    ///< Valid when status == Ok.
    std::string where; ///< Diagnostic context otherwise.

    bool ok() const { return status == Status::Ok; }
};

/** Tunables for a big-step run. */
struct BigStepConfig
{
    uint64_t maxSteps = 50'000'000; ///< let/case/result evaluations.
    unsigned maxDepth = 8'000;      ///< Host recursion bound.
};

/** Eager big-step evaluator over a validated program. */
class BigStep
{
  public:
    /**
     * @param program a validated program (see isa/validate.hh)
     * @param bus the I/O bus getint/putint talk to
     * @param config fuel and depth limits
     */
    BigStep(const Program &program, IoBus &bus,
            BigStepConfig config = {});
    ~BigStep();

    /** Evaluate main (the whole-program rule of Fig. 3). */
    EvalResult runMain();

    /** Apply a named function to argument values and evaluate. */
    EvalResult call(const std::string &fnName,
                    const std::vector<ValuePtr> &args);

    /** Steps consumed by the last run. */
    uint64_t stepsUsed() const;

  private:
    class Impl;
    std::unique_ptr<Impl> impl;
};

} // namespace zarf

#endif // ZARF_SEM_BIGSTEP_HH
