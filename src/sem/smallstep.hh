/**
 * @file
 * Small-step, lazy operational semantics for the Zarf functional ISA.
 *
 * The paper (Sec. 2.2, 3.2) presents the λ-execution layer with both
 * a big-step semantics (Fig. 3, eager) and a small-step semantics
 * matching the hardware, which evaluates lazily: let allocates an
 * application node tying code to data, case forces its scrutinee to
 * weak head-normal form, and forced nodes are updated in place so
 * work is never repeated. This engine is that small-step semantics:
 * an abstract machine with an explicit continuation stack (case
 * resumptions, primitive-argument collection, over-application,
 * update frames) and a node heap.
 *
 * Consecutive update frames are collapsed through indirections, so
 * tail-recursive loops — like the ICD microkernel's main loop — run
 * in constant continuation depth, exactly as the hardware does.
 *
 * This implementation is deliberately independent of the cycle-level
 * machine in src/machine (different heap layout, different control
 * structure) so the two can be differentially tested against each
 * other and against the big-step oracle.
 */

#ifndef ZARF_SEM_SMALLSTEP_HH
#define ZARF_SEM_SMALLSTEP_HH

#include <memory>
#include <string>

#include "isa/ast.hh"
#include "sem/io.hh"
#include "sem/value.hh"

namespace zarf
{

/** Outcome of a small-step run. */
struct RunResult
{
    enum class Status { Done, OutOfFuel, Stuck };

    Status status;
    ValuePtr value;    ///< Deeply forced value when Done.
    std::string where; ///< Diagnostic when Stuck.

    bool ok() const { return status == Status::Done; }
};

/** Tunables for a small-step run. */
struct SmallStepConfig
{
    uint64_t maxSteps = 200'000'000; ///< Abstract machine steps.
};

/** Dynamic counters the engine maintains (used by tests and tools). */
struct SmallStepStats
{
    uint64_t lets = 0;
    uint64_t cases = 0;
    uint64_t results = 0;
    uint64_t forces = 0;      ///< Thunk activations.
    uint64_t allocations = 0; ///< Heap nodes created.
    uint64_t updates = 0;     ///< In-place updates performed.
};

/** The lazy abstract machine. */
class SmallStep
{
  public:
    SmallStep(const Program &program, IoBus &bus,
              SmallStepConfig config = {});
    ~SmallStep();

    /** Evaluate main to a deeply forced value. */
    RunResult runMain();

    /** Apply a named function to values and deeply force the result. */
    RunResult call(const std::string &fnName,
                   const std::vector<ValuePtr> &args);

    const SmallStepStats &stats() const;

  private:
    class Impl;
    std::unique_ptr<Impl> impl;
};

} // namespace zarf

#endif // ZARF_SEM_SMALLSTEP_HH
