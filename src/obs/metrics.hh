/**
 * @file
 * Metrics registry with stable JSON export (docs/OBSERVABILITY.md).
 *
 * A Metrics object is a point-in-time snapshot assembled by the
 * components' exportMetrics() methods: monotonic counters, level
 * gauges, and labelled histograms (e.g. the per-FSM-state cycle
 * distribution of the λ-machine). Values are integers only and the
 * JSON rendering is deterministic — counters and gauges sorted by
 * name, histogram buckets in registration order — so metric dumps
 * diff cleanly and serve as golden test fixtures on any host or
 * thread count.
 */

#ifndef ZARF_OBS_METRICS_HH
#define ZARF_OBS_METRICS_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace zarf::obs
{

/** The registry (see file comment). */
class Metrics
{
  public:
    /** Set a monotonic counter (last write wins). */
    void setCounter(const std::string &name, uint64_t value);

    /** Set a level gauge (last write wins; may be negative). */
    void setGauge(const std::string &name, int64_t value);

    /** Append one bucket to a histogram, creating the histogram on
     *  first use. Buckets render in registration order (the caller's
     *  order is meaningful, e.g. FSM state order). */
    void addBucket(const std::string &histogram,
                   const std::string &bucket, uint64_t value);

    size_t counterCount() const { return counters.size(); }
    /** Counter value, or 0 if absent. */
    uint64_t counter(const std::string &name) const;

    /**
     * Deterministic JSON: {"counters": {...}, "gauges": {...},
     * "histograms": {...}} with sorted keys, integers only.
     */
    std::string toJson() const;

  private:
    using Buckets = std::vector<std::pair<std::string, uint64_t>>;

    std::map<std::string, uint64_t> counters;
    std::map<std::string, int64_t> gauges;
    std::map<std::string, Buckets> histograms;
};

} // namespace zarf::obs

#endif // ZARF_OBS_METRICS_HH
