/**
 * @file
 * Ring-buffered structured event tracer (docs/OBSERVABILITY.md).
 *
 * The Recorder is the single sink every instrumented component — the
 * λ-machine, the imperative core, the two-layer system's devices —
 * writes into. Design constraints, in order:
 *
 *  - Disabled costs ~zero: components hold a `Recorder *` that is
 *    null by default, so the disabled hook is one predicted branch
 *    (bench_trace_overhead verifies the bound).
 *  - Deterministic: events are fixed-size integer records stamped
 *    with simulated λ cycles, recorded in emission order into a
 *    preallocated ring. Two runs of the same seed produce
 *    byte-identical exports; nothing depends on host time, pointer
 *    values, or thread scheduling (a Recorder is single-threaded by
 *    contract — one per simulated system).
 *  - Bounded: the ring drops the *oldest* events once full and
 *    counts the drops, so long co-simulations keep the most recent
 *    window without unbounded memory.
 *
 * toChromeJson() renders the ring as Chrome-trace/Perfetto JSON with
 * one "thread" per Track and timestamps in λ cycles (1 unit = 20 ns).
 */

#ifndef ZARF_OBS_TRACE_HH
#define ZARF_OBS_TRACE_HH

#include <string>
#include <vector>

#include "obs/events.hh"

namespace zarf::obs
{

/** Recorder sizing and filtering. */
struct TraceConfig
{
    /** Ring capacity in events; the oldest are dropped past it. */
    size_t capacity = 1u << 15;
    /** Bitmask of Cat values to record (kAllCats = everything). */
    uint32_t mask = kAllCats;
};

/** The ring-buffered event sink. */
class Recorder
{
  public:
    explicit Recorder(TraceConfig config = {});

    /** Is this category recorded? Callers on hot paths cache the
     *  answer instead of asking per event. */
    bool
    wants(Cat c) const
    {
        return (cfg.mask & static_cast<uint32_t>(c)) != 0;
    }

    /** Record one event (dropped silently if its category is
     *  masked; drops the oldest ring entry when full). */
    void
    emit(EventKind k, Cycles ts, int64_t a = 0, int64_t b = 0)
    {
        if (!wants(eventCat(k)))
            return;
        ++nEmitted;
        if (count == ring.size()) {
            ++nDropped;
            ring[head] = Event{ ts, a, b, k };
            head = (head + 1) % ring.size();
            return;
        }
        ring[(head + count) % ring.size()] = Event{ ts, a, b, k };
        ++count;
    }

    /** Events currently held (<= capacity). */
    size_t size() const { return count; }
    /** Events emitted since construction/clear (accepted by mask). */
    uint64_t emitted() const { return nEmitted; }
    /** Events discarded because the ring was full. */
    uint64_t dropped() const { return nDropped; }

    /** The i-th held event, oldest first. */
    const Event &
    at(size_t i) const
    {
        return ring[(head + i) % ring.size()];
    }

    /** Visit held events oldest-first. */
    template <typename F>
    void
    forEach(F &&f) const
    {
        for (size_t i = 0; i < count; ++i)
            f(at(i));
    }

    /** Forget everything recorded (capacity and mask unchanged). */
    void clear();

    /**
     * Render as Chrome-trace JSON (the "JSON Array Format" with
     * metadata): open in Perfetto (ui.perfetto.dev) or
     * chrome://tracing. Timestamps are simulated λ cycles. The
     * rendering is deterministic: fixed key order, integers only.
     */
    std::string toChromeJson() const;

  private:
    TraceConfig cfg;
    std::vector<Event> ring;
    size_t head = 0;  ///< Index of the oldest held event.
    size_t count = 0; ///< Held events.
    uint64_t nEmitted = 0;
    uint64_t nDropped = 0;
};

} // namespace zarf::obs

#endif // ZARF_OBS_TRACE_HH
