/**
 * @file
 * The structured event vocabulary of the observability layer
 * (docs/OBSERVABILITY.md).
 *
 * Every event is a fixed-size record: a timestamp in simulated
 * λ cycles (20 ns each; the two-layer system's shared timeline), an
 * event kind, and two kind-specific integer arguments. Events carry
 * no strings and no host-side state, so recording is allocation-free
 * and traces are bit-deterministic across runs and thread counts.
 *
 * Kinds are grouped into categories (Cat) that can be masked
 * independently — the hot execution-step events (MachineExec,
 * Mblaze) are high-volume and usually off, while the system-level
 * and lifecycle categories are cheap enough to keep on for golden
 * traces — and into display tracks (Track) so a λ-layer GC pause
 * lines up visually against an mblaze pacing deadline in Perfetto.
 */

#ifndef ZARF_OBS_EVENTS_HH
#define ZARF_OBS_EVENTS_HH

#include <cstdint>

#include "support/types.hh"

namespace zarf::obs
{

/** Maskable event categories (bitmask values). */
enum class Cat : uint32_t
{
    MachineLife = 1u << 0, ///< λ-machine load/boot/done/fail.
    MachineGc = 1u << 1,   ///< λ-machine collection pauses.
    MachineExec = 1u << 2, ///< Per-instruction λ events (high volume).
    System = 1u << 3,      ///< Devices, channel, watchdog, faults.
    Mblaze = 1u << 4,      ///< Imperative-core branches/traps/IO.
};

constexpr uint32_t kAllCats = 0x1fu;

/** Display tracks (Chrome-trace tids). */
enum class Track : uint8_t
{
    Lambda = 0, ///< λ-machine execution.
    LambdaGc,   ///< λ-machine collection pauses.
    Mblaze,     ///< Imperative core.
    System,     ///< Devices, watchdog, fault injection.
    NumTracks,
};

/** Event kinds. The `a`/`b` argument meanings are listed per kind. */
enum class EventKind : uint8_t
{
    // MachineLife (Track::Lambda).
    MachLoad = 0,    ///< a = image words, b = load cycles.
    MachBoot,        ///< a = entry function index.
    MachDone,        ///< Program reduced to a value.
    MachFail,        ///< a = MachineStatus that latched.

    // MachineGc (Track::LambdaGc). Begin/End always pair, never
    // nest; End.ts = Begin.ts + End.b (pause cycles).
    GcBegin,         ///< a = used words before the collection.
    GcEnd,           ///< a = live words after, b = pause cycles.

    // MachineExec (Track::Lambda; instants, high volume).
    ExecLet,         ///< a = callee identifier, b = argument count.
    ExecCase,        ///< a = executing function identifier.
    ExecResult,      ///< a = executing function identifier.
    EvalEnter,       ///< Thunk entry. a = function id, b = args.
    PrimOp,          ///< Primitive executes. a = prim identifier.

    // System (Track::System).
    TickConsumed,    ///< a = lag behind the due time, λ cycles.
    DeadlineMiss,    ///< a = lag (>= one tick period).
    Shock,           ///< a = pacing value written.
    ChanPush,        ///< a = word, b = FIFO depth after the push.
    ChanPop,         ///< a = word, b = FIFO depth after the pop.
    ChanOverflow,    ///< a = word dropped by the full FIFO.
    ChanFaultDrop,   ///< a = word lost to an injected drop fault.
    ChanFaultDup,    ///< a = word duplicated by an injected fault.
    SensorAlert,     ///< a = SensorAlert::Kind.
    FaultInjected,   ///< a = fault::FaultKind of the injection.
    MonitorFault,    ///< a = MbFaultInfo::Cause, b = faulting pc.
    WatchdogTrip,    ///< a = MachineStatus seen, b = restart ordinal.
    WatchdogRestart, ///< a = blackout cycles, b = restart ordinal.
    Degraded,        ///< a = restart ordinal that degraded.
    LambdaDead,      ///< a = restart ordinal that gave up.
    Resync,          ///< a = episode count replayed to the monitor.

    // Mblaze (Track::Mblaze).
    MbBranch,        ///< Taken conditional branch. a = pc, b = target.
    MbTrap,          ///< a = MbFaultInfo::Cause, b = faulting pc.
    MbHalt,          ///< a = pc of the halt.
    MbIn,            ///< a = port, b = value read.
    MbOut,           ///< a = port, b = value written.

    // Harness resilience (verify/budget.hh, verify/supervise.hh).
    // Appended after the Mblaze block so every pre-existing kind
    // keeps its ordinal and golden traces stay stable.
    BudgetTrip,      ///< a = verify::BudgetTrip code, b = λ cycles.
    TaskRetry,       ///< a = attempt number, b = trip code retried.
    Quarantine,      ///< a = payload hash (truncated to int64).

    NumKinds,
};

constexpr size_t kNumEventKinds =
    static_cast<size_t>(EventKind::NumKinds);

/** One recorded event. */
struct Event
{
    Cycles ts = 0;   ///< Simulated λ cycles (plus any epoch bias).
    int64_t a = 0;   ///< Kind-specific argument.
    int64_t b = 0;   ///< Kind-specific argument.
    EventKind kind = EventKind::MachLoad;
};

/** Stable display name (Chrome-trace "name" field). */
const char *eventName(EventKind k);

/** Category of a kind (mask checks). */
Cat eventCat(EventKind k);

/** Display track of a kind. */
Track eventTrack(EventKind k);

/** Stable display name of a track (thread_name metadata). */
const char *trackName(Track t);

/** Chrome-trace phase: 'B'/'E' for the GC pair, 'i' otherwise. */
char eventPhase(EventKind k);

} // namespace zarf::obs

#endif // ZARF_OBS_EVENTS_HH
