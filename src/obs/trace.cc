#include "obs/trace.hh"

#include "support/logging.hh"

namespace zarf::obs
{

namespace
{

struct KindInfo
{
    const char *name;
    Cat cat;
    Track track;
    char phase;
};

constexpr KindInfo kKinds[kNumEventKinds] = {
    // MachineLife
    { "mach.load", Cat::MachineLife, Track::Lambda, 'i' },
    { "mach.boot", Cat::MachineLife, Track::Lambda, 'i' },
    { "mach.done", Cat::MachineLife, Track::Lambda, 'i' },
    { "mach.fail", Cat::MachineLife, Track::Lambda, 'i' },
    // MachineGc
    { "gc", Cat::MachineGc, Track::LambdaGc, 'B' },
    { "gc", Cat::MachineGc, Track::LambdaGc, 'E' },
    // MachineExec
    { "exec.let", Cat::MachineExec, Track::Lambda, 'i' },
    { "exec.case", Cat::MachineExec, Track::Lambda, 'i' },
    { "exec.result", Cat::MachineExec, Track::Lambda, 'i' },
    { "eval.enter", Cat::MachineExec, Track::Lambda, 'i' },
    { "prim.op", Cat::MachineExec, Track::Lambda, 'i' },
    // System
    { "tick", Cat::System, Track::System, 'i' },
    { "deadline.miss", Cat::System, Track::System, 'i' },
    { "shock", Cat::System, Track::System, 'i' },
    { "chan.push", Cat::System, Track::System, 'i' },
    { "chan.pop", Cat::System, Track::System, 'i' },
    { "chan.overflow", Cat::System, Track::System, 'i' },
    { "chan.fault.drop", Cat::System, Track::System, 'i' },
    { "chan.fault.dup", Cat::System, Track::System, 'i' },
    { "sensor.alert", Cat::System, Track::System, 'i' },
    { "fault.injected", Cat::System, Track::System, 'i' },
    { "monitor.fault", Cat::System, Track::System, 'i' },
    { "watchdog.trip", Cat::System, Track::System, 'i' },
    { "watchdog.restart", Cat::System, Track::System, 'i' },
    { "watchdog.degraded", Cat::System, Track::System, 'i' },
    { "watchdog.lambda-dead", Cat::System, Track::System, 'i' },
    { "watchdog.resync", Cat::System, Track::System, 'i' },
    // Mblaze
    { "mb.branch", Cat::Mblaze, Track::Mblaze, 'i' },
    { "mb.trap", Cat::Mblaze, Track::Mblaze, 'i' },
    { "mb.halt", Cat::Mblaze, Track::Mblaze, 'i' },
    { "mb.in", Cat::Mblaze, Track::Mblaze, 'i' },
    { "mb.out", Cat::Mblaze, Track::Mblaze, 'i' },
    // Harness resilience (appended; ordinals above must not move).
    { "budget.trip", Cat::MachineLife, Track::Lambda, 'i' },
    { "task.retry", Cat::System, Track::System, 'i' },
    { "quarantine", Cat::System, Track::System, 'i' },
};

constexpr const char *kTrackNames[] = {
    "lambda-machine",
    "lambda-gc",
    "mblaze-core",
    "system-devices",
};

} // namespace

const char *
eventName(EventKind k)
{
    return kKinds[static_cast<size_t>(k)].name;
}

Cat
eventCat(EventKind k)
{
    return kKinds[static_cast<size_t>(k)].cat;
}

Track
eventTrack(EventKind k)
{
    return kKinds[static_cast<size_t>(k)].track;
}

char
eventPhase(EventKind k)
{
    return kKinds[static_cast<size_t>(k)].phase;
}

const char *
trackName(Track t)
{
    return kTrackNames[static_cast<size_t>(t)];
}

Recorder::Recorder(TraceConfig config) : cfg(config)
{
    if (cfg.capacity == 0)
        cfg.capacity = 1;
    ring.resize(cfg.capacity);
}

void
Recorder::clear()
{
    head = 0;
    count = 0;
    nEmitted = 0;
    nDropped = 0;
}

std::string
Recorder::toChromeJson() const
{
    std::string s;
    s.reserve(128 + count * 96);
    s += "{\n\"traceEvents\": [\n";

    // Track-name metadata first, so Perfetto labels the rows.
    for (size_t t = 0; t < size_t(Track::NumTracks); ++t) {
        s += strprintf("{\"name\": \"thread_name\", \"ph\": \"M\", "
                       "\"pid\": 1, \"tid\": %zu, "
                       "\"args\": {\"name\": \"%s\"}},\n",
                       t, kTrackNames[t]);
    }

    for (size_t i = 0; i < count; ++i) {
        const Event &e = at(i);
        char ph = eventPhase(e.kind);
        s += strprintf(
            "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%c\"%s, "
            "\"ts\": %llu, \"pid\": 1, \"tid\": %u, "
            "\"args\": {\"a\": %lld, \"b\": %lld}}%s\n",
            eventName(e.kind), trackName(eventTrack(e.kind)), ph,
            ph == 'i' ? ", \"s\": \"t\"" : "",
            (unsigned long long)e.ts,
            unsigned(eventTrack(e.kind)), (long long)e.a,
            (long long)e.b, i + 1 < count ? "," : "");
    }

    s += "],\n";
    s += "\"displayTimeUnit\": \"ms\",\n";
    s += strprintf("\"otherData\": {\"clock\": \"lambda-cycles\", "
                   "\"emitted\": %llu, \"dropped\": %llu}\n",
                   (unsigned long long)nEmitted,
                   (unsigned long long)nDropped);
    s += "}\n";
    return s;
}

} // namespace zarf::obs
