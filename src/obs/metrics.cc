#include "obs/metrics.hh"

#include "support/logging.hh"

namespace zarf::obs
{

void
Metrics::setCounter(const std::string &name, uint64_t value)
{
    counters[name] = value;
}

void
Metrics::setGauge(const std::string &name, int64_t value)
{
    gauges[name] = value;
}

void
Metrics::addBucket(const std::string &histogram,
                   const std::string &bucket, uint64_t value)
{
    histograms[histogram].push_back({ bucket, value });
}

uint64_t
Metrics::counter(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

std::string
Metrics::toJson() const
{
    std::string s;
    s += "{\n";

    s += "  \"counters\": {";
    {
        bool first = true;
        for (const auto &[k, v] : counters) {
            s += strprintf("%s\n    \"%s\": %llu", first ? "" : ",",
                           k.c_str(), (unsigned long long)v);
            first = false;
        }
        s += counters.empty() ? "},\n" : "\n  },\n";
    }

    s += "  \"gauges\": {";
    {
        bool first = true;
        for (const auto &[k, v] : gauges) {
            s += strprintf("%s\n    \"%s\": %lld", first ? "" : ",",
                           k.c_str(), (long long)v);
            first = false;
        }
        s += gauges.empty() ? "},\n" : "\n  },\n";
    }

    s += "  \"histograms\": {";
    {
        bool firstH = true;
        for (const auto &[name, buckets] : histograms) {
            s += strprintf("%s\n    \"%s\": {", firstH ? "" : ",",
                           name.c_str());
            bool firstB = true;
            for (const auto &[bucket, v] : buckets) {
                s += strprintf("%s\n      \"%s\": %llu",
                               firstB ? "" : ",", bucket.c_str(),
                               (unsigned long long)v);
                firstB = false;
            }
            s += buckets.empty() ? "}" : "\n    }";
            firstH = false;
        }
        s += histograms.empty() ? "}\n" : "\n  }\n";
    }

    s += "}\n";
    return s;
}

} // namespace zarf::obs
