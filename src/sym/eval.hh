/**
 * @file
 * The symbolic evaluator over decoded Zarf images: one run executes
 * one *path* of the program under a decision script, producing the
 * path condition, the symbolic result, the symbolic I/O log, and a
 * λ-cycle upper bound for that path (docs/SYMBOLIC.md).
 *
 * Structure mirrors the lazy small-step reference (sem/smallstep.cc)
 * state for state — same heap node shapes, same continuation frames,
 * same update-collapsing, same error-latching rules — except that a
 * runtime word may be a symbolic *term* (sym/term.hh) instead of a
 * concrete integer. Wherever a term's concrete value would steer
 * control, the evaluator reaches a **choice point**:
 *
 *   - case dispatch on a symbolic integer scrutinee: one alternative
 *     per literal branch (plus else), each contributing ==/!= atoms;
 *   - div/mod with a symbolic divisor: the non-zero continuation or
 *     the Error(kErrDivZero) continuation;
 *   - getint with a symbolic port: a single forced alternative that
 *     pins the port to its value under the seed assignment (the
 *     deterministic RecordBus scripts reads by (port, ordinal), so
 *     an unpinned port would make the read value symbolic in a way
 *     no finite path condition captures).
 *
 * The first `script.size()` choices are dictated by the script;
 * beyond it the evaluator takes the first alternative consistent
 * with the path condition and records which siblings were also
 * consistent, which is exactly what the explorer (sym/explore.hh)
 * needs to schedule the remaining paths.
 *
 * Cycle accounting: every mirrored action charges at least what the
 * cycle-level machine charges for the same action under the shared
 * TimingModel, plus a small per-step pad, so the per-path bound
 * dominates the concrete machine's cycles() (load cycles are added
 * by the explorer; GC is excluded on both sides — machine cycles()
 * is load + execution, with collection accounted separately). The
 * concolic harness (sym/concolic.hh) enforces dominance on every
 * replayed path.
 */

#ifndef ZARF_SYM_EVAL_HH
#define ZARF_SYM_EVAL_HH

#include <memory>
#include <string>
#include <vector>

#include "isa/ast.hh"
#include "machine/timing.hh"
#include "sem/value.hh"
#include "sym/solver.hh"
#include "sym/term.hh"

namespace zarf::sym
{

/** A deep-forced symbolic result value: the Value tree with integer
 *  leaves generalized to terms. */
struct SymValue;
using SymValuePtr = std::shared_ptr<const SymValue>;
struct SymValue
{
    enum class Kind { Int, Cons, Closure };
    Kind kind = Kind::Int;
    TermId t = kNoTerm; ///< Kind::Int.
    Word id = 0;        ///< Cons / Closure identifier.
    std::vector<SymValuePtr> items;

    /** Union variable support of every integer leaf. */
    uint64_t support(const TermArena &arena) const;
    std::string toString(const TermArena &arena) const;
};

/** Evaluate a symbolic value tree under a concrete assignment; null
 *  when a leaf term evaluates to an error (which cannot happen under
 *  a model of the path condition that produced the tree). */
ValuePtr concretizeValue(const TermArena &arena, const SymValue &v,
                         const std::vector<SWord> &assign);

/** One symbolic I/O operation. */
struct SymIo
{
    bool isGet = false;
    TermId port = kNoTerm;
    TermId value = kNoTerm;
};

/** One recorded choice point of a path. */
struct ChoiceRec
{
    /** Alternative actually taken. */
    unsigned taken = 0;
    /** Sibling alternatives (≠ taken) that were consistent with the
     *  path condition at this point — the explorer's frontier. */
    std::vector<unsigned> siblings;
};

/** The decision script: alternative index per choice point. */
using Script = std::vector<unsigned>;

/** Outcome of one path run. */
struct PathRun
{
    enum class Status
    {
        Done,      ///< The path terminates in a value.
        Stuck,     ///< The path latches the Stuck condition.
        Truncated, ///< Step/choice fuel exhausted; path incomplete.
    };

    Status status = Status::Truncated;
    std::string detail; ///< Stuck reason or truncation cause.
    /** Path condition (conjunction of atoms). */
    std::vector<Atom> pc;
    /** Symbolic result (status Done). */
    SymValuePtr value;
    /** Symbolic I/O log, in issue order. */
    std::vector<SymIo> io;
    /** Execution-cycle upper bound for this path (load excluded). */
    Cycles cycleBound = 0;
    /** Full choice trace, including the scripted prefix. */
    std::vector<ChoiceRec> choices;
    uint64_t steps = 0;

    /** Union support of pc, result, and I/O — the taint footprint
     *  the non-interference check inspects. */
    uint64_t observableSupport(const TermArena &arena) const;
};

/** Evaluator sizing. */
struct SymEvalConfig
{
    /** Micro-step fuel per path (mirrors SmallStepConfig). */
    uint64_t maxSteps = 200'000;
    /** Choice points per path; a fork beyond this truncates. */
    unsigned maxChoices = 24;
    /** Symbolic input sites claimed from the entry function. */
    unsigned maxVars = 8;
    TimingModel timing{};
    /** Extra cycles charged per micro-step on top of the mirrored
     *  action charges — slack so the bound stays an upper bound. */
    Cycles padPerStep = 4;
};

/**
 * Enumerate the symbolic input sites of a program: the immediate
 * operands of the entry function's body, in deterministic pre-order
 * (let: arguments then body; case: scrutinee, branch bodies in
 * order, else; result: value), capped at maxVars. The same walk
 * concretizes models back into images, so evaluator and patcher
 * cannot disagree about which site is which variable.
 *
 * @return one mutable operand pointer per symbolic variable, in
 *         variable order; pointers alias into `program`
 */
std::vector<Operand *> collectSymSites(Program &program,
                                       unsigned maxVars);

/**
 * The evaluator. Owns a clone of the program; one instance runs any
 * number of paths over it (runPath resets all per-path state).
 */
class SymEval
{
  public:
    SymEval(const Program &program, SymEvalConfig cfg = {});
    ~SymEval();

    /** Number of symbolic input variables claimed. */
    unsigned numVars() const;

    /** Original immediate value of each symbolic site — the seed
     *  assignment (models default to it, getint port pinning uses
     *  it). */
    const std::vector<SWord> &seedAssign() const;

    /** Run one path under `script` (see file header). */
    PathRun runPath(const Script &script);

    /** The shared term arena (valid for the evaluator's lifetime;
     *  terms persist across runPath calls). */
    const TermArena &arena() const;

  private:
    class Impl;
    std::unique_ptr<Impl> impl;
};

} // namespace zarf::sym

#endif // ZARF_SYM_EVAL_HH
