#include "sym/explore.hh"

#include <deque>

namespace zarf::sym
{

ExploreResult
explorePaths(SymEval &eval, const ExploreConfig &cfg)
{
    ExploreResult res;
    std::deque<Script> frontier;
    frontier.push_back({});

    while (!frontier.empty()) {
        if (res.paths.size() >= cfg.maxPaths) {
            res.exhaustive = false;
            break;
        }
        Script script;
        if (cfg.breadthFirst) {
            script = std::move(frontier.front());
            frontier.pop_front();
        } else {
            script = std::move(frontier.back());
            frontier.pop_back();
        }

        PathRun run = eval.runPath(script);

        // Children: one per consistent sibling at every choice point
        // beyond the scripted prefix, shallow choice first.
        std::vector<Script> children;
        Script base = script;
        for (size_t i = script.size(); i < run.choices.size(); ++i) {
            for (unsigned alt : run.choices[i].siblings) {
                Script child = base;
                child.push_back(alt);
                children.push_back(std::move(child));
            }
            base.push_back(run.choices[i].taken);
        }
        if (cfg.breadthFirst) {
            for (auto &c : children)
                frontier.push_back(std::move(c));
        } else {
            // Reverse push so the shallowest sibling pops first.
            for (auto it = children.rbegin(); it != children.rend();
                 ++it)
                frontier.push_back(std::move(*it));
        }

        switch (run.status) {
          case PathRun::Status::Done:
            res.donePaths++;
            break;
          case PathRun::Status::Stuck:
            res.stuckPaths++;
            break;
          case PathRun::Status::Truncated:
            res.truncatedPaths++;
            res.boundComplete = false;
            break;
        }
        if (run.cycleBound > res.maxCycleBound)
            res.maxCycleBound = run.cycleBound;
        res.paths.push_back({ std::move(script), std::move(run) });
    }

    if (!res.exhaustive)
        res.boundComplete = false;
    return res;
}

} // namespace zarf::sym
