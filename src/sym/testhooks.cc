#include "sym/testhooks.hh"

namespace zarf::sym::testhooks
{

bool symBrokenMulTransfer = false;

} // namespace zarf::sym::testhooks
