#include "sym/term.hh"

#include <cstdio>

#include "support/logging.hh"
#include "sym/testhooks.hh"

namespace zarf::sym
{

PrimResult
aluGround(Prim op, const std::vector<SWord> &args)
{
    PrimResult r = evalAlu(op, args);
    if (testhooks::symBrokenMulTransfer && op == Prim::Mul && r.ok)
        r.value = wrapInt31(int64_t(r.value) + 1);
    return r;
}

namespace
{

uint64_t
nodeKey(const TermNode &n)
{
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ull;
    };
    mix(uint64_t(n.kind));
    switch (n.kind) {
      case TermNode::Kind::Const:
        mix(uint64_t(uint32_t(n.cval)));
        break;
      case TermNode::Kind::Var:
        mix(n.var);
        break;
      case TermNode::Kind::Op:
        mix(uint64_t(n.op));
        mix(n.a);
        mix(uint64_t(n.b) + 1);
        break;
    }
    return h;
}

bool
sameNode(const TermNode &a, const TermNode &b)
{
    if (a.kind != b.kind)
        return false;
    switch (a.kind) {
      case TermNode::Kind::Const:
        return a.cval == b.cval;
      case TermNode::Kind::Var:
        return a.var == b.var;
      case TermNode::Kind::Op:
        return a.op == b.op && a.a == b.a && a.b == b.b;
    }
    return false;
}

unsigned
aluArity(Prim op)
{
    switch (op) {
      case Prim::Neg:
      case Prim::Abs:
      case Prim::BNot:
        return 1;
      default:
        return 2;
    }
}

} // namespace

TermId
TermArena::intern(TermNode n)
{
    uint64_t key = nodeKey(n);
    auto &bucket = table[key];
    for (TermId t : bucket) {
        if (sameNode(nodes[t], n))
            return t;
    }
    TermId t = TermId(nodes.size());
    nodes.push_back(n);
    bucket.push_back(t);
    return t;
}

TermId
TermArena::constant(SWord v)
{
    TermNode n;
    n.kind = TermNode::Kind::Const;
    n.cval = wrapInt31(v);
    return intern(n);
}

TermId
TermArena::variable(unsigned var)
{
    if (var >= kMaxSymVars)
        panic("sym: variable index %u exceeds kMaxSymVars", var);
    TermNode n;
    n.kind = TermNode::Kind::Var;
    n.var = var;
    n.support = uint64_t(1) << var;
    return intern(n);
}

TermId
TermArena::apply(Prim op, TermId a, TermId b)
{
    unsigned arity = aluArity(op);
    if ((arity == 1) != (b == kNoTerm))
        panic("sym: arity mismatch applying prim 0x%x",
              unsigned(op));
    // Fold when every operand is constant.
    if (isConst(a) && (b == kNoTerm || isConst(b))) {
        std::vector<SWord> args{ constValue(a) };
        if (b != kNoTerm)
            args.push_back(constValue(b));
        PrimResult r = aluGround(op, args);
        if (!r.ok)
            panic("sym: folded an error-producing application "
                  "(prim 0x%x) — the evaluator must fork "
                  "division-by-zero before building the term",
                  unsigned(op));
        return constant(r.value);
    }
    TermNode n;
    n.kind = TermNode::Kind::Op;
    n.op = op;
    n.a = a;
    n.b = b;
    n.support = nodes[a].support |
                (b == kNoTerm ? 0 : nodes[b].support);
    return intern(n);
}

SWord
TermArena::constValue(TermId t) const
{
    const TermNode &n = nodes[t];
    if (n.kind != TermNode::Kind::Const)
        panic("sym: constValue on a non-constant term");
    return n.cval;
}

TermEvalResult
TermArena::evalUnder(TermId t, const std::vector<SWord> &assign) const
{
    const TermNode &n = nodes[t];
    switch (n.kind) {
      case TermNode::Kind::Const:
        return { true, n.cval, 0 };
      case TermNode::Kind::Var:
        if (n.var >= assign.size())
            panic("sym: assignment has no value for v%u", n.var);
        return { true, wrapInt31(assign[n.var]), 0 };
      case TermNode::Kind::Op: {
        TermEvalResult a = evalUnder(n.a, assign);
        if (!a.ok)
            return a;
        std::vector<SWord> args{ a.value };
        if (n.b != kNoTerm) {
            TermEvalResult b = evalUnder(n.b, assign);
            if (!b.ok)
                return b;
            args.push_back(b.value);
        }
        PrimResult r = aluGround(n.op, args);
        return { r.ok, r.value, r.errCode };
      }
    }
    return { true, 0, 0 };
}

std::string
TermArena::toString(TermId t) const
{
    const TermNode &n = nodes[t];
    char buf[32];
    switch (n.kind) {
      case TermNode::Kind::Const:
        std::snprintf(buf, sizeof(buf), "%d", n.cval);
        return buf;
      case TermNode::Kind::Var:
        std::snprintf(buf, sizeof(buf), "v%u", n.var);
        return buf;
      case TermNode::Kind::Op: {
        auto p = primById(Word(n.op));
        std::string s = "(";
        s += p ? p->name : "?";
        s += " " + toString(n.a);
        if (n.b != kNoTerm)
            s += " " + toString(n.b);
        return s + ")";
      }
    }
    return "?";
}

} // namespace zarf::sym
