/**
 * @file
 * Path-condition store and bitvector model finder for the symbolic
 * evaluator — interval/congruence reasoning plus bounded model
 * enumeration, no external SMT dependency (docs/SYMBOLIC.md).
 *
 * A path condition is a conjunction of *atoms*, each pinning or
 * excluding one concrete value of one term:
 *
 *     t == lit      or      t != lit
 *
 * which is exactly the shape the evaluator's choice points produce —
 * case dispatch on a symbolic integer, the division-by-zero fork,
 * and getint port concretization all decide "is this term equal to
 * this literal".
 *
 * The solver is asymmetric by design:
 *
 *  - `Sat` is **sound unconditionally**: every returned model has
 *    been verified by evaluating every atom's term under it through
 *    aluGround (the concrete evalAlu), so a Sat answer can never
 *    assert a path the machine would not take.
 *  - `Unsat` is claimed only from proofs that need no search: pin
 *    conflicts on one term, pins propagated through exact ring
 *    bijections (add/sub/neg/bxor/bnot with constant operands are
 *    bijections of the 31-bit wrap ring, so inversion is exact),
 *    pins falling outside the encodable immediate domain, and empty
 *    intervals derived from comparison-result atoms.
 *  - Everything else is `Unknown` — the explorer treats such paths
 *    as possibly-feasible (their cycle bounds still count toward
 *    WCET) but cannot replay them.
 *
 * Variables range over the encodable immediate domain
 * [kMinImm, kMaxImm] (isa/encoding.hh): a model is only useful if
 * the concretized image can be re-encoded, and the restriction makes
 * out-of-domain pins a sound Unsat.
 */

#ifndef ZARF_SYM_SOLVER_HH
#define ZARF_SYM_SOLVER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sym/term.hh"

namespace zarf::sym
{

/** One conjunct of a path condition: t == lit or t != lit. */
struct Atom
{
    TermId t = kNoTerm;
    bool eq = true;
    SWord lit = 0;

    bool
    operator==(const Atom &o) const
    {
        return t == o.t && eq == o.eq && lit == o.lit;
    }
};

/** Render one atom for diagnostics. */
std::string atomToString(const TermArena &arena, const Atom &a);

enum class SolveStatus
{
    Sat,     ///< model holds a verified satisfying assignment.
    Unsat,   ///< proven infeasible (see header for the proof forms).
    Unknown, ///< search exhausted without a model or a proof.
};

const char *solveStatusName(SolveStatus s);

struct SolverConfig
{
    /** Total full-assignment verifications before giving up. */
    uint64_t maxEvals = 8192;
    /** Candidate values tried per variable. */
    unsigned maxCandidatesPerVar = 24;
    /** Seed of the deterministic sampling stream. */
    uint64_t seed = 1;
};

struct SolveResult
{
    SolveStatus status = SolveStatus::Unknown;
    /** Verified assignment, one value per variable (status Sat).
     *  Variables outside every atom's support keep their seed
     *  value. All values lie in [kMinImm, kMaxImm]. */
    std::vector<SWord> model;
    /** Full-assignment verifications consumed. */
    uint64_t evals = 0;
    /** Unsat proof description / Unknown context. */
    std::string note;
};

/**
 * Decide a conjunction of atoms over `numVars` variables.
 *
 * @param arena the term arena the atoms' terms live in
 * @param atoms the path condition (conjunction)
 * @param numVars number of symbolic variables
 * @param seedAssign preferred value per variable (the original
 *        immediates) — tried first, and kept for variables no atom
 *        constrains, so models stay close to the concrete seed
 * @param cfg search bounds
 */
SolveResult solveAtoms(const TermArena &arena,
                       const std::vector<Atom> &atoms,
                       unsigned numVars,
                       const std::vector<SWord> &seedAssign,
                       const SolverConfig &cfg = {});

/**
 * Incremental syntactic consistency filter the evaluator uses at
 * choice points: tracks, per term, the pinned value and the excluded
 * set, and rejects an atom that contradicts them. Rejection is a
 * sound (term-local) Unsat; acceptance proves nothing.
 */
class PathCond
{
  public:
    /** Add an atom; false iff it term-locally contradicts the
     *  condition (the atom is then NOT added). Duplicates are
     *  absorbed. */
    bool add(const TermArena &arena, const Atom &a);

    /** Would add() accept, without mutating? */
    bool consistent(const TermArena &arena, const Atom &a) const;

    const std::vector<Atom> &atoms() const { return list; }

    /** Union variable support of every atom. */
    uint64_t support(const TermArena &arena) const;

  private:
    struct TermFacts
    {
        bool pinned = false;
        SWord pin = 0;
        std::vector<SWord> excluded;
    };
    int findFacts(TermId t) const;

    std::vector<Atom> list;
    std::vector<std::pair<TermId, TermFacts>> facts;
};

} // namespace zarf::sym

#endif // ZARF_SYM_SOLVER_HH
