/**
 * @file
 * Symbolic machine integers for the Zarf symbolic evaluator
 * (docs/SYMBOLIC.md).
 *
 * A term is a 31-bit machine integer whose value may depend on the
 * designated symbolic input slots of an image: a constant, an input
 * variable, or an ALU primitive applied to sub-terms. Terms live in a
 * hash-consed arena, so structurally equal terms share one identifier
 * and every term carries a precomputed variable-support bitmask (used
 * by the taint/non-interference analysis).
 *
 * There is exactly one ground-truth evaluation rule: every operator
 * node is evaluated with `isa/prims.hh::evalAlu`, the same inline
 * function the cycle-level machine and both reference interpreters
 * execute. The symbolic layer therefore cannot drift from the
 * concrete ISA semantics by re-implementing an operation — constant
 * folding, solver model checking, and concolic value prediction all
 * bottom out in the identical transfer function. (The deliberate
 * exception is the mutation-kill test hook in sym/testhooks.hh,
 * which corrupts this single choke point to prove the concolic
 * replay suite would catch a wrong transfer rule.)
 *
 * Division and modulo by zero are *representable* inputs, so term
 * evaluation returns the same ok/errCode shape as evalAlu; the
 * evaluator forks the path on a symbolic divisor before ever
 * building a Div/Mod node on the non-zero side.
 */

#ifndef ZARF_SYM_TERM_HH
#define ZARF_SYM_TERM_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/prims.hh"
#include "support/types.hh"

namespace zarf::sym
{

/** Index of a term in its arena. */
using TermId = uint32_t;
constexpr TermId kNoTerm = 0xffffffffu;

/** Support masks are 64-bit, capping symbolic inputs per image. */
constexpr unsigned kMaxSymVars = 64;

/** One arena node. */
struct TermNode
{
    enum class Kind : uint8_t { Const, Var, Op };

    Kind kind = Kind::Const;
    Prim op = Prim::Add; ///< Kind::Op only.
    SWord cval = 0;      ///< Kind::Const only.
    unsigned var = 0;    ///< Kind::Var only.
    TermId a = kNoTerm;  ///< First operand (Kind::Op).
    TermId b = kNoTerm;  ///< Second operand, kNoTerm for unary ops.
    /** Union of the input variables this term depends on. */
    uint64_t support = 0;
};

/** Outcome of evaluating one term under a concrete assignment —
 *  mirrors PrimResult so error latching flows through unchanged. */
struct TermEvalResult
{
    bool ok = true;
    SWord value = 0;   ///< Valid when ok.
    SWord errCode = 0; ///< Valid when !ok (kErrDivZero).
};

/**
 * Hash-consed term arena. One arena serves a whole exploration
 * session over one image, so path conditions recorded on different
 * paths share structure and remain comparable by TermId.
 */
class TermArena
{
  public:
    /** Intern a constant (wrapped to the 31-bit machine range). */
    TermId constant(SWord v);

    /** Intern input variable `var` (< kMaxSymVars). */
    TermId variable(unsigned var);

    /**
     * Intern the application of a pure ALU primitive. When every
     * operand is constant the node folds immediately through
     * evalAlu; the caller must have excluded foldable
     * division-by-zero first (checked fatal here, because a folded
     * error has no integer representation).
     *
     * @param op a pure ALU primitive (not I/O, not InvokeGc)
     * @param a first operand
     * @param b second operand; kNoTerm for unary primitives
     */
    TermId apply(Prim op, TermId a, TermId b = kNoTerm);

    const TermNode &node(TermId t) const { return nodes[t]; }
    size_t size() const { return nodes.size(); }

    /** True when the term has no variable dependence. */
    bool
    isConst(TermId t) const
    {
        return nodes[t].kind == TermNode::Kind::Const;
    }

    /** Constant value of a Kind::Const term (checked fatal else). */
    SWord constValue(TermId t) const;

    uint64_t support(TermId t) const { return nodes[t].support; }

    /**
     * Evaluate under a concrete assignment (`assign[var]` for every
     * variable in the term's support). Every operator node is
     * computed by evalAlu — the concrete ground truth — so a model
     * accepted here is exactly a model the machine agrees with.
     */
    TermEvalResult evalUnder(TermId t,
                             const std::vector<SWord> &assign) const;

    /** Render for diagnostics: "(add v0 3)". */
    std::string toString(TermId t) const;

  private:
    TermId intern(TermNode n);

    std::vector<TermNode> nodes;
    std::unordered_map<uint64_t, std::vector<TermId>> table;
};

/**
 * The single concrete ALU choke point of the symbolic layer: exactly
 * evalAlu, except when the mutation-kill hook
 * (sym/testhooks.hh::symBrokenMulTransfer) deliberately corrupts the
 * Mul rule so tests can prove the concolic replay detects it.
 */
PrimResult aluGround(Prim op, const std::vector<SWord> &args);

} // namespace zarf::sym

#endif // ZARF_SYM_TERM_HH
