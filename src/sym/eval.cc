#include "sym/eval.hh"

#include <optional>
#include <unordered_map>

#include "fuzz/oracle.hh" // RecordBus::scripted — the I/O fixture
#include "ir/lift.hh"
#include "support/logging.hh"

namespace zarf::sym
{

// ----------------------------------------------------------------
// SymValue
// ----------------------------------------------------------------

uint64_t
SymValue::support(const TermArena &arena) const
{
    if (kind == Kind::Int)
        return arena.support(t);
    uint64_t s = 0;
    for (const auto &i : items)
        s |= i->support(arena);
    return s;
}

std::string
SymValue::toString(const TermArena &arena) const
{
    if (kind == Kind::Int)
        return arena.toString(t);
    std::string s = kind == Kind::Cons ? "Cons#" : "Closure#";
    s += std::to_string(id) + "(";
    for (size_t i = 0; i < items.size(); ++i) {
        if (i)
            s += ", ";
        s += items[i]->toString(arena);
    }
    return s + ")";
}

ValuePtr
concretizeValue(const TermArena &arena, const SymValue &v,
                const std::vector<SWord> &assign)
{
    if (v.kind == SymValue::Kind::Int) {
        TermEvalResult r = arena.evalUnder(v.t, assign);
        if (!r.ok)
            return nullptr;
        return Value::makeInt(r.value);
    }
    std::vector<ValuePtr> items;
    items.reserve(v.items.size());
    for (const auto &f : v.items) {
        ValuePtr fv = concretizeValue(arena, *f, assign);
        if (!fv)
            return nullptr;
        items.push_back(std::move(fv));
    }
    if (v.kind == SymValue::Kind::Cons)
        return Value::makeCons(v.id, std::move(items));
    return Value::makeClosure(v.id, std::move(items));
}

uint64_t
PathRun::observableSupport(const TermArena &arena) const
{
    uint64_t s = 0;
    for (const Atom &a : pc)
        s |= arena.support(a.t);
    if (value)
        s |= value->support(arena);
    for (const SymIo &op : io)
        s |= arena.support(op.port) | arena.support(op.value);
    return s;
}

// ----------------------------------------------------------------
// Symbolic input sites
// ----------------------------------------------------------------

std::vector<Operand *>
collectSymSites(Program &program, unsigned maxVars)
{
    // The sites come from the lifted IR: the lifter enumerates the
    // entry body's immediate operands with the canonical walk
    // (isa/sites.hh), which is the same order this function's local
    // walk used to produce — regression-locked by test_ir_lift.cc —
    // so solver models written through these pointers land on the
    // sites the IR (and every other consumer) calls input k.
    if (maxVars > kMaxSymVars)
        maxVars = kMaxSymVars;
    ir::LiftResult lift = ir::liftProgram(program);
    std::vector<Operand *> out = std::move(lift.entrySitePtrs);
    if (out.size() > maxVars)
        out.resize(maxVars);
    return out;
}

// ----------------------------------------------------------------
// The evaluator
// ----------------------------------------------------------------

namespace
{

/** A symbolic runtime word: a term or a heap reference. */
struct SVal
{
    bool isTerm;
    TermId t;
    size_t r;
};

SVal svTerm(TermId t) { return { true, t, 0 }; }
SVal svRef(size_t r) { return { false, kNoTerm, r }; }

/** A symbolic heap node (mirrors sem/smallstep.cc::Node). */
struct Node
{
    enum class Tag { App, Cons, Ind, Blackhole };

    Tag tag = Tag::App;
    bool calleeIsRef = false;
    Word fn = 0;
    SVal callee{};
    std::vector<SVal> args;
    SVal ind{};
};

} // namespace

class SymEval::Impl
{
  public:
    Impl(const Program &program, SymEvalConfig config)
        : prog(program.clone()), cfg(config)
    {
        std::vector<Operand *> sites =
            collectSymSites(prog, cfg.maxVars);
        for (unsigned i = 0; i < sites.size(); ++i) {
            siteVar[sites[i]] = i;
            seeds.push_back(sites[i]->val);
            varTerm.push_back(terms.variable(i));
        }
    }

    unsigned nVars() const { return unsigned(varTerm.size()); }
    const std::vector<SWord> &seedRef() const { return seeds; }
    const TermArena &arenaRef() const { return terms; }

    PathRun
    runPath(const Script &script)
    {
        resetRun(script);
        int entry = prog.entryIndex();
        if (entry < 0)
            return stuckRun("program has no entry function");
        size_t root = allocApp(Program::idOf(size_t(entry)), {});
        chargeAlloc(0);
        drive(svRef(root));
        return finishRun();
    }

  private:
    enum class Mode { Exec, EvalVal, Deliver, Done, Stuck };

    struct Activation
    {
        const Decl *decl = nullptr;
        std::vector<SVal> args;
        std::vector<SVal> locals;
        const Expr *pc = nullptr;
    };

    struct Frame
    {
        enum class Kind { Update, Case, PrimArgs, Apply };

        Kind kind;
        // Update
        size_t target = 0;
        // Case
        Activation act;
        // PrimArgs
        Prim prim{};
        std::vector<SVal> primArgs;
        std::vector<TermId> collected;
        size_t nextArg = 0;
        // Apply
        std::vector<SVal> extra;
    };

    // ---- charging -------------------------------------------------

    void chg(Cycles n) { bound += n; }

    /** Allocation of a header plus `payload` word writes. */
    void
    chargeAlloc(size_t payload)
    {
        chg(cfg.timing.allocHeader +
            Cycles(payload) * cfg.timing.letPerArg);
    }

    // ---- heap -----------------------------------------------------

    size_t
    allocNode(Node n)
    {
        heap.push_back(std::move(n));
        return heap.size() - 1;
    }

    size_t
    allocApp(Word fn, std::vector<SVal> args)
    {
        Node n;
        n.tag = Node::Tag::App;
        n.fn = fn;
        n.args = std::move(args);
        return allocNode(std::move(n));
    }

    size_t
    allocAppRef(SVal callee, std::vector<SVal> args)
    {
        Node n;
        n.tag = Node::Tag::App;
        n.calleeIsRef = true;
        n.callee = callee;
        n.args = std::move(args);
        return allocNode(std::move(n));
    }

    size_t
    allocCons(Word id, std::vector<SVal> fields)
    {
        Node n;
        n.tag = Node::Tag::Cons;
        n.fn = id;
        n.args = std::move(fields);
        return allocNode(std::move(n));
    }

    size_t
    allocError(SWord code)
    {
        chargeAlloc(1);
        return allocCons(static_cast<Word>(Prim::Error),
                         { svTerm(terms.constant(code)) });
    }

    SVal
    chase(SVal v)
    {
        while (!v.isTerm && heap[v.r].tag == Node::Tag::Ind)
            v = heap[v.r].ind;
        return v;
    }

    unsigned
    arityOf(Word id) const
    {
        if (isPrimId(id)) {
            auto p = primById(id);
            return p ? p->arity : 0;
        }
        return prog.decls[Program::indexOf(id)].arity;
    }

    bool
    isConsId(Word id) const
    {
        if (isPrimId(id)) {
            auto p = primById(id);
            return p && p->isConstructor;
        }
        return prog.decls[Program::indexOf(id)].isCons;
    }

    bool
    nodeIsWhnf(const Node &n) const
    {
        if (n.tag == Node::Tag::Cons)
            return true;
        if (n.tag != Node::Tag::App || n.calleeIsRef)
            return false;
        return n.args.size() < arityOf(n.fn);
    }

    // ---- run lifecycle -------------------------------------------

    void
    resetRun(const Script &script)
    {
        heap.clear();
        conts.clear();
        mode = Mode::Done;
        stuckWhere.clear();
        truncatedWhy.clear();
        steps = 0;
        bound = 0;
        ioOrdinal = 0;
        choiceOrdinal = 0;
        this->script = script;
        choices.clear();
        cond = PathCond{};
        ioLog.clear();
        resultValue = nullptr;
    }

    PathRun
    stuckRun(std::string why)
    {
        PathRun r = finishRun();
        r.status = PathRun::Status::Stuck;
        r.detail = std::move(why);
        return r;
    }

    PathRun
    finishRun()
    {
        PathRun r;
        if (!truncatedWhy.empty()) {
            r.status = PathRun::Status::Truncated;
            r.detail = truncatedWhy;
        } else if (mode == Mode::Stuck) {
            r.status = PathRun::Status::Stuck;
            r.detail = stuckWhere;
        } else {
            r.status = PathRun::Status::Done;
        }
        r.pc = cond.atoms();
        r.value = resultValue;
        r.io = ioLog;
        r.cycleBound = bound;
        r.choices = choices;
        r.steps = steps;
        return r;
    }

    void
    setStuck(std::string why)
    {
        mode = Mode::Stuck;
        if (stuckWhere.empty())
            stuckWhere = std::move(why);
    }

    void
    setTruncated(std::string why)
    {
        mode = Mode::Stuck; // stop the driver loop
        if (truncatedWhy.empty())
            truncatedWhy = std::move(why);
    }

    bool halted() const { return mode == Mode::Stuck; }

    // ---- choice points -------------------------------------------

    /**
     * Resolve one choice point. `alts` holds the atom set each
     * alternative would add; the return value is the chosen index,
     * or -1 when the path halts (truncation or a script/pc
     * contradiction). The chosen atoms are added to the condition.
     */
    int
    choose(const std::vector<std::vector<Atom>> &alts)
    {
        // An alternative is viable when its atoms can be added to
        // the condition in sequence without contradiction.
        auto viable = [&](const std::vector<Atom> &atoms) {
            PathCond probe = cond;
            for (const Atom &a : atoms) {
                if (!probe.add(terms, a))
                    return false;
            }
            return true;
        };

        unsigned take;
        std::vector<unsigned> siblings;
        if (choiceOrdinal < script.size()) {
            take = script[choiceOrdinal];
            if (take >= alts.size() || !viable(alts[take])) {
                setTruncated("scripted alternative is not viable");
                return -1;
            }
        } else {
            if (choices.size() >= cfg.maxChoices) {
                setTruncated("choice budget exhausted");
                return -1;
            }
            int first = -1;
            for (unsigned i = 0; i < alts.size(); ++i) {
                if (!viable(alts[i]))
                    continue;
                if (first < 0)
                    first = int(i);
                else
                    siblings.push_back(i);
            }
            if (first < 0) {
                // Unreachable by construction (the else alternative
                // of a case and one side of the div fork are always
                // viable), kept as a safe halt.
                setTruncated("no viable alternative");
                return -1;
            }
            take = unsigned(first);
        }
        for (const Atom &a : alts[take]) {
            if (!cond.add(terms, a))
                panic("sym: viable alternative failed to add");
        }
        choices.push_back({ take, std::move(siblings) });
        ++choiceOrdinal;
        return int(take);
    }

    // ---- driver ---------------------------------------------------

    void
    drive(SVal start)
    {
        std::optional<SVal> whnf = forceToWhnf(start);
        if (!whnf)
            return;
        resultValue = deepValue(*whnf, 0);
    }

    std::optional<SVal>
    forceToWhnf(SVal v)
    {
        mode = Mode::EvalVal;
        cur = v;
        size_t base = conts.size();
        while (true) {
            if (++steps > cfg.maxSteps) {
                setTruncated("step fuel exhausted");
                return std::nullopt;
            }
            chg(cfg.padPerStep);
            switch (mode) {
              case Mode::EvalVal:
                stepEval(base);
                break;
              case Mode::Exec:
                stepExec();
                break;
              case Mode::Deliver:
                if (conts.size() == base)
                    return cur;
                stepDeliver();
                break;
              case Mode::Done:
                return cur;
              case Mode::Stuck:
                return std::nullopt;
            }
        }
    }

    SymValuePtr
    deepValue(SVal v, unsigned depth)
    {
        if (depth > 512) {
            setStuck("deep-force recursion limit");
            return nullptr;
        }
        v = chase(v);
        if (v.isTerm) {
            auto sv = std::make_shared<SymValue>();
            sv->kind = SymValue::Kind::Int;
            sv->t = v.t;
            return sv;
        }
        const Node &n = heap[v.r];
        bool isPartial = n.tag == Node::Tag::App && !n.calleeIsRef &&
                         n.args.size() < arityOf(n.fn);
        if (n.tag == Node::Tag::Cons || isPartial) {
            std::vector<SVal> raw = n.args;
            Word id = n.fn;
            auto sv = std::make_shared<SymValue>();
            sv->kind = n.tag == Node::Tag::Cons
                           ? SymValue::Kind::Cons
                           : SymValue::Kind::Closure;
            sv->id = id;
            for (SVal f : raw) {
                auto w = forceToWhnf(f);
                if (!w)
                    return nullptr;
                SymValuePtr fv = deepValue(*w, depth + 1);
                if (!fv)
                    return nullptr;
                sv->items.push_back(std::move(fv));
            }
            return sv;
        }
        setStuck("deep-force reached a non-WHNF node");
        return nullptr;
    }

    // ---- EvalVal --------------------------------------------------

    void
    stepEval(size_t base)
    {
        cur = chase(cur);
        chg(cfg.timing.whnfCheck);
        if (cur.isTerm) {
            mode = Mode::Deliver;
            return;
        }
        Node &n = heap[cur.r];
        if (n.tag == Node::Tag::Blackhole) {
            setStuck("self-dependent thunk (infinite loop)");
            return;
        }
        if (nodeIsWhnf(n)) {
            mode = Mode::Deliver;
            return;
        }

        size_t target = cur.r;
        while (conts.size() > base &&
               conts.back().kind == Frame::Kind::Update) {
            heap[conts.back().target].tag = Node::Tag::Ind;
            heap[conts.back().target].ind = svRef(target);
            conts.pop_back();
            chg(cfg.timing.collapseUpdate);
        }
        pushUpdate(target);
        chg(cfg.timing.enterThunk);

        if (n.calleeIsRef) {
            Frame f;
            f.kind = Frame::Kind::Apply;
            f.extra = n.args;
            SVal callee = n.callee;
            heap[target].tag = Node::Tag::Blackhole;
            conts.push_back(std::move(f));
            cur = callee;
            return;
        }

        Word fn = n.fn;
        unsigned arity = arityOf(fn);
        std::vector<SVal> args = n.args;
        heap[target].tag = Node::Tag::Blackhole;

        if (isConsId(fn)) {
            cur = svRef(allocError(kErrArity));
            return;
        }
        if (args.size() > arity) {
            Frame f;
            f.kind = Frame::Kind::Apply;
            f.extra.assign(args.begin() + arity, args.end());
            args.resize(arity);
            conts.push_back(std::move(f));
        }
        if (isPrimId(fn)) {
            beginPrim(static_cast<Prim>(fn), std::move(args));
            return;
        }
        const Decl &d = prog.decls[Program::indexOf(fn)];
        chg(cfg.timing.callSetup);
        act = Activation{};
        act.decl = &d;
        act.args = std::move(args);
        act.pc = d.body.get();
        mode = Mode::Exec;
    }

    void
    pushUpdate(size_t target)
    {
        Frame f;
        f.kind = Frame::Kind::Update;
        f.target = target;
        conts.push_back(std::move(f));
    }

    void
    beginPrim(Prim p, std::vector<SVal> args)
    {
        chg(cfg.timing.primSetup);
        Frame f;
        f.kind = Frame::Kind::PrimArgs;
        f.prim = p;
        f.primArgs = std::move(args);
        f.nextArg = 0;
        if (f.primArgs.empty())
            panic("zero-arity primitive application");
        SVal first = f.primArgs[0];
        conts.push_back(std::move(f));
        cur = first;
        mode = Mode::EvalVal;
    }

    // ---- Exec -----------------------------------------------------

    SVal
    resolveOperand(const Operand &op)
    {
        switch (op.src) {
          case Src::Imm: {
            auto it = siteVar.find(&op);
            if (it != siteVar.end())
                return svTerm(varTerm[it->second]);
            return svTerm(terms.constant(op.val));
          }
          case Src::Arg:
            if (size_t(op.val) >= act.args.size()) {
                setStuck("argument index out of range");
                return svTerm(terms.constant(0));
            }
            return act.args[size_t(op.val)];
          case Src::Local:
            if (size_t(op.val) >= act.locals.size()) {
                setStuck("local index out of range");
                return svTerm(terms.constant(0));
            }
            return act.locals[size_t(op.val)];
        }
        return svTerm(terms.constant(0));
    }

    void
    stepExec()
    {
        const Expr &e = *act.pc;
        if (e.isLet()) {
            chg(cfg.timing.letBase);
            execLet(e.asLet());
            return;
        }
        if (e.isCase()) {
            chg(cfg.timing.caseBase);
            Frame f;
            f.kind = Frame::Kind::Case;
            f.act = act;
            SVal scrut = resolveOperand(e.asCase().scrut);
            if (halted())
                return;
            conts.push_back(std::move(f));
            cur = scrut;
            mode = Mode::EvalVal;
            return;
        }
        chg(cfg.timing.resultBase);
        SVal v = resolveOperand(e.asResult().value);
        if (halted())
            return;
        cur = v;
        mode = Mode::EvalVal;
    }

    void
    execLet(const Let &l)
    {
        std::vector<SVal> args;
        args.reserve(l.args.size());
        for (const auto &a : l.args) {
            chg(cfg.timing.letPerArg);
            args.push_back(resolveOperand(a));
            if (halted())
                return;
        }

        SVal bound_;
        if (l.callee.kind == CalleeKind::Func) {
            Word fn = l.callee.id;
            if (isPrimId(fn) ? !primById(fn).has_value()
                             : Program::indexOf(fn) >=
                                   prog.decls.size()) {
                setStuck("unknown callee id");
                return;
            }
            if (isConsId(fn) && args.size() == arityOf(fn)) {
                chargeAlloc(args.size());
                bound_ = svRef(allocCons(fn, std::move(args)));
            } else if (isConsId(fn) && args.size() > arityOf(fn)) {
                bound_ = svRef(allocError(kErrArity));
            } else {
                chargeAlloc(args.size());
                bound_ = svRef(allocApp(fn, std::move(args)));
            }
        } else {
            const std::vector<SVal> &slots =
                l.callee.kind == CalleeKind::Local ? act.locals
                                                   : act.args;
            if (l.callee.id >= slots.size()) {
                setStuck(l.callee.kind == CalleeKind::Local
                             ? "callee local out of range"
                             : "callee arg out of range");
                return;
            }
            SVal callee = slots[l.callee.id];
            if (args.empty()) {
                bound_ = callee;
            } else {
                SVal c = chase(callee);
                if (c.isTerm) {
                    bound_ = svRef(allocError(kErrBadApply));
                } else if (heap[c.r].tag == Node::Tag::App &&
                           !heap[c.r].calleeIsRef &&
                           nodeIsWhnf(heap[c.r])) {
                    std::vector<SVal> all = heap[c.r].args;
                    chg(Cycles(all.size()) *
                        cfg.timing.copyPartialPerWord);
                    all.insert(all.end(), args.begin(), args.end());
                    Word fn = heap[c.r].fn;
                    chargeAlloc(all.size());
                    if (isConsId(fn) && all.size() == arityOf(fn))
                        bound_ =
                            svRef(allocCons(fn, std::move(all)));
                    else if (isConsId(fn) &&
                             all.size() > arityOf(fn))
                        bound_ = svRef(allocError(kErrArity));
                    else
                        bound_ = svRef(allocApp(fn, std::move(all)));
                } else if (heap[c.r].tag == Node::Tag::Cons) {
                    bound_ = heap[c.r].fn ==
                                     static_cast<Word>(Prim::Error)
                                 ? c
                                 : svRef(allocError(kErrArity));
                } else {
                    chargeAlloc(args.size() + 1);
                    bound_ = svRef(
                        allocAppRef(callee, std::move(args)));
                }
            }
        }
        act.locals.push_back(bound_);
        act.pc = l.body.get();
    }

    // ---- Deliver --------------------------------------------------

    void
    stepDeliver()
    {
        Frame f = std::move(conts.back());
        conts.pop_back();
        switch (f.kind) {
          case Frame::Kind::Update:
            heap[f.target].tag = Node::Tag::Ind;
            heap[f.target].ind = cur;
            chg(cfg.timing.update);
            return;
          case Frame::Kind::Case:
            act = std::move(f.act);
            chg(cfg.timing.returnToCase);
            resumeCase();
            return;
          case Frame::Kind::PrimArgs:
            resumePrim(std::move(f));
            return;
          case Frame::Kind::Apply:
            resumeApply(std::move(f));
            return;
        }
    }

    void
    resumeCase()
    {
        const Case &c = act.pc->asCase();
        SVal v = chase(cur);

        if (v.isTerm && !terms.isConst(v.t)) {
            resumeCaseSymbolic(c, v.t);
            return;
        }

        // Concrete dispatch (integer constant or heap structure):
        // mirror of the small-step loop, one branch-head cycle per
        // examined branch.
        bool isInt = v.isTerm;
        SWord iv = isInt ? terms.constValue(v.t) : 0;
        const Node *node = isInt ? nullptr : &heap[v.r];
        for (const auto &br : c.branches) {
            chg(cfg.timing.branchHead);
            bool match;
            if (br.isCons) {
                match = node && node->tag == Node::Tag::Cons &&
                        node->fn == br.consId;
            } else {
                match = isInt && iv == br.lit;
            }
            if (!match)
                continue;
            if (br.isCons) {
                for (const SVal &field : node->args) {
                    act.locals.push_back(field);
                    chg(cfg.timing.fieldPush);
                }
            }
            act.pc = br.body.get();
            mode = Mode::Exec;
            return;
        }
        act.pc = c.elseBody.get();
        mode = Mode::Exec;
    }

    /** Case dispatch on a symbolic integer: fork over the literal
     *  branches (constructor patterns can never match an integer)
     *  plus the else branch. */
    void
    resumeCaseSymbolic(const Case &c, TermId t)
    {
        std::vector<std::vector<Atom>> alts;
        // Alternative k (k < #branches): enter branch k. Viable
        // only for literal branches; a constructor alternative gets
        // an impossible atom set marker via one self-contradictory
        // pair — simpler: give it the atoms of "no": we encode
        // constructor branches as non-viable by an empty marker
        // below. To keep alternative indices aligned with branch
        // positions (so scripts are stable), every branch gets a
        // slot; constructor slots carry an unsatisfiable pair.
        std::vector<Atom> priorNe;
        for (const auto &br : c.branches) {
            std::vector<Atom> atoms;
            if (br.isCons) {
                // An integer never matches a constructor pattern:
                // t == 0 && t != 0 is trivially non-viable.
                atoms.push_back({ t, true, 0 });
                atoms.push_back({ t, false, 0 });
            } else {
                atoms = priorNe;
                atoms.push_back({ t, true, br.lit });
                priorNe.push_back({ t, false, br.lit });
            }
            alts.push_back(std::move(atoms));
        }
        alts.push_back(priorNe); // else: no literal branch matched

        int take = choose(alts);
        if (take < 0)
            return;
        if (size_t(take) == c.branches.size()) {
            // else branch: every branch head was examined.
            chg(Cycles(c.branches.size()) * cfg.timing.branchHead);
            act.pc = c.elseBody.get();
        } else {
            chg(Cycles(take + 1) * cfg.timing.branchHead);
            act.pc = c.branches[size_t(take)].body.get();
        }
        mode = Mode::Exec;
    }

    void
    resumePrim(Frame f)
    {
        SVal v = chase(cur);
        Prim p = f.prim;

        if (!v.isTerm) {
            const Node &n = heap[v.r];
            if (n.tag == Node::Tag::Cons &&
                n.fn == static_cast<Word>(Prim::Error)) {
                cur = v;
                mode = Mode::Deliver;
                return;
            }
            SWord code = (p == Prim::GetInt || p == Prim::PutInt)
                             ? kErrIoNotInt
                             : kErrBadApply;
            cur = svRef(allocError(code));
            mode = Mode::Deliver;
            return;
        }

        chg(cfg.timing.primPerArg);
        f.collected.push_back(v.t);
        f.nextArg++;
        if (f.nextArg < f.primArgs.size()) {
            SVal next = f.primArgs[f.nextArg];
            conts.push_back(std::move(f));
            cur = next;
            mode = Mode::EvalVal;
            return;
        }

        switch (p) {
          case Prim::GetInt:
            doGetInt(f.collected[0]);
            break;
          case Prim::PutInt:
            chg(cfg.timing.ioOp);
            ioLog.push_back(
                { false, f.collected[0], f.collected[1] });
            cur = svTerm(f.collected[1]);
            mode = Mode::Deliver;
            break;
          case Prim::InvokeGc:
            chg(cfg.timing.ioOp);
            cur = svTerm(f.collected[0]);
            mode = Mode::Deliver;
            break;
          default:
            doAlu(p, f.collected);
            break;
        }
    }

    /** getint: the port must be concrete for the scripted read value
     *  (fuzz/oracle.hh RecordBus) to be a path constant; a symbolic
     *  port is pinned to its value under the seed assignment. */
    void
    doGetInt(TermId port)
    {
        chg(cfg.timing.ioOp);
        SWord c;
        if (terms.isConst(port)) {
            c = terms.constValue(port);
        } else {
            TermEvalResult r = terms.evalUnder(port, seeds);
            if (!r.ok) {
                setTruncated("getint port unevaluable under the "
                             "seed assignment");
                return;
            }
            c = r.value;
            if (!cond.add(terms, { port, true, c })) {
                setTruncated(
                    "getint port pin contradicts path condition");
                return;
            }
        }
        SWord read = wrapInt31(
            fuzz::RecordBus::scripted(c, ioOrdinal++));
        TermId val = terms.constant(read);
        ioLog.push_back({ true, terms.constant(c), val });
        cur = svTerm(val);
        mode = Mode::Deliver;
    }

    void
    doAlu(Prim p, const std::vector<TermId> &args)
    {
        chg(cfg.timing.aluOp);
        if (p == Prim::Div || p == Prim::Mod) {
            TermId b = args[1];
            if (terms.isConst(b)) {
                if (terms.constValue(b) == 0) {
                    cur = svRef(allocError(kErrDivZero));
                    mode = Mode::Deliver;
                    return;
                }
            } else {
                // Fork: divisor non-zero first, then the error arm.
                std::vector<std::vector<Atom>> alts;
                alts.push_back({ { b, false, 0 } });
                alts.push_back({ { b, true, 0 } });
                int take = choose(alts);
                if (take < 0)
                    return;
                if (take == 1) {
                    cur = svRef(allocError(kErrDivZero));
                    mode = Mode::Deliver;
                    return;
                }
            }
        }
        TermId r = args.size() == 1
                       ? terms.apply(p, args[0])
                       : terms.apply(p, args[0], args[1]);
        cur = svTerm(r);
        mode = Mode::Deliver;
    }

    void
    resumeApply(Frame f)
    {
        chg(cfg.timing.applyExtra);
        SVal v = chase(cur);
        if (v.isTerm) {
            cur = svRef(allocError(kErrBadApply));
            mode = Mode::Deliver;
            return;
        }
        const Node &n = heap[v.r];
        if (n.tag == Node::Tag::Cons) {
            cur = n.fn == static_cast<Word>(Prim::Error)
                      ? v
                      : svRef(allocError(kErrArity));
            mode = Mode::Deliver;
            return;
        }
        std::vector<SVal> all = n.args;
        chg(Cycles(all.size()) * cfg.timing.copyPartialPerWord);
        all.insert(all.end(), f.extra.begin(), f.extra.end());
        Word fn = n.fn;
        chargeAlloc(all.size());
        if (isConsId(fn) && all.size() == arityOf(fn))
            cur = svRef(allocCons(fn, std::move(all)));
        else if (isConsId(fn) && all.size() > arityOf(fn))
            cur = svRef(allocError(kErrArity));
        else
            cur = svRef(allocApp(fn, std::move(all)));
        mode = Mode::EvalVal;
    }

    // ---- state ----------------------------------------------------

    Program prog;
    SymEvalConfig cfg;
    TermArena terms;
    std::unordered_map<const Operand *, unsigned> siteVar;
    std::vector<SWord> seeds;
    std::vector<TermId> varTerm;

    std::vector<Node> heap;
    std::vector<Frame> conts;
    Activation act;
    SVal cur{};
    Mode mode = Mode::Done;
    std::string stuckWhere;
    std::string truncatedWhy;
    uint64_t steps = 0;
    Cycles bound = 0;
    uint64_t ioOrdinal = 0;
    unsigned choiceOrdinal = 0;
    Script script;
    std::vector<ChoiceRec> choices;
    PathCond cond;
    std::vector<SymIo> ioLog;
    SymValuePtr resultValue;
};

SymEval::SymEval(const Program &program, SymEvalConfig cfg)
    : impl(std::make_unique<Impl>(program, cfg))
{}

SymEval::~SymEval() = default;

unsigned
SymEval::numVars() const
{
    return impl->nVars();
}

const std::vector<SWord> &
SymEval::seedAssign() const
{
    return impl->seedRef();
}

PathRun
SymEval::runPath(const Script &script)
{
    return impl->runPath(script);
}

const TermArena &
SymEval::arena() const
{
    return impl->arenaRef();
}

} // namespace zarf::sym
