/**
 * @file
 * zarf-sym — the concolic symbolic-execution driver (docs/SYMBOLIC.md;
 * the CI nightly job runs `--replay-all` over the checked-in corpus).
 *
 *   zarf-sym (--image FILE | --replay-all DIR)
 *            [--max-paths N] [--max-depth N] [--max-vars N]
 *            [--threads N] [--bfs] [--no-replay]
 *            [--prove-wcet] [--check-noninterference MASK]
 *            [--max-oracle-cycles N] [--max-oracle-ms N]
 *            [--max-oracle-heap BYTES] [--out DIR]
 *
 * For each image the driver explores the symbolic path space, solves
 * every path condition, and (unless --no-replay) concretizes and
 * replays every satisfiable path through the differential oracle —
 * any prediction/machine mismatch is a divergence: the reproducer
 * image is written to --out (default: sym-findings) and the exit
 * status is 1.
 *
 * --prove-wcet additionally requires the per-program cycle bound to
 * be *complete* (exhaustive exploration, no truncated path); an
 * incomplete bound exits 1. --check-noninterference treats mask bit
 * k as "symbolic variable k is secret" and reports any path whose
 * observables depend on a secret; a violation exits 3 (it is a
 * property of the program, not a harness failure).
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "fuzz/corpus.hh"
#include "sym/concolic.hh"

using namespace zarf;
using namespace zarf::sym;

namespace
{

uint64_t
parseU64(const char *s)
{
    return std::strtoull(s, nullptr, 0);
}

struct RunTally
{
    size_t images = 0;
    size_t explored = 0;
    size_t skippedImages = 0;
    size_t divergences = 0;
    size_t incompleteWcet = 0;
    size_t niViolations = 0;
};

void
runOne(const std::string &name, const Image &img,
       const ConcolicConfig &cfg, bool proveWcet, bool checkNi,
       uint64_t secretMask, const std::string &outDir,
       RunTally &tally)
{
    tally.images++;
    ConcolicReport rep = runConcolic(img, cfg);
    if (!rep.originalUsable) {
        tally.skippedImages++;
        std::printf("%s: skipped (%s)\n", name.c_str(),
                    rep.originalDetail.c_str());
        return;
    }
    tally.explored++;
    std::printf(
        "%s: vars=%u paths=%zu (%llu feasible, %llu replayed, "
        "%llu unsat, %llu unknown, %llu truncated, %llu skipped)%s "
        "wcet=%llu%s\n",
        name.c_str(), rep.numVars, rep.paths.size(),
        (unsigned long long)rep.feasiblePaths,
        (unsigned long long)rep.replayedPaths,
        (unsigned long long)rep.unsatPaths,
        (unsigned long long)rep.unknownPaths,
        (unsigned long long)rep.truncatedPaths,
        (unsigned long long)rep.skippedPaths,
        rep.exhaustive ? "" : " [frontier capped]",
        (unsigned long long)rep.wcetBound,
        rep.wcetComplete ? " [complete]" : " [partial]");

    for (size_t i = 0; i < rep.paths.size(); ++i) {
        const PathReport &pr = rep.paths[i];
        if (pr.check != PathCheck::Diverged)
            continue;
        tally.divergences++;
        std::printf("  DIVERGENCE path %zu: %s\n", i,
                    pr.detail.c_str());
        if (!pr.witness.empty()) {
            std::string p =
                fuzz::saveCorpusEntry(outDir, pr.witness);
            if (!p.empty())
                std::printf("  reproducer written to %s\n",
                            p.c_str());
        }
    }

    if (proveWcet) {
        if (rep.wcetComplete) {
            std::printf("  WCET proved: %llu cycles (load "
                        "included), dominance checked on %llu "
                        "replayed paths\n",
                        (unsigned long long)rep.wcetBound,
                        (unsigned long long)rep.replayedPaths);
        } else {
            tally.incompleteWcet++;
            std::printf("  WCET not proved: %s\n",
                        rep.exhaustive
                            ? "a path was truncated"
                            : "path frontier was capped");
        }
    }

    if (checkNi) {
        NiResult ni =
            checkNoninterference(img, rep, secretMask, cfg);
        if (ni.holds) {
            std::printf("  non-interference holds for secret mask "
                        "0x%llx\n",
                        (unsigned long long)secretMask);
        } else {
            tally.niViolations++;
            std::printf("  non-interference VIOLATED: %zu leaky "
                        "path(s)%s%s\n",
                        ni.leakyPaths.size(),
                        ni.witnessFound ? "; witness: " : "",
                        ni.witnessFound ? ni.witnessDetail.c_str()
                                        : "");
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    ConcolicConfig cfg;
    std::string imageFile, corpusDir, outDir = "sym-findings";
    bool proveWcet = false, checkNi = false;
    uint64_t secretMask = 0;

    for (int i = 1; i < argc; ++i) {
        auto val = [&](const char *) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", argv[i]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--image"))
            imageFile = val("image");
        else if (!std::strcmp(argv[i], "--replay-all"))
            corpusDir = val("replay-all");
        else if (!std::strcmp(argv[i], "--max-paths"))
            cfg.explore.maxPaths = parseU64(val("max-paths"));
        else if (!std::strcmp(argv[i], "--max-depth"))
            cfg.eval.maxChoices =
                unsigned(parseU64(val("max-depth")));
        else if (!std::strcmp(argv[i], "--max-vars"))
            cfg.eval.maxVars = unsigned(parseU64(val("max-vars")));
        else if (!std::strcmp(argv[i], "--threads"))
            cfg.threads = unsigned(parseU64(val("threads")));
        else if (!std::strcmp(argv[i], "--bfs"))
            cfg.explore.breadthFirst = true;
        else if (!std::strcmp(argv[i], "--no-replay"))
            cfg.replay = false;
        else if (!std::strcmp(argv[i], "--prove-wcet"))
            proveWcet = true;
        else if (!std::strcmp(argv[i], "--check-noninterference")) {
            checkNi = true;
            secretMask = parseU64(val("check-noninterference"));
        } else if (!std::strcmp(argv[i], "--max-oracle-cycles"))
            cfg.replayBudget.maxLambdaCycles =
                parseU64(val("max-oracle-cycles"));
        else if (!std::strcmp(argv[i], "--max-oracle-ms"))
            cfg.replayBudget.maxHostMillis =
                parseU64(val("max-oracle-ms"));
        else if (!std::strcmp(argv[i], "--max-oracle-heap"))
            cfg.replayBudget.maxHeapBytes =
                parseU64(val("max-oracle-heap"));
        else if (!std::strcmp(argv[i], "--out"))
            outDir = val("out");
        else {
            std::fprintf(stderr, "unknown option %s\n", argv[i]);
            return 2;
        }
    }
    if (imageFile.empty() == corpusDir.empty()) {
        std::fprintf(stderr,
                     "exactly one of --image or --replay-all is "
                     "required\n");
        return 2;
    }

    RunTally tally;
    if (!imageFile.empty()) {
        std::FILE *f = std::fopen(imageFile.c_str(), "rb");
        if (!f) {
            std::fprintf(stderr, "cannot read %s\n",
                         imageFile.c_str());
            return 2;
        }
        std::string text;
        char buf[4096];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            text.append(buf, n);
        std::fclose(f);
        fuzz::ParsedImage parsed = fuzz::imageFromText(text);
        if (!parsed.ok) {
            std::fprintf(stderr, "%s: %s\n", imageFile.c_str(),
                         parsed.error.c_str());
            return 2;
        }
        runOne(imageFile, parsed.image, cfg, proveWcet, checkNi,
               secretMask, outDir, tally);
    } else {
        fuzz::CorpusLoad load = fuzz::loadCorpusDir(corpusDir);
        for (const auto &err : load.errors)
            std::fprintf(stderr, "corpus: %s\n", err.c_str());
        for (const auto &e : load.entries)
            runOne(fuzz::hashName(e.hash), e.image, cfg, proveWcet,
                   checkNi, secretMask, outDir, tally);
    }

    std::printf("total: %zu image(s), %zu explored, %zu skipped, "
                "%zu divergence(s)\n",
                tally.images, tally.explored, tally.skippedImages,
                tally.divergences);
    if (tally.divergences)
        return 1;
    if (proveWcet && tally.incompleteWcet)
        return 1;
    if (checkNi && tally.niViolations)
        return 3;
    return 0;
}
