/**
 * @file
 * Hidden, test-only switches of the symbolic evaluator.
 *
 * Pattern of machine/testhooks.hh: each switch deliberately
 * reintroduces a defect so the concolic replay suite can demonstrate
 * its own detection power (docs/SYMBOLIC.md, "Self-testing"). Nothing
 * outside tests may ever set one; production paths read them as
 * constants (false).
 */

#ifndef ZARF_SYM_TESTHOOKS_HH
#define ZARF_SYM_TESTHOOKS_HH

namespace zarf::sym::testhooks
{

/**
 * Corrupts the symbolic Mul transfer function: aluGround (the single
 * ALU choke point every constant fold, solver model check, and value
 * prediction routes through) returns the true product plus one. A
 * symbolic run over any image whose executed path multiplies is then
 * wrong about the path's result value — and because every feasible
 * path is concretized and replayed through the concrete oracle, the
 * concolic cross-check must report the mismatch as a divergence
 * within a bounded path budget.
 *
 * Not thread-safe against concurrent exploration: set it before the
 * run and clear it after (the concolic fan-out joins before
 * returning).
 */
extern bool symBrokenMulTransfer;

} // namespace zarf::sym::testhooks

#endif // ZARF_SYM_TESTHOOKS_HH
