#include "sym/concolic.hh"

#include "isa/encoding.hh"
#include "support/random.hh"
#include "verify/parallel.hh"

namespace zarf::sym
{

const char *
pathCheckName(PathCheck c)
{
    switch (c) {
      case PathCheck::Feasible:
        return "Feasible";
      case PathCheck::Replayed:
        return "Replayed";
      case PathCheck::Unsat:
        return "Unsat";
      case PathCheck::Unknown:
        return "Unknown";
      case PathCheck::Truncated:
        return "Truncated";
      case PathCheck::SkippedResource:
        return "SkippedResource";
      case PathCheck::Diverged:
        return "Diverged";
    }
    return "?";
}

Image
concretizeImage(const Program &program,
                const std::vector<SWord> &model, unsigned maxVars)
{
    Program p = program.clone();
    std::vector<Operand *> sites = collectSymSites(p, maxVars);
    for (size_t i = 0; i < sites.size() && i < model.size(); ++i)
        sites[i]->val = model[i];
    return encodeProgram(p);
}

namespace
{

fuzz::OracleResult
replayUnderBudget(const Image &img, const fuzz::OracleConfig &base,
                  const verify::BudgetSpec &spec)
{
    verify::Budget budget(spec);
    fuzz::OracleConfig oc = base;
    oc.budget = spec.any() ? &budget : nullptr;
    return fuzz::replaySingle(img, oc);
}

std::string
ioOpStr(const fuzz::RecordBus::IoOp &op)
{
    return std::string(op.isGet ? "get(" : "put(") +
           std::to_string(op.port) + ", " +
           std::to_string(op.value) + ")";
}

/** Evaluate the symbolic I/O log under a model; false on any
 *  unevaluable term (cannot happen under a model of the path's own
 *  condition). */
bool
concretizeIo(const TermArena &arena, const std::vector<SymIo> &io,
             const std::vector<SWord> &model,
             std::vector<fuzz::RecordBus::IoOp> &out)
{
    for (const SymIo &op : io) {
        TermEvalResult p = arena.evalUnder(op.port, model);
        TermEvalResult v = arena.evalUnder(op.value, model);
        if (!p.ok || !v.ok)
            return false;
        out.push_back({ op.isGet, p.value, v.value });
    }
    return true;
}

struct ReplayVerdict
{
    PathCheck check = PathCheck::SkippedResource;
    std::string detail;
    Cycles concreteCycles = 0;
    bool keepWitness = false;
};

/** The per-path cross-check: symbolic prediction vs the machine. */
ReplayVerdict
checkOnePath(const TermArena &arena, const PathRun &run,
             const std::vector<SWord> &model, Cycles predicted,
             const Image &img, const ConcolicConfig &cfg)
{
    ReplayVerdict v;
    fuzz::OracleResult o =
        replayUnderBudget(img, cfg.oracle, cfg.replayBudget);
    v.concreteCycles = o.uopCycles;

    if (o.verdict == fuzz::Verdict::Skip) {
        v.check = PathCheck::SkippedResource;
        v.detail = "replay skipped: " + o.detail;
        return v;
    }
    v.keepWitness = true;
    if (o.verdict == fuzz::Verdict::Rejected) {
        v.check = PathCheck::Diverged;
        v.detail = "feasible path concretized to a rejected "
                   "image: " +
                   o.detail;
        return v;
    }
    if (o.verdict == fuzz::Verdict::Divergence) {
        v.check = PathCheck::Diverged;
        v.detail =
            "oracle divergence on concretized image: " + o.detail;
        return v;
    }

    // Verdict::Agree — compare the prediction to the µop machine.
    bool symDone = run.status == PathRun::Status::Done;
    bool machDone = o.uopStatus == MachineStatus::Done;
    if (symDone != machDone) {
        v.check = PathCheck::Diverged;
        v.detail = std::string("outcome class mismatch: symbolic ") +
                   (symDone ? "Done" : ("Stuck (" + run.detail + ")")) +
                   " vs machine " +
                   machineStatusName(o.uopStatus) +
                   (o.uopDiagnostic.empty()
                        ? ""
                        : " (" + o.uopDiagnostic + ")");
        return v;
    }

    if (symDone) {
        ValuePtr pv = concretizeValue(arena, *run.value, model);
        if (!pv) {
            v.check = PathCheck::Diverged;
            v.detail = "symbolic result unevaluable under its own "
                       "model";
            return v;
        }
        if (!o.uopValue || !Value::equal(*pv, *o.uopValue)) {
            v.check = PathCheck::Diverged;
            v.detail = "value mismatch: predicted " +
                       pv->toString() + " vs machine " +
                       (o.uopValue ? o.uopValue->toString()
                                   : "<none>");
            return v;
        }
        std::vector<fuzz::RecordBus::IoOp> pio;
        if (!concretizeIo(arena, run.io, model, pio)) {
            v.check = PathCheck::Diverged;
            v.detail =
                "symbolic io log unevaluable under its own model";
            return v;
        }
        if (pio.size() != o.uopIo.size()) {
            v.check = PathCheck::Diverged;
            v.detail = "io length mismatch: predicted " +
                       std::to_string(pio.size()) +
                       " ops vs machine " +
                       std::to_string(o.uopIo.size());
            return v;
        }
        for (size_t k = 0; k < pio.size(); ++k) {
            if (!(pio[k] == o.uopIo[k])) {
                v.check = PathCheck::Diverged;
                v.detail = "io op " + std::to_string(k) +
                           " mismatch: predicted " +
                           ioOpStr(pio[k]) + " vs machine " +
                           ioOpStr(o.uopIo[k]);
                return v;
            }
        }
    }

    if (predicted < o.uopCycles) {
        v.check = PathCheck::Diverged;
        v.detail = "cycle bound violated: predicted ≤ " +
                   std::to_string(predicted) +
                   " but the machine took " +
                   std::to_string(o.uopCycles);
        return v;
    }

    v.check = PathCheck::Replayed;
    v.keepWitness = false;
    return v;
}

} // namespace

ConcolicReport
runConcolic(const Image &image, const ConcolicConfig &cfg)
{
    ConcolicReport rep;

    fuzz::OracleResult probe =
        replayUnderBudget(image, cfg.oracle, cfg.replayBudget);
    if (probe.verdict != fuzz::Verdict::Agree) {
        rep.originalDetail =
            std::string(fuzz::verdictName(probe.verdict)) +
            (probe.detail.empty() ? "" : ": " + probe.detail);
        return rep;
    }
    rep.originalUsable = true;

    DecodeResult dec = decodeProgram(image);
    if (!dec.ok) {
        // Unreachable: Verdict::Agree implies decodeOk.
        rep.originalUsable = false;
        rep.originalDetail = "decode: " + dec.error;
        return rep;
    }

    SymEval eval(dec.program, cfg.eval);
    rep.numVars = eval.numVars();
    ExploreResult ex = explorePaths(eval, cfg.explore);
    rep.exhaustive = ex.exhaustive;
    Cycles loadCycles =
        Cycles(image.size()) * cfg.eval.timing.loadWord;
    rep.wcetBound = ex.maxCycleBound + loadCycles;
    rep.wcetComplete = ex.boundComplete;

    // Solve every complete path, serially and deterministically.
    rep.paths.resize(ex.paths.size());
    std::vector<size_t> satIdx;
    for (size_t i = 0; i < ex.paths.size(); ++i) {
        const PathRun &run = ex.paths[i].run;
        PathReport &pr = rep.paths[i];
        pr.script = ex.paths[i].script;
        pr.symStatus = run.status;
        pr.symDetail = run.detail;
        pr.predictedCycles = run.cycleBound + loadCycles;
        pr.observedSupport = run.observableSupport(eval.arena());
        if (run.status == PathRun::Status::Truncated) {
            pr.check = PathCheck::Truncated;
            pr.detail = run.detail;
            rep.truncatedPaths++;
            continue;
        }
        SolveResult s =
            solveAtoms(eval.arena(), run.pc, eval.numVars(),
                       eval.seedAssign(), cfg.solver);
        pr.solve = s.status;
        switch (s.status) {
          case SolveStatus::Unsat:
            pr.check = PathCheck::Unsat;
            pr.detail = s.note;
            rep.unsatPaths++;
            break;
          case SolveStatus::Unknown:
            pr.check = PathCheck::Unknown;
            pr.detail = s.note;
            rep.unknownPaths++;
            break;
          case SolveStatus::Sat:
            pr.check = PathCheck::Feasible;
            pr.model = s.model;
            rep.feasiblePaths++;
            satIdx.push_back(i);
            break;
        }
    }

    if (!cfg.replay)
        return rep;

    // Replay the satisfiable paths in parallel; slot-ordered results
    // keep the report identical across thread counts.
    verify::ParallelConfig pc;
    pc.threads = cfg.threads;
    pc.seedBase = cfg.seedBase;
    pc.shards = satIdx.size();
    std::vector<ReplayVerdict> verdicts = verify::shardMap(
        pc, [&](size_t shard, uint64_t) -> ReplayVerdict {
            size_t i = satIdx[shard];
            const PathReport &pr = rep.paths[i];
            Image img = concretizeImage(dec.program, pr.model,
                                        cfg.eval.maxVars);
            return checkOnePath(eval.arena(), ex.paths[i].run,
                                pr.model, pr.predictedCycles, img,
                                cfg);
        });

    for (size_t shard = 0; shard < satIdx.size(); ++shard) {
        size_t i = satIdx[shard];
        PathReport &pr = rep.paths[i];
        const ReplayVerdict &v = verdicts[shard];
        pr.check = v.check;
        pr.detail = v.detail;
        pr.concreteCycles = v.concreteCycles;
        switch (v.check) {
          case PathCheck::Replayed:
            rep.replayedPaths++;
            break;
          case PathCheck::SkippedResource:
            rep.skippedPaths++;
            break;
          case PathCheck::Diverged:
            rep.divergedPaths++;
            break;
          default:
            break;
        }
        if (v.keepWitness)
            pr.witness = concretizeImage(dec.program, pr.model,
                                         cfg.eval.maxVars);
    }
    return rep;
}

NiResult
checkNoninterference(const Image &image,
                     const ConcolicReport &report,
                     uint64_t secretMask, const ConcolicConfig &cfg)
{
    NiResult ni;
    for (size_t i = 0; i < report.paths.size(); ++i) {
        const PathReport &pr = report.paths[i];
        if (pr.check == PathCheck::Unsat)
            continue;
        if (pr.observedSupport & secretMask) {
            ni.holds = false;
            ni.leakyPaths.push_back(i);
        }
    }
    if (ni.holds || !report.originalUsable)
        return ni;

    DecodeResult dec = decodeProgram(image);
    if (!dec.ok)
        return ni;

    // Witness search: perturb the secret variables of a leaky
    // path's model and compare the two concrete runs' observables.
    Rng rng(cfg.seedBase ^ 0x6e69u /* "ni" */);
    for (size_t i : ni.leakyPaths) {
        const PathReport &pr = report.paths[i];
        if (pr.model.empty())
            continue;
        Image base = concretizeImage(dec.program, pr.model,
                                     cfg.eval.maxVars);
        fuzz::OracleResult ob =
            replayUnderBudget(base, cfg.oracle, cfg.replayBudget);
        for (unsigned attempt = 0; attempt < 4; ++attempt) {
            std::vector<SWord> perturbed = pr.model;
            for (unsigned v = 0; v < report.numVars; ++v) {
                if (secretMask & (uint64_t(1) << v))
                    perturbed[v] =
                        SWord(rng.range(kMinImm, kMaxImm));
            }
            if (perturbed == pr.model)
                continue;
            Image alt = concretizeImage(dec.program, perturbed,
                                        cfg.eval.maxVars);
            fuzz::OracleResult oa = replayUnderBudget(
                alt, cfg.oracle, cfg.replayBudget);
            bool statusDiff = ob.uopStatus != oa.uopStatus;
            bool valueDiff =
                bool(ob.uopValue) != bool(oa.uopValue) ||
                (ob.uopValue && oa.uopValue &&
                 !Value::equal(*ob.uopValue, *oa.uopValue));
            bool ioDiff = !(ob.uopIo == oa.uopIo);
            if (statusDiff || valueDiff || ioDiff) {
                ni.witnessFound = true;
                ni.witnessDetail =
                    "path " + std::to_string(i) +
                    ": secret perturbation changed " +
                    (statusDiff  ? "outcome status"
                     : valueDiff ? "result value"
                                 : "io log");
                return ni;
            }
        }
    }
    return ni;
}

} // namespace zarf::sym
