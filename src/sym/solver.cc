#include "sym/solver.hh"

#include <algorithm>
#include <cstdio>
#include <functional>

#include "isa/encoding.hh"
#include "support/logging.hh"
#include "support/random.hh"

namespace zarf::sym
{

std::string
atomToString(const TermArena &arena, const Atom &a)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), " %s %d", a.eq ? "==" : "!=",
                  a.lit);
    return arena.toString(a.t) + buf;
}

const char *
solveStatusName(SolveStatus s)
{
    switch (s) {
      case SolveStatus::Sat:
        return "Sat";
      case SolveStatus::Unsat:
        return "Unsat";
      case SolveStatus::Unknown:
        return "Unknown";
    }
    return "?";
}

// ----------------------------------------------------------------
// PathCond
// ----------------------------------------------------------------

int
PathCond::findFacts(TermId t) const
{
    for (size_t i = 0; i < facts.size(); ++i) {
        if (facts[i].first == t)
            return int(i);
    }
    return -1;
}

bool
PathCond::consistent(const TermArena &arena, const Atom &a) const
{
    if (arena.isConst(a.t)) {
        SWord v = arena.constValue(a.t);
        return a.eq ? v == a.lit : v != a.lit;
    }
    int i = findFacts(a.t);
    if (i < 0)
        return true;
    const TermFacts &f = facts[size_t(i)].second;
    if (a.eq) {
        if (f.pinned && f.pin != a.lit)
            return false;
        return std::find(f.excluded.begin(), f.excluded.end(),
                         a.lit) == f.excluded.end();
    }
    return !(f.pinned && f.pin == a.lit);
}

bool
PathCond::add(const TermArena &arena, const Atom &a)
{
    if (!consistent(arena, a))
        return false;
    if (arena.isConst(a.t))
        return true; // decided true; nothing to record
    int i = findFacts(a.t);
    if (i < 0) {
        facts.push_back({ a.t, {} });
        i = int(facts.size()) - 1;
    }
    TermFacts &f = facts[size_t(i)].second;
    if (a.eq) {
        if (f.pinned)
            return true; // same pin; duplicate
        f.pinned = true;
        f.pin = a.lit;
    } else {
        if (std::find(f.excluded.begin(), f.excluded.end(), a.lit) !=
            f.excluded.end())
            return true; // duplicate exclusion
        f.excluded.push_back(a.lit);
    }
    list.push_back(a);
    return true;
}

uint64_t
PathCond::support(const TermArena &arena) const
{
    uint64_t s = 0;
    for (const Atom &a : list)
        s |= arena.support(a.t);
    return s;
}

// ----------------------------------------------------------------
// solveAtoms
// ----------------------------------------------------------------

namespace
{

/** Per-variable knowledge derived from the atoms. */
struct VarFacts
{
    bool pinned = false;
    SWord pin = 0;
    std::vector<SWord> excluded;
    SWord lo = kMinImm;
    SWord hi = kMaxImm;
    /** Congruence hint: var ≡ residue (mod modulus); 0 = none.
     *  Guides candidate sampling only — never used for Unsat. */
    SWord modulus = 0;
    SWord residue = 0;
    std::vector<SWord> hints;
};

bool
isCmp(Prim op)
{
    switch (op) {
      case Prim::Eq:
      case Prim::Ne:
      case Prim::Lt:
      case Prim::Le:
      case Prim::Gt:
      case Prim::Ge:
        return true;
      default:
        return false;
    }
}

/**
 * Invert `lit` through a chain of exact ring bijections down to a
 * variable: add/sub/neg/bxor/bnot with constant co-operands are
 * bijections of the 31-bit wrap ring, so "chain(x) == lit" holds iff
 * "x == inverted lit". Returns the variable index, or -1 when the
 * chain breaks (non-bijective op, two symbolic operands).
 */
int
invertToVar(const TermArena &arena, TermId t, SWord lit, SWord &out)
{
    int64_t v = lit;
    for (;;) {
        const TermNode &n = arena.node(t);
        if (n.kind == TermNode::Kind::Var) {
            out = wrapInt31(v);
            return int(n.var);
        }
        if (n.kind != TermNode::Kind::Op)
            return -1;
        TermId sym = kNoTerm;
        bool constOnLeft = false;
        SWord c = 0;
        if (n.b == kNoTerm) {
            sym = n.a;
        } else if (arena.isConst(n.a)) {
            sym = n.b;
            c = arena.constValue(n.a);
            constOnLeft = true;
        } else if (arena.isConst(n.b)) {
            sym = n.a;
            c = arena.constValue(n.b);
        } else {
            return -1;
        }
        switch (n.op) {
          case Prim::Add:
            v = wrapInt31(v - c);
            break;
          case Prim::Sub:
            // constOnLeft: c - x == v  =>  x == c - v
            v = constOnLeft ? wrapInt31(int64_t(c) - v)
                            : wrapInt31(v + int64_t(c));
            break;
          case Prim::Neg:
            v = wrapInt31(-v);
            break;
          case Prim::BXor:
            v = wrapInt31(v ^ int64_t(c));
            break;
          case Prim::BNot:
            v = wrapInt31(~v);
            break;
          default:
            return -1;
        }
        t = sym;
    }
}

/** Is the term a bare variable? */
int
asVar(const TermArena &arena, TermId t)
{
    const TermNode &n = arena.node(t);
    return n.kind == TermNode::Kind::Var ? int(n.var) : -1;
}

struct DerivedUnsat
{
    bool unsat = false;
    std::string why;
};

void
narrowCmp(VarFacts &f, Prim op, bool varOnLeft, SWord c, bool truth)
{
    // Normalize to the variable on the left.
    if (!varOnLeft) {
        switch (op) {
          case Prim::Lt: op = Prim::Gt; break;
          case Prim::Le: op = Prim::Ge; break;
          case Prim::Gt: op = Prim::Lt; break;
          case Prim::Ge: op = Prim::Le; break;
          default: break; // Eq/Ne symmetric
        }
    }
    // Negate the relation when the comparison result is pinned to 0.
    if (!truth) {
        switch (op) {
          case Prim::Lt: op = Prim::Ge; break;
          case Prim::Le: op = Prim::Gt; break;
          case Prim::Gt: op = Prim::Le; break;
          case Prim::Ge: op = Prim::Lt; break;
          case Prim::Eq: op = Prim::Ne; break;
          case Prim::Ne: op = Prim::Eq; break;
          default: break;
        }
    }
    switch (op) {
      case Prim::Lt:
        if (c > kMinImm) {
            f.hi = std::min<int64_t>(f.hi, int64_t(c) - 1);
        } else {
            f.lo = 1; // v < domain minimum: empty
            f.hi = 0;
        }
        break;
      case Prim::Le:
        f.hi = std::min(f.hi, c);
        break;
      case Prim::Gt:
        if (c < kMaxImm)
            f.lo = std::max<int64_t>(f.lo, int64_t(c) + 1);
        else {
            f.lo = 1;
            f.hi = 0;
        }
        break;
      case Prim::Ge:
        f.lo = std::max(f.lo, c);
        break;
      case Prim::Eq:
        if (!f.pinned) {
            f.pinned = true;
            f.pin = c;
        } else if (f.pin != c) {
            f.lo = 1;
            f.hi = 0;
        }
        break;
      case Prim::Ne:
        f.excluded.push_back(c);
        break;
      default:
        break;
    }
}

} // namespace

SolveResult
solveAtoms(const TermArena &arena, const std::vector<Atom> &atoms,
           unsigned numVars, const std::vector<SWord> &seedAssign,
           const SolverConfig &cfg)
{
    SolveResult res;
    std::vector<SWord> seed(numVars, 0);
    for (unsigned i = 0; i < numVars && i < seedAssign.size(); ++i)
        seed[i] = seedAssign[i];

    // Phase 0: drop decided atoms; a false constant atom is Unsat.
    std::vector<Atom> live;
    for (const Atom &a : atoms) {
        if (arena.isConst(a.t)) {
            SWord v = arena.constValue(a.t);
            bool holds = a.eq ? v == a.lit : v != a.lit;
            if (!holds) {
                res.status = SolveStatus::Unsat;
                res.note = "constant atom is false: " +
                           atomToString(arena, a);
                return res;
            }
            continue;
        }
        if (std::find(live.begin(), live.end(), a) == live.end())
            live.push_back(a);
    }
    if (live.empty()) {
        res.status = SolveStatus::Sat;
        res.model = seed;
        return res;
    }

    // Phase 1: derive per-variable facts — pins through bijective
    // chains, intervals from comparison-result atoms, congruence and
    // candidate hints. All derivations are necessary conditions, so
    // a conflict here is a sound Unsat.
    std::vector<VarFacts> vf(numVars);
    auto unsat = [&](std::string why) {
        res.status = SolveStatus::Unsat;
        res.note = std::move(why);
        return res;
    };
    for (const Atom &a : live) {
        SWord inv = 0;
        int v = invertToVar(arena, a.t, a.lit, inv);
        if (v >= 0) {
            VarFacts &f = vf[size_t(v)];
            if (a.eq) {
                if (inv < kMinImm || inv > kMaxImm)
                    return unsat("pin outside immediate domain: " +
                                 atomToString(arena, a));
                if (f.pinned && f.pin != inv)
                    return unsat("conflicting pins on v" +
                                 std::to_string(v));
                f.pinned = true;
                f.pin = inv;
            } else {
                f.excluded.push_back(inv);
                f.hints.push_back(wrapInt31(int64_t(inv) + 1));
                f.hints.push_back(wrapInt31(int64_t(inv) - 1));
            }
            continue;
        }
        // Comparison-result atoms: (cmp X Y) pinned to 0 or 1. A
        // comparison only ever yields 0/1, so "!= 1" means "== 0"
        // and "!= 0" means "== 1"; any other != is a tautology.
        const TermNode &n = arena.node(a.t);
        if (n.kind == TermNode::Kind::Op && isCmp(n.op) &&
            n.b != kNoTerm) {
            bool truth;
            if (a.eq && a.lit == 1)
                truth = true;
            else if (a.eq && a.lit == 0)
                truth = false;
            else if (!a.eq && a.lit == 0)
                truth = true;
            else if (!a.eq && a.lit == 1)
                truth = false;
            else if (a.eq)
                return unsat("comparison pinned to non-boolean: " +
                             atomToString(arena, a));
            else
                continue; // != non-boolean: always true
            int lv = asVar(arena, n.a), rv = asVar(arena, n.b);
            if (lv >= 0 && arena.isConst(n.b))
                narrowCmp(vf[size_t(lv)], n.op, true,
                          arena.constValue(n.b), truth);
            else if (rv >= 0 && arena.isConst(n.a))
                narrowCmp(vf[size_t(rv)], n.op, false,
                          arena.constValue(n.a), truth);
            continue;
        }
        // Congruence hint: (mod X const) == r guides sampling.
        if (n.kind == TermNode::Kind::Op && n.op == Prim::Mod &&
            a.eq && n.b != kNoTerm && arena.isConst(n.b)) {
            int v2 = asVar(arena, n.a);
            SWord m = arena.constValue(n.b);
            if (v2 >= 0 && m > 1) {
                vf[size_t(v2)].modulus = m;
                vf[size_t(v2)].residue = a.lit;
            }
        }
    }
    for (unsigned v = 0; v < numVars; ++v) {
        VarFacts &f = vf[v];
        if (f.pinned) {
            if (f.pin < f.lo || f.pin > f.hi)
                return unsat("pin outside derived interval on v" +
                             std::to_string(v));
            if (std::find(f.excluded.begin(), f.excluded.end(),
                          f.pin) != f.excluded.end())
                return unsat("pin is excluded on v" +
                             std::to_string(v));
        }
        if (f.lo > f.hi)
            return unsat("empty interval on v" + std::to_string(v));
    }

    // Phase 2: bounded model enumeration. Constrained variables get
    // an ordered candidate list; the DFS product is verified atom by
    // atom through aluGround as soon as an atom's support is fully
    // assigned. The first fully verified assignment wins.
    uint64_t constrained = 0;
    for (const Atom &a : live)
        constrained |= arena.support(a.t);
    std::vector<unsigned> order;
    for (unsigned v = 0; v < numVars; ++v) {
        if (constrained & (uint64_t(1) << v))
            order.push_back(v);
    }

    Rng rng(cfg.seed ^ 0x5eed5eedull);
    bool allPinned = true;
    std::vector<std::vector<SWord>> cands(order.size());
    for (size_t i = 0; i < order.size(); ++i) {
        VarFacts &f = vf[order[i]];
        std::vector<SWord> &c = cands[i];
        auto push = [&](int64_t raw) {
            if (c.size() >= cfg.maxCandidatesPerVar)
                return;
            if (raw < f.lo || raw > f.hi)
                return;
            SWord v = SWord(raw);
            if (std::find(f.excluded.begin(), f.excluded.end(), v) !=
                f.excluded.end())
                return;
            if (std::find(c.begin(), c.end(), v) == c.end())
                c.push_back(v);
        };
        if (f.pinned) {
            push(f.pin);
            if (c.empty())
                return unsat("pinned candidate filtered on v" +
                             std::to_string(order[i]));
            continue;
        }
        allPinned = false;
        auto snap = [&](int64_t raw) {
            // Snap a value to the congruence class when one is known.
            if (f.modulus > 1) {
                int64_t r = raw % f.modulus;
                raw += int64_t(f.residue) - r;
            }
            push(raw);
            if (f.modulus > 1)
                push(raw + f.modulus);
        };
        snap(seed[order[i]]);
        for (SWord h : f.hints)
            snap(h);
        snap(0);
        snap(1);
        snap(-1);
        snap(2);
        snap(-2);
        snap(f.lo);
        snap(f.hi);
        snap(int64_t(f.lo) + (int64_t(f.hi) - f.lo) / 2);
        while (c.size() < cfg.maxCandidatesPerVar) {
            int64_t span = int64_t(f.hi) - f.lo + 1;
            int64_t raw = f.lo + int64_t(rng.below(uint64_t(span)));
            size_t before = c.size();
            snap(raw);
            if (c.size() == before)
                break; // saturated or repeatedly filtered
        }
        if (c.empty())
            return unsat("no candidate survives the interval and "
                         "exclusions on v" +
                         std::to_string(order[i]));
    }

    // Atoms become checkable once the deepest variable of their
    // support is assigned (variables assign in `order`).
    std::vector<std::vector<const Atom *>> checkAt(order.size() + 1);
    for (const Atom &a : live) {
        uint64_t s = arena.support(a.t);
        size_t depth = 0;
        for (size_t i = 0; i < order.size(); ++i) {
            if (s & (uint64_t(1) << order[i]))
                depth = i + 1;
        }
        checkAt[depth].push_back(&a);
    }

    std::vector<SWord> assign = seed;
    bool found = false;
    std::function<bool(size_t)> dfs = [&](size_t i) -> bool {
        if (res.evals >= cfg.maxEvals)
            return true; // abort search
        if (i == order.size())
            ++res.evals;
        for (const Atom *a : checkAt[i]) {
            TermEvalResult e = arena.evalUnder(a->t, assign);
            bool holds = e.ok && (a->eq ? e.value == a->lit
                                        : e.value != a->lit);
            if (!holds)
                return false;
        }
        if (i == order.size()) {
            found = true;
            return true;
        }
        for (SWord v : cands[i]) {
            assign[order[i]] = v;
            if (dfs(i + 1) && found)
                return true;
            if (res.evals >= cfg.maxEvals)
                return true;
        }
        return false;
    };
    dfs(0);

    if (found) {
        res.status = SolveStatus::Sat;
        res.model = assign;
        return res;
    }
    if (allPinned) {
        // Every constrained variable was pinned by necessary
        // conditions; the unique candidate assignment was refuted.
        res.status = SolveStatus::Unsat;
        res.note = "pinned assignment refuted by verification";
        return res;
    }
    res.status = SolveStatus::Unknown;
    res.note = res.evals >= cfg.maxEvals
                   ? "eval budget exhausted"
                   : "candidate pool exhausted";
    return res;
}

} // namespace zarf::sym
