/**
 * @file
 * Concolic cross-checking: every feasible symbolic path, validated
 * against the concrete differential oracle (docs/SYMBOLIC.md).
 *
 * For one image, the harness
 *
 *   1. probes the original image through the full oracle
 *      (fuzz/replay.hh) — images the oracle rejects or skips are not
 *      explored, so the symbolic layer never reasons about programs
 *      the machines would not accept;
 *   2. explores the symbolic path space (sym/explore.hh);
 *   3. solves each complete path's condition (sym/solver.hh);
 *   4. for every satisfiable path, patches the model back into the
 *      image at the same operand sites the evaluator symbolized,
 *      replays the concretized image through the oracle under a
 *      fresh verify::Budget, and compares *predictions against the
 *      machine*:
 *        - outcome class (Done vs Stuck) must match,
 *        - on Done, the concretized symbolic result must equal the
 *          machine value and the concretized I/O log must equal the
 *          machine I/O log,
 *        - the path's cycle bound (plus load) must dominate the
 *          machine's cycles.
 *
 * Any mismatch is PathCheck::Diverged — a hard failure: either the
 * symbolic semantics, the solver, or the machine is wrong, and the
 * concretized witness image reproduces it deterministically.
 *
 * Replays fan out across threads (verify/parallel.hh) with
 * slot-ordered results, so a report is identical on 1 thread and 64.
 */

#ifndef ZARF_SYM_CONCOLIC_HH
#define ZARF_SYM_CONCOLIC_HH

#include <string>
#include <vector>

#include "fuzz/replay.hh"
#include "sym/explore.hh"
#include "verify/budget.hh"

namespace zarf::sym
{

/** Final classification of one explored path. */
enum class PathCheck
{
    Feasible,        ///< Satisfiable; replay not requested.
    Replayed,        ///< Satisfiable, replayed, all checks held.
    Unsat,           ///< Proven infeasible; nothing to replay.
    Unknown,         ///< Solver undecided; cannot replay.
    Truncated,       ///< Path incomplete (fuel); cannot replay.
    SkippedResource, ///< Replay tripped a resource bound; no verdict.
    Diverged,        ///< HARD FAILURE: prediction ≠ machine.
};

const char *pathCheckName(PathCheck c);

/** One path's full record. */
struct PathReport
{
    Script script;
    PathRun::Status symStatus = PathRun::Status::Truncated;
    std::string symDetail;
    SolveStatus solve = SolveStatus::Unknown;
    PathCheck check = PathCheck::Truncated;
    /** Divergence description / solver note / skip cause. */
    std::string detail;
    /** Verified satisfying assignment (solve == Sat). */
    std::vector<SWord> model;
    /** Predicted cycle upper bound, load included. */
    Cycles predictedCycles = 0;
    /** Concrete µop-machine cycles of the replay (when replayed). */
    Cycles concreteCycles = 0;
    /** Taint footprint: union variable support of the path's
     *  condition, result, and I/O (non-interference input). */
    uint64_t observedSupport = 0;
    /** The concretized reproducer image (populated on Diverged). */
    Image witness;
};

/** Harness configuration. */
struct ConcolicConfig
{
    SymEvalConfig eval{};
    ExploreConfig explore{};
    SolverConfig solver{};
    /** Oracle sizing for every replay (the budget pointer inside is
     *  ignored; each replay gets a fresh token from replayBudget). */
    fuzz::OracleConfig oracle{};
    /** Per-replay budget; zero axes mean unlimited. */
    verify::BudgetSpec replayBudget{};
    /** Replay worker threads (0 = hardware concurrency). Never
     *  affects the report, only wall-clock time. */
    unsigned threads = 1;
    /** Seed for auxiliary deterministic sampling (witness search). */
    uint64_t seedBase = 1;
    /** Replay satisfiable paths (false = explore/solve only). */
    bool replay = true;
};

/** The harness verdict for one image. */
struct ConcolicReport
{
    /** False when the original image was rejected, skipped, or
     *  itself diverged under the oracle — nothing was explored. */
    bool originalUsable = false;
    std::string originalDetail;

    unsigned numVars = 0;
    bool exhaustive = false;
    /** WCET claim: max per-path bound + load cycles. A true upper
     *  bound for the whole program only when wcetComplete. */
    Cycles wcetBound = 0;
    bool wcetComplete = false;

    uint64_t feasiblePaths = 0;
    uint64_t replayedPaths = 0;
    uint64_t divergedPaths = 0;
    uint64_t unsatPaths = 0;
    uint64_t unknownPaths = 0;
    uint64_t truncatedPaths = 0;
    uint64_t skippedPaths = 0;

    std::vector<PathReport> paths;

    /** No divergence anywhere (vacuously true when the original was
     *  unusable — callers that require exploration check
     *  originalUsable too). */
    bool ok() const { return divergedPaths == 0; }
};

/**
 * Patch a model into a program's symbolic sites and re-encode. Uses
 * the same collectSymSites walk as the evaluator, so site k is
 * variable k by construction.
 */
Image concretizeImage(const Program &program,
                      const std::vector<SWord> &model,
                      unsigned maxVars);

/** Run the whole harness on one image. */
ConcolicReport runConcolic(const Image &image,
                           const ConcolicConfig &cfg = {});

/** Non-interference verdict over a finished report. */
struct NiResult
{
    /** True iff no possibly-feasible path's observables (condition,
     *  result, I/O) depend on a secret variable. */
    bool holds = true;
    /** Indices into report.paths of the leaking paths. */
    std::vector<size_t> leakyPaths;
    /** A concrete interference witness was reproduced: two runs
     *  differing only in secret inputs with different observables. */
    bool witnessFound = false;
    std::string witnessDetail;
};

/**
 * Check non-interference: `secretMask` bit k marks symbolic variable
 * k secret. Leak detection is symbolic (taint over observedSupport,
 * Unsat paths excluded); when a leaky path carries a model, a
 * concrete witness pair is searched by perturbing the secret
 * variables and replaying both images.
 */
NiResult checkNoninterference(const Image &image,
                              const ConcolicReport &report,
                              uint64_t secretMask,
                              const ConcolicConfig &cfg = {});

} // namespace zarf::sym

#endif // ZARF_SYM_CONCOLIC_HH
