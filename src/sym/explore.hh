/**
 * @file
 * Bounded path exploration over the symbolic evaluator.
 *
 * The explorer enumerates decision scripts (sym/eval.hh): it starts
 * from the empty script, runs each frontier script through the
 * evaluator, and for every choice point *beyond* the scripted prefix
 * schedules one child script per recorded consistent sibling —
 * `taken[0..i) + [sibling]`. Every schedulable script is scheduled at
 * exactly one parent (choice points inside a scripted prefix record
 * no siblings), so no path is enumerated twice, and the whole walk is
 * deterministic: single-threaded, seed-free, order fixed by the
 * traversal discipline (depth-first by default, breadth-first on
 * request).
 *
 * The per-path cycle bounds returned here exclude image load; WCET
 * consumers add `image.size() * timing.loadWord` (the machine's
 * loadCycles term) on top of the maximum.
 */

#ifndef ZARF_SYM_EXPLORE_HH
#define ZARF_SYM_EXPLORE_HH

#include <vector>

#include "sym/eval.hh"

namespace zarf::sym
{

/** Exploration bounds. */
struct ExploreConfig
{
    /** Paths run before the walk stops (exhaustive=false if the
     *  frontier was nonempty at the cap). */
    uint64_t maxPaths = 256;
    /** Breadth-first instead of depth-first frontier order. */
    bool breadthFirst = false;
};

/** One explored path: the script that selects it and its run. */
struct ExploredPath
{
    Script script;
    PathRun run;
};

struct ExploreResult
{
    /** Paths in traversal order. */
    std::vector<ExploredPath> paths;
    /** True iff the frontier drained before maxPaths. */
    bool exhaustive = true;
    uint64_t donePaths = 0;
    uint64_t stuckPaths = 0;
    uint64_t truncatedPaths = 0;
    /** Maximum per-path execution-cycle bound (load excluded). */
    Cycles maxCycleBound = 0;
    /** True iff maxCycleBound covers *every* program path: the walk
     *  was exhaustive and no path was truncated. Only then is it a
     *  WCET claim. */
    bool boundComplete = true;
};

/** Enumerate paths of `eval` under the bounds. */
ExploreResult explorePaths(SymEval &eval,
                           const ExploreConfig &cfg = {});

} // namespace zarf::sym

#endif // ZARF_SYM_EXPLORE_HH
