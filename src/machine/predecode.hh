/**
 * @file
 * Load-time predecoding of binary images into µop streams.
 *
 * The cycle-level machine charges cycles per control-FSM state visit
 * (machine/timing.hh); how the *host* finds out which state to visit
 * next is not part of the timing model. The word-walking execution
 * path re-fetches and re-unpacks raw image words on every step, so
 * host decode work — opcode extraction, field validation, pattern
 * skip arithmetic — is paid millions of times for instructions that
 * never change. This layer performs that work exactly once, at
 * load() time, in the decode-once style of binary-lifting platforms:
 * each reachable instruction word becomes one pre-validated µop with
 * inline operand descriptors and a flattened case-pattern jump table
 * whose match/else targets are resolved word indices.
 *
 * The µop array is indexed by image word position, so the machine's
 * program counter keeps its hardware meaning (a word address) and
 * every cycle charge stays attached to the same FSM state visit; the
 * µop path is bit-identical to the word-walking path in results,
 * cycle counts, and statistics on every well-formed image.
 *
 * Predecoding is also where structural validation now happens once:
 * reserved 2-bit source/kind encodings (the fuzz-campaign hole noted
 * in DESIGN.md §7), non-ARG words inside let argument lists, and
 * malformed pattern chains are rejected at load instead of being
 * re-checked on every step.
 */

#ifndef ZARF_MACHINE_PREDECODE_HH
#define ZARF_MACHINE_PREDECODE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/ast.hh"
#include "isa/binary.hh"
#include "machine/heap.hh"

namespace zarf
{

/**
 * A predecoded operand. For Src::Imm the payload is the already
 * tagged machine word (mval::mkInt applied at load time); for
 * Src::Arg / Src::Local it is the slot index. Slot range checks stay
 * at runtime: locals are bound dynamically, so an index's validity
 * depends on the execution path taken.
 */
struct UOperand
{
    Src src;
    Word payload;
};

/** One entry of a flattened case-pattern jump table. */
struct UPattern
{
    bool isCons;
    SWord lit;     ///< Literal patterns.
    Word consId;   ///< Constructor patterns.
    uint32_t body; ///< Word index of the branch body on a match.
};

/** µop kinds — the three executable instruction classes. */
enum class UopKind : uint8_t
{
    Invalid = 0, ///< Not an instruction head (arg/pattern/garbage).
    Let,
    Case,
    Result,
};

/** Pre-resolved callee classification for Func-kind lets. The id
 *  spaces are static, so existence/constructor/arity lookups need
 *  not be repeated per execution. */
enum class UCallee : uint8_t
{
    Unknown, ///< Names no primitive or declaration (runtime fail).
    Cons,    ///< A constructor (user or the reserved Error prim).
    Other,   ///< A function or non-constructor primitive.
};

/**
 * Direct-threaded dispatch tokens (machine/threaded.hh). Each
 * executable µop's handler is resolved once, at predecode time, into
 * one of these codes; the threaded tiers dispatch on the token
 * instead of re-branching on kind/calleeKind/calleeClass/arity every
 * execution. Token threading (an index into a per-translation-unit
 * label or function table) rather than raw label addresses keeps the
 * Predecoded artifact shareable across machines and processes.
 */
enum UTok : uint8_t
{
    kTokLetConsSat = 0, ///< Func callee, constructor, saturated.
    kTokLetConsOver,    ///< Func callee, constructor, over-applied.
    kTokLetApp,         ///< Func callee: thunk/partial-app alloc.
    kTokLetUnknown,     ///< Func callee naming nothing (runtime fail).
    kTokLetAlias,       ///< Local/Arg callee, zero arguments.
    kTokLetBind,        ///< Local/Arg callee with arguments.
    kTokCase,
    kTokResult,
    kTokInvalid,
    kNumTok,
};

/** One predecoded instruction. */
struct Uop
{
    UopKind kind = UopKind::Invalid;
    uint8_t tcode = kTokInvalid; ///< Dispatch token (UTok).

    // ---- Let ----
    CalleeKind calleeKind = CalleeKind::Func;
    UCallee calleeClass = UCallee::Unknown;
    Word calleeId = 0;
    Word calleeArity = 0;   ///< Valid when calleeClass != Unknown.
    uint32_t nargs = 0;
    uint32_t argsBegin = 0; ///< Index into Predecoded::operands.
    uint32_t next = 0;      ///< Word index of the following instr.

    // ---- Case / Result ----
    UOperand operand{ Src::Imm, 0 }; ///< Scrutinee / result value.
    uint32_t patBegin = 0;           ///< Index into ::patterns.
    uint32_t patCount = 0;
    uint32_t elseBody = 0;           ///< Word index of the else body.
};

/** Declaration metadata shared by both execution paths. */
struct PredecodedFunc
{
    bool isCons;
    Word arity;
    Word numLocals;
    size_t bodyBegin; ///< Word index of the first body word.
    size_t bodyEnd;
};

/** The predecoded program. `uops` has one slot per image word;
 *  slots are valid only at instruction-head positions. */
struct Predecoded
{
    bool ok = false;
    std::string error;
    std::vector<Uop> uops;
    std::vector<UOperand> operands;
    std::vector<UPattern> patterns;
};

/**
 * Predecode every declaration body reachable from its entry.
 *
 * @param image the raw program image
 * @param funcs the parsed declaration table (Machine::load output)
 * @return the µop program, or ok=false with a diagnostic for any
 *         structurally invalid body (reserved encodings, malformed
 *         argument or pattern words, truncated instructions)
 */
Predecoded predecodeImage(const Image &image,
                          const std::vector<PredecodedFunc> &funcs);

} // namespace zarf

#endif // ZARF_MACHINE_PREDECODE_HH
