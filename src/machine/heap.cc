#include "machine/heap.hh"

#include <cstdlib>
#include <cstring>

#include "support/logging.hh"

namespace zarf
{

namespace
{

// Largest possible object: header + 0x7ff payload words. The backing
// store carries this much slack past the second semispace so that
// payload reads through a corrupted-but-validated base address can
// never leave the allocation (base validity is checked where words
// become addresses; payload offsets are bounded by the header count
// field, which cannot exceed 0x7ff).
constexpr size_t kMaxObjWords = 1 + 0x7ff;

} // namespace

Heap::WordStore::WordStore(size_t words)
    : p(static_cast<Word *>(std::calloc(words, sizeof(Word)))),
      n(words)
{
    if (!p)
        fatal("heap: cannot allocate a %zu-word store", words);
}

Heap::WordStore::~WordStore() { std::free(p); }

Heap::Heap(size_t semispaceWords, const TimingModel &timing,
           MachineStats &stats)
    : store(semispaceWords * 2 + kMaxObjWords), mem(store.data()),
      semiWords(semispaceWords), timing(timing), stats(stats)
{
    base = 0;
    allocPtr = 0;
    limit = semiWords;
}

Word
Heap::alloc(ObjKind kind, Word fn, const std::vector<Word> &payload,
            bool pad)
{
    return alloc(kind, fn, payload.data(), payload.size(), pad);
}

Word
Heap::allocSlow(ObjKind kind, Word fn, const Word *payload, size_t n,
                bool pad)
{
    if (hook)
        collect(hook);
    size_t need = 1 + n;
    if (allocPtr + need > limit) {
        oom = true;
        return 0;
    }
    Word addr = static_cast<Word>(allocPtr);
    mem[allocPtr] = mhdr::pack(kind, static_cast<Word>(n), fn, pad);
    for (size_t i = 0; i < n; ++i)
        mem[allocPtr + 1 + i] = payload[i];
    allocPtr += need;
    ++stats.allocations;
    stats.allocatedWords += need;
    return addr;
}

Word
Heap::chaseSlow(Word value) const
{
    // A valid chain visits each Ind object at most once and the
    // smallest Ind is two words, so any walk longer than the
    // semispace word count must be a cycle.
    size_t steps = 0;
    while (mval::isRef(value)) {
        Word addr = mval::refOf(value);
        if (!validAddr(addr)) {
            markCorrupt("chase: reference outside the heap");
            return mval::mkInt(0);
        }
        Word h = mem[addr];
        if (mhdr::kindOf(h) != ObjKind::Ind)
            break;
        if (++steps > semiWords) {
            markCorrupt("chase: indirection cycle");
            return mval::mkInt(0);
        }
        value = mem[addr + 1];
    }
    return value;
}

void
Heap::flipBit(size_t offset, unsigned bit)
{
    if (usedWords() == 0)
        return;
    mem[base + offset % usedWords()] ^= 1u << (bit & 31u);
}

Word
Heap::evacuate(Word addr)
{
    // Charge the 2-cycle "already collected?" check for this ref.
    stats.gcCycles += timing.gcRefCheck;
    ++stats.gcRefChecks;
    if (tally)
        tally->add(MState::GcCheckRef, timing.gcRefCheck);

    if (!validAddr(addr)) {
        markCorrupt("GC: reference outside the heap");
        return 0;
    }

    Word h = mem[addr];
    ObjKind kind = mhdr::kindOf(h);
    if (kind == ObjKind::Fwd)
        return mem[addr + 1];
    if (kind == ObjKind::Ind) [[unlikely]]
        return evacuateInd(addr, h);

    // Common case — a plain object: straight Cheney copy, no chain
    // scratch touched. Charges are identical to the chain walk's
    // final-object copy.
    Word count = mhdr::countOf(h);
    size_t need = 1 + count;
    if (toPtr + need > toBase + semiWords) {
        markCorrupt(
            "GC to-space overflow: live set exceeds a semispace");
        return addr;
    }

    Word naddr = static_cast<Word>(toPtr);
    mem[toPtr] = h;
    for (Word i = 0; i < count; ++i)
        mem[toPtr + 1 + i] = mem[addr + 1 + i];
    toPtr += need;

    // N+4 cycles for an N-word object (Sec. 5.2).
    stats.gcCycles +=
        timing.gcPerObjectFixed + need * timing.gcPerWordCopied;
    ++stats.gcObjectsCopied;
    stats.gcWordsCopied += need;
    if (tally) {
        tally->add(MState::GcCopyHeader, timing.gcPerObjectFixed);
        tally->addN(MState::GcCopyWord, need,
                    need * timing.gcPerWordCopied);
    }

    mem[addr] = mhdr::pack(ObjKind::Fwd, 1, 0);
    mem[addr + 1] = naddr;
    return naddr;
}

Word
Heap::evacuateInd(Word addr, Word h)
{
    // Walk indirection chains iteratively (the natural recursive
    // formulation would overflow the host stack on a corrupted Ind
    // cycle), remembering every chain link so all of them can be
    // forwarded to the final address. Cycle charges are identical to
    // the recursive version on any valid heap: one gcRefCheck per
    // chain link visited plus one for the final object. The first
    // link's charge, validity check, and header read already
    // happened in evacuate().
    indChain.clear();
    Word fwdTo = 0; // final to-space address every link forwards to
    bool first = true;
    for (;;) {
        if (!first) {
            stats.gcCycles += timing.gcRefCheck;
            ++stats.gcRefChecks;
            if (tally)
                tally->add(MState::GcCheckRef, timing.gcRefCheck);

            if (!validAddr(addr)) {
                markCorrupt("GC: reference outside the heap");
                return 0;
            }
            h = mem[addr];
        }
        first = false;

        ObjKind kind = mhdr::kindOf(h);
        if (kind == ObjKind::Fwd) {
            fwdTo = mem[addr + 1];
            break;
        }

        // Skip indirections: copy the target instead so chains die.
        if (kind == ObjKind::Ind) {
            Word target = mem[addr + 1];
            if (mval::isRef(target)) {
                indChain.push_back(addr);
                // A valid chain visits each (≥2-word) Ind at most
                // once; longer means a cycle.
                if (indChain.size() > semiWords / 2 + 1) {
                    markCorrupt("GC: indirection cycle");
                    return addr;
                }
                addr = mval::refOf(target);
                continue;
            }
            // Integer behind an indirection: copy a tiny Ind object.
            if (toPtr + 2 > toBase + semiWords) {
                markCorrupt(
                    "GC to-space overflow: live set exceeds a semispace");
                return addr;
            }
            Word naddr = static_cast<Word>(toPtr);
            mem[toPtr] = mhdr::pack(ObjKind::Ind, 1, 0);
            mem[toPtr + 1] = target;
            toPtr += 2;
            stats.gcCycles +=
                timing.gcPerObjectFixed + 2 * timing.gcPerWordCopied;
            ++stats.gcObjectsCopied;
            stats.gcWordsCopied += 2;
            if (tally) {
                tally->add(MState::GcCopyHeader,
                           timing.gcPerObjectFixed);
                tally->addN(MState::GcCopyWord, 2,
                            2 * timing.gcPerWordCopied);
            }
            mem[addr] = mhdr::pack(ObjKind::Fwd, 1, 0);
            mem[addr + 1] = naddr;
            fwdTo = naddr;
            break;
        }

        Word count = mhdr::countOf(h);
        size_t need = 1 + count;
        if (toPtr + need > toBase + semiWords) {
            markCorrupt(
                "GC to-space overflow: live set exceeds a semispace");
            return addr;
        }

        Word naddr = static_cast<Word>(toPtr);
        mem[toPtr] = h;
        for (Word i = 0; i < count; ++i)
            mem[toPtr + 1 + i] = mem[addr + 1 + i];
        toPtr += need;

        // N+4 cycles for an N-word object (Sec. 5.2).
        stats.gcCycles +=
            timing.gcPerObjectFixed + need * timing.gcPerWordCopied;
        ++stats.gcObjectsCopied;
        stats.gcWordsCopied += need;
        if (tally) {
            tally->add(MState::GcCopyHeader, timing.gcPerObjectFixed);
            tally->addN(MState::GcCopyWord, need,
                        need * timing.gcPerWordCopied);
        }

        mem[addr] = mhdr::pack(ObjKind::Fwd, 1, 0);
        mem[addr + 1] = naddr;
        fwdTo = naddr;
        break;
    }

    for (Word link : indChain) {
        mem[link] = mhdr::pack(ObjKind::Fwd, 1, 0);
        mem[link + 1] = fwdTo;
    }
    return fwdTo;
}

void
Heap::collect(const RootProvider &roots)
{
    ++stats.gcRuns;
    Cycles pauseStart = stats.gcCycles;
    stats.gcCycles += timing.gcSetup;
    if (tally)
        tally->add(MState::GcStart, timing.gcSetup);

    toBase = base == 0 ? semiWords : 0;
    toPtr = toBase;

    // Evacuate roots.
    roots([this](Word &slot) {
        if (corruptFlag)
            return;
        if (mval::isRef(slot))
            slot = mval::mkRef(evacuate(mval::refOf(slot)));
    });

    // Cheney scan of to-space.
    size_t scan = toBase;
    while (scan < toPtr && !corruptFlag) {
        Word h = mem[scan];
        Word count = mhdr::countOf(h);
        ObjKind kind = mhdr::kindOf(h);
        Word fieldsStart = 0;
        Word fieldsEnd = count;
        if (kind == ObjKind::AppV) {
            // payload[0] is the callee value: also a value word.
            fieldsStart = 0;
        }
        for (Word i = fieldsStart; i < fieldsEnd; ++i) {
            Word v = mem[scan + 1 + i];
            if (mval::isRef(v)) {
                mem[scan + 1 + i] =
                    mval::mkRef(evacuate(mval::refOf(v)));
            }
        }
        scan += 1 + count;
    }

    if (corruptFlag) {
        // Abort the collection without flipping spaces: the heap is
        // untrustworthy either way, but the allocator bookkeeping
        // stays self-consistent and the machine halts with
        // HeapCorrupt at its next step instead of crashing the host.
        return;
    }

    size_t live = toPtr - toBase;
    if (live > stats.gcMaxLiveWords)
        stats.gcMaxLiveWords = live;

    base = toBase;
    allocPtr = toPtr;
    limit = toBase + semiWords;

    Cycles pause = stats.gcCycles - pauseStart;
    if (pause > stats.gcMaxPauseCycles)
        stats.gcMaxPauseCycles = pause;
}

void
Heap::save(Snapshot &out) const
{
    out.semiWords = semiWords;
    out.base = base;
    out.allocPtr = allocPtr;
    out.limit = limit;
    out.oom = oom;
    out.corruptFlag = corruptFlag;
    out.corruptWhyStr = corruptWhyStr;
    out.words.assign(mem, mem + store.size());
}

void
Heap::restore(const Snapshot &s)
{
    if (s.semiWords != semiWords) {
        fatal("heap restore: semispace mismatch (%zu vs %zu words)",
              s.semiWords, semiWords);
    }
    std::memcpy(mem, s.words.data(), s.words.size() * sizeof(Word));
    base = s.base;
    allocPtr = s.allocPtr;
    limit = s.limit;
    oom = s.oom;
    corruptFlag = s.corruptFlag;
    corruptWhyStr = s.corruptWhyStr;
}

} // namespace zarf
