#include "machine/heap.hh"

#include "support/logging.hh"

namespace zarf
{

Heap::Heap(size_t semispaceWords, const TimingModel &timing,
           MachineStats &stats)
    : mem(semispaceWords * 2, 0), semiWords(semispaceWords),
      timing(timing), stats(stats)
{
    base = 0;
    allocPtr = 0;
    limit = semiWords;
}

Word
Heap::alloc(ObjKind kind, Word fn, const std::vector<Word> &payload,
            bool pad)
{
    return alloc(kind, fn, payload.data(), payload.size(), pad);
}

Word
Heap::alloc(ObjKind kind, Word fn, const Word *payload, size_t n,
            bool pad)
{
    size_t need = 1 + n;
    if (allocPtr + need > limit) {
        if (hook)
            collect(hook);
        if (allocPtr + need > limit) {
            oom = true;
            return 0;
        }
    }
    Word addr = static_cast<Word>(allocPtr);
    mem[allocPtr] = mhdr::pack(kind, static_cast<Word>(n), fn, pad);
    for (size_t i = 0; i < n; ++i)
        mem[allocPtr + 1 + i] = payload[i];
    allocPtr += need;
    ++stats.allocations;
    stats.allocatedWords += need;
    return addr;
}

Word
Heap::chase(Word value) const
{
    while (mval::isRef(value)) {
        Word addr = mval::refOf(value);
        Word h = mem[addr];
        if (mhdr::kindOf(h) != ObjKind::Ind)
            break;
        value = mem[addr + 1];
    }
    return value;
}

Word
Heap::evacuate(Word addr)
{
    // Charge the 2-cycle "already collected?" check for this ref.
    stats.gcCycles += timing.gcRefCheck;
    ++stats.gcRefChecks;

    Word h = mem[addr];
    ObjKind kind = mhdr::kindOf(h);
    if (kind == ObjKind::Fwd)
        return mem[addr + 1];

    // Skip indirections: copy the target instead so chains die.
    if (kind == ObjKind::Ind) {
        Word target = mem[addr + 1];
        Word out;
        if (mval::isRef(target)) {
            out = mval::mkRef(evacuate(mval::refOf(target)));
        } else {
            out = target;
        }
        // Forward the indirection to the (possibly integer) value
        // by materializing a one-word Ind in to-space only when the
        // target is an integer; references forward directly.
        if (mval::isRef(out)) {
            mem[addr] = mhdr::pack(ObjKind::Fwd, 1, 0);
            mem[addr + 1] = mval::refOf(out);
            return mval::refOf(out);
        }
        // Integer behind an indirection: copy a tiny Ind object.
        Word count = 1;
        Word naddr = static_cast<Word>(toPtr);
        mem[toPtr] = mhdr::pack(ObjKind::Ind, count, 0);
        mem[toPtr + 1] = out;
        toPtr += 2;
        stats.gcCycles += timing.gcPerObjectFixed +
                          2 * timing.gcPerWordCopied;
        ++stats.gcObjectsCopied;
        stats.gcWordsCopied += 2;
        mem[addr] = mhdr::pack(ObjKind::Fwd, 1, 0);
        mem[addr + 1] = naddr;
        return naddr;
    }

    Word count = mhdr::countOf(h);
    size_t need = 1 + count;
    if (toPtr + need > toBase + semiWords)
        panic("GC to-space overflow: live set exceeds a semispace");

    Word naddr = static_cast<Word>(toPtr);
    mem[toPtr] = h;
    for (Word i = 0; i < count; ++i)
        mem[toPtr + 1 + i] = mem[addr + 1 + i];
    toPtr += need;

    // N+4 cycles for an N-word object (Sec. 5.2).
    stats.gcCycles +=
        timing.gcPerObjectFixed + need * timing.gcPerWordCopied;
    ++stats.gcObjectsCopied;
    stats.gcWordsCopied += need;

    mem[addr] = mhdr::pack(ObjKind::Fwd, 1, 0);
    mem[addr + 1] = naddr;
    return naddr;
}

void
Heap::collect(const RootProvider &roots)
{
    ++stats.gcRuns;
    Cycles pauseStart = stats.gcCycles;
    stats.gcCycles += timing.gcSetup;

    toBase = base == 0 ? semiWords : 0;
    toPtr = toBase;

    // Evacuate roots.
    roots([this](Word &slot) {
        if (mval::isRef(slot))
            slot = mval::mkRef(evacuate(mval::refOf(slot)));
    });

    // Cheney scan of to-space.
    size_t scan = toBase;
    while (scan < toPtr) {
        Word h = mem[scan];
        Word count = mhdr::countOf(h);
        ObjKind kind = mhdr::kindOf(h);
        Word fieldsStart = 0;
        Word fieldsEnd = count;
        if (kind == ObjKind::AppV) {
            // payload[0] is the callee value: also a value word.
            fieldsStart = 0;
        }
        for (Word i = fieldsStart; i < fieldsEnd; ++i) {
            Word v = mem[scan + 1 + i];
            if (mval::isRef(v)) {
                mem[scan + 1 + i] =
                    mval::mkRef(evacuate(mval::refOf(v)));
            }
        }
        scan += 1 + count;
    }

    size_t live = toPtr - toBase;
    if (live > stats.gcMaxLiveWords)
        stats.gcMaxLiveWords = live;

    base = toBase;
    allocPtr = toPtr;
    limit = toBase + semiWords;

    Cycles pause = stats.gcCycles - pauseStart;
    if (pause > stats.gcMaxPauseCycles)
        stats.gcMaxPauseCycles = pause;
}

} // namespace zarf
