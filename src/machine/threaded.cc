/**
 * @file
 * The direct-threaded and fast-functional dispatch tiers
 * (machine/threaded.hh). Both are member functions of Machine::Impl
 * over the same architectural state as the µop tier; the
 * cycle-accurate core replicates every charge, statistic, trace
 * event, and GC trigger point of stepOnceU exactly, and the
 * differential suite (tests/test_machine_threaded.cc) holds it to
 * full-ledger bit-equality.
 *
 * Two dispatch cores exist for each tier:
 *
 *  - the computed-goto core (ZARF_HAVE_COMPUTED_GOTO, detected by
 *    CMake): one function, hot state in locals, `goto *tab[tcode]`
 *    between handler labels;
 *  - the portable table core: a per-token member-function-pointer
 *    table (kTokTable), used when the extension is unavailable or
 *    when testhooks::forceTableDispatch selects it at runtime.
 */

#include "machine/threaded.hh"

#include "machine/machine_impl.hh"

namespace zarf
{

bool
threadedDispatchUsesComputedGoto()
{
#ifdef ZARF_HAVE_COMPUTED_GOTO
    return true;
#else
    return false;
#endif
}

// ================================================================
// Portable table core, cycle-accurate tier. The mode loop and the
// token handlers are the stepOnceU/stepExecU/execLetU code verbatim,
// with the exec decision tree (kind, callee kind, callee class,
// saturation) pre-resolved into the token.
// ================================================================

/** The shared Let head: class/count/charge/trace, then fetch and
 *  resolve every argument word. False when a resolve failed (the
 *  machine is already Stuck). */
bool
Machine::Impl::letPrologueT(const Uop &u)
{
    curClass = InstrClass::Let;
    ++machineStats.let.count;
    charge(cfg.timing.letBase, MState::ApFetchLet);
    if (traceExec)
        emitT(obs::EventKind::ExecLet,
              static_cast<int64_t>(act.funcId),
              static_cast<int64_t>(u.nargs));
    letScratch.clear();
    const UOperand *ops = pre.operands.data() + u.argsBegin;
    for (uint32_t i = 0; i < u.nargs; ++i) {
        charge(cfg.timing.letPerArg, MState::ApFetchArg);
        Word v = resolveU(ops[i]);
        if (status != MachineStatus::Running)
            return false;
        poisonGuard(v);
        letScratch.push_back(v);
    }
    machineStats.letArgs += u.nargs;
    return true;
}

void
Machine::Impl::tokLetConsSat(const Uop &u)
{
    if (!letPrologueT(u))
        return;
    act.locals.push_back(mval::mkRef(
        allocCons(u.calleeId, letScratch.data(), letScratch.size())));
    act.pc = u.next;
}

void
Machine::Impl::tokLetConsOver(const Uop &u)
{
    if (!letPrologueT(u))
        return;
    act.locals.push_back(mval::mkRef(allocError(kErrArity)));
    act.pc = u.next;
}

void
Machine::Impl::tokLetApp(const Uop &u)
{
    if (!letPrologueT(u))
        return;
    act.locals.push_back(mval::mkRef(
        allocApp(u.calleeId, letScratch.data(), letScratch.size())));
    act.pc = u.next;
}

void
Machine::Impl::tokLetUnknown(const Uop &u)
{
    if (!letPrologueT(u))
        return;
    fail("let names an unknown function identifier");
}

void
Machine::Impl::tokLetAlias(const Uop &u)
{
    if (!letPrologueT(u))
        return;
    Word callee;
    if (u.calleeKind == CalleeKind::Local) {
        if (u.calleeId >= act.locals.size()) {
            fail("callee local out of range");
            return;
        }
        callee = act.locals[u.calleeId];
    } else {
        if (u.calleeId >= act.args.size()) {
            fail("callee arg out of range");
            return;
        }
        callee = act.args[u.calleeId];
    }
    charge(cfg.timing.collapseUpdate, MState::ApAliasLocal);
    act.locals.push_back(callee);
    act.pc = u.next;
}

void
Machine::Impl::tokLetBind(const Uop &u)
{
    if (!letPrologueT(u))
        return;
    Word callee;
    if (u.calleeKind == CalleeKind::Local) {
        if (u.calleeId >= act.locals.size()) {
            fail("callee local out of range");
            return;
        }
        callee = act.locals[u.calleeId];
    } else {
        if (u.calleeId >= act.args.size()) {
            fail("callee arg out of range");
            return;
        }
        callee = act.args[u.calleeId];
    }
    act.locals.push_back(bindApplyU(callee));
    act.pc = u.next;
}

void
Machine::Impl::tokCase(const Uop &u)
{
    curClass = InstrClass::Case;
    ++machineStats.caseInstr.count;
    charge(cfg.timing.caseBase, MState::EvFetchCase);
    if (traceExec)
        emitT(obs::EventKind::ExecCase,
              static_cast<int64_t>(act.funcId));
    Word scrut = resolveU(u.operand);
    if (status != MachineStatus::Running)
        return;
    poisonGuard(scrut);
    Frame &f = conts.push(Frame::Kind::Case);
    f.act.funcId = act.funcId;
    f.act.pc = act.pc;
    f.act.args.assign(act.args.begin(), act.args.end());
    f.act.locals.assign(act.locals.begin(), act.locals.end());
    vreg = scrut;
    mode = Mode::EvalVal;
}

void
Machine::Impl::tokResult(const Uop &u)
{
    curClass = InstrClass::Result;
    ++machineStats.result.count;
    charge(cfg.timing.resultBase, MState::EvFetchResult);
    if (traceExec)
        emitT(obs::EventKind::ExecResult,
              static_cast<int64_t>(act.funcId));
    Word v = resolveU(u.operand);
    if (status != MachineStatus::Running)
        return;
    poisonGuard(v);
    vreg = v;
    mode = Mode::EvalVal;
}

void
Machine::Impl::tokInvalid(const Uop &)
{
    fail(strprintf("unexpected opcode at word %zu", act.pc));
}

const Machine::Impl::TokFn Machine::Impl::kTokTable[kNumTok] = {
    &Machine::Impl::tokLetConsSat,  // kTokLetConsSat
    &Machine::Impl::tokLetConsOver, // kTokLetConsOver
    &Machine::Impl::tokLetApp,      // kTokLetApp
    &Machine::Impl::tokLetUnknown,  // kTokLetUnknown
    &Machine::Impl::tokLetAlias,    // kTokLetAlias
    &Machine::Impl::tokLetBind,     // kTokLetBind
    &Machine::Impl::tokCase,        // kTokCase
    &Machine::Impl::tokResult,      // kTokResult
    &Machine::Impl::tokInvalid,     // kTokInvalid
};

void
Machine::Impl::advanceThreadedTable(Cycles target)
{
    while (status == MachineStatus::Running && total < target) {
        if (!heapHealthy())
            return;
        if (cfg.gcOnExhaustion && heap.freeWords() < kGcSafeMargin) {
            runGc(rootProviderU());
            if (!heapHealthy())
                return;
            if (heap.freeWords() < kGcSafeMargin) {
                noteStatus(MachineStatus::OutOfMemory);
                status = MachineStatus::OutOfMemory;
                diagnostic = "live set exceeds semispace capacity";
                return;
            }
        }
        if (cfg.gcIntervalCycles &&
            total - lastGcAt >= cfg.gcIntervalCycles) {
            runGc(rootProviderU());
            if (!heapHealthy())
                return;
        }
        switch (mode) {
          case Mode::EvalVal:
            stepEvalU();
            break;
          case Mode::Exec:
            if (act.pc >= pre.uops.size()) {
                fail("program counter ran off the image");
                break;
            }
            (this->*kTokTable[pre.uops[act.pc].tcode])(
                pre.uops[act.pc]);
            break;
          case Mode::Deliver:
            if (conts.empty()) {
                noteStatus(MachineStatus::Done);
                status = MachineStatus::Done;
                return;
            }
            stepDeliverU();
            break;
        }
    }
}

#ifdef ZARF_HAVE_COMPUTED_GOTO

// ================================================================
// Computed-goto core, cycle-accurate tier. One function: hot state
// (the cycle counter `tot`, the value register `vr`, the
// instruction-class cycle bucket) lives in locals across handler
// labels, and each handler jumps to its statically known successor
// through the inter-step preamble. Every charge, statistic, trace
// event, and GC trigger point matches stepOnceU to the bit; the
// macros below are the µop helpers re-expressed over the locals.
// ================================================================

// Charge one visit of state `st` costing n cycles (µop charge()).
// The stats-ledger shares (execCycles and the per-class bucket) are
// accumulated in the locals `exc`/`bkt` and folded into the members
// only at SYNC/SETCLASS, so the hot path touches no memory; every
// point where the ledger is externally observable (bus calls, GC,
// fail, return) syncs first, so the members are exact whenever
// anything outside this function can read them.
#define CHARGE(n, st)                                                 \
    do {                                                              \
        Cycles c_ = (n);                                              \
        if (tly)                                                      \
            tally.add(MState::st, c_);                                \
        tot += c_;                                                    \
        exc += c_;                                                    \
        bkt += c_;                                                    \
    } while (0)

// Charge `visits` visits of `st` costing n in total (µop chargeN()).
#define CHARGE_N(st, visits, n)                                       \
    do {                                                              \
        Cycles c_ = (n);                                              \
        if (tly)                                                      \
            tally.addN(MState::st, (visits), c_);                     \
        tot += c_;                                                    \
        exc += c_;                                                    \
        bkt += c_;                                                    \
    } while (0)

// Flush the hot locals into the members (before any call that reads
// them: GC, fail(), noteStatus(), and on return).
#define SYNC()                                                        \
    do {                                                              \
        total = tot;                                                  \
        vreg = vr;                                                    \
        curClass = klass;                                             \
        machineStats.execCycles += exc;                               \
        exc = 0;                                                      \
        *bucket += bkt;                                               \
        bkt = 0;                                                      \
    } while (0)

// Reload after a GC rewrote the rooted registers.
#define RELOAD()                                                      \
    do {                                                              \
        tot = total;                                                  \
        vr = vreg;                                                    \
    } while (0)

// fail() with the member mode a µop step would have had at this
// point (the mode of the step being executed).
#define FAILX(why, m)                                                 \
    do {                                                              \
        mode = Mode::m;                                               \
        SYNC();                                                       \
        fail(why);                                                    \
        return;                                                       \
    } while (0)

// Switch the instruction-class cycle bucket (µop curClass writes).
// Folds the pending charges into the outgoing class first.
#define SETCLASS(cls, field)                                          \
    do {                                                              \
        *bucket += bkt;                                               \
        bkt = 0;                                                      \
        klass = InstrClass::cls;                                      \
        bucket = &machineStats.field.cycles;                          \
    } while (0)

// The inter-step boundary: budget check, then the stepOnceU
// preamble (health gate, safe-margin GC, interval GC), then a
// direct jump to the next handler. `m` is the Mode the next step
// runs in — stored only on the exit paths, never on the hot path.
#define NEXT(L, m)                                                    \
    do {                                                              \
        if (tot >= target) {                                          \
            mode = Mode::m;                                           \
            SYNC();                                                   \
            return;                                                   \
        }                                                             \
        if (heap.corrupt() || heap.outOfMemory()) [[unlikely]] {      \
            mode = Mode::m;                                           \
            SYNC();                                                   \
            heapHealthy();                                            \
            return;                                                   \
        }                                                             \
        if (gcExh && heap.freeWords() < kGcSafeMargin) [[unlikely]] { \
            mode = Mode::m;                                           \
            SYNC();                                                   \
            runGc(rootProviderU());                                   \
            if (!heapHealthy())                                       \
                return;                                               \
            if (heap.freeWords() < kGcSafeMargin) {                   \
                noteStatus(MachineStatus::OutOfMemory);               \
                status = MachineStatus::OutOfMemory;                  \
                diagnostic = "live set exceeds semispace capacity";   \
                return;                                               \
            }                                                         \
            RELOAD();                                                 \
        }                                                             \
        if (gcInt && tot - lastGcAt >= gcInt) [[unlikely]] {          \
            mode = Mode::m;                                           \
            SYNC();                                                   \
            runGc(rootProviderU());                                   \
            if (!heapHealthy())                                       \
                return;                                               \
            RELOAD();                                                 \
        }                                                             \
        goto L;                                                       \
    } while (0)

// Inline resolveU with the failure jump folded in (no post-call
// status check on the hot path).
#define RESOLVE_TO(dst, op, m)                                        \
    do {                                                              \
        const UOperand &o_ = (op);                                    \
        if (o_.src == Src::Imm) {                                     \
            dst = o_.payload;                                         \
        } else if (o_.src == Src::Arg) {                              \
            if (o_.payload >= act.args.size()) [[unlikely]] {         \
                if (testhooks::poisonedOperandDefect) {               \
                    dst = mval::mkInt(0);                             \
                } else {                                              \
                    FAILX("argument index out of range", m);          \
                }                                                     \
            } else {                                                  \
                dst = act.args[o_.payload];                           \
            }                                                         \
        } else {                                                      \
            if (o_.payload >= act.locals.size()) [[unlikely]] {       \
                if (testhooks::poisonedOperandDefect) {               \
                    dst = mval::mkInt(0);                             \
                } else {                                              \
                    FAILX("local index out of range", m);             \
                }                                                     \
            } else {                                                  \
                dst = act.locals[o_.payload];                         \
            }                                                         \
        }                                                             \
    } while (0)

// The shared Let head: class/count/charge/trace, then fetch and
// resolve every argument word into letScratch (execLetU prologue).
#define LET_HEAD()                                                    \
    do {                                                              \
        SETCLASS(Let, let);                                           \
        ++machineStats.let.count;                                     \
        CHARGE(tm.letBase, ApFetchLet);                               \
        if (traceExec)                                                \
            trace->emit(obs::EventKind::ExecLet, tbias + tot,         \
                        static_cast<int64_t>(act.funcId),             \
                        static_cast<int64_t>(u->nargs));              \
        letScratch.clear();                                           \
        const UOperand *ops_ = operands + u->argsBegin;               \
        for (uint32_t i_ = 0; i_ < u->nargs; ++i_) {                  \
            CHARGE(tm.letPerArg, ApFetchArg);                         \
            Word v_;                                                  \
            RESOLVE_TO(v_, ops_[i_], Exec);                           \
            letScratch.push_back(v_);                                 \
        }                                                             \
        machineStats.letArgs += u->nargs;                             \
    } while (0)

// Read the callee value of a Local/Arg-callee let (execLetU).
#define FETCH_CALLEE(dst)                                             \
    do {                                                              \
        if (u->calleeKind == CalleeKind::Local) {                     \
            if (u->calleeId >= act.locals.size()) [[unlikely]]        \
                FAILX("callee local out of range", Exec);             \
            dst = act.locals[u->calleeId];                            \
        } else {                                                      \
            if (u->calleeId >= act.args.size()) [[unlikely]]          \
                FAILX("callee arg out of range", Exec);               \
            dst = act.args[u->calleeId];                              \
        }                                                             \
    } while (0)

void
Machine::Impl::advanceThreadedGoto(Cycles target)
{
    if (status != MachineStatus::Running)
        return;

    // Hoisted configuration — constants for the whole call.
    const TimingModel &tm = cfg.timing;
    const bool gcExh = cfg.gcOnExhaustion;
    const Cycles gcInt = cfg.gcIntervalCycles;
    const bool tly = tallyOn;
    const Uop *const uops = pre.uops.data();
    const size_t nUops = pre.uops.size();
    const UOperand *const operands = pre.operands.data();
    const UPattern *const patterns = pre.patterns.data();

    // Hot registers.
    Cycles tot = total;
    Word vr = vreg;
    const Uop *u = nullptr;
    Cycles noneSink = 0;
    InstrClass klass = curClass;
    Cycles *bucket = &noneSink;
    Cycles exc = 0; // execCycles not yet folded into the stats
    Cycles bkt = 0; // ditto for the current class bucket
    switch (klass) {
      case InstrClass::Let:
        bucket = &machineStats.let.cycles;
        break;
      case InstrClass::Case:
        bucket = &machineStats.caseInstr.cycles;
        break;
      case InstrClass::Result:
        bucket = &machineStats.result.cycles;
        break;
      case InstrClass::None:
        break;
    }

    // Dispatch tables: one label per UTok, one per Frame::Kind.
    static const void *const tokTab[kNumTok] = {
        &&T_letConsSat, &&T_letConsOver, &&T_letApp, &&T_letUnknown,
        &&T_letAlias,   &&T_letBind,     &&T_case,   &&T_result,
        &&T_invalid,
    };
    static const void *const delivTab[4] = {
        &&D_update, &&D_case, &&D_prim, &&D_apply,
    };

    // Allocation helpers over the locals (µop allocApp/allocCons/
    // allocAppV/allocError with the identical charge sequence).
    auto allocAppL = [&](Word fn, const Word *args, size_t n) -> Word {
        bool pad = n == 0;
        Word zero = 0;
        const Word *p = pad ? &zero : args;
        size_t len = pad ? 1 : n;
        CHARGE(tm.allocHeader, ApAllocHeader);
        CHARGE_N(ApWriteArg, len, len * tm.letPerArg);
        return heap.alloc(ObjKind::App, fn, p, len, pad);
    };
    auto allocConsL = [&](Word id, const Word *fields,
                          size_t n) -> Word {
        bool pad = n == 0;
        Word zero = 0;
        const Word *p = pad ? &zero : fields;
        size_t len = pad ? 1 : n;
        CHARGE(tm.allocHeader, ApAllocHeader);
        CHARGE_N(ApWriteArg, len, len * tm.letPerArg);
        return heap.alloc(ObjKind::Cons, id, p, len, pad);
    };
    auto allocAppVL = [&](Word callee, const Word *args,
                          size_t n) -> Word {
        appvScratch.clear();
        appvScratch.push_back(callee);
        appvScratch.insert(appvScratch.end(), args, args + n);
        CHARGE(tm.allocHeader, ApAllocHeader);
        CHARGE_N(ApWriteArg, appvScratch.size(),
                 appvScratch.size() * tm.letPerArg);
        return heap.alloc(ObjKind::AppV, 0, appvScratch.data(),
                          appvScratch.size());
    };
    auto allocErrorL = [&](SWord code) -> Word {
        ++machineStats.errorsCreated;
        Word field = mval::mkInt(code);
        return allocConsL(static_cast<Word>(Prim::Error), &field, 1);
    };
    // bindApplyU over the locals.
    auto bindApplyL = [&](Word callee) -> Word {
        Word c = heap.chase(callee);
        if (mval::isInt(c))
            return mval::mkRef(allocErrorL(kErrBadApply));
        Word h = heap.header(mval::refOf(c));
        ObjKind k = mhdr::kindOf(h);
        if (k == ObjKind::App && objIsWhnfU(h)) {
            Word fn = mhdr::fnOf(h);
            Word have = mhdr::argsOf(h);
            applyScratch.clear();
            applyScratch.reserve(have + letScratch.size());
            for (Word i = 0; i < have; ++i)
                applyScratch.push_back(
                    heap.payload(mval::refOf(c), i));
            CHARGE_N(ApCopyPartial, have,
                     have * tm.copyPartialPerWord);
            applyScratch.insert(applyScratch.end(),
                                letScratch.begin(),
                                letScratch.end());
            if (isConsId(fn) && applyScratch.size() == arityOf(fn))
                return mval::mkRef(allocConsL(fn, applyScratch.data(),
                                              applyScratch.size()));
            if (isConsId(fn) && applyScratch.size() > arityOf(fn))
                return mval::mkRef(allocErrorL(kErrArity));
            return mval::mkRef(allocAppL(fn, applyScratch.data(),
                                         applyScratch.size()));
        }
        if (k == ObjKind::Cons) {
            return mhdr::fnOf(h) == static_cast<Word>(Prim::Error)
                       ? c
                       : mval::mkRef(allocErrorL(kErrArity));
        }
        return mval::mkRef(allocAppVL(callee, letScratch.data(),
                                      letScratch.size()));
    };

    // Entry: one dynamic dispatch on the resumed mode; from here on
    // every handler jumps to its statically known successor.
    switch (mode) {
      case Mode::EvalVal:
        NEXT(L_eval, EvalVal);
      case Mode::Exec:
        NEXT(L_exec, Exec);
      case Mode::Deliver:
        NEXT(L_deliver, Deliver);
    }
    SYNC();
    return; // unreachable: the switch above covers every mode

    // ------------------------------------------------------------
    // EvalVal (stepEvalU)
    // ------------------------------------------------------------
L_eval:
    vr = heap.chase(vr);
    if (mval::isInt(vr))
        NEXT(L_deliver, Deliver);
    {
        Word addr = mval::refOf(vr);
        Word h = heap.header(addr);
        CHARGE(tm.whnfCheck, EvWhnfHit);
        ObjKind kind = mhdr::kindOf(h);
        if (kind == ObjKind::Blackhole)
            FAILX("re-entered a thunk under evaluation", EvalVal);
        if (objIsWhnfU(h)) {
            ++machineStats.whnfHits;
            NEXT(L_deliver, Deliver);
        }

        while (!conts.empty() &&
               conts.top().kind == Frame::Kind::Update) {
            Word prev = conts.top().target;
            Word ph = heap.header(prev);
            heap.setHeader(prev, mhdr::pack(ObjKind::Ind,
                                            mhdr::countOf(ph), 0,
                                            mhdr::padOf(ph)));
            heap.setPayload(prev, 0, vr);
            conts.pop();
            CHARGE(tm.collapseUpdate, EvCollapseUpd);
            ++machineStats.updates;
        }
        conts.push(Frame::Kind::Update).target = addr;
        CHARGE(tm.enterThunk, EvEnterThunk);
        ++machineStats.forces;

        Word count = mhdr::argsOf(h);
        Word fn = mhdr::fnOf(h);
        if (traceExec)
            trace->emit(obs::EventKind::EvalEnter, tbias + tot,
                        static_cast<int64_t>(fn),
                        static_cast<int64_t>(count));

        if (kind == ObjKind::AppV) {
            Word callee = heap.payload(addr, 0);
            Frame &f = conts.push(Frame::Kind::Apply);
            for (Word i = 1; i < mhdr::countOf(h); ++i)
                f.extra.push_back(heap.payload(addr, i));
            blackhole(addr, h);
            vr = callee;
            NEXT(L_eval, EvalVal);
        }

        evalScratch.clear();
        evalScratch.reserve(count);
        for (Word i = 0; i < count; ++i)
            evalScratch.push_back(heap.payload(addr, i));
        blackhole(addr, h);

        Word arity = arityOf(fn);
        if (isConsId(fn)) {
            vr = mval::mkRef(allocErrorL(kErrArity));
            NEXT(L_eval, EvalVal);
        }
        if (evalScratch.size() > arity) {
            Frame &f = conts.push(Frame::Kind::Apply);
            f.extra.assign(evalScratch.begin() + arity,
                           evalScratch.end());
            evalScratch.resize(arity);
            CHARGE(tm.applyExtra, EvApplyExtra);
        }
        if (isPrimId(fn)) {
            // beginPrimU, inline.
            SETCLASS(Let, let);
            CHARGE(tm.primSetup, EvPrimSetup);
            if (evalScratch.empty())
                FAILX("zero-arity primitive application", EvalVal);
            Frame &f = conts.push(Frame::Kind::PrimArgs);
            f.prim = static_cast<Prim>(fn);
            f.primArgs.assign(evalScratch.begin(),
                              evalScratch.end());
            f.nextArg = 0;
            vr = f.primArgs[0];
            NEXT(L_eval, EvalVal);
        }

        size_t idx = fn - kFirstUserFuncId;
        CHARGE(tm.callSetup, EvCallSetup);
        ++callCounts[idx];
        act.funcId = fn;
        act.args.swap(evalScratch);
        act.locals.clear();
        act.pc = funcs[idx].bodyBegin;
    }
    NEXT(L_exec, Exec);

    // ------------------------------------------------------------
    // Exec (stepExecU): fetch and token-dispatch
    // ------------------------------------------------------------
L_exec:
    if (act.pc >= nUops) [[unlikely]]
        FAILX("program counter ran off the image", Exec);
    u = uops + act.pc;
    goto *tokTab[u->tcode];

T_letConsSat:
    LET_HEAD();
    act.locals.push_back(mval::mkRef(allocConsL(
        u->calleeId, letScratch.data(), letScratch.size())));
    act.pc = u->next;
    NEXT(L_exec, Exec);

T_letConsOver:
    LET_HEAD();
    act.locals.push_back(mval::mkRef(allocErrorL(kErrArity)));
    act.pc = u->next;
    NEXT(L_exec, Exec);

T_letApp:
    LET_HEAD();
    act.locals.push_back(mval::mkRef(allocAppL(
        u->calleeId, letScratch.data(), letScratch.size())));
    act.pc = u->next;
    NEXT(L_exec, Exec);

T_letUnknown:
    LET_HEAD();
    FAILX("let names an unknown function identifier", Exec);

T_letAlias:
    LET_HEAD();
    {
        Word callee;
        FETCH_CALLEE(callee);
        CHARGE(tm.collapseUpdate, ApAliasLocal);
        act.locals.push_back(callee);
    }
    act.pc = u->next;
    NEXT(L_exec, Exec);

T_letBind:
    LET_HEAD();
    {
        Word callee;
        FETCH_CALLEE(callee);
        act.locals.push_back(bindApplyL(callee));
    }
    act.pc = u->next;
    NEXT(L_exec, Exec);

T_case:
    SETCLASS(Case, caseInstr);
    ++machineStats.caseInstr.count;
    CHARGE(tm.caseBase, EvFetchCase);
    if (traceExec)
        trace->emit(obs::EventKind::ExecCase, tbias + tot,
                    static_cast<int64_t>(act.funcId));
    {
        Word scrut;
        RESOLVE_TO(scrut, u->operand, Exec);
        // Copy (not swap) the activation into the frame: the stale
        // copy left in `act` is part of the GC root walk, and the
        // µop path's evacuation order depends on it.
        Frame &f = conts.push(Frame::Kind::Case);
        f.act.funcId = act.funcId;
        f.act.pc = act.pc;
        f.act.args.assign(act.args.begin(), act.args.end());
        f.act.locals.assign(act.locals.begin(), act.locals.end());
        vr = scrut;
    }
    NEXT(L_eval, EvalVal);

T_result:
    SETCLASS(Result, result);
    ++machineStats.result.count;
    CHARGE(tm.resultBase, EvFetchResult);
    if (traceExec)
        trace->emit(obs::EventKind::ExecResult, tbias + tot,
                    static_cast<int64_t>(act.funcId));
    {
        Word v;
        RESOLVE_TO(v, u->operand, Exec);
        vr = v;
    }
    NEXT(L_eval, EvalVal);

T_invalid:
    FAILX(strprintf("unexpected opcode at word %zu", act.pc), Exec);

    // ------------------------------------------------------------
    // Deliver (stepOnceU Deliver arm + stepDeliverU)
    // ------------------------------------------------------------
L_deliver:
    if (conts.empty()) {
        mode = Mode::Deliver;
        SYNC();
        noteStatus(MachineStatus::Done);
        status = MachineStatus::Done;
        return;
    }
    goto *delivTab[static_cast<int>(conts.top().kind)];

D_update:
    {
        Word tgt = conts.top().target;
        conts.pop();
        Word h = heap.header(tgt);
        heap.setHeader(tgt, mhdr::pack(ObjKind::Ind, mhdr::countOf(h),
                                       0, mhdr::padOf(h)));
        heap.setPayload(tgt, 0, vr);
        CHARGE(tm.update, EvUpdate);
        ++machineStats.updates;
    }
    NEXT(L_deliver, Deliver);

D_case:
    // Swap instead of move: the slot keeps the dead activation's
    // buffers for the next push to recycle (stepDeliverU), then
    // resumeCaseU verbatim.
    std::swap(act, conts.top().act);
    conts.pop();
    CHARGE(tm.returnToCase, EvReturn);
    SETCLASS(Case, caseInstr);
    {
        const Uop &cu = uops[act.pc]; // saved at the case head
        Word v = heap.chase(vr);
        bool isInt = mval::isInt(v);
        Word h = 0;
        if (!isInt)
            h = heap.header(mval::refOf(v));
        const UPattern *pats = patterns + cu.patBegin;
        for (uint32_t i = 0; i < cu.patCount; ++i) {
            CHARGE(tm.branchHead, EvBranchHead);
            ++machineStats.branchHeads;
            const UPattern &pat = pats[i];
            bool match;
            if (pat.isCons) {
                match = !isInt &&
                        mhdr::kindOf(h) == ObjKind::Cons &&
                        mhdr::fnOf(h) == pat.consId;
            } else {
                match = isInt && mval::intOf(v) == pat.lit;
            }
            if (match) {
                if (pat.isCons) {
                    Word caddr = mval::refOf(v);
                    Word n = mhdr::argsOf(h);
                    for (Word j = 0; j < n; ++j) {
                        act.locals.push_back(heap.payload(caddr, j));
                        CHARGE(tm.fieldPush, EvFieldPush);
                    }
                }
                act.pc = pat.body;
                NEXT(L_exec, Exec);
            }
        }
        act.pc = cu.elseBody;
    }
    NEXT(L_exec, Exec);

D_prim:
    // resumePrimU, verbatim.
    {
        Frame &f = conts.top();
        SETCLASS(Let, let);
        Word v = heap.chase(vr);
        Prim p = f.prim;
        CHARGE(tm.primPerArg, EvPrimArg);

        if (mval::isRef(v)) {
            Word h = heap.header(mval::refOf(v));
            conts.pop();
            if (mhdr::kindOf(h) == ObjKind::Cons &&
                mhdr::fnOf(h) == static_cast<Word>(Prim::Error)) {
                vr = v;
                NEXT(L_deliver, Deliver);
            }
            SWord code = (p == Prim::GetInt || p == Prim::PutInt)
                             ? kErrIoNotInt
                             : kErrBadApply;
            vr = mval::mkRef(allocErrorL(code));
            NEXT(L_deliver, Deliver);
        }

        f.collected.push_back(mval::intOf(v));
        f.nextArg++;
        if (f.nextArg < f.primArgs.size()) {
            vr = f.primArgs[f.nextArg];
            NEXT(L_eval, EvalVal);
        }

        conts.pop(); // slot stays readable until the next push
        if (traceExec)
            trace->emit(obs::EventKind::PrimOp, tbias + tot,
                        static_cast<int64_t>(p),
                        static_cast<int64_t>(f.collected.size()));
        switch (p) {
          case Prim::GetInt:
            CHARGE(tm.ioOp, EvIoOp);
            // Bus handlers may read cycles() (the system layer stamps
            // IO with the λ clock), so flush the cached clock first.
            SYNC();
            vr = mval::mkInt(wrapInt31(bus.getInt(f.collected[0])));
            break;
          case Prim::PutInt:
            CHARGE(tm.ioOp, EvIoOp);
            SYNC();
            bus.putInt(f.collected[0], f.collected[1]);
            vr = mval::mkInt(f.collected[1]);
            break;
          case Prim::InvokeGc:
            mode = Mode::Deliver;
            SYNC();
            runGc(rootProviderU());
            RELOAD();
            vr = mval::mkInt(f.collected[0]);
            break;
          default: {
            CHARGE(tm.aluOp, EvAluOp);
            PrimResult r = evalAlu(p, f.collected);
            vr = r.ok ? mval::mkInt(r.value)
                      : mval::mkRef(allocErrorL(r.errCode));
            break;
          }
        }
    }
    NEXT(L_deliver, Deliver);

D_apply:
    // resumeApplyU, verbatim.
    {
        Frame &f = conts.top();
        conts.pop(); // slot storage stays valid; nothing pushes below
        SETCLASS(Let, let);
        CHARGE(tm.applyExtra, EvApplyExtra);
        Word v = heap.chase(vr);
        if (mval::isInt(v)) {
            vr = mval::mkRef(allocErrorL(kErrBadApply));
            NEXT(L_deliver, Deliver);
        }
        Word addr = mval::refOf(v);
        Word h = heap.header(addr);
        if (mhdr::kindOf(h) == ObjKind::Cons) {
            vr = mhdr::fnOf(h) == static_cast<Word>(Prim::Error)
                     ? v
                     : mval::mkRef(allocErrorL(kErrArity));
            NEXT(L_deliver, Deliver);
        }
        Word fn = mhdr::fnOf(h);
        Word have = mhdr::argsOf(h);
        applyScratch.clear();
        applyScratch.reserve(have + f.extra.size());
        for (Word i = 0; i < have; ++i)
            applyScratch.push_back(heap.payload(addr, i));
        CHARGE_N(ApCopyPartial, have, have * tm.copyPartialPerWord);
        applyScratch.insert(applyScratch.end(), f.extra.begin(),
                            f.extra.end());
        if (isConsId(fn) && applyScratch.size() == arityOf(fn)) {
            vr = mval::mkRef(allocConsL(fn, applyScratch.data(),
                                        applyScratch.size()));
        } else if (isConsId(fn) &&
                   applyScratch.size() > arityOf(fn)) {
            vr = mval::mkRef(allocErrorL(kErrArity));
        } else {
            vr = mval::mkRef(allocAppL(fn, applyScratch.data(),
                                       applyScratch.size()));
        }
    }
    NEXT(L_eval, EvalVal);
}

#undef CHARGE
#undef CHARGE_N
#undef SYNC
#undef RELOAD
#undef FAILX
#undef SETCLASS
#undef NEXT
#undef RESOLVE_TO
#undef LET_HEAD
#undef FETCH_CALLEE

#endif // ZARF_HAVE_COMPUTED_GOTO

// ================================================================
// Tier entry points: pick the core.
// ================================================================

void
Machine::Impl::advanceThreaded(Cycles target)
{
#ifdef ZARF_HAVE_COMPUTED_GOTO
    if (!testhooks::forceTableDispatch) {
        advanceThreadedGoto(target);
        return;
    }
#endif
    advanceThreadedTable(target);
}

// ================================================================
// Fast-functional tier. One body carries both dispatch flavors:
// computed goto when the build has it and the test hook does not
// force the portable core, otherwise a dense switch (a jump table
// after lowering). The cycle/FSM accounting and the per-µop trace
// hooks are compiled out — total counts *fused steps* — and two
// outcome-preserving superinstruction fusions apply:
//
//  - case-of-value: a scrutinee that is already WHNF (or an
//    integer) matches in place, skipping the continuation frame,
//    the activation copy, and the eval/deliver round trip;
//  - all-int primitive application: operands that all chase to
//    integers feed the ALU/IO op directly, skipping the PrimArgs
//    frame and the per-operand forcing round trips. InvokeGc and
//    reference operands (thunks, WHNF values, Errors) take the
//    generic frame path, so error and forcing semantics are
//    untouched.
//
// Counter statistics that benches report (instruction counts,
// per-function activations, allocations) are maintained; cycle
// fields stop accumulating. GC stays at step boundaries under the
// same safe-margin discipline as the cycle-accurate tiers; the
// cycle-interval GC policy is ignored (there is no cycle clock).
// ================================================================

#define FSYNC()                                                       \
    do {                                                              \
        total = tot;                                                  \
        vreg = vr;                                                    \
    } while (0)

#define FRELOAD()                                                     \
    do {                                                              \
        tot = total;                                                  \
        vr = vreg;                                                    \
    } while (0)

#define FFAIL(why, m)                                                 \
    do {                                                              \
        mode = Mode::m;                                               \
        FSYNC();                                                      \
        fail(why);                                                    \
        return;                                                       \
    } while (0)

// The fused-step boundary: count the step, then the health gate and
// safe-margin GC (no cycle-interval policy in this tier).
#define FNEXT(L, m)                                                   \
    do {                                                              \
        ++tot;                                                        \
        if (tot >= target) {                                          \
            mode = Mode::m;                                           \
            FSYNC();                                                  \
            return;                                                   \
        }                                                             \
        if (heap.corrupt() || heap.outOfMemory()) [[unlikely]] {      \
            mode = Mode::m;                                           \
            FSYNC();                                                  \
            heapHealthy();                                            \
            return;                                                   \
        }                                                             \
        if (gcExh && heap.freeWords() < kGcSafeMargin) [[unlikely]] { \
            mode = Mode::m;                                           \
            FSYNC();                                                  \
            runGc(rootProviderU());                                   \
            if (!heapHealthy())                                       \
                return;                                               \
            if (heap.freeWords() < kGcSafeMargin) {                   \
                noteStatus(MachineStatus::OutOfMemory);               \
                status = MachineStatus::OutOfMemory;                  \
                diagnostic = "live set exceeds semispace capacity";   \
                return;                                               \
            }                                                         \
            FRELOAD();                                                \
        }                                                             \
        goto L;                                                       \
    } while (0)

// Step boundary for handlers that cannot allocate: the free-words
// margin and the OOM latch can only change on an allocation, so a
// non-allocating step needs just the budget gate and the (sticky,
// chase-latched) corruption gate. The margin invariant holds
// because every allocating handler still ends in the full FNEXT,
// which re-checks the margin after its allocation.
#define FNEXT_NA(L, m)                                                \
    do {                                                              \
        ++tot;                                                        \
        if (tot >= target) {                                          \
            mode = Mode::m;                                           \
            FSYNC();                                                  \
            return;                                                   \
        }                                                             \
        if (heap.corrupt()) [[unlikely]] {                            \
            mode = Mode::m;                                           \
            FSYNC();                                                  \
            heapHealthy();                                            \
            return;                                                   \
        }                                                             \
        goto L;                                                       \
    } while (0)

#define FRESOLVE(dst, op, m)                                          \
    do {                                                              \
        const UOperand &o_ = (op);                                    \
        if (o_.src == Src::Imm) {                                     \
            dst = o_.payload;                                         \
        } else if (o_.src == Src::Arg) {                              \
            if (o_.payload >= act.args.size()) [[unlikely]] {         \
                if (testhooks::poisonedOperandDefect) {               \
                    dst = mval::mkInt(0);                             \
                } else {                                              \
                    FFAIL("argument index out of range", m);          \
                }                                                     \
            } else {                                                  \
                dst = act.args[o_.payload];                           \
            }                                                         \
        } else {                                                      \
            if (o_.payload >= act.locals.size()) [[unlikely]] {       \
                if (testhooks::poisonedOperandDefect) {               \
                    dst = mval::mkInt(0);                             \
                } else {                                              \
                    FFAIL("local index out of range", m);             \
                }                                                     \
            } else {                                                  \
                dst = act.locals[o_.payload];                         \
            }                                                         \
        }                                                             \
    } while (0)

// Open-coded indirection chase for the fast core's hot paths. The
// common cases (integer, non-Ind object, short Ind chain) complete
// in the few inline loads below; anything rare — a wild reference or
// a chain longer than the hop budget (only corruption or fault
// injection builds those) — falls back to Heap::chase, which owns
// the corruption marking and cycle detection.
#define FCHASE(dst, srcw)                                             \
    do {                                                              \
        Word c__ = (srcw);                                            \
        int hops__ = 64;                                              \
        for (;;) {                                                    \
            if (mval::isInt(c__))                                     \
                break;                                                \
            const Word a__ = mval::refOf(c__);                        \
            if (!heap.validAddr(a__)) [[unlikely]] {                  \
                c__ = heap.chase(c__);                                \
                break;                                                \
            }                                                         \
            if (mhdr::kindOf(heap.header(a__)) != ObjKind::Ind)       \
                break;                                                \
            if (--hops__ == 0) [[unlikely]] {                         \
                c__ = heap.chase(c__);                                \
                break;                                                \
            }                                                         \
            c__ = heap.payload(a__, 0);                               \
        }                                                             \
        dst = c__;                                                    \
    } while (0)

#define FLET_HEAD()                                                   \
    do {                                                              \
        ++machineStats.let.count;                                     \
        letScratch.clear();                                           \
        const UOperand *ops_ = operands + u->argsBegin;               \
        for (uint32_t i_ = 0; i_ < u->nargs; ++i_) {                  \
            Word v_;                                                  \
            FRESOLVE(v_, ops_[i_], Exec);                             \
            letScratch.push_back(v_);                                 \
        }                                                             \
    } while (0)

#define FFETCH_CALLEE(dst)                                            \
    do {                                                              \
        if (u->calleeKind == CalleeKind::Local) {                     \
            if (u->calleeId >= act.locals.size()) [[unlikely]]        \
                FFAIL("callee local out of range", Exec);             \
            dst = act.locals[u->calleeId];                            \
        } else {                                                      \
            if (u->calleeId >= act.args.size()) [[unlikely]]          \
                FFAIL("callee arg out of range", Exec);               \
            dst = act.args[u->calleeId];                              \
        }                                                             \
    } while (0)

void
Machine::Impl::advanceFast(Cycles target)
{
    if (status != MachineStatus::Running)
        return;

    // Hoisted configuration.
    const bool gcExh = cfg.gcOnExhaustion;
    const Uop *const uops = pre.uops.data();
    const size_t nUops = pre.uops.size();
    const UOperand *const operands = pre.operands.data();
    const UPattern *const patterns = pre.patterns.data();
    [[maybe_unused]] const bool useTable =
        testhooks::forceTableDispatch;

    // Hot registers: the step counter and the value register.
    Cycles tot = total;
    Word vr = vreg;
    const Uop *u = nullptr;

#ifdef ZARF_HAVE_COMPUTED_GOTO
    static const void *const ftokTab[kNumTok] = {
        &&FT_letConsSat, &&FT_letConsOver, &&FT_letApp,
        &&FT_letUnknown, &&FT_letAlias,    &&FT_letBind,
        &&FT_case,       &&FT_result,      &&FT_invalid,
    };
#endif

    // Allocation helpers: the µop constructors minus the charges.
    auto allocAppF = [&](Word fn, const Word *args, size_t n) -> Word {
        bool pad = n == 0;
        Word zero = 0;
        const Word *p = pad ? &zero : args;
        return heap.alloc(ObjKind::App, fn, p, pad ? 1 : n, pad);
    };
    auto allocConsF = [&](Word id, const Word *fields,
                          size_t n) -> Word {
        bool pad = n == 0;
        Word zero = 0;
        const Word *p = pad ? &zero : fields;
        return heap.alloc(ObjKind::Cons, id, p, pad ? 1 : n, pad);
    };
    auto allocAppVF = [&](Word callee, const Word *args,
                          size_t n) -> Word {
        appvScratch.clear();
        appvScratch.push_back(callee);
        appvScratch.insert(appvScratch.end(), args, args + n);
        return heap.alloc(ObjKind::AppV, 0, appvScratch.data(),
                          appvScratch.size());
    };
    auto allocErrorF = [&](SWord code) -> Word {
        ++machineStats.errorsCreated;
        Word field = mval::mkInt(code);
        return allocConsF(static_cast<Word>(Prim::Error), &field, 1);
    };
    auto bindApplyF = [&](Word callee) -> Word {
        Word c = heap.chase(callee);
        if (mval::isInt(c))
            return mval::mkRef(allocErrorF(kErrBadApply));
        Word h = heap.header(mval::refOf(c));
        ObjKind k = mhdr::kindOf(h);
        if (k == ObjKind::App && objIsWhnfU(h)) {
            Word fn = mhdr::fnOf(h);
            Word have = mhdr::argsOf(h);
            applyScratch.clear();
            applyScratch.reserve(have + letScratch.size());
            for (Word i = 0; i < have; ++i)
                applyScratch.push_back(
                    heap.payload(mval::refOf(c), i));
            applyScratch.insert(applyScratch.end(),
                                letScratch.begin(),
                                letScratch.end());
            if (isConsId(fn) && applyScratch.size() == arityOf(fn))
                return mval::mkRef(allocConsF(fn, applyScratch.data(),
                                              applyScratch.size()));
            if (isConsId(fn) && applyScratch.size() > arityOf(fn))
                return mval::mkRef(allocErrorF(kErrArity));
            return mval::mkRef(allocAppF(fn, applyScratch.data(),
                                         applyScratch.size()));
        }
        if (k == ObjKind::Cons) {
            return mhdr::fnOf(h) == static_cast<Word>(Prim::Error)
                       ? c
                       : mval::mkRef(allocErrorF(kErrArity));
        }
        return mval::mkRef(allocAppVF(callee, letScratch.data(),
                                      letScratch.size()));
    };

    // Entry preamble: no step counted yet (a zero budget must be a
    // no-op, as in the µop advance loop).
    if (tot >= target)
        return;
    if (heap.corrupt() || heap.outOfMemory()) [[unlikely]] {
        heapHealthy();
        return;
    }
    if (gcExh && heap.freeWords() < kGcSafeMargin) [[unlikely]] {
        runGc(rootProviderU());
        if (!heapHealthy())
            return;
        if (heap.freeWords() < kGcSafeMargin) {
            noteStatus(MachineStatus::OutOfMemory);
            status = MachineStatus::OutOfMemory;
            diagnostic = "live set exceeds semispace capacity";
            return;
        }
        FRELOAD();
    }
    switch (mode) {
      case Mode::EvalVal:
        goto F_eval;
      case Mode::Exec:
        goto F_exec;
      case Mode::Deliver:
        goto F_deliver;
    }
    return; // unreachable: the switch above covers every mode

    // ------------------------------------------------------------
    // EvalVal
    // ------------------------------------------------------------
F_eval:
    FCHASE(vr, vr);
    if (mval::isInt(vr))
        FNEXT_NA(F_deliver, Deliver);
    {
        Word addr = mval::refOf(vr);
        Word h = heap.header(addr);
        ObjKind kind = mhdr::kindOf(h);
        if (kind == ObjKind::Blackhole)
            FFAIL("re-entered a thunk under evaluation", EvalVal);
        if (objIsWhnfU(h))
            FNEXT_NA(F_deliver, Deliver);

        while (!conts.empty() &&
               conts.top().kind == Frame::Kind::Update) {
            Word prev = conts.top().target;
            Word ph = heap.header(prev);
            heap.setHeader(prev, mhdr::pack(ObjKind::Ind,
                                            mhdr::countOf(ph), 0,
                                            mhdr::padOf(ph)));
            heap.setPayload(prev, 0, vr);
            conts.pop();
        }
        conts.push(Frame::Kind::Update).target = addr;

        Word count = mhdr::argsOf(h);
        Word fn = mhdr::fnOf(h);

        if (kind == ObjKind::AppV) {
            Word callee = heap.payload(addr, 0);
            Frame &f = conts.push(Frame::Kind::Apply);
            for (Word i = 1; i < mhdr::countOf(h); ++i)
                f.extra.push_back(heap.payload(addr, i));
            blackhole(addr, h);
            vr = callee;
            FNEXT_NA(F_eval, EvalVal);
        }

        evalScratch.clear();
        evalScratch.reserve(count);
        for (Word i = 0; i < count; ++i)
            evalScratch.push_back(heap.payload(addr, i));
        blackhole(addr, h);

        Word arity = arityOf(fn);
        if (isConsId(fn)) {
            vr = mval::mkRef(allocErrorF(kErrArity));
            FNEXT(F_eval, EvalVal);
        }
        if (evalScratch.size() > arity) {
            Frame &f = conts.push(Frame::Kind::Apply);
            f.extra.assign(evalScratch.begin() + arity,
                           evalScratch.end());
            evalScratch.resize(arity);
        }
        if (isPrimId(fn)) {
            if (evalScratch.empty())
                FFAIL("zero-arity primitive application", EvalVal);
            Prim p = static_cast<Prim>(fn);
            // Fused all-int primitive application.
            bool allInts = p != Prim::InvokeGc;
            fastAluScratch.clear();
            if (allInts) {
                for (Word w : evalScratch) {
                    Word cw;
                    FCHASE(cw, w);
                    if (!mval::isInt(cw)) {
                        allInts = false;
                        break;
                    }
                    fastAluScratch.push_back(mval::intOf(cw));
                }
            }
            if (allInts) {
                switch (p) {
                  case Prim::GetInt:
                    // Bus handlers may read cycles(); flush the
                    // cached step counter first.
                    FSYNC();
                    vr = mval::mkInt(
                        wrapInt31(bus.getInt(fastAluScratch[0])));
                    break;
                  case Prim::PutInt:
                    FSYNC();
                    bus.putInt(fastAluScratch[0],
                               fastAluScratch[1]);
                    vr = mval::mkInt(fastAluScratch[1]);
                    break;
                  default: {
                    PrimResult r = evalAlu(p, fastAluScratch);
                    vr = r.ok ? mval::mkInt(r.value)
                              : mval::mkRef(allocErrorF(r.errCode));
                    break;
                  }
                }
                FNEXT(F_deliver, Deliver);
            }
            Frame &f = conts.push(Frame::Kind::PrimArgs);
            f.prim = p;
            f.primArgs.assign(evalScratch.begin(),
                              evalScratch.end());
            f.nextArg = 0;
            vr = f.primArgs[0];
            FNEXT_NA(F_eval, EvalVal);
        }

        size_t idx = fn - kFirstUserFuncId;
        ++callCounts[idx];
        act.funcId = fn;
        act.args.swap(evalScratch);
        act.locals.clear();
        act.pc = funcs[idx].bodyBegin;
    }
    FNEXT_NA(F_exec, Exec);

    // ------------------------------------------------------------
    // Exec: fetch and token-dispatch
    // ------------------------------------------------------------
F_exec:
    if (act.pc >= nUops) [[unlikely]]
        FFAIL("program counter ran off the image", Exec);
    u = uops + act.pc;
#ifdef ZARF_HAVE_COMPUTED_GOTO
    if (!useTable)
        goto *ftokTab[u->tcode];
#endif
    switch (u->tcode) {
      case kTokLetConsSat:
        goto FT_letConsSat;
      case kTokLetConsOver:
        goto FT_letConsOver;
      case kTokLetApp:
        goto FT_letApp;
      case kTokLetUnknown:
        goto FT_letUnknown;
      case kTokLetAlias:
        goto FT_letAlias;
      case kTokLetBind:
        goto FT_letBind;
      case kTokCase:
        goto FT_case;
      case kTokResult:
        goto FT_result;
      default:
        goto FT_invalid;
    }

// True when the µop after `u` is `result` of exactly the local this
// let is about to bind — the universal tail shape `let r = ...;
// result r`, where r dies at the result. Handlers use it to deliver
// the letting's value directly (and, for calls, to elide the thunk
// and update frame entirely).
#define FTAIL_RESULT()                                                \
    (u->next < nUops && uops[u->next].tcode == kTokResult &&          \
     uops[u->next].operand.src == Src::Local &&                       \
     uops[u->next].operand.payload == act.locals.size())

FT_letConsSat:
    FLET_HEAD();
    {
        Word c = mval::mkRef(allocConsF(
            u->calleeId, letScratch.data(), letScratch.size()));
        if (FTAIL_RESULT()) {
            // Fused `let r = Cons ...; result r`: a constructor is
            // already WHNF, so deliver it without the bind, the
            // refetch, and the eval step.
            ++machineStats.result.count;
            vr = c;
            FNEXT(F_deliver, Deliver);
        }
        act.locals.push_back(c);
    }
    act.pc = u->next;
    FNEXT(F_exec, Exec);

FT_letConsOver:
    FLET_HEAD();
    act.locals.push_back(mval::mkRef(allocErrorF(kErrArity)));
    act.pc = u->next;
    FNEXT(F_exec, Exec);

FT_letApp:
    FLET_HEAD();
    {
        const Word fn = u->calleeId;
        if (u->nargs == u->calleeArity) {
            if (fn >= kFirstUserFuncId) {
                if (FTAIL_RESULT()) {
                    // Fused tail call `let r = f(...); result r`:
                    // the binding's only consumer is the result, so
                    // the App thunk, its update frame, and the
                    // update write are all unobservable — enter the
                    // callee directly. Deep recursion in this shape
                    // (every loop in the source language) runs in
                    // constant frame and heap space.
                    ++machineStats.result.count;
                    const size_t idx = fn - kFirstUserFuncId;
                    ++callCounts[idx];
                    act.funcId = fn;
                    act.args.swap(letScratch);
                    act.locals.clear();
                    act.pc = funcs[idx].bodyBegin;
                    FNEXT_NA(F_exec, Exec);
                }
            } else if (FTAIL_RESULT() && fn != 0 &&
                       fn != static_cast<Word>(Prim::InvokeGc) &&
                       isPrimId(fn)) {
                // Fused `let r = prim(...); result r`: the result
                // forces the application immediately, so evaluate it
                // strictly under the current continuation — no App
                // thunk, no update frame. Arguments that are already
                // integers complete in place (including the I/O
                // prims, whose effects a force would perform at
                // exactly this point); otherwise the generic
                // PrimArgs frame forces them one by one.
                ++machineStats.result.count;
                const Prim p = static_cast<Prim>(fn);
                bool allInts = true;
                fastAluScratch.clear();
                for (Word w : letScratch) {
                    Word cw;
                    FCHASE(cw, w);
                    if (!mval::isInt(cw)) {
                        allInts = false;
                        break;
                    }
                    fastAluScratch.push_back(mval::intOf(cw));
                }
                if (allInts) {
                    switch (p) {
                      case Prim::GetInt:
                        FSYNC();
                        vr = mval::mkInt(
                            wrapInt31(bus.getInt(fastAluScratch[0])));
                        break;
                      case Prim::PutInt:
                        FSYNC();
                        bus.putInt(fastAluScratch[0],
                                   fastAluScratch[1]);
                        vr = mval::mkInt(fastAluScratch[1]);
                        break;
                      default: {
                        PrimResult r = evalAlu(p, fastAluScratch);
                        vr = r.ok
                                 ? mval::mkInt(r.value)
                                 : mval::mkRef(allocErrorF(r.errCode));
                        break;
                      }
                    }
                    FNEXT(F_deliver, Deliver);
                }
                Frame &f = conts.push(Frame::Kind::PrimArgs);
                f.prim = p;
                f.primArgs.assign(letScratch.begin(),
                                  letScratch.end());
                f.nextArg = 0;
                vr = f.primArgs[0];
                FNEXT_NA(F_eval, EvalVal);
            } else if (fn >= static_cast<Word>(Prim::Add) &&
                       fn <= static_cast<Word>(Prim::Sru)) {
                // Eager pure-ALU application: when every argument is
                // already an integer, compute now instead of
                // allocating a thunk to force later. Division-style
                // failures fall back to the lazy path so the Error
                // value (and the errorsCreated counter) appear
                // exactly when a force would have produced them.
                bool allInts = true;
                fastAluScratch.clear();
                for (Word w : letScratch) {
                    Word cw;
                    FCHASE(cw, w);
                    if (!mval::isInt(cw)) {
                        allInts = false;
                        break;
                    }
                    fastAluScratch.push_back(mval::intOf(cw));
                }
                if (allInts) {
                    PrimResult r =
                        evalAlu(static_cast<Prim>(fn), fastAluScratch);
                    if (r.ok) {
                        if (FTAIL_RESULT()) {
                            ++machineStats.result.count;
                            vr = mval::mkInt(r.value);
                            FNEXT_NA(F_deliver, Deliver);
                        }
                        act.locals.push_back(mval::mkInt(r.value));
                        act.pc = u->next;
                        FNEXT_NA(F_exec, Exec);
                    }
                }
            }
        }
        act.locals.push_back(mval::mkRef(allocAppF(
            fn, letScratch.data(), letScratch.size())));
    }
    act.pc = u->next;
    FNEXT(F_exec, Exec);

FT_letUnknown:
    FLET_HEAD();
    FFAIL("let names an unknown function identifier", Exec);

FT_letAlias:
    FLET_HEAD();
    {
        Word callee;
        FFETCH_CALLEE(callee);
        act.locals.push_back(callee);
    }
    act.pc = u->next;
    FNEXT_NA(F_exec, Exec);

FT_letBind:
    FLET_HEAD();
    {
        Word callee;
        FFETCH_CALLEE(callee);
        act.locals.push_back(bindApplyF(callee));
    }
    act.pc = u->next;
    FNEXT(F_exec, Exec);

FT_case:
    ++machineStats.caseInstr.count;
    {
        Word scrut;
        FRESOLVE(scrut, u->operand, Exec);
        Word v;
        FCHASE(v, scrut);
        bool isInt = mval::isInt(v);
        Word h = 0;
        if (!isInt)
            h = heap.header(mval::refOf(v));
        if (isInt || objIsWhnfU(h)) {
            // Fused case-of-value: match in place.
            const UPattern *pats = patterns + u->patBegin;
            for (uint32_t i = 0; i < u->patCount; ++i) {
                ++machineStats.branchHeads;
                const UPattern &pat = pats[i];
                bool match;
                if (pat.isCons) {
                    match = !isInt &&
                            mhdr::kindOf(h) == ObjKind::Cons &&
                            mhdr::fnOf(h) == pat.consId;
                } else {
                    match = isInt && mval::intOf(v) == pat.lit;
                }
                if (match) {
                    if (pat.isCons) {
                        Word caddr = mval::refOf(v);
                        Word n = mhdr::argsOf(h);
                        for (Word j = 0; j < n; ++j)
                            act.locals.push_back(
                                heap.payload(caddr, j));
                    }
                    act.pc = pat.body;
                    FNEXT_NA(F_exec, Exec);
                }
            }
            act.pc = u->elseBody;
            FNEXT_NA(F_exec, Exec);
        }
        // Unevaluated scrutinee: the generic frame path. The
        // activation moves into the frame by swap (the deliver path
        // swaps it back); the recycled vectors left behind are
        // cleared so the GC root walk never sees their stale words.
        Frame &f = conts.push(Frame::Kind::Case);
        f.act.funcId = act.funcId;
        f.act.pc = act.pc;
        f.act.args.swap(act.args);
        f.act.locals.swap(act.locals);
        act.args.clear();
        act.locals.clear();
        vr = scrut;
    }
    FNEXT_NA(F_eval, EvalVal);

FT_result:
    ++machineStats.result.count;
    {
        Word v;
        FRESOLVE(v, u->operand, Exec);
        vr = v;
        if (mval::isInt(v))
            FNEXT_NA(F_deliver, Deliver); // fused: skip the eval step
    }
    FNEXT_NA(F_eval, EvalVal);

FT_invalid:
    FFAIL(strprintf("unexpected opcode at word %zu", act.pc), Exec);

    // ------------------------------------------------------------
    // Deliver
    // ------------------------------------------------------------
F_deliver:
    if (conts.empty()) {
        mode = Mode::Deliver;
        FSYNC();
        noteStatus(MachineStatus::Done);
        status = MachineStatus::Done;
        return;
    }
    switch (conts.top().kind) {
      case Frame::Kind::Update: {
        Word tgt = conts.top().target;
        conts.pop();
        Word h = heap.header(tgt);
        heap.setHeader(tgt, mhdr::pack(ObjKind::Ind, mhdr::countOf(h),
                                       0, mhdr::padOf(h)));
        heap.setPayload(tgt, 0, vr);
        FNEXT_NA(F_deliver, Deliver);
      }
      case Frame::Kind::Case:
        std::swap(act, conts.top().act);
        conts.pop();
        goto F_resumeCase;
      case Frame::Kind::PrimArgs:
        goto F_dprim;
      case Frame::Kind::Apply:
        goto F_dapply;
    }

F_resumeCase:
    {
        const Uop &cu = uops[act.pc]; // saved at the case head
        Word v;
        FCHASE(v, vr);
        bool isInt = mval::isInt(v);
        Word h = 0;
        if (!isInt)
            h = heap.header(mval::refOf(v));
        const UPattern *pats = patterns + cu.patBegin;
        for (uint32_t i = 0; i < cu.patCount; ++i) {
            ++machineStats.branchHeads;
            const UPattern &pat = pats[i];
            bool match;
            if (pat.isCons) {
                match = !isInt &&
                        mhdr::kindOf(h) == ObjKind::Cons &&
                        mhdr::fnOf(h) == pat.consId;
            } else {
                match = isInt && mval::intOf(v) == pat.lit;
            }
            if (match) {
                if (pat.isCons) {
                    Word caddr = mval::refOf(v);
                    Word n = mhdr::argsOf(h);
                    for (Word j = 0; j < n; ++j)
                        act.locals.push_back(heap.payload(caddr, j));
                }
                act.pc = pat.body;
                FNEXT_NA(F_exec, Exec);
            }
        }
        act.pc = cu.elseBody;
    }
    FNEXT_NA(F_exec, Exec);

F_dprim:
    {
        Frame &f = conts.top();
        Word v = heap.chase(vr);
        Prim p = f.prim;

        if (mval::isRef(v)) {
            Word h = heap.header(mval::refOf(v));
            conts.pop();
            if (mhdr::kindOf(h) == ObjKind::Cons &&
                mhdr::fnOf(h) == static_cast<Word>(Prim::Error)) {
                vr = v;
                FNEXT(F_deliver, Deliver);
            }
            SWord code = (p == Prim::GetInt || p == Prim::PutInt)
                             ? kErrIoNotInt
                             : kErrBadApply;
            vr = mval::mkRef(allocErrorF(code));
            FNEXT(F_deliver, Deliver);
        }

        f.collected.push_back(mval::intOf(v));
        f.nextArg++;
        if (f.nextArg < f.primArgs.size()) {
            vr = f.primArgs[f.nextArg];
            FNEXT(F_eval, EvalVal);
        }

        conts.pop(); // slot stays readable until the next push
        switch (p) {
          case Prim::GetInt:
            // Bus handlers may read cycles(); flush the cached step
            // counter first.
            FSYNC();
            vr = mval::mkInt(wrapInt31(bus.getInt(f.collected[0])));
            break;
          case Prim::PutInt:
            FSYNC();
            bus.putInt(f.collected[0], f.collected[1]);
            vr = mval::mkInt(f.collected[1]);
            break;
          case Prim::InvokeGc:
            mode = Mode::Deliver;
            FSYNC();
            runGc(rootProviderU());
            FRELOAD();
            vr = mval::mkInt(f.collected[0]);
            break;
          default: {
            PrimResult r = evalAlu(p, f.collected);
            vr = r.ok ? mval::mkInt(r.value)
                      : mval::mkRef(allocErrorF(r.errCode));
            break;
          }
        }
    }
    FNEXT(F_deliver, Deliver);

F_dapply:
    {
        Frame &f = conts.top();
        conts.pop(); // slot storage stays valid; nothing pushes below
        Word v = heap.chase(vr);
        if (mval::isInt(v)) {
            vr = mval::mkRef(allocErrorF(kErrBadApply));
            FNEXT(F_deliver, Deliver);
        }
        Word addr = mval::refOf(v);
        Word h = heap.header(addr);
        if (mhdr::kindOf(h) == ObjKind::Cons) {
            vr = mhdr::fnOf(h) == static_cast<Word>(Prim::Error)
                     ? v
                     : mval::mkRef(allocErrorF(kErrArity));
            FNEXT(F_deliver, Deliver);
        }
        Word fn = mhdr::fnOf(h);
        Word have = mhdr::argsOf(h);
        applyScratch.clear();
        applyScratch.reserve(have + f.extra.size());
        for (Word i = 0; i < have; ++i)
            applyScratch.push_back(heap.payload(addr, i));
        applyScratch.insert(applyScratch.end(), f.extra.begin(),
                            f.extra.end());
        if (isConsId(fn) && applyScratch.size() == arityOf(fn)) {
            vr = mval::mkRef(allocConsF(fn, applyScratch.data(),
                                        applyScratch.size()));
        } else if (isConsId(fn) &&
                   applyScratch.size() > arityOf(fn)) {
            vr = mval::mkRef(allocErrorF(kErrArity));
        } else {
            vr = mval::mkRef(allocAppF(fn, applyScratch.data(),
                                       applyScratch.size()));
        }
    }
    FNEXT(F_eval, EvalVal);
}

#undef FTAIL_RESULT
#undef FSYNC
#undef FRELOAD
#undef FFAIL
#undef FNEXT
#undef FNEXT_NA
#undef FRESOLVE
#undef FCHASE
#undef FLET_HEAD
#undef FFETCH_CALLEE

} // namespace zarf
