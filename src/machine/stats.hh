/**
 * @file
 * Dynamic statistics of the λ-execution layer machine, matching the
 * measurements reported in the paper's evaluation (Sec. 6): per-
 * instruction-class cycle counts and CPI, average let arity, the
 * branch-head fraction of the dynamic instruction stream, and
 * garbage-collection accounting.
 */

#ifndef ZARF_MACHINE_STATS_HH
#define ZARF_MACHINE_STATS_HH

#include <array>
#include <map>
#include <string>

#include "machine/timing.hh"
#include "support/types.hh"

namespace zarf::obs
{
class Metrics;
} // namespace zarf::obs

namespace zarf
{

/** Stable lowercase name of a control state ("ap.fetch-let"). */
const char *mstateName(MState s);

/**
 * Per-control-state visit and cycle tally.
 *
 * Optional instrumentation (MachineConfig::fsmTally): every cycle
 * the machine charges is attributed to one of the 66 FSM states, so
 * the tally partitions the cycle ledger exactly —
 * loadCycles() == stats.loadCycles, execCycles() == stats.execCycles
 * and gcCycles() == stats.gcCycles (asserted by the obs property
 * suite).
 */
struct FsmTally
{
    std::array<uint64_t, kTotalStates> visits{};
    std::array<Cycles, kTotalStates> cycles{};

    /** One visit of s costing n cycles. */
    void
    add(MState s, Cycles n)
    {
        addN(s, 1, n);
    }

    /** v visits of s costing n cycles in total. */
    void
    addN(MState s, uint64_t v, Cycles n)
    {
        visits[static_cast<size_t>(s)] += v;
        cycles[static_cast<size_t>(s)] += n;
    }

    /** Merge another tally into this one. */
    void accumulate(const FsmTally &other);

    /** Cycles across the load states. */
    Cycles loadCycles() const;
    /** Cycles across the apply + eval states. */
    Cycles execCycles() const;
    /** Cycles across the GC states. */
    Cycles gcCycles() const;
};

/** Counters for one instruction class. */
struct ClassStats
{
    uint64_t count = 0;
    Cycles cycles = 0;

    double
    cpi() const
    {
        return count ? double(cycles) / double(count) : 0.0;
    }
};

/** Full machine statistics. */
struct MachineStats
{
    ClassStats let;
    ClassStats caseInstr;
    ClassStats result;
    uint64_t branchHeads = 0;   ///< Pattern comparisons executed.
    uint64_t letArgs = 0;       ///< Total let arguments processed.

    uint64_t allocations = 0;   ///< Objects allocated.
    uint64_t allocatedWords = 0;
    uint64_t forces = 0;        ///< Thunk entries.
    uint64_t whnfHits = 0;      ///< Forces satisfied by a check.
    uint64_t updates = 0;
    uint64_t errorsCreated = 0; ///< Reserved-Error instances built.

    Cycles loadCycles = 0;
    Cycles execCycles = 0;      ///< Everything but load and GC.

    /** Activations (saturated body entries) per function id — the
     *  machine's whole-run profile. Names live in the decoded
     *  program, not the binary; resolve via Program::decls. */
    std::map<Word, uint64_t> callsPerFunc;

    // Garbage collection.
    uint64_t gcRuns = 0;
    Cycles gcCycles = 0;
    uint64_t gcObjectsCopied = 0;
    uint64_t gcWordsCopied = 0;
    uint64_t gcRefChecks = 0;
    uint64_t gcMaxLiveWords = 0;
    Cycles gcMaxPauseCycles = 0; ///< Longest single collection.

    /** Dynamic instructions: lets + cases + results + branch heads
     *  (the paper counts branch heads in the dynamic stream). */
    uint64_t
    dynamicInstructions() const
    {
        return let.count + caseInstr.count + result.count +
               branchHeads;
    }

    /** CPI over the dynamic stream, excluding GC (paper: 7.46). */
    double
    cpiNoGc() const
    {
        uint64_t n = dynamicInstructions();
        return n ? double(execCycles) / double(n) : 0.0;
    }

    /** CPI including GC time (paper: 11.86). */
    double
    cpiWithGc() const
    {
        uint64_t n = dynamicInstructions();
        return n ? double(execCycles + gcCycles) / double(n) : 0.0;
    }

    /** Average arguments per let (paper: 5.16). */
    double
    avgLetArgs() const
    {
        return let.count ? double(letArgs) / double(let.count) : 0.0;
    }

    /** Branch heads as a fraction of dynamic instructions. */
    double
    branchHeadFraction() const
    {
        uint64_t n = dynamicInstructions();
        return n ? double(branchHeads) / double(n) : 0.0;
    }

    /** Render a human-readable report. */
    std::string report() const;

    /** Merge another run's statistics into this one (counters sum,
     *  high-water marks take the max, per-function profiles merge by
     *  key). Used to aggregate across watchdog restarts. */
    void accumulate(const MachineStats &other);
};

/** Export the statistics as "<prefix>..." counters. */
void exportStats(const MachineStats &stats, obs::Metrics &metrics,
                 const std::string &prefix);

/** Export the tally as paired "<histogram>.visits"/".cycles"
 *  histograms with one bucket per state, in state order. */
void exportTally(const FsmTally &tally, obs::Metrics &metrics,
                 const std::string &histogram);

} // namespace zarf

#endif // ZARF_MACHINE_STATS_HH
