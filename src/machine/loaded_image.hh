/**
 * @file
 * The immutable shared load artifact of the λ-machine.
 *
 * Campaign workloads (fault sweeps, refinement shards, benches) run
 * thousands of machines over the *same* binary image. Header
 * parsing, identifier-metadata resolution, and µop predecoding are
 * pure functions of the image, so repeating them per machine buys
 * nothing — a LoadedImage performs them exactly once and is then
 * shared read-only (std::shared_ptr) by every Machine constructed
 * from it, in the decode-once spirit of machine/predecode.hh.
 *
 * Loading *as modelled* is untouched: each Machine still charges the
 * full load-stream cycles and re-surfaces the same structural
 * diagnostics in the same order, so a Machine built from a
 * LoadedImage is bit-identical — results, cycles, statistics,
 * traces — to one built from the raw image (docs/PERF.md,
 * "Campaign-scale execution").
 */

#ifndef ZARF_MACHINE_LOADED_IMAGE_HH
#define ZARF_MACHINE_LOADED_IMAGE_HH

#include <memory>
#include <string>
#include <vector>

#include "isa/binary.hh"
#include "machine/predecode.hh"

namespace zarf
{

/** A validated, predecoded image shared across machines. */
class LoadedImage
{
  public:
    /** Identifier metadata (primitives + user declarations),
     *  resolved once; indexed by function/constructor id. */
    struct IdInfo
    {
        Word arity = 0;
        bool isCons = false;
        bool exists = false;
    };

    /**
     * Build the artifact. Never fails on the host: structural
     * problems are recorded (headerOk/headerError, pre.error) for
     * Machine::load to surface with exactly the diagnostics a
     * direct-image load would produce.
     *
     * @param image the binary image (copied into the artifact)
     * @param predecode also build the µop streams and identifier
     *        table (required by every µop-walking dispatch tier;
     *        only the word-walking reference tier can run from a
     *        header parse alone)
     */
    static std::shared_ptr<const LoadedImage>
    load(const Image &image, bool predecode = true);

    /** The owned image words. */
    Image image;

    /** Header parse outcome. When false, headerError carries the
     *  diagnostic ("bad magic word", ...). */
    bool headerOk = false;
    std::string headerError;

    /** Declaration metadata, one entry per declaration (possibly
     *  partial when headerOk is false, mirroring a direct load). */
    std::vector<PredecodedFunc> funcs;

    /** Index of the zero-argument entry function. */
    Word entry = 0;

    /** True when the artifact was built with predecode support
     *  (pre/idInfo populated; pre.ok may still be false on a
     *  structurally invalid body). */
    bool hasPredecode = false;

    /** µop streams (machine/predecode.hh). */
    Predecoded pre;

    /** Identifier metadata table. */
    std::vector<IdInfo> idInfo;
};

} // namespace zarf

#endif // ZARF_MACHINE_LOADED_IMAGE_HH
