/**
 * @file
 * The cycle-level model of the λ-execution layer hardware.
 *
 * Unlike the reference interpreters in src/sem, this machine
 * executes the *binary image* directly — it fetches and decodes
 * instruction words, keeps all values in a word-addressed semispace
 * heap, performs lazy graph reduction with in-place update, runs the
 * semispace trace collector, and charges cycles per control-FSM
 * state visit according to the TimingModel (see machine/timing.hh).
 *
 * The machine is resumable: advance(budget) executes until the
 * budget is exhausted or the program finishes, which is what the
 * two-layer co-simulation (src/system) uses to interleave it with
 * the imperative core at their respective clock rates.
 */

#ifndef ZARF_MACHINE_MACHINE_HH
#define ZARF_MACHINE_MACHINE_HH

#include <memory>
#include <string>
#include <vector>

#include "isa/binary.hh"
#include "machine/heap.hh"
#include "machine/stats.hh"
#include "machine/timing.hh"
#include "sem/io.hh"
#include "sem/value.hh"

namespace zarf::obs
{
class Metrics;
class Recorder;
} // namespace zarf::obs

namespace zarf::verify
{
class Budget;
} // namespace zarf::verify

namespace zarf
{

class LoadedImage;
class MachineSnapshot;

/**
 * How the host finds the next control-FSM state to visit — the
 * dispatch-tier ladder (docs/PERF.md, "The dispatch-tier ladder").
 * None of the cycle-accurate tiers changes a modelled cycle; the
 * fast-functional tier abandons the cycle model entirely.
 */
enum class DispatchTier : uint8_t
{
    /** Re-fetch and re-decode raw image words every step — the
     *  original reference machine, kept verbatim as the differential
     *  baseline. Cycle-accurate. */
    WordWalk,
    /** Walk predecoded µop streams through a central switch on the
     *  pooled hot path (PR 1). Cycle-accurate; the default. */
    Uop,
    /** Direct-threaded dispatch over the same µop streams: each
     *  µop's handler is resolved once at predecode time into a
     *  dispatch token, and handlers jump straight to the next
     *  handler (computed goto where the compiler supports it, a
     *  function-pointer table otherwise). Bit-identical to the µop
     *  tier in results, cycles, statistics, and traces. */
    Threaded,
    /** Threaded dispatch with the cycle/FSM accounting and trace
     *  hooks compiled out, plus outcome-preserving superinstruction
     *  fusion. Only results, IO, and the final heap-observable
     *  value are meaningful; cycles() counts fused *steps* (after
     *  the still-modelled load), the per-instruction execution
     *  cycle fields of stats() stop accumulating while the
     *  instruction, allocation, and call counters stay exact (load
     *  and GC accounting is shared machinery and still charged),
     *  and the per-µop trace and FSM-tally hooks emit nothing. For campaign and fuzz
     *  workloads only — never for timing. */
    FastFunctional,
};

/** Name of a DispatchTier value, for reports and bench rows. */
const char *dispatchTierName(DispatchTier t);

/** True for the tiers that execute predecoded µop streams (every
 *  tier except the word-walking reference path). */
inline bool
tierUsesPredecode(DispatchTier t)
{
    return t != DispatchTier::WordWalk;
}

/** True for the tiers held to the full cycle model (everything but
 *  FastFunctional). */
inline bool
tierCycleAccurate(DispatchTier t)
{
    return t != DispatchTier::FastFunctional;
}

/** Machine configuration. */
struct MachineConfig
{
    size_t semispaceWords = 1u << 20;
    TimingModel timing{};
    /** Also collect automatically when allocation fills the space
     *  (the paper's configurable GC trigger). The InvokeGc hardware
     *  function always collects. */
    bool gcOnExhaustion = true;
    /** Collect every N cycles (0 disables) — the paper's
     *  "configured to run at specific intervals" policy. */
    Cycles gcIntervalCycles = 0;
    /** Host dispatch tier (see DispatchTier). Cycle-accurate tiers
     *  are bit-identical to each other on every well-formed image.
     *  When left at the default (Uop), the deprecated usePredecode
     *  shim below still selects between Uop and WordWalk so code
     *  predating the enum keeps its meaning; an explicit non-default
     *  tier always wins. */
    DispatchTier tier = DispatchTier::Uop;
    /** Deprecated shim for the pre-tier bool: false selects the
     *  word-walking reference path *if* `tier` was left at its
     *  default. New code should set `tier` directly. */
    bool usePredecode = true;
    /** The tier this configuration actually selects. */
    DispatchTier
    effectiveTier() const
    {
        if (tier == DispatchTier::Uop && !usePredecode)
            return DispatchTier::WordWalk;
        return tier;
    }
    /** Event sink for lifecycle/exec/GC events (null = tracing off;
     *  docs/OBSERVABILITY.md). Not owned; must outlive the machine. */
    obs::Recorder *trace = nullptr;
    /** Added to cycles() when stamping trace events — the system
     *  layer passes its epoch so timestamps share the λ clock across
     *  watchdog restarts. */
    Cycles traceBias = 0;
    /** Maintain the per-FSM-state visit/cycle tally (fsmTally()).
     *  Off by default: the hot path stays branch-only-on-a-bool. */
    bool fsmTally = false;
    /** Cooperative cancellation/budget token (verify/budget.hh).
     *  When set, advance() runs in bounded chunks and consults the
     *  token between them — at a step boundary every dispatch tier
     *  reaches identically — latching MachineStatus::BudgetExceeded
     *  on a trip. λ-cycle and heap trips land on the same cycle for
     *  every cycle-accurate tier; the fast-functional tier checks
     *  its own fused-step clock. Null = unlimited (the default; the
     *  hot path pays nothing). Not owned; must outlive the machine
     *  and may be cancelled from any thread. */
    verify::Budget *budget = nullptr;
};

/** Current condition of the machine. */
enum class MachineStatus
{
    Running,     ///< More work to do; call advance again.
    Done,        ///< The program reduced to a value.
    OutOfMemory, ///< A collection could not make room.
    Stuck,       ///< Semantically undefined state (malformed image).
    HeapCorrupt, ///< Detected heap-integrity failure (GC to-space
                 ///< overflow, indirection cycle, wild reference).
                 ///< Recoverable by a system-level restart.
    MemFault,    ///< Uncorrectable memory fault signalled by the
                 ///< ECC/parity machinery (fault injection).
    BudgetExceeded, ///< The configured verify::Budget tripped — a
                    ///< host-side abort, not a machine fault. Latched
                    ///< like the failure statuses; the machine state
                    ///< at the trip point is consistent and
                    ///< snapshottable.
};

/** Name of a MachineStatus value, for diagnostics and reports. */
const char *machineStatusName(MachineStatus st);

/** The λ-execution layer. */
class Machine
{
  public:
    /**
     * Load a binary image. Loading itself is simulated (the four
     * load states) and charged to stats().loadCycles.
     *
     * @param image the program image (validated on load)
     * @param bus the I/O bus getint/putint talk to
     * @param config sizing and timing
     */
    Machine(const Image &image, IoBus &bus, MachineConfig config = {});

    /**
     * Construct from a shared load artifact (machine/loaded_image.hh)
     * instead of a raw image: header parsing, identifier metadata,
     * and µop predecoding are reused from the artifact rather than
     * redone. Bit-identical to the raw-image constructor in results,
     * cycles, statistics, and traces — modelled loading is still
     * simulated and charged in full. The artifact must have been
     * built with predecode support when the configured dispatch
     * tier executes µop streams (every tier but WordWalk).
     */
    Machine(std::shared_ptr<const LoadedImage> li, IoBus &bus,
            MachineConfig config = {});
    ~Machine();

    /**
     * Capture the complete architectural state (heap words, frame
     * stack, registers, statistics, status) so an equally-configured
     * machine over the same image can later restore() it. The
     * snapshot is immutable and shareable: one snapshot can seed any
     * number of forked machines, concurrently. Trace events are not
     * replayed — a restored machine emits exactly the events the
     * source had not yet emitted.
     */
    std::shared_ptr<const MachineSnapshot> snapshot() const;

    /** Adopt a state captured by snapshot(). The receiver must have
     *  the same semispace size, a state-compatible dispatch tier
     *  (the µop-walking cycle-accurate tiers {Uop, Threaded} are
     *  interchangeable; WordWalk and FastFunctional only restore
     *  within their own tier), and the same image as the snapshot's
     *  source (fatal otherwise). */
    void restore(const MachineSnapshot &snap);

    /** Execute until the status changes or `budget` more cycles
     *  elapse. Returns the current status. */
    MachineStatus advance(Cycles budget);

    /** Convenience: run to completion (or maxCycles), then export
     *  the deeply forced result value. Null value if not Done. */
    struct Outcome
    {
        MachineStatus status;
        ValuePtr value;
        std::string diagnostic;
    };
    Outcome run(Cycles maxCycles = 2'000'000'000ull);

    /** Total cycles elapsed on the machine clock: load + execution.
     *  GC time is accounted separately in stats().gcCycles — the
     *  paper's WCET story (Sec. 5.2) bounds mutator execution and
     *  collection independently, and the system layer schedules
     *  against the mutator clock. */
    Cycles cycles() const;

    /** Current status without advancing. */
    MachineStatus status() const;

    /** Diagnostic string for the last non-Running status ("" while
     *  healthy). */
    const std::string &diagnostic() const;

    /** Dynamic statistics. */
    const MachineStats &stats() const;

    /** Per-FSM-state tally (all-zero unless MachineConfig::fsmTally).
     *  Partitions the cycle ledger: loadCycles()/execCycles()/
     *  gcCycles() match the corresponding stats() fields. */
    const FsmTally &fsmTally() const;

    /** Export stats() (and the tally, when enabled) into a metrics
     *  registry under `prefix`. */
    void exportMetrics(obs::Metrics &metrics,
                       const std::string &prefix = "lambda.") const;

    // --------------------------------------------------------------
    // Fault injection (src/fault). These model physical upsets; none
    // of them is reachable from program execution.
    // --------------------------------------------------------------

    /** Flip one bit of an allocated heap word (single-event upset).
     *  `wordIndex` selects among the currently allocated words
     *  (reduced modulo the live allocation); `bit` is reduced modulo
     *  32. Returns false (no-op) if the heap is empty. */
    bool injectHeapBitFlip(size_t wordIndex, unsigned bit);

    /** Flip one bit of the value register (in-flight operand SEU). */
    void injectOperandBitFlip(unsigned bit);

    /** Signal an uncorrectable memory fault, as the ECC/parity
     *  hardware would: the machine halts with MachineStatus::MemFault
     *  and `why` as its diagnostic. No-op unless Running. */
    void raiseMemFault(const std::string &why);

    /** Force a collection now (used by tests). */
    void collectNow();

    /** Words live in the heap after the last collection. */
    size_t heapUsedWords() const;

    /** Census of live heap objects after a collection: count of
     *  objects per (kind, fn id) pair. A debugging/analysis aid for
     *  finding space leaks in lazy programs. */
    struct CensusEntry
    {
        ObjKind kind;
        Word fn;
        size_t objects;
        size_t words;
    };
    std::vector<CensusEntry> heapCensus();

  private:
    friend class MachineSnapshot; // needs Impl's state layout
    class Impl;
    std::unique_ptr<Impl> impl;
};

} // namespace zarf

#endif // ZARF_MACHINE_MACHINE_HH
