/**
 * @file
 * The cycle-cost model of the λ-execution layer hardware.
 *
 * The paper's prototype is an FPGA state machine with 66 control
 * states: 4 for program loading, 15 for function application, 18 for
 * function evaluation, and 29 for garbage collection (Sec. 6). The
 * simulator charges cycles per state visit using the constants
 * below. They are calibrated so the dynamic behaviour of realistic
 * programs reproduces the paper's published numbers:
 *
 *   - let ≈ 10.36 cycles at an average 5.16 arguments,
 *   - case ≈ 10.59 cycles, one cycle per branch head,
 *   - result ≈ 11.01 cycles,
 *   - applying two arguments to an ALU primitive and evaluating
 *     costs at most 30 cycles,
 *   - GC copies a live object of N words in N+4 cycles and spends
 *     2 cycles checking each reference.
 *
 * The WCET analyzer (src/verify/wcet.hh) uses the same constants, so
 * its bounds are sound for this machine by construction.
 */

#ifndef ZARF_MACHINE_TIMING_HH
#define ZARF_MACHINE_TIMING_HH

#include "support/types.hh"

namespace zarf
{

/** Control states of the λ-execution layer, grouped as in Sec. 6. */
enum class MState : unsigned
{
    // ---- Program loading (4 states) ----
    LoadMagic = 0,
    LoadCount,
    LoadInfo,
    LoadBody,

    // ---- Function application (15 states) ----
    // Building and extending application objects for let.
    ApFetchLet,     ///< Fetch and decode a let head word.
    ApFetchArg,     ///< Fetch one argument word and resolve it.
    ApAllocHeader,  ///< Write a new object header.
    ApWriteArg,     ///< Write one payload word.
    ApBindLocal,    ///< Push the object onto the locals stack.
    ApAliasLocal,   ///< Zero-argument alias binding.
    ApCopyPartial,  ///< Copy an existing partial application.
    ApExtendArgs,   ///< Append arguments to the copy.
    ApSatCheck,     ///< Compare applied count against arity.
    ApConsBuild,    ///< Saturated constructor becomes a value.
    ApOverflowChk,  ///< Detect over-application of constructors.
    ApBadApply,     ///< Applying an integer: build Error.
    ApCalleeFetch,  ///< Read the callee value for local/arg callees.
    ApDeferCallee,  ///< Build an AppV node on an unevaluated callee.
    ApErrorBuild,   ///< Materialize an Error constructor instance.

    // ---- Function evaluation (18 states) ----
    EvDispatch,     ///< Inspect a value word; follow indirections.
    EvWhnfHit,      ///< Reference already evaluated (2-cycle check).
    EvEnterThunk,   ///< Enter an unevaluated object; blackhole it.
    EvPushUpdate,   ///< Push an update frame.
    EvCollapseUpd,  ///< Collapse consecutive update frames.
    EvCallSetup,    ///< Set up an activation for a function body.
    EvFetchCase,    ///< Fetch and decode a case head word.
    EvBranchHead,   ///< One pattern comparison (exactly 1 cycle).
    EvFieldPush,    ///< Push one constructor field as a local.
    EvFetchResult,  ///< Fetch and decode a result word.
    EvUpdate,       ///< Overwrite an object with its value.
    EvReturn,       ///< Resume the consumer of a value.
    EvPrimSetup,    ///< Begin primitive evaluation.
    EvPrimArg,      ///< Force/fetch one primitive operand.
    EvAluOp,        ///< The ALU operation proper.
    EvIoOp,         ///< getint/putint port transaction.
    EvApplyExtra,   ///< Re-apply a value to leftover arguments.
    EvDeepForce,    ///< Exporting the final value to the host.

    // ---- Garbage collection (29 states) ----
    GcIdle,
    GcStart,
    GcFlipSpaces,
    GcRootVreg,
    GcRootLocals,
    GcRootArgs,
    GcRootFrames,
    GcScanObject,
    GcReadHeader,
    GcCheckRef,     ///< 2 cycles per reference checked.
    GcCopyHeader,
    GcCopyWord,     ///< Part of the N+4 object copy.
    GcWriteFwd,
    GcFollowFwd,
    GcSkipInd,
    GcScanPayload,
    GcAdvanceScan,
    GcCopyDone,
    GcFixupRoot,
    GcFixupFrame,
    GcFixupLocal,
    GcFixupArg,
    GcBumpAlloc,
    GcCheckLimit,
    GcOutOfMem,
    GcFinish,
    GcInvokeEntry,  ///< The gc hardware-function entry point.
    GcInvokeExit,
    GcAccount,

    NumStates,
};

/** Number of control states in each group (paper, Sec. 6). */
constexpr unsigned kLoadStates = 4;
constexpr unsigned kApplyStates = 15;
constexpr unsigned kEvalStates = 18;
constexpr unsigned kGcStates = 29;
constexpr unsigned kTotalStates =
    kLoadStates + kApplyStates + kEvalStates + kGcStates;

static_assert(static_cast<unsigned>(MState::NumStates) == kTotalStates,
              "state inventory must match the paper's 66 states");

/** Cycle cost charged per visit to each state. */
struct TimingModel
{
    // Loading (charged once per word at load time).
    Cycles loadWord = 1;

    // let: fetch/decode, per-argument fetch+write, allocation,
    // binding. A let with A arguments costs
    //   letBase + A * letPerArg (+ alloc header).
    Cycles letBase = 3;      ///< ApFetchLet + ApBindLocal + ApSatCheck
    Cycles letPerArg = 1;    ///< ApFetchArg + ApWriteArg per argument
    Cycles allocHeader = 2;  ///< ApAllocHeader
    Cycles copyPartialPerWord = 1; ///< ApCopyPartial/ApExtendArgs

    // case: fetch/decode + scrutinee dispatch; one cycle per branch
    // head; one cycle per constructor field pushed on a match.
    Cycles caseBase = 2;     ///< EvFetchCase
    Cycles branchHead = 1;   ///< EvBranchHead (exactly 1, Sec. 6)
    Cycles fieldPush = 1;    ///< EvFieldPush

    // Forcing a reference.
    Cycles whnfCheck = 2;    ///< EvWhnfHit: "2 cycles to check"
    Cycles enterThunk = 3;   ///< EvEnterThunk + EvPushUpdate
    Cycles callSetup = 3;    ///< EvCallSetup: jump into a body
    Cycles collapseUpdate = 1;

    // result: fetch/decode + update + return to the forcing case.
    Cycles resultBase = 2;   ///< EvFetchResult
    Cycles update = 2;       ///< EvUpdate
    Cycles returnToCase = 2; ///< EvReturn

    // Primitives.
    Cycles primSetup = 2;    ///< EvPrimSetup
    Cycles primPerArg = 2;   ///< EvPrimArg: fetch + integer check
    Cycles aluOp = 1;        ///< EvAluOp
    Cycles ioOp = 2;         ///< EvIoOp
    Cycles applyExtra = 2;   ///< EvApplyExtra

    // Garbage collection (Sec. 5.2).
    Cycles gcSetup = 8;        ///< Flip + root setup states.
    Cycles gcPerObjectFixed = 4; ///< The +4 of the N+4 copy.
    Cycles gcPerWordCopied = 1;  ///< The N of the N+4 copy.
    Cycles gcRefCheck = 2;       ///< Checking one reference.
};

/** Worst-case cycles to apply two args to an ALU prim and evaluate
 *  it (paper: "a maximum runtime of 30 cycles"). Derived from the
 *  model: let allocation + force + operand fetches + op + update +
 *  return. Exposed so the WCET analyzer and tests agree on it. */
constexpr Cycles
primApplyWorstCase(const TimingModel &t)
{
    return t.letBase + 2 * t.letPerArg + t.allocHeader // build object
           + t.whnfCheck + t.enterThunk                // force entry
           + t.primSetup + 2 * (t.primPerArg + t.whnfCheck) // operands
           + t.aluOp                                   // the op
           + t.update + t.returnToCase;                // save + return
}

} // namespace zarf

#endif // ZARF_MACHINE_TIMING_HH
