/**
 * @file
 * The direct-threaded dispatch tiers of the λ-machine.
 *
 * The µop tier (machine/predecode.hh) already decodes each image
 * word once, but still finds every handler through a central switch:
 * one indirect branch for the machine mode, another for the µop
 * kind, then a chain of data-dependent tests (callee kind, callee
 * class, saturation). The threaded tiers resolve that whole decision
 * tree once, at predecode time, into a dispatch token (UTok) stored
 * in the µop, and each handler jumps straight to the next handler —
 * a computed goto (`&&label`) where the compiler supports it, a
 * per-token function table otherwise (ZARF_HAVE_COMPUTED_GOTO,
 * feature-detected by CMake). Hot machine state (the value register,
 * the cycle counter, the instruction-class cycle bucket) lives in
 * locals across handlers instead of being reloaded from the Impl per
 * step.
 *
 * Two tiers share this machinery (DispatchTier in machine.hh):
 *
 *  - Threaded: cycle-accurate. Every charge, statistic, trace event,
 *    and GC trigger point is replicated exactly, so this tier is
 *    bit-identical to the µop tier — results, cycles, MachineStats,
 *    FSM tally, event streams, and snapshots are interchangeable
 *    (tests/test_machine_threaded.cc holds it to that).
 *
 *  - FastFunctional: the cycle/FSM accounting and trace hooks are
 *    compiled out and outcome-preserving superinstruction fusion is
 *    applied (case-of-value skips the continuation frame; all-int
 *    primitive application skips the operand-forcing round trips).
 *    Only the outcome — status, IO stream, exported value — is
 *    meaningful; cycles() counts fused steps. For campaign and fuzz
 *    throughput only, never for timing (docs/PERF.md).
 *
 * Everything here is internal to src/machine: the tiers are selected
 * through MachineConfig::tier and implemented as further member
 * functions of Machine::Impl (machine/machine_impl.hh) in
 * threaded.cc. This header exists for the documentation above and
 * compile-time dispatch-capability reporting.
 */

#ifndef ZARF_MACHINE_THREADED_HH
#define ZARF_MACHINE_THREADED_HH

namespace zarf
{

/** True when the threaded tiers run on the computed-goto core in
 *  this build (testhooks::forceTableDispatch can still select the
 *  table core at runtime); false when only the portable table core
 *  is compiled in. */
bool threadedDispatchUsesComputedGoto();

} // namespace zarf

#endif // ZARF_MACHINE_THREADED_HH
