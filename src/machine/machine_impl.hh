/**
 * @file
 * The private implementation of the λ-machine, shared between the
 * translation units that define its execution tiers.
 *
 * machine.cc owns the word-walking reference path and the central-
 * switch µop path; threaded.cc owns the direct-threaded and
 * fast-functional tiers, which are additional member functions of
 * the same Impl over the same architectural state. This header is
 * internal to src/machine — nothing outside the library may include
 * it; the public surface is machine/machine.hh.
 */

#ifndef ZARF_MACHINE_MACHINE_IMPL_HH
#define ZARF_MACHINE_MACHINE_IMPL_HH

#include "machine/machine.hh"

#include <algorithm>
#include <cassert>
#include <map>
#include <optional>

#include "isa/encoding.hh"
#include "isa/prims.hh"
#include "machine/loaded_image.hh"
#include "machine/predecode.hh"
#include "machine/testhooks.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "support/logging.hh"
#include "verify/budget.hh"

namespace zarf
{

/**
 * The implementation carries the four execution tiers selected by
 * MachineConfig::tier (see DispatchTier in machine/machine.hh):
 *
 *  - The µop tier (the default): walks the predecoded streams of
 *    machine/predecode.hh through a central switch on a pooled hot
 *    path — a free-list continuation-frame stack, reused scratch
 *    buffers, span-based heap allocation, and an identifier-metadata
 *    table built once at load.
 *
 *  - The reference tier: the original word-walking machine, kept
 *    deliberately untouched (per-step vector construction, linear
 *    primById lookups and all) so that differential tests compare
 *    the new hot paths against the unmodified seed semantics *and*
 *    so the throughput benchmark measures the real cost delta.
 *
 *  - The direct-threaded tier and the fast-functional tier, defined
 *    in machine/threaded.cc as further member functions over the
 *    same architectural state (which is why this class lives in a
 *    shared internal header).
 *
 * All cycle-accurate tiers share load(), the heap, the timing model,
 * and the cycle/statistics accounting, and are bit-identical in
 * results, cycle counts, and statistics on every well-formed image.
 */
class Machine::Impl
{
  public:
    friend class zarf::MachineSnapshot;

    static const std::shared_ptr<const LoadedImage> &
    requireLi(const std::shared_ptr<const LoadedImage> &p)
    {
        if (!p)
            fatal("machine: null LoadedImage");
        return p;
    }

    Impl(std::shared_ptr<const LoadedImage> loaded, IoBus &bus,
         MachineConfig config)
        : li(std::move(loaded)), image(requireLi(li)->image), bus(bus),
          cfg(config),
          heap(config.semispaceWords, this->cfg.timing, machineStats),
          funcs(li->funcs), pre(li->pre), idInfo(li->idInfo)
    {
        tier = cfg.effectiveTier();
        if (cfg.semispaceWords < 2 * kGcSafeMargin) {
            fatal("semispace of %zu words is below the minimum %zu",
                  cfg.semispaceWords, 2 * kGcSafeMargin);
        }
        if (tierUsesPredecode(tier) && !li->hasPredecode) {
            fatal("machine: predecode execution requested but the "
                  "LoadedImage was built without predecode support");
        }
        // Resolve the observability hooks once: the hot path tests
        // one cached bool per category instead of consulting the
        // recorder's mask per event.
        trace = cfg.trace;
        tbias = cfg.traceBias;
        traceLife = trace && trace->wants(obs::Cat::MachineLife);
        traceExec = trace && trace->wants(obs::Cat::MachineExec);
        traceGc = trace && trace->wants(obs::Cat::MachineGc);
        tallyOn = cfg.fsmTally;
        if (tallyOn)
            heap.setTally(&tally);
        load();
        if (status != MachineStatus::Stuck)
            boot();
    }

    MachineStatus
    advance(Cycles budget)
    {
        if (cfg.budget)
            return advanceBudgeted(budget);
        advanceTo(total + budget);
        return status;
    }

    /** The per-tier advance loops, shared by the budgeted and
     *  unbudgeted paths. Every tier stops at the first step boundary
     *  with total >= target, so targets are tier-invariant cut
     *  points for the cycle-accurate tiers. */
    void
    advanceTo(Cycles target)
    {
        switch (tier) {
          case DispatchTier::Uop:
            while (status == MachineStatus::Running && total < target)
                stepOnceU();
            break;
          case DispatchTier::WordWalk:
            while (status == MachineStatus::Running && total < target)
                stepOnceRef();
            break;
          case DispatchTier::Threaded:
            advanceThreaded(target);
            break;
          case DispatchTier::FastFunctional:
            advanceFast(target);
            break;
        }
    }

    /** Budget-enforcement chunk: between chunks the budget token is
     *  consulted, so a cancel or host-time blowout is observed
     *  within this many λ cycles of simulated progress. Small enough
     *  for sub-millisecond host reaction, large enough that the
     *  check (one clock read) vanishes in the noise. */
    static constexpr Cycles kBudgetCheckCycles = 65536;

    /**
     * Budgeted advance (MachineConfig::budget): run the normal tier
     * loop in bounded chunks and consult the token at the chunk
     * boundaries — step boundaries every tier reaches identically.
     * The λ-cycle limit additionally clamps the chunk target, so a
     * cycle trip latches at the first step boundary at/after the
     * limit on every cycle-accurate tier — the same cycle, the same
     * machine state, whatever the tier or the caller's advance()
     * slicing.
     */
    MachineStatus
    advanceBudgeted(Cycles budget)
    {
        verify::Budget &bud = *cfg.budget;
        Cycles target = total + budget;
        while (status == MachineStatus::Running && total < target) {
            verify::BudgetTrip t = bud.check(
                total, heap.usedWords() * sizeof(Word));
            if (t != verify::BudgetTrip::None) {
                tripBudget(t);
                break;
            }
            Cycles chunkEnd =
                std::min(target, total + kBudgetCheckCycles);
            Cycles limit = bud.spec().maxLambdaCycles;
            if (limit > total && limit < chunkEnd)
                chunkEnd = limit;
            advanceTo(chunkEnd);
        }
        // A budget armed mid-run may already be tripped on entry, or
        // the loop may have ended exactly on the cycle limit: latch
        // before reporting so the caller never spins.
        if (status == MachineStatus::Running) {
            verify::BudgetTrip t = bud.check(
                total, heap.usedWords() * sizeof(Word));
            if (t != verify::BudgetTrip::None)
                tripBudget(t);
        }
        return status;
    }

    /** Latch a budget trip (once, like the failure statuses). The
     *  machine state is a consistent step boundary: snapshots taken
     *  here restore, and stats()/cycles() stay coherent. */
    void
    tripBudget(verify::BudgetTrip t)
    {
        if (status != MachineStatus::Running)
            return;
        noteStatus(MachineStatus::BudgetExceeded);
        if (traceLife)
            emitT(obs::EventKind::BudgetTrip,
                  static_cast<int64_t>(t),
                  static_cast<int64_t>(total));
        status = MachineStatus::BudgetExceeded;
        if (diagnostic.empty())
            diagnostic = std::string("budget exceeded: ") +
                         verify::budgetTripName(t);
    }

    Machine::Outcome
    run(Cycles maxCycles)
    {
        advance(maxCycles);
        if (status != MachineStatus::Done)
            return { status, nullptr, diagnostic };
        ValuePtr v = exportValue(vreg, 0);
        if (!v)
            return { status == MachineStatus::Done
                         ? MachineStatus::Stuck
                         : status,
                     nullptr, diagnostic };
        return { MachineStatus::Done, std::move(v), "" };
    }

    Cycles cyclesTotal() const { return total; }

    const MachineStats &
    stats() const
    {
        syncStats();
        return machineStats;
    }

    size_t heapUsed() const { return heap.usedWords(); }

    const FsmTally &tallyRef() const { return tally; }

    void
    exportMetricsImpl(obs::Metrics &m, const std::string &prefix) const
    {
        syncStats();
        exportStats(machineStats, m, prefix);
        m.setCounter(prefix + "cycles", total);
        m.setCounter(prefix + "status",
                     static_cast<uint64_t>(status));
        m.setGauge(prefix + "heap.used-words",
                   static_cast<int64_t>(heap.usedWords()));
        m.setGauge(prefix + "heap.free-words",
                   static_cast<int64_t>(heap.freeWords()));
        m.setGauge(prefix + "heap.capacity-words",
                   static_cast<int64_t>(heap.capacity()));
        if (tallyOn)
            exportTally(tally, m, prefix + "fsm");
    }

    void
    collectNow()
    {
        heap.collect(rootProvider());
    }

    std::vector<Machine::CensusEntry>
    census()
    {
        heap.collect(rootProvider());
        std::map<std::pair<Word, Word>, std::pair<size_t, size_t>> m;
        heap.forEachObject([&](Word h) {
            auto &e = m[{ Word(mhdr::kindOf(h)), mhdr::fnOf(h) }];
            e.first += 1;
            e.second += 1 + mhdr::countOf(h);
        });
        std::vector<Machine::CensusEntry> out;
        for (const auto &[k, v] : m) {
            out.push_back({ ObjKind(k.first), k.second, v.first,
                            v.second });
        }
        std::sort(out.begin(), out.end(),
                  [](const auto &a, const auto &b) {
                      return a.words > b.words;
                  });
        return out;
    }

    // Defined after MachineSnapshot below.
    std::shared_ptr<const MachineSnapshot> makeSnapshot() const;
    void restoreFrom(const MachineSnapshot &s);

  private:
    // ------------------------------------------------------------
    // Cycle accounting (shared)
    // ------------------------------------------------------------

    enum class InstrClass { None, Let, Case, Result };

    void
    chargeRaw(Cycles n)
    {
        total += n;
        machineStats.execCycles += n;
        switch (curClass) {
          case InstrClass::Let:
            machineStats.let.cycles += n;
            break;
          case InstrClass::Case:
            machineStats.caseInstr.cycles += n;
            break;
          case InstrClass::Result:
            machineStats.result.cycles += n;
            break;
          case InstrClass::None:
            break;
        }
    }

    /** Charge one visit of control state s costing n cycles. Every
     *  execution charge names its state so the FSM tally partitions
     *  the cycle ledger exactly (tested by the obs property suite). */
    void
    charge(Cycles n, MState s)
    {
        if (tallyOn)
            tally.add(s, n);
        chargeRaw(n);
    }

    /** Charge `visits` visits of s costing n cycles in total (per-
     *  word loops accounted in one step). */
    void
    chargeN(MState s, uint64_t visits, Cycles n)
    {
        if (tallyOn)
            tally.addN(s, visits, n);
        chargeRaw(n);
    }

    // ------------------------------------------------------------
    // Observability (docs/OBSERVABILITY.md). All hooks are gated on
    // bools cached at construction; with no recorder configured the
    // cost is one predicted branch per site.
    // ------------------------------------------------------------

    /** Stamp an event with the machine clock (plus the system
     *  layer's epoch bias). Callers guard on traceLife/Exec/Gc. */
    void
    emitT(obs::EventKind k, int64_t a = 0, int64_t b = 0)
    {
        trace->emit(k, tbias + total, a, b);
    }

    /** Record a status transition about to happen (MachDone for
     *  Done, MachFail with the status code otherwise). No-op unless
     *  currently Running, so latched conditions emit once. */
    void
    noteStatus(MachineStatus st)
    {
        if (!traceLife || status != MachineStatus::Running)
            return;
        emitT(st == MachineStatus::Done ? obs::EventKind::MachDone
                                        : obs::EventKind::MachFail,
              static_cast<int64_t>(st));
    }

    /** Collect with begin/end trace events: GcBegin carries the live
     *  words before, GcEnd the live words after and the pause cost.
     *  GC runs off the mutator clock (see Machine::cycles()), so the
     *  end timestamp extends begin by the pause. */
    void
    runGc(const Heap::RootProvider &roots)
    {
        if (traceGc)
            emitT(obs::EventKind::GcBegin,
                  static_cast<int64_t>(heap.usedWords()));
        Cycles before = machineStats.gcCycles;
        heap.collect(roots);
        lastGcAt = total;
        if (traceGc) {
            Cycles pause = machineStats.gcCycles - before;
            trace->emit(obs::EventKind::GcEnd, tbias + total + pause,
                        static_cast<int64_t>(heap.usedWords()),
                        static_cast<int64_t>(pause));
        }
    }

    // ------------------------------------------------------------
    // Loading (the 4 load states, shared)
    // ------------------------------------------------------------

    void
    fail(std::string why)
    {
        noteStatus(MachineStatus::Stuck);
        status = MachineStatus::Stuck;
        if (diagnostic.empty())
            diagnostic = std::move(why);
    }

    void
    load()
    {
        // LoadMagic / LoadCount / LoadInfo / LoadBody: one cycle per
        // word streamed in. The tally books the stream against
        // LoadBody (the dominant state; the header states are a
        // handful of its words).
        machineStats.loadCycles = image.size() * cfg.timing.loadWord;
        total += machineStats.loadCycles;
        if (tallyOn)
            tally.addN(MState::LoadBody, image.size(),
                       machineStats.loadCycles);
        if (traceLife)
            emitT(obs::EventKind::MachLoad,
                  static_cast<int64_t>(image.size()),
                  static_cast<int64_t>(machineStats.loadCycles));

        // Structural validation happened once, in LoadedImage::load;
        // re-surface its verdict with the identical diagnostics a
        // direct parse produced before the artifact existed.
        if (!li->headerOk) {
            fail(li->headerError);
            return;
        }
        entry = li->entry;

        if (tierUsesPredecode(tier)) {
            callCounts.assign(funcs.size(), 0);
            if (!pre.ok) {
                fail("predecode: " + pre.error);
                return;
            }
        }
    }

    void
    boot()
    {
        // Allocate the entry thunk and start forcing it.
        Word root = tierUsesPredecode(tier)
                        ? allocApp(kFirstUserFuncId + entry, nullptr,
                                   0)
                        : allocAppRef(kFirstUserFuncId + entry, {});
        vreg = mval::mkRef(root);
        mode = Mode::EvalVal;
        status = MachineStatus::Running;
        if (traceLife)
            emitT(obs::EventKind::MachBoot,
                  static_cast<int64_t>(entry));
    }

    // ------------------------------------------------------------
    // Machine structure (mirrors the hardware's stacks; shared)
    // ------------------------------------------------------------

    struct Activation
    {
        Word funcId = 0;
        std::vector<Word> args;
        std::vector<Word> locals;
        size_t pc = 0;
    };

    struct Frame
    {
        enum class Kind { Update, Case, PrimArgs, Apply };

        Kind kind = Kind::Update;
        Word target = 0; ///< Update: object address to overwrite.
        Activation act;  ///< Case resumption.
        Prim prim{};
        std::vector<Word> primArgs;
        std::vector<SWord> collected;
        size_t nextArg = 0;
        std::vector<Word> extra; ///< Apply leftovers.

        /** Reset for reuse (µop path). clear() keeps vector
         *  capacity, so a recycled frame allocates nothing on the
         *  steady state. */
        void
        reset(Kind k)
        {
            kind = k;
            target = 0;
            act.funcId = 0;
            act.pc = 0;
            act.args.clear();
            act.locals.clear();
            primArgs.clear();
            collected.clear();
            nextArg = 0;
            extra.clear();
        }
    };

    /**
     * The continuation stack as a free-list pool (µop path only):
     * popping leaves the frame's storage in place for the next push
     * to recycle, so the per-step construct/destroy of a Frame's
     * vectors — a dominant host cost of the reference machine —
     * disappears. Slots at or above size() hold stale data and are
     * never visited by the GC root walk.
     */
    class FrameStack
    {
      public:
        Frame &
        push(Frame::Kind k)
        {
            if (n == store.size())
                store.emplace_back();
            Frame &f = store[n++];
            f.reset(k);
            return f;
        }

        Frame &top() { return store[n - 1]; }
        void pop() { --n; }
        bool empty() const { return n == 0; }
        size_t size() const { return n; }
        Frame &operator[](size_t i) { return store[i]; }

        /** Copy the live frames (snapshot); stale pool slots above
         *  size() are not part of the machine state. */
        void
        copyTo(std::vector<Frame> &out) const
        {
            out.assign(store.begin(),
                       store.begin() +
                           static_cast<std::ptrdiff_t>(n));
        }

        /** Adopt a frame vector captured by copyTo (restore). */
        void
        assignFrom(const std::vector<Frame> &in)
        {
            store.assign(in.begin(), in.end());
            n = in.size();
        }

      private:
        std::vector<Frame> store;
        size_t n = 0;
    };

    enum class Mode { EvalVal, Exec, Deliver };

    /**
     * GC safe-point margin. Collection only happens between machine
     * steps, when every live reference is reachable from the
     * registers, frames, and activation (never from C++ temporaries)
     * — so each step must be guaranteed to fit its allocations in
     * this margin. The largest single allocation is one header plus
     * kMaxArity+1 payload words; a step performs at most two.
     */
    static constexpr size_t kGcSafeMargin = 4096;

    /**
     * Distinguished word returned by operand resolution after a
     * fail(): a reference to an address no configuration can reach,
     * never the valid tagged integer 0 a malformed image could
     * silently alias. Every resolve site checks the machine status
     * before the word can be consumed; the poisonGuard asserts it.
     */
    static constexpr Word kPoisonOperand =
        mval::kRefBit | 0x7fffffffu;

    void
    poisonGuard(Word v) const
    {
        assert(v != kPoisonOperand &&
               "poisoned operand consumed after fail()");
        (void)v;
    }

    void
    blackhole(Word addr, Word h)
    {
        heap.setHeader(addr, mhdr::pack(ObjKind::Blackhole,
                                        mhdr::countOf(h),
                                        mhdr::fnOf(h), mhdr::padOf(h)));
    }

    size_t
    frameCount() const
    {
        return tierUsesPredecode(tier) ? conts.size() : contsV.size();
    }

    /** One semantic step for the shared deep-force export loop. All
     *  µop-walking tiers step through the central-switch handlers
     *  here: export runs after the program has terminated, so only
     *  the (shared) semantics matter, not the dispatch mechanism. */
    void
    stepOnceShared()
    {
        if (tierUsesPredecode(tier))
            stepOnceU();
        else
            stepOnceRef();
    }

    /** Step-top health gate: latch HeapCorrupt/OutOfMemory into the
     *  machine status. Corruption wins — an aborted collection can
     *  leave both conditions set, and the corruption is the cause. */
    bool
    heapHealthy()
    {
        if (heap.corrupt()) {
            noteStatus(MachineStatus::HeapCorrupt);
            status = MachineStatus::HeapCorrupt;
            if (diagnostic.empty())
                diagnostic = heap.corruptWhy();
            return false;
        }
        if (heap.outOfMemory()) {
            noteStatus(MachineStatus::OutOfMemory);
            status = MachineStatus::OutOfMemory;
            return false;
        }
        return true;
    }

  public:
    // ------------------------------------------------------------
    // Fault injection (see machine.hh)
    // ------------------------------------------------------------

    bool
    injectHeapBitFlip(size_t wordIndex, unsigned bit)
    {
        if (heap.usedWords() == 0)
            return false;
        heap.flipBit(wordIndex, bit);
        return true;
    }

    void
    injectOperandBitFlip(unsigned bit)
    {
        vreg ^= Word(1) << (bit & 31u);
    }

    void
    raiseMemFault(const std::string &why)
    {
        if (status != MachineStatus::Running)
            return;
        noteStatus(MachineStatus::MemFault);
        status = MachineStatus::MemFault;
        diagnostic = why;
    }

    MachineStatus currentStatus() const { return status; }
    const std::string &currentDiagnostic() const { return diagnostic; }

  private:

    // ============================================================
    // µop path: predecoded streams on the pooled hot path
    // ============================================================

    // ------------------------------------------------------------
    // Heap object construction (span-based; scratch-buffer callers)
    // ------------------------------------------------------------

    Word
    allocApp(Word fn, const Word *args, size_t n)
    {
        bool pad = n == 0;
        Word zero = 0;
        const Word *p = pad ? &zero : args;
        size_t len = pad ? 1 : n;
        charge(cfg.timing.allocHeader, MState::ApAllocHeader);
        chargeN(MState::ApWriteArg, len, len * cfg.timing.letPerArg);
        return heap.alloc(ObjKind::App, fn, p, len, pad);
    }

    Word
    allocAppV(Word callee, const Word *args, size_t n)
    {
        appvScratch.clear();
        appvScratch.push_back(callee);
        appvScratch.insert(appvScratch.end(), args, args + n);
        charge(cfg.timing.allocHeader, MState::ApAllocHeader);
        chargeN(MState::ApWriteArg, appvScratch.size(),
                appvScratch.size() * cfg.timing.letPerArg);
        return heap.alloc(ObjKind::AppV, 0, appvScratch.data(),
                          appvScratch.size());
    }

    Word
    allocCons(Word id, const Word *fields, size_t n)
    {
        bool pad = n == 0;
        Word zero = 0;
        const Word *p = pad ? &zero : fields;
        size_t len = pad ? 1 : n;
        charge(cfg.timing.allocHeader, MState::ApAllocHeader);
        chargeN(MState::ApWriteArg, len, len * cfg.timing.letPerArg);
        return heap.alloc(ObjKind::Cons, id, p, len, pad);
    }

    Word
    allocError(SWord code)
    {
        ++machineStats.errorsCreated;
        Word field = mval::mkInt(code);
        return allocCons(static_cast<Word>(Prim::Error), &field, 1);
    }

    // ------------------------------------------------------------
    // Identifier metadata (resolved once, in the LoadedImage)
    // ------------------------------------------------------------

    Word
    arityOf(Word id) const
    {
        return id < idInfo.size() ? idInfo[id].arity : 0;
    }

    bool
    isConsId(Word id) const
    {
        return id < idInfo.size() && idInfo[id].isCons;
    }

    // ------------------------------------------------------------
    // The driver (µop)
    // ------------------------------------------------------------

    void
    stepOnceU()
    {
        if (!heapHealthy())
            return;
        if (cfg.gcOnExhaustion && heap.freeWords() < kGcSafeMargin) {
            runGc(rootProviderU());
            if (!heapHealthy())
                return;
            if (heap.freeWords() < kGcSafeMargin) {
                noteStatus(MachineStatus::OutOfMemory);
                status = MachineStatus::OutOfMemory;
                diagnostic = "live set exceeds semispace capacity";
                return;
            }
        }
        if (cfg.gcIntervalCycles &&
            total - lastGcAt >= cfg.gcIntervalCycles) {
            runGc(rootProviderU());
            if (!heapHealthy())
                return;
        }
        switch (mode) {
          case Mode::EvalVal:
            stepEvalU();
            break;
          case Mode::Exec:
            stepExecU();
            break;
          case Mode::Deliver:
            if (conts.empty()) {
                noteStatus(MachineStatus::Done);
                status = MachineStatus::Done;
                return;
            }
            stepDeliverU();
            break;
        }
    }

    /** Is this object, as it stands, a WHNF value? */
    bool
    objIsWhnfU(Word h) const
    {
        ObjKind k = mhdr::kindOf(h);
        if (k == ObjKind::Cons)
            return true;
        if (k != ObjKind::App)
            return false;
        return mhdr::argsOf(h) < arityOf(mhdr::fnOf(h));
    }

    void
    stepEvalU()
    {
        vreg = heap.chase(vreg);
        if (mval::isInt(vreg)) {
            mode = Mode::Deliver;
            return;
        }
        Word addr = mval::refOf(vreg);
        Word h = heap.header(addr);
        charge(cfg.timing.whnfCheck,
               MState::EvWhnfHit); // EvWhnfHit / EvDispatch
        ObjKind kind = mhdr::kindOf(h);
        if (kind == ObjKind::Blackhole) {
            fail("re-entered a thunk under evaluation");
            return;
        }
        if (objIsWhnfU(h)) {
            ++machineStats.whnfHits;
            mode = Mode::Deliver;
            return;
        }

        // A thunk: collapse pending update frames (EvCollapseUpd),
        // then enter it (EvEnterThunk + EvPushUpdate).
        while (!conts.empty() &&
               conts.top().kind == Frame::Kind::Update) {
            Word prev = conts.top().target;
            Word ph = heap.header(prev);
            heap.setHeader(prev, mhdr::pack(ObjKind::Ind,
                                            mhdr::countOf(ph), 0,
                                            mhdr::padOf(ph)));
            heap.setPayload(prev, 0, vreg);
            conts.pop();
            charge(cfg.timing.collapseUpdate, MState::EvCollapseUpd);
            ++machineStats.updates;
        }
        conts.push(Frame::Kind::Update).target = addr;
        charge(cfg.timing.enterThunk, MState::EvEnterThunk);
        ++machineStats.forces;

        Word count = mhdr::argsOf(h);
        Word fn = mhdr::fnOf(h);
        if (traceExec)
            emitT(obs::EventKind::EvalEnter,
                  static_cast<int64_t>(fn),
                  static_cast<int64_t>(count));

        if (kind == ObjKind::AppV) {
            // Evaluate the callee value, then apply the arguments.
            Word callee = heap.payload(addr, 0);
            Frame &f = conts.push(Frame::Kind::Apply);
            for (Word i = 1; i < mhdr::countOf(h); ++i)
                f.extra.push_back(heap.payload(addr, i));
            blackhole(addr, h);
            vreg = callee;
            return;
        }

        // App thunk on a global identifier.
        evalScratch.clear();
        evalScratch.reserve(count);
        for (Word i = 0; i < count; ++i)
            evalScratch.push_back(heap.payload(addr, i));
        blackhole(addr, h);

        Word arity = arityOf(fn);
        if (isConsId(fn)) {
            // Over-applied constructor (saturated ones are values).
            vreg = mval::mkRef(allocError(kErrArity));
            return;
        }
        if (evalScratch.size() > arity) {
            Frame &f = conts.push(Frame::Kind::Apply);
            f.extra.assign(evalScratch.begin() + arity,
                           evalScratch.end());
            evalScratch.resize(arity);
            charge(cfg.timing.applyExtra, MState::EvApplyExtra);
        }
        if (isPrimId(fn)) {
            beginPrimU(static_cast<Prim>(fn), evalScratch);
            return;
        }

        // EvCallSetup: activate the function body.
        size_t idx = fn - kFirstUserFuncId;
        charge(cfg.timing.callSetup, MState::EvCallSetup);
        ++callCounts[idx];
        act.funcId = fn;
        act.args.swap(evalScratch);
        act.locals.clear();
        act.pc = funcs[idx].bodyBegin;
        mode = Mode::Exec;
    }

    void
    beginPrimU(Prim p, const std::vector<Word> &args)
    {
        // Primitive evaluation is accounted to the let class: the
        // paper's "applying two arguments to a primitive ALU
        // function and evaluating it" is a single let-application
        // unit (Sec. 5.2).
        curClass = InstrClass::Let;
        charge(cfg.timing.primSetup, MState::EvPrimSetup);
        if (args.empty()) {
            fail("zero-arity primitive application");
            return;
        }
        Frame &f = conts.push(Frame::Kind::PrimArgs);
        f.prim = p;
        f.primArgs.assign(args.begin(), args.end());
        f.nextArg = 0;
        vreg = f.primArgs[0];
        mode = Mode::EvalVal;
    }

    // ------------------------------------------------------------
    // Exec, µop path: walk the predecoded stream
    // ------------------------------------------------------------

    Word
    resolveU(const UOperand &op)
    {
        switch (op.src) {
          case Src::Imm:
            return op.payload; // pre-tagged at predecode time
          case Src::Arg:
            if (op.payload >= act.args.size()) {
                if (testhooks::poisonedOperandDefect)
                    return mval::mkInt(0); // seeded PR-1 defect
                fail("argument index out of range");
                return kPoisonOperand;
            }
            return act.args[op.payload];
          case Src::Local:
            if (op.payload >= act.locals.size()) {
                if (testhooks::poisonedOperandDefect)
                    return mval::mkInt(0); // seeded PR-1 defect
                fail("local index out of range");
                return kPoisonOperand;
            }
            return act.locals[op.payload];
        }
        return kPoisonOperand;
    }

    void
    stepExecU()
    {
        if (act.pc >= pre.uops.size()) {
            fail("program counter ran off the image");
            return;
        }
        const Uop &u = pre.uops[act.pc];
        switch (u.kind) {
          case UopKind::Let:
            curClass = InstrClass::Let;
            ++machineStats.let.count;
            charge(cfg.timing.letBase, MState::ApFetchLet);
            if (traceExec)
                emitT(obs::EventKind::ExecLet,
                      static_cast<int64_t>(act.funcId),
                      static_cast<int64_t>(u.nargs));
            execLetU(u);
            return;
          case UopKind::Case: {
            curClass = InstrClass::Case;
            ++machineStats.caseInstr.count;
            charge(cfg.timing.caseBase, MState::EvFetchCase);
            if (traceExec)
                emitT(obs::EventKind::ExecCase,
                      static_cast<int64_t>(act.funcId));
            Word scrut = resolveU(u.operand);
            if (status != MachineStatus::Running)
                return;
            poisonGuard(scrut);
            Frame &f = conts.push(Frame::Kind::Case);
            f.act.funcId = act.funcId;
            f.act.pc = act.pc;
            f.act.args.assign(act.args.begin(), act.args.end());
            f.act.locals.assign(act.locals.begin(),
                                act.locals.end());
            vreg = scrut;
            mode = Mode::EvalVal;
            return;
          }
          case UopKind::Result: {
            curClass = InstrClass::Result;
            ++machineStats.result.count;
            charge(cfg.timing.resultBase, MState::EvFetchResult);
            if (traceExec)
                emitT(obs::EventKind::ExecResult,
                      static_cast<int64_t>(act.funcId));
            Word v = resolveU(u.operand);
            if (status != MachineStatus::Running)
                return;
            poisonGuard(v);
            vreg = v;
            mode = Mode::EvalVal;
            return;
          }
          case UopKind::Invalid:
            fail(strprintf("unexpected opcode at word %zu", act.pc));
            return;
        }
    }

    void
    execLetU(const Uop &u)
    {
        letScratch.clear();
        const UOperand *ops = pre.operands.data() + u.argsBegin;
        for (uint32_t i = 0; i < u.nargs; ++i) {
            charge(cfg.timing.letPerArg, MState::ApFetchArg);
            Word v = resolveU(ops[i]);
            if (status != MachineStatus::Running)
                return;
            poisonGuard(v);
            letScratch.push_back(v);
        }
        machineStats.letArgs += u.nargs;

        Word bound = 0;
        if (u.calleeKind == CalleeKind::Func) {
            if (u.calleeClass == UCallee::Unknown) {
                fail("let names an unknown function identifier");
                return;
            }
            if (u.calleeClass == UCallee::Cons &&
                letScratch.size() == u.calleeArity) {
                bound = mval::mkRef(allocCons(
                    u.calleeId, letScratch.data(), letScratch.size()));
            } else if (u.calleeClass == UCallee::Cons &&
                       letScratch.size() > u.calleeArity) {
                bound = mval::mkRef(allocError(kErrArity));
            } else {
                bound = mval::mkRef(allocApp(
                    u.calleeId, letScratch.data(), letScratch.size()));
            }
        } else {
            Word callee;
            if (u.calleeKind == CalleeKind::Local) {
                if (u.calleeId >= act.locals.size()) {
                    fail("callee local out of range");
                    return;
                }
                callee = act.locals[u.calleeId];
            } else {
                if (u.calleeId >= act.args.size()) {
                    fail("callee arg out of range");
                    return;
                }
                callee = act.args[u.calleeId];
            }
            if (letScratch.empty()) {
                charge(cfg.timing.collapseUpdate,
                       MState::ApAliasLocal);
                bound = callee;
            } else {
                bound = bindApplyU(callee);
            }
        }
        act.locals.push_back(bound);
        act.pc = u.next;
    }

    /** Apply the letScratch arguments to a callee value. */
    Word
    bindApplyU(Word callee)
    {
        Word c = heap.chase(callee);
        if (mval::isInt(c))
            return mval::mkRef(allocError(kErrBadApply));
        Word h = heap.header(mval::refOf(c));
        ObjKind k = mhdr::kindOf(h);
        if (k == ObjKind::App && objIsWhnfU(h)) {
            // ApCopyPartial + ApExtendArgs.
            Word fn = mhdr::fnOf(h);
            Word have = mhdr::argsOf(h);
            applyScratch.clear();
            applyScratch.reserve(have + letScratch.size());
            for (Word i = 0; i < have; ++i)
                applyScratch.push_back(heap.payload(mval::refOf(c), i));
            chargeN(MState::ApCopyPartial, have,
                    have * cfg.timing.copyPartialPerWord);
            applyScratch.insert(applyScratch.end(),
                                letScratch.begin(), letScratch.end());
            if (isConsId(fn) && applyScratch.size() == arityOf(fn)) {
                return mval::mkRef(allocCons(fn, applyScratch.data(),
                                             applyScratch.size()));
            }
            if (isConsId(fn) && applyScratch.size() > arityOf(fn))
                return mval::mkRef(allocError(kErrArity));
            return mval::mkRef(allocApp(fn, applyScratch.data(),
                                        applyScratch.size()));
        }
        if (k == ObjKind::Cons) {
            return mhdr::fnOf(h) == static_cast<Word>(Prim::Error)
                       ? c
                       : mval::mkRef(allocError(kErrArity));
        }
        // Callee is an unevaluated thunk: defer.
        return mval::mkRef(allocAppV(callee, letScratch.data(),
                                     letScratch.size()));
    }

    // ------------------------------------------------------------
    // Deliver (µop)
    // ------------------------------------------------------------

    void
    stepDeliverU()
    {
        Frame &f = conts.top();
        switch (f.kind) {
          case Frame::Kind::Update: {
            Word target = f.target;
            conts.pop();
            Word h = heap.header(target);
            heap.setHeader(target,
                           mhdr::pack(ObjKind::Ind, mhdr::countOf(h),
                                      0, mhdr::padOf(h)));
            heap.setPayload(target, 0, vreg);
            charge(cfg.timing.update, MState::EvUpdate);
            ++machineStats.updates;
            return; // stay in Deliver
          }
          case Frame::Kind::Case:
            // Swap instead of move: the slot keeps the dead
            // activation's buffers for the next push to recycle.
            std::swap(act, f.act);
            conts.pop();
            charge(cfg.timing.returnToCase, MState::EvReturn);
            resumeCaseU();
            return;
          case Frame::Kind::PrimArgs:
            resumePrimU();
            return;
          case Frame::Kind::Apply:
            resumeApplyU();
            return;
        }
    }

    void
    resumeCaseU()
    {
        curClass = InstrClass::Case;
        const Uop &u = pre.uops[act.pc]; // saved at the case head
        Word v = heap.chase(vreg);
        bool isInt = mval::isInt(v);
        Word h = 0;
        if (!isInt)
            h = heap.header(mval::refOf(v));

        // Walk the flattened jump table; 1 cycle per branch head.
        const UPattern *pats = pre.patterns.data() + u.patBegin;
        for (uint32_t i = 0; i < u.patCount; ++i) {
            charge(cfg.timing.branchHead, MState::EvBranchHead);
            ++machineStats.branchHeads;
            const UPattern &pat = pats[i];
            bool match;
            if (pat.isCons) {
                match = !isInt &&
                        mhdr::kindOf(h) == ObjKind::Cons &&
                        mhdr::fnOf(h) == pat.consId;
            } else {
                match = isInt && mval::intOf(v) == pat.lit;
            }
            if (match) {
                if (pat.isCons) {
                    Word addr = mval::refOf(v);
                    Word n = mhdr::argsOf(h);
                    for (Word j = 0; j < n; ++j) {
                        act.locals.push_back(heap.payload(addr, j));
                        charge(cfg.timing.fieldPush,
                               MState::EvFieldPush);
                    }
                }
                act.pc = pat.body;
                mode = Mode::Exec;
                return;
            }
        }
        act.pc = u.elseBody;
        mode = Mode::Exec;
    }

    void
    resumePrimU()
    {
        Frame &f = conts.top();
        curClass = InstrClass::Let;
        Word v = heap.chase(vreg);
        Prim p = f.prim;
        charge(cfg.timing.primPerArg, MState::EvPrimArg);

        if (mval::isRef(v)) {
            Word h = heap.header(mval::refOf(v));
            conts.pop();
            if (mhdr::kindOf(h) == ObjKind::Cons &&
                mhdr::fnOf(h) == static_cast<Word>(Prim::Error)) {
                vreg = v;
                mode = Mode::Deliver;
                return;
            }
            SWord code = (p == Prim::GetInt || p == Prim::PutInt)
                             ? kErrIoNotInt
                             : kErrBadApply;
            vreg = mval::mkRef(allocError(code));
            mode = Mode::Deliver;
            return;
        }

        f.collected.push_back(mval::intOf(v));
        f.nextArg++;
        if (f.nextArg < f.primArgs.size()) {
            // More operands: keep the frame on the stack (the
            // reference machine pops and re-pushes the identical
            // frame).
            vreg = f.primArgs[f.nextArg];
            mode = Mode::EvalVal;
            return;
        }

        conts.pop(); // popped slot stays readable until the next push
        if (traceExec)
            emitT(obs::EventKind::PrimOp, static_cast<int64_t>(p),
                  static_cast<int64_t>(f.collected.size()));
        switch (p) {
          case Prim::GetInt:
            charge(cfg.timing.ioOp, MState::EvIoOp);
            vreg = mval::mkInt(wrapInt31(bus.getInt(f.collected[0])));
            break;
          case Prim::PutInt:
            charge(cfg.timing.ioOp, MState::EvIoOp);
            bus.putInt(f.collected[0], f.collected[1]);
            vreg = mval::mkInt(f.collected[1]);
            break;
          case Prim::InvokeGc:
            // The hardware GC-invocation function: collect now.
            runGc(rootProviderU());
            vreg = mval::mkInt(f.collected[0]);
            break;
          default: {
            charge(cfg.timing.aluOp, MState::EvAluOp);
            PrimResult r = evalAlu(p, f.collected);
            vreg = r.ok ? mval::mkInt(r.value)
                        : mval::mkRef(allocError(r.errCode));
            break;
          }
        }
        mode = Mode::Deliver;
    }

    void
    resumeApplyU()
    {
        Frame &f = conts.top();
        conts.pop(); // slot storage stays valid; nothing pushes below
        curClass = InstrClass::Let;
        charge(cfg.timing.applyExtra, MState::EvApplyExtra);
        Word v = heap.chase(vreg);
        if (mval::isInt(v)) {
            vreg = mval::mkRef(allocError(kErrBadApply));
            mode = Mode::Deliver;
            return;
        }
        Word addr = mval::refOf(v);
        Word h = heap.header(addr);
        if (mhdr::kindOf(h) == ObjKind::Cons) {
            vreg = mhdr::fnOf(h) == static_cast<Word>(Prim::Error)
                       ? v
                       : mval::mkRef(allocError(kErrArity));
            mode = Mode::Deliver;
            return;
        }
        // Partial application: extend and re-evaluate.
        Word fn = mhdr::fnOf(h);
        Word have = mhdr::argsOf(h);
        applyScratch.clear();
        applyScratch.reserve(have + f.extra.size());
        for (Word i = 0; i < have; ++i)
            applyScratch.push_back(heap.payload(addr, i));
        chargeN(MState::ApCopyPartial, have,
                have * cfg.timing.copyPartialPerWord);
        applyScratch.insert(applyScratch.end(), f.extra.begin(),
                            f.extra.end());
        if (isConsId(fn) && applyScratch.size() == arityOf(fn)) {
            vreg = mval::mkRef(allocCons(fn, applyScratch.data(),
                                         applyScratch.size()));
        } else if (isConsId(fn) && applyScratch.size() > arityOf(fn)) {
            vreg = mval::mkRef(allocError(kErrArity));
        } else {
            vreg = mval::mkRef(allocApp(fn, applyScratch.data(),
                                        applyScratch.size()));
        }
        mode = Mode::EvalVal;
    }

    // ============================================================
    // Threaded tiers (machine/threaded.cc): direct-threaded
    // dispatch over the µop streams. advanceThreaded is
    // cycle-accurate and bit-identical to the µop tier;
    // advanceFast is the fast-functional mode (outcome/IO only).
    // ============================================================

    void advanceThreaded(Cycles target);
    void advanceFast(Cycles target);

    /** The computed-goto core of the cycle-accurate threaded tier
     *  (defined only when the build has the extension; guarded by
     *  ZARF_HAVE_COMPUTED_GOTO at every call site). One function:
     *  hot state lives in locals across handler labels and dispatch
     *  is one indirect goto per step. */
    void advanceThreadedGoto(Cycles target);

    /** The portable table-dispatch core of the cycle-accurate tier:
     *  executable µops dispatch through a per-token member-function-
     *  pointer table instead of label addresses. Selected when the
     *  build lacks computed goto, or at runtime by
     *  testhooks::forceTableDispatch so `ctest -L threaded`
     *  exercises this core on every platform. (advanceFast carries
     *  both dispatch flavors in one body and needs no counterpart.) */
    void advanceThreadedTable(Cycles target);

    /** Per-token exec handlers of the cycle-accurate table core; each
     *  is the stepExecU/execLetU arm its UTok pre-resolves, verbatim
     *  (the shared argument prologue is letPrologueT). */
    using TokFn = void (Impl::*)(const Uop &u);
    static const TokFn kTokTable[kNumTok];
    bool letPrologueT(const Uop &u);
    void tokLetConsSat(const Uop &u);
    void tokLetConsOver(const Uop &u);
    void tokLetApp(const Uop &u);
    void tokLetUnknown(const Uop &u);
    void tokLetAlias(const Uop &u);
    void tokLetBind(const Uop &u);
    void tokCase(const Uop &u);
    void tokResult(const Uop &u);
    void tokInvalid(const Uop &u);

    Heap::RootProvider
    rootProviderU()
    {
        return [this](const Heap::RootVisitor &visit) {
            visit(vreg);
            for (Word &w : act.args)
                visit(w);
            for (Word &w : act.locals)
                visit(w);
            for (size_t i = 0; i < conts.size(); ++i) {
                Frame &f = conts[i];
                switch (f.kind) {
                  case Frame::Kind::Update: {
                    Word slot = mval::mkRef(f.target);
                    visit(slot);
                    f.target = mval::refOf(slot);
                    break;
                  }
                  case Frame::Kind::Case:
                    for (Word &w : f.act.args)
                        visit(w);
                    for (Word &w : f.act.locals)
                        visit(w);
                    break;
                  case Frame::Kind::PrimArgs:
                    for (size_t j = f.nextArg; j < f.primArgs.size();
                         ++j) {
                        visit(f.primArgs[j]);
                    }
                    break;
                  case Frame::Kind::Apply:
                    for (Word &w : f.extra)
                        visit(w);
                    break;
                }
            }
        };
    }

    // ============================================================
    // Reference path: the original word-walking machine, unchanged
    // except for the poisoned-operand fix in resolveOperand. Do not
    // optimize this code — it is the baseline the differential
    // suite and the throughput benchmark compare against.
    // ============================================================

    Word
    allocAppRef(Word fn, std::vector<Word> args)
    {
        bool pad = args.empty();
        if (pad)
            args.push_back(0);
        charge(cfg.timing.allocHeader, MState::ApAllocHeader);
        chargeN(MState::ApWriteArg, args.size(),
                args.size() * cfg.timing.letPerArg);
        return heap.alloc(ObjKind::App, fn, args, pad);
    }

    Word
    allocAppVRef(Word callee, std::vector<Word> args)
    {
        args.insert(args.begin(), callee);
        charge(cfg.timing.allocHeader, MState::ApAllocHeader);
        chargeN(MState::ApWriteArg, args.size(),
                args.size() * cfg.timing.letPerArg);
        return heap.alloc(ObjKind::AppV, 0, args);
    }

    Word
    allocConsRef(Word id, std::vector<Word> fields)
    {
        bool pad = fields.empty();
        if (pad)
            fields.push_back(0);
        charge(cfg.timing.allocHeader, MState::ApAllocHeader);
        chargeN(MState::ApWriteArg, fields.size(),
                fields.size() * cfg.timing.letPerArg);
        return heap.alloc(ObjKind::Cons, id, fields, pad);
    }

    Word
    allocErrorRef(SWord code)
    {
        ++machineStats.errorsCreated;
        return allocConsRef(static_cast<Word>(Prim::Error),
                            { mval::mkInt(code) });
    }

    unsigned
    arityOfRef(Word id) const
    {
        if (isPrimId(id)) {
            auto p = primById(id);
            return p ? p->arity : 0;
        }
        size_t idx = id - kFirstUserFuncId;
        return idx < funcs.size() ? funcs[idx].arity : 0;
    }

    bool
    isConsIdRef(Word id) const
    {
        if (isPrimId(id)) {
            auto p = primById(id);
            return p && p->isConstructor;
        }
        size_t idx = id - kFirstUserFuncId;
        return idx < funcs.size() && funcs[idx].isCons;
    }

    bool
    idExistsRef(Word id) const
    {
        if (isPrimId(id))
            return primById(id).has_value();
        return id - kFirstUserFuncId < funcs.size();
    }

    void
    stepOnceRef()
    {
        if (!heapHealthy())
            return;
        if (cfg.gcOnExhaustion && heap.freeWords() < kGcSafeMargin) {
            runGc(rootProviderRef());
            if (!heapHealthy())
                return;
            if (heap.freeWords() < kGcSafeMargin) {
                noteStatus(MachineStatus::OutOfMemory);
                status = MachineStatus::OutOfMemory;
                diagnostic = "live set exceeds semispace capacity";
                return;
            }
        }
        if (cfg.gcIntervalCycles &&
            total - lastGcAt >= cfg.gcIntervalCycles) {
            runGc(rootProviderRef());
            if (!heapHealthy())
                return;
        }
        switch (mode) {
          case Mode::EvalVal:
            stepEvalRef();
            break;
          case Mode::Exec:
            stepExecRef();
            break;
          case Mode::Deliver:
            if (contsV.empty()) {
                noteStatus(MachineStatus::Done);
                status = MachineStatus::Done;
                return;
            }
            stepDeliverRef();
            break;
        }
    }

    bool
    objIsWhnfRef(Word h) const
    {
        ObjKind k = mhdr::kindOf(h);
        if (k == ObjKind::Cons)
            return true;
        if (k != ObjKind::App)
            return false;
        return mhdr::argsOf(h) < arityOfRef(mhdr::fnOf(h));
    }

    void
    stepEvalRef()
    {
        vreg = heap.chase(vreg);
        if (mval::isInt(vreg)) {
            mode = Mode::Deliver;
            return;
        }
        Word addr = mval::refOf(vreg);
        Word h = heap.header(addr);
        charge(cfg.timing.whnfCheck,
               MState::EvWhnfHit); // EvWhnfHit / EvDispatch
        ObjKind kind = mhdr::kindOf(h);
        if (kind == ObjKind::Blackhole) {
            fail("re-entered a thunk under evaluation");
            return;
        }
        if (objIsWhnfRef(h)) {
            ++machineStats.whnfHits;
            mode = Mode::Deliver;
            return;
        }

        while (!contsV.empty() &&
               contsV.back().kind == Frame::Kind::Update) {
            Word prev = contsV.back().target;
            Word ph = heap.header(prev);
            heap.setHeader(prev, mhdr::pack(ObjKind::Ind,
                                            mhdr::countOf(ph), 0,
                                            mhdr::padOf(ph)));
            heap.setPayload(prev, 0, vreg);
            contsV.pop_back();
            charge(cfg.timing.collapseUpdate, MState::EvCollapseUpd);
            ++machineStats.updates;
        }
        {
            Frame f;
            f.kind = Frame::Kind::Update;
            f.target = addr;
            contsV.push_back(std::move(f));
        }
        charge(cfg.timing.enterThunk, MState::EvEnterThunk);
        ++machineStats.forces;

        Word count = mhdr::argsOf(h);
        Word fn = mhdr::fnOf(h);
        if (traceExec)
            emitT(obs::EventKind::EvalEnter,
                  static_cast<int64_t>(fn),
                  static_cast<int64_t>(count));

        if (kind == ObjKind::AppV) {
            Word callee = heap.payload(addr, 0);
            Frame f;
            f.kind = Frame::Kind::Apply;
            for (Word i = 1; i < mhdr::countOf(h); ++i)
                f.extra.push_back(heap.payload(addr, i));
            blackhole(addr, h);
            contsV.push_back(std::move(f));
            vreg = callee;
            return;
        }

        std::vector<Word> args;
        args.reserve(count);
        for (Word i = 0; i < count; ++i)
            args.push_back(heap.payload(addr, i));
        blackhole(addr, h);

        unsigned arity = arityOfRef(fn);
        if (isConsIdRef(fn)) {
            vreg = mval::mkRef(allocErrorRef(kErrArity));
            return;
        }
        if (args.size() > arity) {
            Frame f;
            f.kind = Frame::Kind::Apply;
            f.extra.assign(args.begin() + arity, args.end());
            args.resize(arity);
            contsV.push_back(std::move(f));
            charge(cfg.timing.applyExtra, MState::EvApplyExtra);
        }
        if (isPrimId(fn)) {
            beginPrimRef(static_cast<Prim>(fn), std::move(args));
            return;
        }

        const PredecodedFunc &fe = funcs[fn - kFirstUserFuncId];
        charge(cfg.timing.callSetup, MState::EvCallSetup);
        ++machineStats.callsPerFunc[fn];
        act = Activation{};
        act.funcId = fn;
        act.args = std::move(args);
        act.pc = fe.bodyBegin;
        mode = Mode::Exec;
    }

    void
    beginPrimRef(Prim p, std::vector<Word> args)
    {
        curClass = InstrClass::Let;
        charge(cfg.timing.primSetup, MState::EvPrimSetup);
        Frame f;
        f.kind = Frame::Kind::PrimArgs;
        f.prim = p;
        f.primArgs = std::move(args);
        f.nextArg = 0;
        if (f.primArgs.empty()) {
            fail("zero-arity primitive application");
            return;
        }
        Word first = f.primArgs[0];
        contsV.push_back(std::move(f));
        vreg = first;
        mode = Mode::EvalVal;
    }

    /** Reserved 2-bit source/kind encodings (value 3) are invalid. */
    static bool
    srcFieldValid(Word w)
    {
        return ((w >> 26) & 0x3u) != 3u;
    }

    Word
    resolveOperand(const Operand &op)
    {
        switch (op.src) {
          case Src::Imm:
            return mval::mkInt(op.val);
          case Src::Arg:
            if (size_t(op.val) >= act.args.size()) {
                if (testhooks::poisonedOperandDefect)
                    return mval::mkInt(0); // seeded PR-1 defect
                fail("argument index out of range");
                return kPoisonOperand;
            }
            return act.args[size_t(op.val)];
          case Src::Local:
            if (size_t(op.val) >= act.locals.size()) {
                if (testhooks::poisonedOperandDefect)
                    return mval::mkInt(0); // seeded PR-1 defect
                fail("local index out of range");
                return kPoisonOperand;
            }
            return act.locals[size_t(op.val)];
        }
        return kPoisonOperand;
    }

    void
    stepExecRef()
    {
        if (act.pc >= image.size()) {
            fail("program counter ran off the image");
            return;
        }
        Word w = image[act.pc];
        if ((opOf(w) == Op::Let || opOf(w) == Op::Case ||
             opOf(w) == Op::Result) &&
            !srcFieldValid(w)) {
            fail("reserved source/kind field in instruction word");
            return;
        }
        switch (opOf(w)) {
          case Op::Let:
            curClass = InstrClass::Let;
            ++machineStats.let.count;
            charge(cfg.timing.letBase, MState::ApFetchLet);
            if (traceExec)
                emitT(obs::EventKind::ExecLet,
                      static_cast<int64_t>(act.funcId),
                      static_cast<int64_t>(unpackLet(w).nargs));
            execLetRef(w);
            return;
          case Op::Case: {
            curClass = InstrClass::Case;
            ++machineStats.caseInstr.count;
            charge(cfg.timing.caseBase, MState::EvFetchCase);
            if (traceExec)
                emitT(obs::EventKind::ExecCase,
                      static_cast<int64_t>(act.funcId));
            Word scrut = resolveOperand(unpackCaseScrut(w));
            if (status != MachineStatus::Running)
                return;
            poisonGuard(scrut);
            Frame f;
            f.kind = Frame::Kind::Case;
            f.act = act;
            vreg = scrut;
            contsV.push_back(std::move(f));
            mode = Mode::EvalVal;
            return;
          }
          case Op::Result: {
            curClass = InstrClass::Result;
            ++machineStats.result.count;
            charge(cfg.timing.resultBase, MState::EvFetchResult);
            if (traceExec)
                emitT(obs::EventKind::ExecResult,
                      static_cast<int64_t>(act.funcId));
            Word v = resolveOperand(unpackResult(w));
            if (status != MachineStatus::Running)
                return;
            poisonGuard(v);
            vreg = v;
            mode = Mode::EvalVal;
            return;
          }
          default:
            fail(strprintf("unexpected opcode at word %zu", act.pc));
            return;
        }
    }

    void
    execLetRef(Word head)
    {
        LetWord lw = unpackLet(head);
        if (act.pc + 1 + lw.nargs > image.size()) {
            fail("let argument list overruns the image");
            return;
        }
        std::vector<Word> args;
        args.reserve(lw.nargs);
        for (Word i = 0; i < lw.nargs; ++i) {
            Word aw = image[act.pc + 1 + i];
            if (opOf(aw) != Op::Arg || !srcFieldValid(aw)) {
                fail("malformed let argument word");
                return;
            }
            charge(cfg.timing.letPerArg, MState::ApFetchArg);
            Word v = resolveOperand(unpackOperand(aw));
            if (status != MachineStatus::Running)
                return;
            poisonGuard(v);
            args.push_back(v);
        }
        machineStats.letArgs += lw.nargs;

        Word bound = 0;
        if (lw.kind == CalleeKind::Func) {
            Word fn = lw.id;
            if (!idExistsRef(fn)) {
                fail("let names an unknown function identifier");
                return;
            }
            if (isConsIdRef(fn) && args.size() == arityOfRef(fn)) {
                bound = mval::mkRef(allocConsRef(fn, std::move(args)));
            } else if (isConsIdRef(fn) &&
                       args.size() > arityOfRef(fn)) {
                bound = mval::mkRef(allocErrorRef(kErrArity));
            } else {
                bound = mval::mkRef(allocAppRef(fn, std::move(args)));
            }
        } else {
            Word callee =
                lw.kind == CalleeKind::Local
                    ? (lw.id < act.locals.size()
                           ? act.locals[lw.id]
                           : (fail("callee local out of range"), 0u))
                    : (lw.id < act.args.size()
                           ? act.args[lw.id]
                           : (fail("callee arg out of range"), 0u));
            if (status != MachineStatus::Running)
                return;
            if (args.empty()) {
                charge(cfg.timing.collapseUpdate,
                       MState::ApAliasLocal);
                bound = callee;
            } else {
                Word c = heap.chase(callee);
                if (mval::isInt(c)) {
                    bound = mval::mkRef(allocErrorRef(kErrBadApply));
                } else {
                    Word h = heap.header(mval::refOf(c));
                    ObjKind k = mhdr::kindOf(h);
                    if (k == ObjKind::App && objIsWhnfRef(h)) {
                        // ApCopyPartial + ApExtendArgs.
                        Word fn = mhdr::fnOf(h);
                        Word have = mhdr::argsOf(h);
                        std::vector<Word> all;
                        all.reserve(have + args.size());
                        for (Word i = 0; i < have; ++i) {
                            all.push_back(
                                heap.payload(mval::refOf(c), i));
                        }
                        chargeN(MState::ApCopyPartial, have,
                                have * cfg.timing.copyPartialPerWord);
                        all.insert(all.end(), args.begin(),
                                   args.end());
                        if (isConsIdRef(fn) &&
                            all.size() == arityOfRef(fn)) {
                            bound = mval::mkRef(
                                allocConsRef(fn, std::move(all)));
                        } else if (isConsIdRef(fn) &&
                                   all.size() > arityOfRef(fn)) {
                            bound =
                                mval::mkRef(allocErrorRef(kErrArity));
                        } else {
                            bound = mval::mkRef(
                                allocAppRef(fn, std::move(all)));
                        }
                    } else if (k == ObjKind::Cons) {
                        bound = mhdr::fnOf(h) ==
                                        static_cast<Word>(Prim::Error)
                                    ? c
                                    : mval::mkRef(
                                          allocErrorRef(kErrArity));
                    } else {
                        // Callee is an unevaluated thunk: defer.
                        bound = mval::mkRef(
                            allocAppVRef(callee, std::move(args)));
                    }
                }
            }
        }
        act.locals.push_back(bound);
        act.pc += 1 + lw.nargs;
    }

    void
    stepDeliverRef()
    {
        Frame f = std::move(contsV.back());
        contsV.pop_back();
        switch (f.kind) {
          case Frame::Kind::Update: {
            Word h = heap.header(f.target);
            heap.setHeader(f.target,
                           mhdr::pack(ObjKind::Ind, mhdr::countOf(h),
                                      0, mhdr::padOf(h)));
            heap.setPayload(f.target, 0, vreg);
            charge(cfg.timing.update, MState::EvUpdate);
            ++machineStats.updates;
            return; // stay in Deliver
          }
          case Frame::Kind::Case:
            act = std::move(f.act);
            charge(cfg.timing.returnToCase, MState::EvReturn);
            resumeCaseRef();
            return;
          case Frame::Kind::PrimArgs:
            resumePrimRef(std::move(f));
            return;
          case Frame::Kind::Apply:
            resumeApplyRef(std::move(f));
            return;
        }
    }

    void
    resumeCaseRef()
    {
        curClass = InstrClass::Case;
        Word v = heap.chase(vreg);
        bool isInt = mval::isInt(v);
        Word h = 0;
        if (!isInt)
            h = heap.header(mval::refOf(v));

        // Walk the pattern words; 1 cycle per branch head.
        size_t pc = act.pc + 1;
        for (;;) {
            if (pc >= image.size()) {
                fail("case ran off the image");
                return;
            }
            Word pw = image[pc];
            Op op = opOf(pw);
            if (op == Op::PatElse) {
                act.pc = pc + 1;
                mode = Mode::Exec;
                return;
            }
            if (op != Op::PatLit && op != Op::PatCons) {
                fail("malformed case pattern word");
                return;
            }
            charge(cfg.timing.branchHead, MState::EvBranchHead);
            ++machineStats.branchHeads;
            PatWord pat = unpackPat(pw);
            bool match;
            if (pat.isCons) {
                match = !isInt &&
                        mhdr::kindOf(h) == ObjKind::Cons &&
                        mhdr::fnOf(h) == pat.consId;
            } else {
                match = isInt && mval::intOf(v) == pat.lit;
            }
            if (match) {
                if (pat.isCons) {
                    Word addr = mval::refOf(v);
                    Word n = mhdr::argsOf(h);
                    for (Word i = 0; i < n; ++i) {
                        act.locals.push_back(heap.payload(addr, i));
                        charge(cfg.timing.fieldPush,
                               MState::EvFieldPush);
                    }
                }
                act.pc = pc + 1;
                mode = Mode::Exec;
                return;
            }
            pc += 1 + pat.skip;
        }
    }

    void
    resumePrimRef(Frame f)
    {
        curClass = InstrClass::Let;
        Word v = heap.chase(vreg);
        Prim p = f.prim;
        charge(cfg.timing.primPerArg, MState::EvPrimArg);

        if (mval::isRef(v)) {
            Word h = heap.header(mval::refOf(v));
            if (mhdr::kindOf(h) == ObjKind::Cons &&
                mhdr::fnOf(h) == static_cast<Word>(Prim::Error)) {
                vreg = v;
                mode = Mode::Deliver;
                return;
            }
            SWord code = (p == Prim::GetInt || p == Prim::PutInt)
                             ? kErrIoNotInt
                             : kErrBadApply;
            vreg = mval::mkRef(allocErrorRef(code));
            mode = Mode::Deliver;
            return;
        }

        f.collected.push_back(mval::intOf(v));
        f.nextArg++;
        if (f.nextArg < f.primArgs.size()) {
            Word next = f.primArgs[f.nextArg];
            contsV.push_back(std::move(f));
            vreg = next;
            mode = Mode::EvalVal;
            return;
        }

        if (traceExec)
            emitT(obs::EventKind::PrimOp, static_cast<int64_t>(p),
                  static_cast<int64_t>(f.collected.size()));
        switch (p) {
          case Prim::GetInt:
            charge(cfg.timing.ioOp, MState::EvIoOp);
            vreg = mval::mkInt(wrapInt31(bus.getInt(f.collected[0])));
            break;
          case Prim::PutInt:
            charge(cfg.timing.ioOp, MState::EvIoOp);
            bus.putInt(f.collected[0], f.collected[1]);
            vreg = mval::mkInt(f.collected[1]);
            break;
          case Prim::InvokeGc:
            // The hardware GC-invocation function: collect now.
            runGc(rootProviderRef());
            vreg = mval::mkInt(f.collected[0]);
            break;
          default: {
            charge(cfg.timing.aluOp, MState::EvAluOp);
            PrimResult r = evalAlu(p, f.collected);
            vreg = r.ok ? mval::mkInt(r.value)
                        : mval::mkRef(allocErrorRef(r.errCode));
            break;
          }
        }
        mode = Mode::Deliver;
    }

    void
    resumeApplyRef(Frame f)
    {
        curClass = InstrClass::Let;
        charge(cfg.timing.applyExtra, MState::EvApplyExtra);
        Word v = heap.chase(vreg);
        if (mval::isInt(v)) {
            vreg = mval::mkRef(allocErrorRef(kErrBadApply));
            mode = Mode::Deliver;
            return;
        }
        Word addr = mval::refOf(v);
        Word h = heap.header(addr);
        if (mhdr::kindOf(h) == ObjKind::Cons) {
            vreg = mhdr::fnOf(h) == static_cast<Word>(Prim::Error)
                       ? v
                       : mval::mkRef(allocErrorRef(kErrArity));
            mode = Mode::Deliver;
            return;
        }
        // Partial application: extend and re-evaluate.
        Word fn = mhdr::fnOf(h);
        Word have = mhdr::argsOf(h);
        std::vector<Word> all;
        all.reserve(have + f.extra.size());
        for (Word i = 0; i < have; ++i)
            all.push_back(heap.payload(addr, i));
        chargeN(MState::ApCopyPartial, have,
                have * cfg.timing.copyPartialPerWord);
        all.insert(all.end(), f.extra.begin(), f.extra.end());
        if (isConsIdRef(fn) && all.size() == arityOfRef(fn))
            vreg = mval::mkRef(allocConsRef(fn, std::move(all)));
        else if (isConsIdRef(fn) && all.size() > arityOfRef(fn))
            vreg = mval::mkRef(allocErrorRef(kErrArity));
        else
            vreg = mval::mkRef(allocAppRef(fn, std::move(all)));
        mode = Mode::EvalVal;
    }

    Heap::RootProvider
    rootProviderRef()
    {
        return [this](const Heap::RootVisitor &visit) {
            visit(vreg);
            for (Word &w : act.args)
                visit(w);
            for (Word &w : act.locals)
                visit(w);
            for (Frame &f : contsV) {
                switch (f.kind) {
                  case Frame::Kind::Update: {
                    Word slot = mval::mkRef(f.target);
                    visit(slot);
                    f.target = mval::refOf(slot);
                    break;
                  }
                  case Frame::Kind::Case:
                    for (Word &w : f.act.args)
                        visit(w);
                    for (Word &w : f.act.locals)
                        visit(w);
                    break;
                  case Frame::Kind::PrimArgs:
                    for (size_t i = f.nextArg; i < f.primArgs.size();
                         ++i) {
                        visit(f.primArgs[i]);
                    }
                    break;
                  case Frame::Kind::Apply:
                    for (Word &w : f.extra)
                        visit(w);
                    break;
                }
            }
        };
    }

    // ------------------------------------------------------------
    // Shared: GC roots dispatch, export, stats folding
    // ------------------------------------------------------------

    Heap::RootProvider
    rootProvider()
    {
        return tierUsesPredecode(tier) ? rootProviderU()
                                       : rootProviderRef();
    }

    ValuePtr
    exportValue(Word v, unsigned depth)
    {
        if (depth > 512) {
            fail("deep-force recursion limit");
            return nullptr;
        }
        // Force to WHNF using the machinery (EvDeepForce).
        if (!forceForExport(v))
            return nullptr;
        v = heap.chase(vreg);
        if (mval::isInt(v))
            return Value::makeInt(mval::intOf(v));
        Word addr = mval::refOf(v);
        Word h = heap.header(addr);
        Word n = mhdr::argsOf(h);
        std::vector<Word> raw;
        for (Word i = 0; i < n; ++i)
            raw.push_back(heap.payload(addr, i));
        Word fn = mhdr::fnOf(h);
        bool cons = mhdr::kindOf(h) == ObjKind::Cons;
        std::vector<ValuePtr> items;
        items.reserve(raw.size());
        for (Word w : raw) {
            ValuePtr f = exportValue(w, depth + 1);
            if (!f)
                return nullptr;
            items.push_back(std::move(f));
        }
        return cons ? Value::makeCons(fn, std::move(items))
                    : Value::makeClosure(fn, std::move(items));
    }

    /** Run the machine until `v` is WHNF; leaves it in vreg. */
    bool
    forceForExport(Word v)
    {
        vreg = v;
        mode = Mode::EvalVal;
        status = MachineStatus::Running;
        size_t base = frameCount();
        for (;;) {
            if (status != MachineStatus::Running)
                return false;
            if (mode == Mode::Deliver && frameCount() == base) {
                status = MachineStatus::Done;
                return true;
            }
            stepOnceShared();
        }
    }

    /** Fold the µop path's flat per-function activation counters
     *  into the stats map (kept flat on the hot path, folded on
     *  demand; the reference path writes the map directly). */
    void
    syncStats() const
    {
        for (size_t i = 0; i < callCounts.size(); ++i) {
            if (callCounts[i]) {
                machineStats.callsPerFunc[Word(kFirstUserFuncId + i)] +=
                    callCounts[i];
                callCounts[i] = 0;
            }
        }
    }

    // The shared load artifact; every per-image pure derivation
    // (header parse, identifier metadata, µop streams) lives there
    // and is referenced, not copied, here. Declared first: the
    // reference members below alias into it.
    std::shared_ptr<const LoadedImage> li;
    const Image &image;
    IoBus &bus;
    MachineConfig cfg;
    mutable MachineStats machineStats;
    Heap heap;

    const std::vector<PredecodedFunc> &funcs;
    Word entry = 0;

    // µop path state.
    const Predecoded &pre;
    const std::vector<LoadedImage::IdInfo> &idInfo;
    mutable std::vector<uint64_t> callCounts;
    FrameStack conts;

    // Reference path state.
    std::vector<Frame> contsV;

    // The resolved dispatch tier (cfg.effectiveTier(), cached).
    DispatchTier tier = DispatchTier::Uop;

    // Shared machine registers.
    Activation act;
    Word vreg = 0;
    Mode mode = Mode::EvalVal;
    InstrClass curClass = InstrClass::None;
    MachineStatus status = MachineStatus::Running;
    std::string diagnostic;
    Cycles total = 0;
    Cycles lastGcAt = 0;

    // Observability (cached from cfg at construction; see charge()).
    obs::Recorder *trace = nullptr;
    Cycles tbias = 0;
    bool traceLife = false;
    bool traceExec = false;
    bool traceGc = false;
    bool tallyOn = false;
    FsmTally tally;

    // Reused scratch buffers (µop path; capacity persists across
    // steps; never GC roots — every word they hold is dead or also
    // rooted by the time a collection can run).
    std::vector<Word> evalScratch;
    std::vector<Word> letScratch;
    std::vector<Word> applyScratch;
    std::vector<Word> appvScratch;
    /** Fast-functional tier: operand buffer of the fused all-int
     *  primitive path (threaded.cc). Holds integers, never refs. */
    std::vector<SWord> fastAluScratch;
};

/**
 * The complete architectural state of a machine at a step boundary:
 * everything a cold run accumulated that subsequent execution can
 * observe. Immutable once built, so one snapshot fans out to any
 * number of forked machines concurrently (docs/PERF.md,
 * "Campaign-scale execution"). Scratch buffers and cached trace
 * plumbing are deliberately absent — they carry no machine state.
 */
class MachineSnapshot
{
  public:
    std::shared_ptr<const LoadedImage> li;
    size_t semispaceWords = 0;
    DispatchTier tier = DispatchTier::Uop;
    Heap::Snapshot heap;
    MachineStats stats;
    FsmTally tally;
    std::vector<Machine::Impl::Frame> frames;    ///< µop conts
    std::vector<Machine::Impl::Frame> framesRef; ///< reference conts
    Machine::Impl::Activation act;
    Word vreg = 0;
    Machine::Impl::Mode mode = Machine::Impl::Mode::EvalVal;
    Machine::Impl::InstrClass curClass =
        Machine::Impl::InstrClass::None;
    MachineStatus status = MachineStatus::Running;
    std::string diagnostic;
    Cycles total = 0;
    Cycles lastGcAt = 0;
};

} // namespace zarf

#endif // ZARF_MACHINE_MACHINE_IMPL_HH
