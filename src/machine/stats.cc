#include "machine/stats.hh"

#include <algorithm>

#include "obs/metrics.hh"
#include "support/logging.hh"

namespace zarf
{

namespace
{

/** One stable name per control state, in enum order. */
constexpr const char *kStateNames[kTotalStates] = {
    // Loading.
    "load.magic", "load.count", "load.info", "load.body",
    // Application.
    "ap.fetch-let", "ap.fetch-arg", "ap.alloc-header", "ap.write-arg",
    "ap.bind-local", "ap.alias-local", "ap.copy-partial",
    "ap.extend-args", "ap.sat-check", "ap.cons-build",
    "ap.overflow-chk", "ap.bad-apply", "ap.callee-fetch",
    "ap.defer-callee", "ap.error-build",
    // Evaluation.
    "ev.dispatch", "ev.whnf-hit", "ev.enter-thunk", "ev.push-update",
    "ev.collapse-upd", "ev.call-setup", "ev.fetch-case",
    "ev.branch-head", "ev.field-push", "ev.fetch-result", "ev.update",
    "ev.return", "ev.prim-setup", "ev.prim-arg", "ev.alu-op",
    "ev.io-op", "ev.apply-extra", "ev.deep-force",
    // Garbage collection.
    "gc.idle", "gc.start", "gc.flip-spaces", "gc.root-vreg",
    "gc.root-locals", "gc.root-args", "gc.root-frames",
    "gc.scan-object", "gc.read-header", "gc.check-ref",
    "gc.copy-header", "gc.copy-word", "gc.write-fwd", "gc.follow-fwd",
    "gc.skip-ind", "gc.scan-payload", "gc.advance-scan",
    "gc.copy-done", "gc.fixup-root", "gc.fixup-frame",
    "gc.fixup-local", "gc.fixup-arg", "gc.bump-alloc",
    "gc.check-limit", "gc.out-of-mem", "gc.finish", "gc.invoke-entry",
    "gc.invoke-exit", "gc.account",
};

Cycles
sumRange(const std::array<Cycles, kTotalStates> &cycles, unsigned lo,
         unsigned n)
{
    Cycles total = 0;
    for (unsigned i = lo; i < lo + n; ++i)
        total += cycles[i];
    return total;
}

} // namespace

const char *
mstateName(MState s)
{
    return kStateNames[static_cast<size_t>(s)];
}

void
FsmTally::accumulate(const FsmTally &other)
{
    for (size_t i = 0; i < kTotalStates; ++i) {
        visits[i] += other.visits[i];
        cycles[i] += other.cycles[i];
    }
}

Cycles
FsmTally::loadCycles() const
{
    return sumRange(cycles, 0, kLoadStates);
}

Cycles
FsmTally::execCycles() const
{
    return sumRange(cycles, kLoadStates, kApplyStates + kEvalStates);
}

Cycles
FsmTally::gcCycles() const
{
    return sumRange(cycles, kLoadStates + kApplyStates + kEvalStates,
                    kGcStates);
}

std::string
MachineStats::report() const
{
    std::string out;
    out += strprintf("  let:    count %12llu  cycles %14llu  "
                     "CPI %6.2f  avg args %.2f\n",
                     (unsigned long long)let.count,
                     (unsigned long long)let.cycles, let.cpi(),
                     avgLetArgs());
    out += strprintf("  case:   count %12llu  cycles %14llu  "
                     "CPI %6.2f\n",
                     (unsigned long long)caseInstr.count,
                     (unsigned long long)caseInstr.cycles,
                     caseInstr.cpi());
    out += strprintf("  result: count %12llu  cycles %14llu  "
                     "CPI %6.2f\n",
                     (unsigned long long)result.count,
                     (unsigned long long)result.cycles, result.cpi());
    out += strprintf("  branch heads: %llu (%.1f%% of dynamic "
                     "instructions)\n",
                     (unsigned long long)branchHeads,
                     100.0 * branchHeadFraction());
    out += strprintf("  CPI: %.2f (no GC), %.2f (with GC)\n",
                     cpiNoGc(), cpiWithGc());
    out += strprintf("  heap: %llu objects / %llu words allocated; "
                     "%llu forces (%llu WHNF hits), %llu updates\n",
                     (unsigned long long)allocations,
                     (unsigned long long)allocatedWords,
                     (unsigned long long)forces,
                     (unsigned long long)whnfHits,
                     (unsigned long long)updates);
    out += strprintf("  GC: %llu runs, %llu cycles, %llu objects / "
                     "%llu words copied, %llu ref checks, max live "
                     "%llu words\n",
                     (unsigned long long)gcRuns,
                     (unsigned long long)gcCycles,
                     (unsigned long long)gcObjectsCopied,
                     (unsigned long long)gcWordsCopied,
                     (unsigned long long)gcRefChecks,
                     (unsigned long long)gcMaxLiveWords);
    return out;
}

void
MachineStats::accumulate(const MachineStats &other)
{
    let.count += other.let.count;
    let.cycles += other.let.cycles;
    caseInstr.count += other.caseInstr.count;
    caseInstr.cycles += other.caseInstr.cycles;
    result.count += other.result.count;
    result.cycles += other.result.cycles;
    branchHeads += other.branchHeads;
    letArgs += other.letArgs;
    allocations += other.allocations;
    allocatedWords += other.allocatedWords;
    forces += other.forces;
    whnfHits += other.whnfHits;
    updates += other.updates;
    errorsCreated += other.errorsCreated;
    loadCycles += other.loadCycles;
    execCycles += other.execCycles;
    for (const auto &[fn, n] : other.callsPerFunc)
        callsPerFunc[fn] += n;
    gcRuns += other.gcRuns;
    gcCycles += other.gcCycles;
    gcObjectsCopied += other.gcObjectsCopied;
    gcWordsCopied += other.gcWordsCopied;
    gcRefChecks += other.gcRefChecks;
    gcMaxLiveWords = std::max(gcMaxLiveWords, other.gcMaxLiveWords);
    gcMaxPauseCycles =
        std::max(gcMaxPauseCycles, other.gcMaxPauseCycles);
}

void
exportStats(const MachineStats &stats, obs::Metrics &metrics,
            const std::string &prefix)
{
    auto c = [&](const char *name, uint64_t v) {
        metrics.setCounter(prefix + name, v);
    };
    c("let.count", stats.let.count);
    c("let.cycles", stats.let.cycles);
    c("case.count", stats.caseInstr.count);
    c("case.cycles", stats.caseInstr.cycles);
    c("result.count", stats.result.count);
    c("result.cycles", stats.result.cycles);
    c("branch-heads", stats.branchHeads);
    c("let-args", stats.letArgs);
    c("allocations", stats.allocations);
    c("allocated-words", stats.allocatedWords);
    c("forces", stats.forces);
    c("whnf-hits", stats.whnfHits);
    c("updates", stats.updates);
    c("errors-created", stats.errorsCreated);
    c("load-cycles", stats.loadCycles);
    c("exec-cycles", stats.execCycles);
    c("dynamic-instructions", stats.dynamicInstructions());
    c("gc.runs", stats.gcRuns);
    c("gc.cycles", stats.gcCycles);
    c("gc.objects-copied", stats.gcObjectsCopied);
    c("gc.words-copied", stats.gcWordsCopied);
    c("gc.ref-checks", stats.gcRefChecks);
    c("gc.max-live-words", stats.gcMaxLiveWords);
    c("gc.max-pause-cycles", stats.gcMaxPauseCycles);
    for (const auto &[fn, n] : stats.callsPerFunc)
        metrics.addBucket(prefix + "calls",
                          strprintf("fn%llu", (unsigned long long)fn),
                          n);
}

void
exportTally(const FsmTally &tally, obs::Metrics &metrics,
            const std::string &histogram)
{
    for (size_t i = 0; i < kTotalStates; ++i) {
        MState s = static_cast<MState>(i);
        metrics.addBucket(histogram + ".visits", mstateName(s),
                          tally.visits[i]);
        metrics.addBucket(histogram + ".cycles", mstateName(s),
                          tally.cycles[i]);
    }
}

} // namespace zarf
