#include "machine/stats.hh"

#include "support/logging.hh"

namespace zarf
{

std::string
MachineStats::report() const
{
    std::string out;
    out += strprintf("  let:    count %12llu  cycles %14llu  "
                     "CPI %6.2f  avg args %.2f\n",
                     (unsigned long long)let.count,
                     (unsigned long long)let.cycles, let.cpi(),
                     avgLetArgs());
    out += strprintf("  case:   count %12llu  cycles %14llu  "
                     "CPI %6.2f\n",
                     (unsigned long long)caseInstr.count,
                     (unsigned long long)caseInstr.cycles,
                     caseInstr.cpi());
    out += strprintf("  result: count %12llu  cycles %14llu  "
                     "CPI %6.2f\n",
                     (unsigned long long)result.count,
                     (unsigned long long)result.cycles, result.cpi());
    out += strprintf("  branch heads: %llu (%.1f%% of dynamic "
                     "instructions)\n",
                     (unsigned long long)branchHeads,
                     100.0 * branchHeadFraction());
    out += strprintf("  CPI: %.2f (no GC), %.2f (with GC)\n",
                     cpiNoGc(), cpiWithGc());
    out += strprintf("  heap: %llu objects / %llu words allocated; "
                     "%llu forces (%llu WHNF hits), %llu updates\n",
                     (unsigned long long)allocations,
                     (unsigned long long)allocatedWords,
                     (unsigned long long)forces,
                     (unsigned long long)whnfHits,
                     (unsigned long long)updates);
    out += strprintf("  GC: %llu runs, %llu cycles, %llu objects / "
                     "%llu words copied, %llu ref checks, max live "
                     "%llu words\n",
                     (unsigned long long)gcRuns,
                     (unsigned long long)gcCycles,
                     (unsigned long long)gcObjectsCopied,
                     (unsigned long long)gcWordsCopied,
                     (unsigned long long)gcRefChecks,
                     (unsigned long long)gcMaxLiveWords);
    return out;
}

} // namespace zarf
