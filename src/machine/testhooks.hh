/**
 * @file
 * Hidden, test-only switches of the λ-machine.
 *
 * These exist solely so the conformance fuzzer can demonstrate its
 * own detection power (mutation-kill self-tests, docs/TESTING.md):
 * each switch deliberately reintroduces a previously fixed defect,
 * and the fuzz suite asserts the differential oracle finds it within
 * a bounded number of executions. Nothing outside tests may ever set
 * one; production paths read them as constants (false).
 */

#ifndef ZARF_MACHINE_TESTHOOKS_HH
#define ZARF_MACHINE_TESTHOOKS_HH

namespace zarf::testhooks
{

/**
 * Reintroduces the PR-1 poisoned-operand defect: an out-of-range
 * argument/local slot reference silently resolves to the valid
 * tagged integer 0 instead of latching MachineStatus::Stuck, so a
 * malformed image can complete with a fabricated value. Both the
 * µop and the word-walking path are affected (as the original bug
 * was pre-fix), which is exactly why only a cross-evaluator oracle
 * — never the machine-vs-machine differential — can catch it.
 *
 * Not thread-safe against concurrent machine execution: set it
 * before fanning out a campaign and clear it after the pool has
 * drained (verify::shardMap joins before returning).
 */
extern bool poisonedOperandDefect;

/**
 * Forces the threaded dispatch tiers to run on the portable
 * function-pointer-table core even when the build supports computed
 * goto, so the fallback core is exercised by `ctest -L threaded` on
 * every platform rather than only on compilers without the
 * extension. Read once per advance() call; same thread-safety
 * caveat as above.
 */
extern bool forceTableDispatch;

} // namespace zarf::testhooks

#endif // ZARF_MACHINE_TESTHOOKS_HH
